// Scenario: Problem 2 (FJ-Vote-Win). A public-health campaign ("for
// wearing a mask") is losing the plurality vote at the time horizon. What
// is the minimum number of committed advocates that flips the outcome —
// and how does the answer depend on the accuracy of the seed selector?
// Every selector runs through the typed API's MinSeed query: RS answers
// with the single-pass prefix search on the hosted sketch, the other
// methods drive the paper's budget binary search.
//
//   $ ./min_seeds_to_win [--scale=0.08] [--t=10]
#include <iostream>

#include "api/engine.h"
#include "datasets/synthetic.h"
#include "opinion/fj_model.h"
#include "util/options.h"
#include "util/table.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);
  const double scale = options.GetDouble("scale", 0.08);
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 10));

  datasets::Dataset ds = datasets::MakeDataset(
      datasets::DatasetName::kTwitterMask, scale, /*seed=*/31);
  // Campaign for the side currently LOSING the horizon vote.
  opinion::CandidateId target = 0;
  {
    opinion::FJModel model(ds.influence);
    voting::ScoreEvaluator probe(model, ds.state, 0, horizon,
                                 voting::ScoreSpec::Plurality());
    const auto scores = probe.ScoresAllCandidates(probe.HorizonOpinions(0));
    if (scores[1] < scores[0]) target = 1;
  }
  const uint32_t num_nodes = ds.influence.num_nodes();

  // Host the instance with the underdog as the sketch target.
  auto engine = api::Engine::Open({});
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  api::HostOptions host;
  host.theta = 1u << 14;
  host.horizon = horizon;
  host.target = target;
  if (Status st = (*engine)->Host("mask", std::move(ds), host); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  const api::Response initial = (*engine)->Execute(
      api::Request::Evaluate({}, voting::ScoreSpec::Plurality()));
  std::cout << "Plurality votes at t=" << horizon
            << " with no intervention: for=" << initial.all_scores[target]
            << " against=" << initial.all_scores[1 - target]
            << " (n=" << num_nodes << ")\n";
  // Problem 2's winning criterion is STRICT (core::TargetWins): the
  // argmax in `initial.winner` breaks ties toward the smaller id, which
  // would miscount an exact tie as a win for candidate 0.
  if (initial.all_scores[target] > initial.all_scores[1 - target]) {
    std::cout << "The campaign already wins; nothing to do.\n";
    return 0;
  }

  Table table({"selector", "minimum winning k*", "selector calls"});
  for (baselines::Method method :
       {baselines::Method::kDM, baselines::Method::kRW,
        baselines::Method::kRS, baselines::Method::kDegree}) {
    api::Request request = api::Request::MinSeed(
        /*k_max=*/0, voting::ScoreSpec::Plurality(), method);  // 0 = up to n
    request.options.methods.rw.lambda_cap = 256;
    const api::Response response = (*engine)->Execute(request);
    if (!response.ok) {
      std::cerr << baselines::MethodName(method) << ": " << response.error
                << "\n";
      return 1;
    }
    table.Add(baselines::MethodName(method),
              response.achievable ? std::to_string(response.k_star)
                                  : "unachievable",
              response.selector_calls);
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nTakeaway (paper Table VI): a more approximate selector "
               "needs a larger budget to guarantee the win; the sketch "
               "selector (RS) additionally answers in a single prefix-"
               "checked selection (1 selector call vs the binary search's "
               "1 + O(log k)).\n";
  return 0;
}
