// Scenario: Problem 2 (FJ-Vote-Win). A public-health campaign ("for
// wearing a mask") is losing the plurality vote at the time horizon. What
// is the minimum number of committed advocates that flips the outcome —
// and how does the answer depend on the accuracy of the seed selector?
//
//   $ ./min_seeds_to_win [--scale=0.08] [--t=10]
#include <iostream>

#include "baselines/selector_factory.h"
#include "core/min_seed.h"
#include "datasets/synthetic.h"
#include "opinion/fj_model.h"
#include "util/options.h"
#include "util/table.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);
  const double scale = options.GetDouble("scale", 0.08);
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 10));

  const datasets::Dataset ds = datasets::MakeDataset(
      datasets::DatasetName::kTwitterMask, scale, /*seed=*/31);
  opinion::FJModel model(ds.influence);
  // Campaign for the side currently LOSING the horizon vote.
  opinion::CandidateId target = 0;
  {
    voting::ScoreEvaluator probe(model, ds.state, 0, horizon,
                                 voting::ScoreSpec::Plurality());
    const auto scores = probe.ScoresAllCandidates(probe.HorizonOpinions(0));
    if (scores[1] < scores[0]) target = 1;
  }
  voting::ScoreEvaluator ev(model, ds.state, target, horizon,
                            voting::ScoreSpec::Plurality());

  const auto initial =
      ev.ScoresAllCandidates(ev.TargetHorizonOpinions({}));
  std::cout << "Plurality votes at t=" << horizon
            << " with no intervention: for=" << initial[0]
            << " against=" << initial[1] << " (n="
            << ds.influence.num_nodes() << ")\n";
  if (core::TargetWins(ev, {})) {
    std::cout << "The campaign already wins; nothing to do.\n";
    return 0;
  }

  baselines::MethodOptions mo;
  mo.rw.lambda_cap = 256;
  mo.rs.theta_override = 1u << 14;
  Table table({"selector", "minimum winning k*", "selector calls"});
  for (baselines::Method method :
       {baselines::Method::kDM, baselines::Method::kRW,
        baselines::Method::kRS, baselines::Method::kDegree}) {
    const auto result = core::MinSeedsToWin(
        ev, baselines::MakeSelector(method, mo));
    table.Add(baselines::MethodName(method),
              result.achievable ? std::to_string(result.k_star)
                                : "unachievable",
              result.selector_calls);
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nTakeaway (paper Table VI): a more approximate selector "
               "needs a larger budget to guarantee the win.\n";
  return 0;
}
