// Quickstart: build a small influence graph by hand, set up two competing
// campaigns, and pick seeds for the target under three voting scores.
//
//   $ ./quickstart
//
// Walks through the full public API: GraphBuilder -> Campaign ->
// FJModel -> ScoreEvaluator -> seed selection (exact DM and sketch RS).
#include <iostream>

#include "core/greedy_dm.h"
#include "core/rs_greedy.h"
#include "core/sandwich.h"
#include "graph/builder.h"
#include "opinion/fj_model.h"
#include "voting/evaluator.h"

using namespace voteopt;

int main() {
  // 1. A 6-user social network. Edge (u, v, w): u influences v with
  //    interaction strength w; incoming weights are normalized to sum to 1
  //    (the FJ model's column-stochastic requirement).
  graph::GraphBuilder builder(6);
  builder.AddEdge(0, 2, 3.0);  // user 0 is user 2's main influence
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 3, 2.0);
  builder.AddEdge(2, 4, 2.0);
  builder.AddEdge(3, 4, 1.0);
  builder.AddEdge(4, 5, 1.0);
  builder.AddEdge(5, 4, 1.0);
  auto built = builder.Build({.normalize_incoming = true});
  if (!built.ok()) {
    std::cerr << "graph construction failed: " << built.status().ToString()
              << "\n";
    return 1;
  }
  const graph::Graph graph = std::move(built).value();

  // 2. Two campaigns: initial opinions b0 and stubbornness d per user, both
  //    in [0, 1]. Candidate 0 is our target; candidate 1 the competitor.
  opinion::MultiCampaignState state;
  state.campaigns.resize(2);
  state.campaigns[0].initial_opinions = {0.9, 0.2, 0.4, 0.3, 0.5, 0.4};
  state.campaigns[0].stubbornness = {0.8, 0.3, 0.2, 0.4, 0.3, 0.5};
  state.campaigns[1].initial_opinions = {0.1, 0.7, 0.5, 0.6, 0.5, 0.6};
  state.campaigns[1].stubbornness = {0.5, 0.6, 0.3, 0.5, 0.4, 0.4};
  if (Status st = state.Validate(graph.num_nodes()); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // 3. Propagate opinions to a horizon and look at the electorate.
  opinion::FJModel model(graph);
  const uint32_t horizon = 8;
  const auto opinions = model.Propagate(state.campaigns[0], horizon);
  std::cout << "target opinions at t=" << horizon << ":";
  for (double b : opinions) std::cout << " " << b;
  std::cout << "\n\n";

  // 4. Select k seeds under each voting score. The evaluator caches the
  //    competitor's horizon opinions; selection algorithms reuse it.
  const uint32_t k = 2;
  for (const auto& spec :
       {voting::ScoreSpec::Cumulative(), voting::ScoreSpec::Plurality(),
        voting::ScoreSpec::Copeland()}) {
    voting::ScoreEvaluator evaluator(model, state, /*target=*/0, horizon,
                                     spec);
    // Exact greedy (+ sandwich approximation for non-submodular scores).
    const core::SelectionResult exact =
        spec.kind == voting::ScoreKind::kCumulative
            ? core::GreedyDMSelect(evaluator, k)
            : core::SandwichSelect(evaluator, k);
    // The paper's recommended sketch-based method, on the supported fast
    // path: num_threads != 1 routes through the sharded BuildSketchSet
    // overload (SketchBuildOptions), whose output is deterministic in the
    // seed and independent of the worker count.
    core::RSOptions rs;
    rs.theta_override = 2000;
    rs.num_threads = 0;  // sharded builder, one worker per hardware thread
    const core::SelectionResult sketch =
        core::RSGreedySelect(evaluator, k, rs);

    std::cout << voting::ScoreKindName(spec.kind)
              << ": score without seeds = "
              << evaluator.EvaluateSeeds({}) << "\n  exact greedy seeds = {";
    for (auto s : exact.seeds) std::cout << " " << s;
    std::cout << " } score = " << exact.score << "\n  sketch (RS) seeds = {";
    for (auto s : sketch.seeds) std::cout << " " << s;
    std::cout << " } score = " << sketch.score << "\n";
  }
  return 0;
}
