// Quickstart: build a small influence graph by hand, set up two competing
// campaigns, and pick seeds for the target under three voting scores —
// through the typed query API (api::Engine), the same dispatch path the
// voteopt_serve wire protocol executes.
//
//   $ ./quickstart
//
// Walks through the full public API: GraphBuilder -> Campaign ->
// FJModel propagation -> api::Engine::Host -> typed TopK / MethodCompare
// queries (exact DM vs the paper's sketch-backed RS).
#include <iostream>

#include "api/engine.h"
#include "graph/builder.h"
#include "opinion/fj_model.h"

using namespace voteopt;

int main() {
  // 1. A 6-user social network. Edge (u, v, w): u influences v with
  //    interaction strength w; incoming weights are normalized to sum to 1
  //    (the FJ model's column-stochastic requirement).
  graph::GraphBuilder builder(6);
  builder.AddEdge(0, 2, 3.0);  // user 0 is user 2's main influence
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 3, 2.0);
  builder.AddEdge(2, 4, 2.0);
  builder.AddEdge(3, 4, 1.0);
  builder.AddEdge(4, 5, 1.0);
  builder.AddEdge(5, 4, 1.0);
  auto built = builder.Build({.normalize_incoming = true});
  if (!built.ok()) {
    std::cerr << "graph construction failed: " << built.status().ToString()
              << "\n";
    return 1;
  }

  // 2. Two campaigns: initial opinions b0 and stubbornness d per user, both
  //    in [0, 1]. Candidate 0 is our target; candidate 1 the competitor.
  opinion::MultiCampaignState state;
  state.campaigns.resize(2);
  state.campaigns[0].initial_opinions = {0.9, 0.2, 0.4, 0.3, 0.5, 0.4};
  state.campaigns[0].stubbornness = {0.8, 0.3, 0.2, 0.4, 0.3, 0.5};
  state.campaigns[1].initial_opinions = {0.1, 0.7, 0.5, 0.6, 0.5, 0.6};
  state.campaigns[1].stubbornness = {0.5, 0.6, 0.3, 0.5, 0.4, 0.4};
  if (Status st = state.Validate(built->num_nodes()); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // 3. Propagate opinions to a horizon and look at the electorate.
  const uint32_t horizon = 8;
  {
    opinion::FJModel model(*built);
    const auto opinions = model.Propagate(state.campaigns[0], horizon);
    std::cout << "target opinions at t=" << horizon << ":";
    for (double b : opinions) std::cout << " " << b;
    std::cout << "\n\n";
  }

  // 4. Host the instance in a query engine. Host() builds the RS sketch
  //    in memory (no disk round trip); every subsequent query — here and
  //    over the voteopt_serve wire protocol — runs the identical
  //    Engine::Execute path.
  datasets::Dataset dataset;
  dataset.name = "quickstart";
  dataset.influence = std::move(built).value();
  dataset.state = std::move(state);
  dataset.default_target = 0;

  auto engine = api::Engine::Open({});  // empty registry
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  api::HostOptions host;
  host.theta = 2000;
  host.horizon = horizon;
  if (Status st = (*engine)->Host("quickstart", std::move(dataset), host);
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // 5. Select k seeds under each voting score. MethodCompare runs the
  //    exact greedy (DM) and the paper's recommended sketch method (RS) on
  //    the same instance; the evaluator behind both is cached per rule.
  const uint32_t k = 2;
  for (const auto& spec :
       {voting::ScoreSpec::Cumulative(), voting::ScoreSpec::Plurality(),
        voting::ScoreSpec::Copeland()}) {
    api::Request compare = api::Request::MethodCompare(k, spec);
    compare.methods = {baselines::Method::kDM, baselines::Method::kRS};
    const api::Response response = (*engine)->Execute(compare);
    if (!response.ok) {
      std::cerr << response.error << "\n";
      return 1;
    }
    const api::Response baseline = (*engine)->Execute(
        api::Request::Evaluate({}, spec));  // score with no seeds

    std::cout << voting::ScoreKindName(spec.kind)
              << ": score without seeds = " << baseline.score << "\n";
    for (const api::MethodScore& entry : response.method_scores) {
      std::cout << "  " << (entry.method == "DM" ? "exact greedy (DM)"
                                                 : "sketch (RS)")
                << " seeds = {";
      for (auto s : entry.seeds) std::cout << " " << s;
      std::cout << " } score = " << entry.exact_score << "\n";
    }
  }
  return 0;
}
