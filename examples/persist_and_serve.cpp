// Scenario: the offline-build -> persist -> serve split, end to end in one
// file. An offline job builds the expensive sketch artifact once with the
// sharded builder and persists it into the dataset bundle; the online side
// opens an api::Engine over the persisted store (mmap, zero-copy) and
// answers a mixed batch of typed queries — different budgets, voting
// rules, and selection methods — from that single artifact, fanned out
// over a small worker pool (answers are identical whatever the thread
// count, and identical to what the voteopt_serve wire protocol returns:
// both run Engine::Execute).
//
//   $ ./example_persist_and_serve
//   $ ./example_persist_and_serve --theta=500000 --k=25
#include <iostream>

#include "api/engine.h"
#include "core/sketch.h"
#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "opinion/fj_model.h"
#include "store/sketch_store.h"
#include "util/options.h"
#include "util/timer.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);
  const auto theta = static_cast<uint64_t>(options.GetInt("theta", 100000));
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 10));
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 20));
  const std::string prefix = options.GetString("prefix", "./persist_demo");

  // --- offline: synthesize a bundle, build the sketch once, persist both.
  const datasets::Dataset dataset = datasets::MakeDataset(
      datasets::DatasetName::kYelp, /*scale=*/0.1, /*seed=*/5);
  if (Status st = datasets::SaveDatasetBundle(dataset, prefix); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  opinion::FJModel model(dataset.influence);
  voting::ScoreEvaluator build_evaluator(model, dataset.state,
                                         dataset.default_target, horizon,
                                         voting::ScoreSpec::Cumulative());
  WallTimer timer;
  core::SketchBuildOptions build_options;  // sharded fast path
  auto walks =
      core::BuildSketchSet(build_evaluator, theta, /*master_seed=*/42,
                           build_options);
  const store::SketchMeta meta{theta, horizon, dataset.default_target, 42};
  const std::string sketch_path = datasets::BundleSketchPath(prefix);
  if (Status st = store::SaveSketch(*walks, meta, sketch_path); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "offline: built " << theta << " walks and persisted "
            << sketch_path << " in " << timer.Seconds() << " s\n";

  // --- online: a fresh engine loads the store and answers everything
  //     from it. No walk is ever regenerated.
  api::EngineOptions engine_options;
  engine_options.load.bundle_prefix = prefix;
  engine_options.load.build_theta = 0;  // must load, never rebuild
  engine_options.num_worker_threads = 2;
  timer.Restart();
  auto engine = api::Engine::Open(engine_options);
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  std::cout << "online: store loaded in " << timer.Seconds() << " s (mmap)\n\n";

  std::vector<api::Request> batch;
  for (const auto& spec :
       {voting::ScoreSpec::Cumulative(), voting::ScoreSpec::Plurality(),
        voting::ScoreSpec::Copeland()}) {
    batch.push_back(api::Request::TopK(k, spec));
  }
  // The degree heuristic over the same wire-visible query surface.
  batch.push_back(api::Request::TopK(k, voting::ScoreSpec::Plurality(),
                                     baselines::Method::kDegree));
  batch.push_back(
      api::Request::MinSeed(100, voting::ScoreSpec::Cumulative()));
  {
    api::Request evaluate =
        api::Request::Evaluate({1, 2, 3}, voting::ScoreSpec::Cumulative());
    evaluate.overrides = {{0, 1.0}};
    batch.push_back(evaluate);
  }
  batch.push_back(api::Request::RuleSweep(k));
  for (const api::Response& response : (*engine)->ExecuteBatch(batch)) {
    std::cout << response.ToJson() << "\n";
  }

  const auto stats = (*engine)->stats();
  std::cout << "\n" << stats.queries << " queries, "
            << stats.evaluator_cache_misses << " evaluator builds, "
            << stats.sketch_resets << " O(theta) sketch resets — one "
            << (static_cast<double>((*engine)->walks().memory_bytes()) /
                (1024.0 * 1024.0))
            << " MiB artifact served them all\n";
  return 0;
}
