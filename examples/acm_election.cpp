// Scenario: the paper's § VIII-B case study — the ACM general election on
// a collaboration network with 7 research domains. Shows where the
// selected seeds live, which domains swing, and that the seeds mostly
// convert near-neutral users. Seed selection goes through the typed query
// API (api::Engine, sketch-backed RS — the paper's recommendation at this
// scale); the domain analysis keeps a local evaluator for the opinion
// introspection the case study needs.
//
//   $ ./acm_election [--n=3000] [--k=100] [--t=20]
#include <iostream>

#include "api/engine.h"
#include "datasets/case_study.h"
#include "opinion/fj_model.h"
#include "util/options.h"
#include "util/table.h"
#include "voting/evaluator.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);
  datasets::CaseStudyConfig config;
  config.num_users = static_cast<uint32_t>(options.GetInt("n", 1200));
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 100));
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 20));

  const datasets::CaseStudyData data = datasets::MakeCaseStudy(config);
  opinion::FJModel model(data.dataset.influence);
  voting::ScoreEvaluator ev(model, data.dataset.state,
                            data.dataset.default_target, horizon,
                            voting::ScoreSpec::Plurality());

  std::cout << "ACM election analog: " << config.num_users
            << " researchers across 7 domains; target candidate is the "
               "HCI/ML-leaning one.\n";

  // Host the instance and select seeds over the typed API — identical to
  // what a voteopt_serve client would get for {"op": "topk", "k": ...,
  // "rule": "plurality"}.
  auto engine = api::Engine::Open({});
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  api::HostOptions host;
  host.theta = 1u << 14;
  host.horizon = horizon;
  if (Status st = (*engine)->Host("acm", data.dataset, host); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  const api::Response response = (*engine)->Execute(
      api::Request::TopK(k, voting::ScoreSpec::Plurality()));
  if (!response.ok) {
    std::cerr << response.error << "\n";
    return 1;
  }
  const auto report =
      datasets::AnalyzeCaseStudy(data, response.seeds, horizon);

  Table table({"domain", "researchers", "votes before", "votes after",
               "seeds"});
  for (const auto& row : report) {
    table.Add(row.domain, row.total_users, row.voting_for_target_before,
              row.voting_for_target_after, row.seeds_in_domain.size());
  }
  std::cout << "\n";
  table.Print(std::cout);

  // Which kind of user switched? Bucket converts by their pre-seeding
  // margin |b_target - b_rival| at the horizon.
  const auto& rival = ev.HorizonOpinions(1 - data.dataset.default_target);
  const auto before = ev.TargetHorizonOpinions({});
  const auto after = ev.TargetHorizonOpinions(response.seeds);
  uint32_t converts = 0, neutral_converts = 0;
  for (uint32_t v = 0; v < config.num_users; ++v) {
    const bool voted_before = before[v] > rival[v];
    const bool votes_after = after[v] > rival[v];
    if (!voted_before && votes_after) {
      ++converts;
      if (std::abs(before[v] - rival[v]) < 0.1) ++neutral_converts;
    }
  }
  std::cout << "\nConverted voters: " << converts << "; of these "
            << neutral_converts << " ("
            << Table::Num(100.0 * neutral_converts / std::max(1u, converts),
                          1)
            << "%) were near-neutral (margin < 0.1) — the paper's "
               "observation that seeds flip the fence-sitters.\n";
  return 0;
}
