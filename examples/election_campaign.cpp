// Scenario: a four-party election on a Twitter-like retweet network (the
// paper's Twitter US Election setting). A campaign manager for the target
// party asks: with a budget of k activists, whom do we recruit, and does
// the answer change with the voting rule? One RuleSweep query through the
// typed API answers all five rules from a single hosted sketch.
//
//   $ ./election_campaign [--scale=0.2] [--k=50] [--t=20]
#include <iostream>

#include "api/engine.h"
#include "datasets/synthetic.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);
  const double scale = options.GetDouble("scale", 0.15);
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 50));
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 20));

  datasets::Dataset ds = datasets::MakeDataset(
      datasets::DatasetName::kTwitterElection, scale, /*seed=*/11);
  const uint32_t target = ds.default_target;
  std::cout << "Election network: " << ds.influence.num_nodes() << " users, "
            << ds.influence.num_edges() << " retweet edges, "
            << ds.state.num_candidates() << " parties. Target = party "
            << target << ", budget k = " << k << ".\n";

  // Host the instance in a query engine: the sketch is built once, every
  // rule below queries it (the same Engine::Execute path the
  // voteopt_serve wire protocol dispatches).
  auto engine = api::Engine::Open({});
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  api::HostOptions host;
  host.theta = 1u << 14;
  host.horizon = horizon;
  if (Status st = (*engine)->Host("election", std::move(ds), host); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // How does the winner look with no intervention?
  {
    const api::Response response = (*engine)->Execute(
        api::Request::Evaluate({}, voting::ScoreSpec::Plurality()));
    std::cout << "\nPlurality votes at t=" << horizon << " with no seeds:";
    for (size_t q = 0; q < response.all_scores.size(); ++q) {
      std::cout << "  party" << q << "=" << response.all_scores[q];
    }
    std::cout << "\n";
  }

  // Seeds under the five voting rules — ONE RuleSweep query. (Scenarios
  // like this used to require a bespoke offline program assembling
  // per-rule evaluators and selections by hand.)
  api::Request sweep = api::Request::RuleSweep(k);
  sweep.p = 2;  // the papproval entry scores top-2 approval
  const api::Response response = (*engine)->Execute(sweep);
  if (!response.ok) {
    std::cerr << response.error << "\n";
    return 1;
  }

  Table table({"voting rule", "score w/o seeds", "score w/ seeds",
               "winner after seeding"});
  for (const api::RuleScore& rule : response.rule_scores) {
    // Baseline score of the empty seed set under the same rule.
    api::Request baseline_request = api::Request::Evaluate({}, {});
    baseline_request.rule = rule.rule == "positional" ? "borda" : rule.rule;
    baseline_request.p = sweep.p;
    const api::Response baseline = (*engine)->Execute(baseline_request);
    table.Add(rule.rule, Table::Num(baseline.score, 1),
              Table::Num(rule.exact_score, 1),
              rule.winner == target ? "target party"
                                    : "party " + std::to_string(rule.winner));
  }
  std::cout << "\n";
  table.Print(std::cout);

  std::cout << "\nSeed overlap across rules (fraction shared):\n";
  const auto& rules = response.rule_scores;
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = i + 1; j < rules.size(); ++j) {
      std::cout << "  " << rules[i].rule << " vs " << rules[j].rule << ": "
                << Table::Num(OverlapFraction(rules[i].seeds, rules[j].seeds),
                              2)
                << "\n";
    }
  }
  std::cout << "\nTakeaway: the right activists depend on the voting rule — "
               "cumulative-optimal seeds need not win elections.\n";
  return 0;
}
