// Scenario: a four-party election on a Twitter-like retweet network (the
// paper's Twitter US Election setting). A campaign manager for the target
// party asks: with a budget of k activists, whom do we recruit, and does
// the answer change with the voting rule?
//
//   $ ./election_campaign [--scale=0.2] [--k=50] [--t=20]
#include <iostream>

#include "baselines/selector_factory.h"
#include "datasets/synthetic.h"
#include "opinion/fj_model.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"
#include "voting/evaluator.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);
  const double scale = options.GetDouble("scale", 0.15);
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 50));
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 20));

  const datasets::Dataset ds = datasets::MakeDataset(
      datasets::DatasetName::kTwitterElection, scale, /*seed=*/11);
  opinion::FJModel model(ds.influence);
  std::cout << "Election network: " << ds.influence.num_nodes() << " users, "
            << ds.influence.num_edges() << " retweet edges, "
            << ds.state.num_candidates() << " parties. Target = party "
            << ds.default_target << ", budget k = " << k << ".\n";

  // How does the winner look with no intervention?
  {
    voting::ScoreEvaluator ev(model, ds.state, ds.default_target, horizon,
                              voting::ScoreSpec::Plurality());
    const auto scores = ev.ScoresAllCandidates(ev.TargetHorizonOpinions({}));
    std::cout << "\nPlurality votes at t=" << horizon << " with no seeds:";
    for (size_t q = 0; q < scores.size(); ++q) {
      std::cout << "  party" << q << "=" << scores[q];
    }
    std::cout << "\n";
  }

  // Seeds under different voting rules, and how much they overlap.
  baselines::MethodOptions mo;
  mo.rs.theta_override = 1u << 14;
  std::vector<std::pair<std::string, voting::ScoreSpec>> rules = {
      {"cumulative", voting::ScoreSpec::Cumulative()},
      {"plurality", voting::ScoreSpec::Plurality()},
      {"2-approval", voting::ScoreSpec::PApproval(2)},
      {"copeland", voting::ScoreSpec::Copeland()},
  };
  std::vector<std::vector<graph::NodeId>> seed_sets;
  Table table({"voting rule", "score w/o seeds", "score w/ seeds",
               "winner after seeding"});
  for (const auto& [name, spec] : rules) {
    voting::ScoreEvaluator ev(model, ds.state, ds.default_target, horizon,
                              spec);
    const auto result =
        baselines::SelectWithMethod(baselines::Method::kRS, ev, k, mo);
    seed_sets.push_back(result.seeds);
    const auto all =
        ev.ScoresAllCandidates(ev.TargetHorizonOpinions(result.seeds));
    uint32_t winner = 0;
    for (uint32_t q = 1; q < all.size(); ++q) {
      if (all[q] > all[winner]) winner = q;
    }
    table.Add(name, Table::Num(ev.EvaluateSeeds({}), 1),
              Table::Num(result.score, 1),
              winner == ds.default_target ? "target party"
                                          : "party " + std::to_string(winner));
  }
  std::cout << "\n";
  table.Print(std::cout);

  std::cout << "\nSeed overlap across rules (fraction shared):\n";
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = i + 1; j < rules.size(); ++j) {
      std::cout << "  " << rules[i].first << " vs " << rules[j].first << ": "
                << Table::Num(OverlapFraction(seed_sets[i], seed_sets[j]), 2)
                << "\n";
    }
  }
  std::cout << "\nTakeaway: the right activists depend on the voting rule — "
               "cumulative-optimal seeds need not win elections.\n";
  return 0;
}
