// Scenario: run VoteOpt on YOUR data. This example shows the file-driven
// workflow an adopter would use:
//   1. an influence graph as a SNAP-style edge list,
//   2. campaign opinions/stubbornness as a TSV bundle,
//   3. pick a method + score from the command line, write the seeds out.
//
// Run without arguments it bootstraps a demo bundle first, so it always
// works out of the box:
//
//   $ ./campaign_from_files
//   $ ./campaign_from_files --prefix=/path/to/bundle --method=RS
//         --score=plurality --k=50 --t=20 --out=seeds.txt  (one line)
#include <fstream>
#include <iostream>

#include "baselines/selector_factory.h"
#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "opinion/fj_model.h"
#include "util/options.h"
#include "util/table.h"
#include "voting/evaluator.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);
  std::string prefix = options.GetString("prefix", "");
  if (prefix.empty()) {
    // Bootstrap: synthesize a small bundle next to the binary.
    prefix = "./voteopt_demo";
    const datasets::Dataset demo = datasets::MakeDataset(
        datasets::DatasetName::kTwitterElection, 0.05, /*seed=*/3);
    if (Status st = datasets::SaveDatasetBundle(demo, prefix); !st.ok()) {
      std::cerr << "bootstrap failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "No --prefix given; wrote a demo bundle to " << prefix
              << ".{influence.edges, counts.edges, campaigns.tsv, meta}\n\n";
  }

  auto loaded = datasets::LoadDatasetBundle(prefix);
  if (!loaded.ok()) {
    std::cerr << "cannot load bundle '" << prefix
              << "': " << loaded.status().ToString() << "\n";
    return 1;
  }
  const datasets::Dataset& ds = *loaded;
  std::cout << "Loaded '" << ds.name << "': n=" << ds.influence.num_nodes()
            << " m=" << ds.influence.num_edges()
            << " r=" << ds.state.num_candidates() << "\n";

  const auto method =
      baselines::ParseMethod(options.GetString("method", "RS"));
  if (!method) {
    std::cerr << "unknown --method (use DM|RW|RS|IC|LT|GED-T|PR|RWR|DC)\n";
    return 2;
  }
  voting::ScoreSpec spec = voting::ScoreSpec::Plurality();
  const std::string score = options.GetString("score", "plurality");
  if (score == "cumulative") spec = voting::ScoreSpec::Cumulative();
  if (score == "copeland") spec = voting::ScoreSpec::Copeland();
  if (score == "borda") {
    spec = voting::ScoreSpec::Borda(ds.state.num_candidates());
  }

  opinion::FJModel model(ds.influence);
  voting::ScoreEvaluator ev(
      model, ds.state,
      static_cast<uint32_t>(options.GetInt("target", ds.default_target)),
      static_cast<uint32_t>(options.GetInt("t", 20)), spec);

  baselines::MethodOptions mo;
  mo.rs.theta_override = static_cast<uint64_t>(options.GetInt("theta", 0));
  // --threads=0 (default) uses the sharded BuildSketchSet fast path with
  // one worker per hardware thread; results are thread-count independent.
  mo.rs.num_threads = static_cast<uint32_t>(options.GetInt("threads", 0));
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 25));
  const auto result = baselines::SelectWithMethod(*method, ev, k, mo);

  std::cout << "\n" << baselines::MethodName(*method) << " selected " << k
            << " seeds in " << Table::Num(result.seconds, 3) << " s\n"
            << score << " score: " << ev.EvaluateSeeds({}) << " (no seeds) -> "
            << result.score << " (with seeds)\n";

  const std::string out_path = options.GetString("out", prefix + ".seeds");
  std::ofstream out(out_path);
  for (graph::NodeId s : result.seeds) out << s << "\n";
  std::cout << "seed ids written to " << out_path << "\n";
  return 0;
}
