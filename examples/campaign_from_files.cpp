// Scenario: run VoteOpt on YOUR data. This example shows the file-driven
// workflow an adopter would use:
//   1. an influence graph as a SNAP-style edge list,
//   2. campaign opinions/stubbornness as a TSV bundle,
//   3. pick a method + voting rule from the command line, query the engine,
//      write the seeds out.
// The loaded bundle is hosted in api::Engine and queried through the typed
// API — the same dispatch path the voteopt_serve wire protocol executes.
//
// Run without arguments it bootstraps a demo bundle first, so it always
// works out of the box:
//
//   $ ./campaign_from_files
//   $ ./campaign_from_files --prefix=/path/to/bundle --method=RS
//         --score=plurality --k=50 --t=20 --out=seeds.txt  (one line)
#include <fstream>
#include <iostream>

#include "api/engine.h"
#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "util/options.h"
#include "util/table.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);
  std::string prefix = options.GetString("prefix", "");
  if (prefix.empty()) {
    // Bootstrap: synthesize a small bundle next to the binary.
    prefix = "./voteopt_demo";
    const datasets::Dataset demo = datasets::MakeDataset(
        datasets::DatasetName::kTwitterElection, 0.05, /*seed=*/3);
    if (Status st = datasets::SaveDatasetBundle(demo, prefix); !st.ok()) {
      std::cerr << "bootstrap failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "No --prefix given; wrote a demo bundle to " << prefix
              << ".{influence.edges, counts.edges, campaigns.tsv, meta}\n\n";
  }

  auto loaded = datasets::LoadDatasetBundle(prefix);
  if (!loaded.ok()) {
    std::cerr << "cannot load bundle '" << prefix
              << "': " << loaded.status().ToString() << "\n";
    return 1;
  }
  datasets::Dataset ds = std::move(loaded).value();
  std::cout << "Loaded '" << ds.name << "': n=" << ds.influence.num_nodes()
            << " m=" << ds.influence.num_edges()
            << " r=" << ds.state.num_candidates() << "\n";

  // Case-insensitive, with an error message enumerating the roster.
  const auto method =
      baselines::ParseMethod(options.GetString("method", "RS"));
  if (!method.ok()) {
    std::cerr << method.status().ToString() << "\n";
    return 2;
  }
  // The rule is resolved against the loaded dataset (so "borda" derives
  // its weights from this bundle's candidate count).
  const auto spec =
      api::ResolveRule(options.GetString("score", "plurality"),
                       static_cast<uint32_t>(options.GetInt("p", 1)), {},
                       ds.state.num_candidates());
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 2;
  }

  auto engine = api::Engine::Open({});
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  api::HostOptions host;
  // Only the RS method answers from the hosted sketch; for the other
  // roster methods (which build their own substrate inside the query)
  // keep the mandatory bootstrap sketch tiny instead of paying --theta
  // walks that would never be read.
  host.theta = *method == baselines::Method::kRS
                   ? static_cast<uint64_t>(options.GetInt("theta", 1 << 16))
                   : 1024;
  host.horizon = static_cast<uint32_t>(options.GetInt("t", 20));
  host.target =
      static_cast<uint32_t>(options.GetInt("target", ds.default_target));
  // --threads=0 (default) uses the sharded sketch builder with one worker
  // per hardware thread; results are thread-count independent.
  host.num_threads = static_cast<uint32_t>(options.GetInt("threads", 0));
  if (Status st = (*engine)->Host("mine", std::move(ds), host); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 25));
  const api::Response baseline =
      (*engine)->Execute(api::Request::Evaluate({}, *spec));
  const api::Response response =
      (*engine)->Execute(api::Request::TopK(k, *spec, *method));
  if (!response.ok) {
    std::cerr << response.error << "\n";
    return 1;
  }

  std::cout << "\n" << baselines::MethodName(*method) << " selected " << k
            << " seeds in " << Table::Num(response.millis / 1000.0, 3)
            << " s\n" << options.GetString("score", "plurality")
            << " score: " << baseline.score << " (no seeds) -> "
            << response.exact_score << " (with seeds)\n";

  const std::string out_path = options.GetString("out", prefix + ".seeds");
  std::ofstream out(out_path);
  for (graph::NodeId s : response.seeds) out << s << "\n";
  std::cout << "seed ids written to " << out_path << "\n";
  return 0;
}
