// Scenario: a restaurant category ("Chinese") competes with nine others on
// a Yelp-like review network (the paper's Yelp setting with r = 10). Users
// hold memberships on several platforms, so the operator cares about being
// in each user's top-p, weighted by position — the p-approval and
// positional-p-approval scores. Selections run through the typed query API
// with method=DM (exact greedy + sandwich bounds for these non-submodular
// objectives); the sandwich diagnostics ride back on the response.
//
//   $ ./restaurant_rivalry [--scale=0.15] [--k=40]
#include <iostream>

#include "api/engine.h"
#include "datasets/synthetic.h"
#include "util/options.h"
#include "util/table.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);
  const double scale = options.GetDouble("scale", 0.08);
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 40));
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 15));

  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetName::kYelp, scale, /*seed=*/21);
  std::cout << "Yelp-like network: " << ds.influence.num_nodes()
            << " users, " << ds.influence.num_edges() << " friendships, "
            << ds.state.num_candidates()
            << " restaurant categories. Target category = "
            << ds.default_target << ".\n\n";

  auto engine = api::Engine::Open({});
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  api::HostOptions host;
  host.theta = 1u << 12;  // the DM selections below never touch the sketch
  host.horizon = horizon;
  if (Status st = (*engine)->Host("yelp", std::move(ds), host); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // One topk query per objective, all with the exact DM method; the
  // baseline ("without seeds") is an Evaluate of the empty seed set.
  auto run = [&engine, k](const voting::ScoreSpec& spec)
      -> std::pair<api::Response, api::Response> {
    const api::Response baseline =
        (*engine)->Execute(api::Request::Evaluate({}, spec));
    const api::Response selected = (*engine)->Execute(
        api::Request::TopK(k, spec, baselines::Method::kDM));
    if (!baseline.ok || !selected.ok) {
      std::cerr << (baseline.ok ? selected.error : baseline.error) << "\n";
      std::exit(1);
    }
    return {baseline, selected};
  };

  // Sweep the approval depth p: "how many memberships does a user hold?"
  Table table({"objective", "users approving w/o seeds",
               "users approving w/ seeds", "gain"});
  for (uint32_t p : {1u, 2u, 3u}) {
    const voting::ScoreSpec spec = p == 1 ? voting::ScoreSpec::Plurality()
                                          : voting::ScoreSpec::PApproval(p);
    const auto [baseline, selected] = run(spec);
    table.Add(p == 1 ? "plurality (top-1)"
                     : std::to_string(p) + "-approval (top-" +
                           std::to_string(p) + ")",
              Table::Num(baseline.score, 0),
              Table::Num(selected.exact_score, 0),
              "+" + Table::Num(selected.exact_score - baseline.score, 0));
  }
  // Positional: a rank-2 membership is worth half a rank-1 one.
  {
    const auto [baseline, selected] =
        run(voting::ScoreSpec::PositionalPApproval({1.0, 0.5}));
    table.Add("positional-2-approval (1.0, 0.5)",
              Table::Num(baseline.score, 1),
              Table::Num(selected.exact_score, 1),
              "+" + Table::Num(selected.exact_score - baseline.score, 1));
    std::cout << "Sandwich diagnostics for the positional objective: "
              << "F(SU)/UB(SU) = "
              << selected.diagnostics.at("sandwich_ratio") << " (empirical "
              << "approximation factor of Fig. 2)\n\n";
  }
  table.Print(std::cout);
  std::cout << "\nTakeaway: relaxing the rank constraint (p > 1) changes "
               "which users are worth courting — seeds shift from contested "
               "users to broadly-reachable ones.\n";
  return 0;
}
