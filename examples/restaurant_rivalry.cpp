// Scenario: a restaurant category ("Chinese") competes with nine others on
// a Yelp-like review network (the paper's Yelp setting with r = 10). Users
// hold memberships on several platforms, so the operator cares about being
// in each user's top-p, weighted by position — the p-approval and
// positional-p-approval scores.
//
//   $ ./restaurant_rivalry [--scale=0.15] [--k=40]
#include <iostream>

#include "core/sandwich.h"
#include "datasets/synthetic.h"
#include "opinion/fj_model.h"
#include "util/options.h"
#include "util/table.h"
#include "voting/evaluator.h"

using namespace voteopt;

int main(int argc, char** argv) {
  Options options(argc, argv);
  const double scale = options.GetDouble("scale", 0.08);
  const uint32_t k = static_cast<uint32_t>(options.GetInt("k", 40));
  const uint32_t horizon = static_cast<uint32_t>(options.GetInt("t", 15));

  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetName::kYelp, scale, /*seed=*/21);
  opinion::FJModel model(ds.influence);
  std::cout << "Yelp-like network: " << ds.influence.num_nodes()
            << " users, " << ds.influence.num_edges() << " friendships, "
            << ds.state.num_candidates()
            << " restaurant categories. Target category = "
            << ds.default_target << ".\n\n";

  // Sweep the approval depth p: "how many memberships does a user hold?"
  Table table({"objective", "users approving w/o seeds",
               "users approving w/ seeds", "gain"});
  for (uint32_t p : {1u, 2u, 3u}) {
    const voting::ScoreSpec spec = p == 1 ? voting::ScoreSpec::Plurality()
                                          : voting::ScoreSpec::PApproval(p);
    voting::ScoreEvaluator ev(model, ds.state, ds.default_target, horizon,
                              spec);
    const auto result = core::SandwichSelect(ev, k);
    const double before = ev.EvaluateSeeds({});
    table.Add(p == 1 ? "plurality (top-1)"
                     : std::to_string(p) + "-approval (top-" +
                           std::to_string(p) + ")",
              Table::Num(before, 0), Table::Num(result.score, 0),
              "+" + Table::Num(result.score - before, 0));
  }
  // Positional: a rank-2 membership is worth half a rank-1 one.
  {
    voting::ScoreEvaluator ev(model, ds.state, ds.default_target, horizon,
                              voting::ScoreSpec::PositionalPApproval(
                                  {1.0, 0.5}));
    const auto result = core::SandwichSelect(ev, k);
    table.Add("positional-2-approval (1.0, 0.5)",
              Table::Num(ev.EvaluateSeeds({}), 1),
              Table::Num(result.score, 1),
              "+" + Table::Num(result.score - ev.EvaluateSeeds({}), 1));
    std::cout << "Sandwich diagnostics for the positional objective: "
              << "F(SU)/UB(SU) = "
              << result.diagnostics.at("sandwich_ratio") << " (empirical "
              << "approximation factor of Fig. 2)\n\n";
  }
  table.Print(std::cout);
  std::cout << "\nTakeaway: relaxing the rank constraint (p > 1) changes "
               "which users are worth courting — seeds shift from contested "
               "users to broadly-reachable ones.\n";
  return 0;
}
