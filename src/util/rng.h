// Deterministic pseudo-random number generation.
//
// Every stochastic component in VoteOpt (walk engines, sketch sampling,
// synthetic dataset generation, IC/LT simulation) draws from an explicitly
// seeded `Rng` so that tests and benchmarks are exactly reproducible.
#ifndef VOTEOPT_UTIL_RNG_H_
#define VOTEOPT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace voteopt {

/// xoshiro256** with splitmix64 seeding: fast, high-quality, deterministic.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Gamma(shape, 1) via Marsaglia-Tsang; used to build Beta deviates.
  double Gamma(double shape);

  /// Beta(a, b) deviate in [0, 1]; the paper-analog opinion generator.
  double Beta(double a, double b);

  /// Poisson(mean) via inversion for small means, PTRS-style otherwise.
  uint64_t Poisson(double mean);

  /// Zipf-like integer in [1, n] with exponent s (used for interaction
  /// counts, e.g. co-author / retweet counts in the dataset generators).
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `count` distinct integers from [0, n) (count <= n).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t count);

  /// Derives an independent child generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace voteopt

#endif  // VOTEOPT_UTIL_RNG_H_
