// Streaming summary statistics used by tests (statistical assertions) and by
// the benchmark harness (trial aggregation).
#ifndef VOTEOPT_UTIL_STATS_H_
#define VOTEOPT_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace voteopt {

/// Welford streaming mean/variance plus min/max.
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Quantile of a sample (linear interpolation); q in [0, 1].
/// Sorts a copy; intended for small benchmark result vectors.
double Quantile(std::vector<double> values, double q);

/// Pearson correlation of two equal-length samples.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two sets given as sorted or
/// unsorted id vectors (duplicates ignored). Used for seed-set overlap
/// experiments (paper Fig. 9).
double JaccardOverlap(std::vector<uint32_t> a, std::vector<uint32_t> b);

/// |A ∩ B| / |A| — the "overlap fraction" the paper reports for equal-size
/// seed sets.
double OverlapFraction(std::vector<uint32_t> a, std::vector<uint32_t> b);

}  // namespace voteopt

#endif  // VOTEOPT_UTIL_STATS_H_
