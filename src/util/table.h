// Aligned table / CSV emission so every bench binary prints the same rows and
// series the paper's tables and figures report.
#ifndef VOTEOPT_UTIL_TABLE_H_
#define VOTEOPT_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace voteopt {

/// Collects rows of string cells and renders them either as an aligned
/// monospace table (for terminal output) or as CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; pads/truncates to the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats arbitrary cell values with operator<<.
  template <typename... Ts>
  void Add(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(Ts));
    (row.push_back(FormatCell(cells)), ...);
    AddRow(std::move(row));
  }

  /// Renders an aligned table with a separator under the header.
  void Print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

  /// Formats a double trimmed to `digits` significant decimals.
  static std::string Num(double v, int digits = 4);

 private:
  template <typename T>
  static std::string FormatCell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      return Num(static_cast<double>(v));
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace voteopt

#endif  // VOTEOPT_UTIL_TABLE_H_
