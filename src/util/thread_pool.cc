#include "util/thread_pool.h"

namespace voteopt {

uint32_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  const uint32_t n = num_threads == 0 ? DefaultThreadCount() : num_threads;
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!stopping_ && queue_.empty()) cv_.Wait(&mutex_);
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task routes any exception into the future
  }
}

}  // namespace voteopt
