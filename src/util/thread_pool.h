// Fixed-size worker pool for sharding CPU-bound work (sketch construction,
// batched walk generation). Tasks are submitted as callables; each Submit
// returns a std::future that carries the task's result or, if it threw, its
// exception. Destruction drains the queue: tasks already submitted still run
// before the workers join, so futures obtained from Submit are always
// eventually satisfied.
#ifndef VOTEOPT_UTIL_THREAD_POOL_H_
#define VOTEOPT_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace voteopt {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(uint32_t num_threads = 0);

  /// Drains the queue (queued tasks still run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lock-free on purpose: workers_ is written only by the constructor,
  /// before any other thread can hold a reference to the pool.
  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Enqueues `fn` for execution on some worker. The returned future yields
  /// fn's result, or rethrows the exception fn exited with.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    // shared_ptr because std::function requires copyable callables while
    // packaged_task is move-only.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(&mutex_);
      queue_.push([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return future;
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static uint32_t DefaultThreadCount();

 private:
  void WorkerLoop();

  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
  /// Written only by the constructor; joined by the destructor.
  std::vector<std::thread> workers_;
};

}  // namespace voteopt

#endif  // VOTEOPT_UTIL_THREAD_POOL_H_
