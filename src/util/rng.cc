#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace voteopt {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t threshold = (0 - n) % n;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

double Rng::Gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia-Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a);
  const double y = Gamma(b);
  const double sum = x + y;
  if (sum <= 0.0) return 0.5;
  return x / sum;
}

uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = Uniform();
    uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= Uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction is adequate for the
  // interaction-count generator; clamp at zero.
  const double draw = Normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n >= 1);
  if (n == 1) return 1;
  // Exact rejection-inversion: sample x from the continuous envelope
  // density proportional to x^-s on [1, n+1), round down to k, and accept
  // with probability k^-s * q_1 / q_k, where q_k is the envelope mass of
  // [k, k+1). The ratio k^-s / q_k is maximal at k = 1, so acceptance
  // probabilities stay in (0, 1] and the accepted k follows the exact
  // discrete Zipf pmf proportional to k^-s.
  auto g = [s](double x) {  // antiderivative of x^-s (up to constants)
    return s == 1.0 ? std::log(x) : std::pow(x, 1.0 - s);
  };
  const double g1 = g(1.0);
  const double g_top = g(static_cast<double>(n) + 1.0);
  const double q1 = std::fabs(g(2.0) - g1);
  while (true) {
    const double u = Uniform();
    const double gx = g1 + u * (g_top - g1);
    const double x =
        s == 1.0 ? std::exp(gx) : std::pow(gx, 1.0 / (1.0 - s));
    uint64_t k = static_cast<uint64_t>(x);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double kd = static_cast<double>(k);
    const double qk = std::fabs(g(kd + 1.0) - g(kd));
    if (Uniform() * qk <= q1 * std::pow(kd, -s)) return k;
  }
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n,
                                                    uint32_t count) {
  assert(count <= n);
  std::vector<uint32_t> out;
  out.reserve(count);
  if (count * 3 >= n) {
    // Dense: partial Fisher-Yates over [0, n).
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t j = i + static_cast<uint32_t>(UniformInt(n - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  // Sparse: rejection with a hash set.
  std::unordered_set<uint32_t> seen;
  seen.reserve(count * 2);
  while (out.size() < count) {
    uint32_t candidate = static_cast<uint32_t>(UniformInt(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace voteopt
