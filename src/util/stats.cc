#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace voteopt {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  assert(!values.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  assert(x.size() == y.size());
  assert(!x.empty());
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double num = 0, dx = 0, dy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    dx += (x[i] - mx) * (x[i] - mx);
    dy += (y[i] - my) * (y[i] - my);
  }
  if (dx == 0.0 || dy == 0.0) return 0.0;
  return num / std::sqrt(dx * dy);
}

namespace {

void SortUnique(std::vector<uint32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

size_t IntersectionSize(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace

double JaccardOverlap(std::vector<uint32_t> a, std::vector<uint32_t> b) {
  SortUnique(&a);
  SortUnique(&b);
  if (a.empty() && b.empty()) return 1.0;
  const size_t common = IntersectionSize(a, b);
  return static_cast<double>(common) /
         static_cast<double>(a.size() + b.size() - common);
}

double OverlapFraction(std::vector<uint32_t> a, std::vector<uint32_t> b) {
  SortUnique(&a);
  SortUnique(&b);
  if (a.empty()) return 1.0;
  return static_cast<double>(IntersectionSize(a, b)) /
         static_cast<double>(a.size());
}

}  // namespace voteopt
