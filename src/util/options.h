// Minimal --flag=value command-line parsing shared by the bench binaries and
// examples (keeps them dependency-free and uniform).
#ifndef VOTEOPT_UTIL_OPTIONS_H_
#define VOTEOPT_UTIL_OPTIONS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace voteopt {

/// Parses `--key=value` / `--key value` / bare `--flag` arguments.
/// Unknown positional arguments are collected in positional().
class Options {
 public:
  Options(int argc, char** argv);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// Comma-separated list of integers, e.g. --k=100,200,500.
  std::vector<int64_t> GetIntList(const std::string& key,
                                  std::vector<int64_t> default_value) const;
  /// Comma-separated list of doubles.
  std::vector<double> GetDoubleList(const std::string& key,
                                    std::vector<double> default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace voteopt

#endif  // VOTEOPT_UTIL_OPTIONS_H_
