#include "util/options.h"

#include <cstdlib>

namespace voteopt {

namespace {

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Options::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Options::GetString(const std::string& key,
                               const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Options::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Options::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

std::vector<int64_t> Options::GetIntList(
    const std::string& key, std::vector<int64_t> default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  std::vector<int64_t> out;
  for (const auto& part : SplitCommas(it->second)) {
    if (!part.empty()) out.push_back(std::strtoll(part.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<double> Options::GetDoubleList(
    const std::string& key, std::vector<double> default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  std::vector<double> out;
  for (const auto& part : SplitCommas(it->second)) {
    if (!part.empty()) out.push_back(std::strtod(part.c_str(), nullptr));
  }
  return out;
}

}  // namespace voteopt
