#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace voteopt {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      const bool needs_quote =
          row[c].find_first_of(",\"\n") != std::string::npos;
      if (needs_quote) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::Num(double v, int digits) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace voteopt
