// Wall-clock timing for the benchmark harness.
#ifndef VOTEOPT_UTIL_TIMER_H_
#define VOTEOPT_UTIL_TIMER_H_

#include <chrono>

namespace voteopt {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace voteopt

#endif  // VOTEOPT_UTIL_TIMER_H_
