// Wall-clock timing. The ONE timing source of the codebase: benches, the
// api engine's per-query handling times, and the obs:: metrics/trace
// subsystem all read this steady_clock stopwatch — never system_clock,
// which steps under NTP and would corrupt latency measurements.
#ifndef VOTEOPT_UTIL_TIMER_H_
#define VOTEOPT_UTIL_TIMER_H_

#include <chrono>

namespace voteopt {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Wall seconds of one call — the `timer.Restart(); fn(); timer.Seconds()`
/// idiom the bench drivers repeat.
template <typename Fn>
double TimeSeconds(const Fn& fn) {
  WallTimer timer;
  fn();
  return timer.Seconds();
}

/// Best-of-N wall seconds of `fn` (side effects of every call are kept;
/// repeated calls must be deterministic — which the benches' equality
/// checks enforce anyway). The bench-wide convention for noisy hosts.
template <typename Fn>
double BestOfSeconds(int repeats, const Fn& fn) {
  double best = TimeSeconds(fn);
  for (int i = 1; i < repeats; ++i) {
    const double seconds = TimeSeconds(fn);
    if (seconds < best) best = seconds;
  }
  return best;
}

}  // namespace voteopt

#endif  // VOTEOPT_UTIL_TIMER_H_
