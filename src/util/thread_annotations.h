// Clang thread-safety annotations and the annotated lock vocabulary the
// concurrent layers are written in (ISSUE 9: the locking contract lives
// in the types, not in comments). Under Clang, `-Wthread-safety -Werror`
// turns every "touched a GUARDED_BY member without its mutex" and every
// "called a REQUIRES method unlocked" into a compile error; under other
// compilers the macros vanish and the wrappers are plain std::mutex /
// std::shared_mutex / condition_variable_any with zero added state.
//
// Conventions (docs/ARCHITECTURE.md "Correctness tooling"):
//  * every mutex-protected member is GUARDED_BY its mutex;
//  * private helpers that expect the lock held are REQUIRES(mutex_)
//    instead of taking a std::unique_lock& parameter;
//  * locking uses util::MutexLock / util::ReaderMutexLock (RAII,
//    SCOPED_CAPABILITY) — never bare lock()/unlock() pairs;
//  * condition waits use util::CondVar in an explicit `while (!pred)`
//    loop, because a predicate lambda is analyzed as a separate function
//    and would need its own annotation;
//  * data that is single-thread-confined instead of lock-protected (the
//    I/O-thread-only fields of net::Server::Conn) carries a comment
//    naming the owning thread — the analysis cannot express confinement.
#ifndef VOTEOPT_UTIL_THREAD_ANNOTATIONS_H_
#define VOTEOPT_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros (no-ops outside Clang). Names follow the Clang
// documentation / Abseil capability vocabulary.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define VOTEOPT_TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define VOTEOPT_TS_ATTRIBUTE__(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) VOTEOPT_TS_ATTRIBUTE__(capability(x))
#define SCOPED_CAPABILITY VOTEOPT_TS_ATTRIBUTE__(scoped_lockable)
#define GUARDED_BY(x) VOTEOPT_TS_ATTRIBUTE__(guarded_by(x))
#define PT_GUARDED_BY(x) VOTEOPT_TS_ATTRIBUTE__(pt_guarded_by(x))
#define ACQUIRE(...) VOTEOPT_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  VOTEOPT_TS_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) VOTEOPT_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  VOTEOPT_TS_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  VOTEOPT_TS_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))
#define REQUIRES(...) \
  VOTEOPT_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  VOTEOPT_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) VOTEOPT_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) VOTEOPT_TS_ATTRIBUTE__(assert_capability(x))
#define RETURN_CAPABILITY(x) VOTEOPT_TS_ATTRIBUTE__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  VOTEOPT_TS_ATTRIBUTE__(no_thread_safety_analysis)

namespace voteopt {

// ---------------------------------------------------------------------------
// Annotated lock types. libstdc++'s std::mutex carries no annotations, so
// the analysis cannot see a std::lock_guard acquire it; these thin
// wrappers put the capability attributes on the operations themselves.
// ---------------------------------------------------------------------------

/// Annotated exclusive mutex. Also BasicLockable (lowercase lock/unlock)
/// so CondVar can re-acquire it inside a wait.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  /// Documents (to the analysis) that the caller knows the lock is held,
  /// for the rare spot the analysis cannot follow. Runtime no-op.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  // BasicLockable, for std::condition_variable_any. Annotated the same
  // as Lock/Unlock so direct use is still visible to the analysis.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Annotated shared (reader/writer) mutex.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex — the std::lock_guard of this codebase.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock over SharedMutex (writer side).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared lock over SharedMutex (reader side).
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable over util::Mutex. Waits release and re-acquire the
/// mutex internally (opaque to the analysis: the capability is held on
/// entry and on return, which is exactly the caller-visible contract).
/// Callers loop explicitly — `while (!pred()) cv.Wait(&mu);` — instead
/// of passing predicate lambdas, which the analysis treats as separate
/// unannotated functions.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) { cv_.wait(*mu); }

  /// Returns std::cv_status::timeout when `deadline` passed first.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex* mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(*mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace voteopt

#endif  // VOTEOPT_UTIL_THREAD_ANNOTATIONS_H_
