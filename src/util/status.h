// Status / Result<T> error handling in the RocksDB style: fallible operations
// return a Status (or Result<T> carrying a value), never throw on hot paths.
#ifndef VOTEOPT_UTIL_STATUS_H_
#define VOTEOPT_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace voteopt {

/// Outcome of a fallible operation.
///
/// A `Status` is either `ok()` or carries an error code plus a
/// human-readable message. Cheap to copy in the OK case.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kCorruption,
    kIOError,
    kFailedPrecondition,
    kInternal,
    /// Load shedding: the request was refused at admission because a
    /// bounded queue was full. Retryable by construction — nothing about
    /// the request itself was wrong (docs/PROTOCOL.md, `overloaded`).
    kOverloaded,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(Code::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: k exceeds node count".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// absl::StatusOr / std::expected.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like StatusOr.
  Result(T value) : payload_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {
    assert(!std::get<Status>(payload_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define VOTEOPT_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::voteopt::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace voteopt

#endif  // VOTEOPT_UTIL_STATUS_H_
