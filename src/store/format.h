// The voteopt on-disk container format (the persistence layer behind the
// graph and sketch stores):
//
//   [FileHeader]    magic "VOPTSTOR", format version, file kind,
//                   section count, FNV-1a checksum of the section table
//   [SectionTable]  per section: 16-byte name, absolute offset, byte size,
//                   FNV-1a checksum of the payload
//   [Payloads]      raw little-endian arrays, each 8-byte aligned
//
// Everything is little-endian; payloads are flat POD arrays so an mmap'd
// file can be consumed in place (offsets are 8-byte aligned and mmap bases
// are page aligned, so typed views are always correctly aligned). Readers
// verify the magic, version, kind, table bounds, and every checksum before
// handing out data: a truncated or corrupted file yields a clean Status,
// never UB.
#ifndef VOTEOPT_STORE_FORMAT_H_
#define VOTEOPT_STORE_FORMAT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace voteopt::store {

inline constexpr uint32_t kFormatVersion = 1;
inline constexpr char kMagic[8] = {'V', 'O', 'P', 'T', 'S', 'T', 'O', 'R'};
inline constexpr size_t kMaxSectionName = 15;  // + NUL inside 16 bytes

/// What a store file contains; part of the header so a sketch file can
/// never be mistaken for a graph file.
enum class FileKind : uint32_t {
  kGraph = 1,
  kSketch = 2,
  /// One node-range partition of a graph's in-CSR (sketch_ooc/block_store).
  kGraphBlock = 3,
  /// The manifest tying a set of kGraphBlock files together; written last,
  /// so its presence certifies a complete block set (crash consistency).
  kBlockManifest = 4,
  /// A dataset's committed mutation journal (dyn/journal.h): the ordered
  /// edge/opinion edits applied on top of the immutable base bundle.
  kMutationLog = 5,
};

/// FNV-1a 64-bit over a byte range (the format's checksum primitive).
uint64_t Fnv1a64(const void* data, size_t size);

/// One section to be written: a name (<= 15 chars) plus a borrowed byte
/// range that must stay alive until WriteSectionFile returns.
struct SectionRef {
  std::string name;
  const void* data = nullptr;
  uint64_t size = 0;
};

template <typename T>
SectionRef MakeSection(std::string name, std::span<const T> payload) {
  return {std::move(name), payload.data(), payload.size_bytes()};
}

/// Writes a complete store file. Purely a function of (kind, sections):
/// identical inputs produce identical bytes.
Status WriteSectionFile(const std::string& path, FileKind kind,
                        const std::vector<SectionRef>& sections);

/// A read-only byte source for a store file: either an mmap'd view (zero
/// copy; pages are faulted in lazily) or a heap copy (portable fallback,
/// also useful when the file may be replaced while loaded views live on).
class MappedFile {
 public:
  enum class Mode {
    kMmap,  // mmap when the platform supports it, else heap copy
    kCopy,  // always read into a heap buffer
  };

  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path,
                                                  Mode mode = Mode::kMmap);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when the bytes are an mmap view rather than a heap copy.
  bool mmapped() const { return mmapped_; }

 private:
  MappedFile() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mmapped_ = false;
  std::vector<uint8_t> heap_;  // backing storage in kCopy mode
};

/// Parses and validates a store file's header + section table + payload
/// checksums, then serves typed views into the (still mapped) payloads.
class SectionReader {
 public:
  /// Validates everything up front; returns Corruption/InvalidArgument on
  /// any malformed input. `file` is retained (shared) so views stay valid
  /// for the reader's lifetime and beyond via file().
  static Result<SectionReader> Parse(std::shared_ptr<const MappedFile> file,
                                     FileKind expected_kind);

  /// Raw bytes of a named section; NotFound when absent.
  Result<std::span<const uint8_t>> Raw(const std::string& name) const;

  /// The section reinterpreted as a flat array of T. Corruption when the
  /// byte size is not a multiple of sizeof(T).
  template <typename T>
  Result<std::span<const T>> Typed(const std::string& name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = Raw(name);
    if (!raw.ok()) return raw.status();
    if (raw->size() % sizeof(T) != 0) {
      return Status::Corruption("section '" + name +
                                "' size is not a multiple of element size");
    }
    return std::span<const T>(reinterpret_cast<const T*>(raw->data()),
                              raw->size() / sizeof(T));
  }

  /// The backing file, for pinning mmap-backed views (keep-alive).
  const std::shared_ptr<const MappedFile>& file() const { return file_; }

 private:
  struct Entry {
    std::string name;
    uint64_t offset;
    uint64_t size;
  };

  std::shared_ptr<const MappedFile> file_;
  std::vector<Entry> entries_;
};

}  // namespace voteopt::store

#endif  // VOTEOPT_STORE_FORMAT_H_
