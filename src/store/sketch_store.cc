#include "store/sketch_store.h"

#include <cstring>

namespace voteopt::store {

namespace {

struct SketchMetaDisk {
  uint32_t num_nodes;
  uint32_t horizon;
  uint32_t target;
  uint32_t reserved;
  uint64_t num_walks;
  uint64_t theta;
  uint64_t master_seed;
  uint64_t bundle_fingerprint;
};
static_assert(sizeof(SketchMetaDisk) == 48);

/// Structural validation of adopted frozen data. The format layer already
/// guarantees the bytes match their checksums; this guarantees the arrays
/// describe a well-formed walk set, so the hot query paths can index
/// without bounds checks.
Status ValidateFrozen(const core::WalkSet::Frozen& frozen, uint32_t num_nodes,
                      uint64_t num_walks) {
  if (frozen.offsets.size() != num_walks + 1 ||
      frozen.starts.size() != num_walks) {
    return Status::Corruption("walk offsets/starts disagree with meta");
  }
  if (frozen.lambda.size() != num_nodes ||
      frozen.start_weight.size() != num_nodes ||
      frozen.index_offsets.size() != num_nodes + size_t{1}) {
    return Status::Corruption("per-node sections disagree with meta");
  }
  if (num_walks > 0 && frozen.offsets.front() != 0) {
    return Status::Corruption("walk offsets do not start at 0");
  }
  if (frozen.offsets.back() != frozen.nodes.size()) {
    return Status::Corruption("walk offsets do not span the node array");
  }
  for (uint64_t w = 0; w < num_walks; ++w) {
    if (frozen.offsets[w] >= frozen.offsets[w + 1]) {
      return Status::Corruption("empty or non-monotone walk");
    }
  }
  for (const graph::NodeId v : frozen.nodes) {
    if (v >= num_nodes) return Status::Corruption("walk node out of range");
  }
  // Per-node recount (not just the total): the greedy loop divides by
  // Lambda(start) for every start that owns walks, so a permuted lambda
  // array would otherwise turn into inf/NaN gains at query time.
  std::vector<uint32_t> recount(num_nodes, 0);
  for (uint64_t w = 0; w < num_walks; ++w) {
    if (frozen.starts[w] != frozen.nodes[frozen.offsets[w]]) {
      return Status::Corruption("walk start disagrees with its node array");
    }
    ++recount[frozen.starts[w]];
  }
  for (uint32_t v = 0; v < num_nodes; ++v) {
    if (recount[v] != frozen.lambda[v]) {
      return Status::Corruption("lambda counts disagree with the walks");
    }
  }
  if (frozen.index_offsets.front() != 0 ||
      frozen.index_offsets.back() != frozen.index_entries.size()) {
    return Status::Corruption("index offsets do not span the posting array");
  }
  for (uint32_t v = 0; v < num_nodes; ++v) {
    if (frozen.index_offsets[v] > frozen.index_offsets[v + 1]) {
      return Status::Corruption("index offsets are not monotone");
    }
  }
  for (const core::WalkSet::Posting& posting : frozen.index_entries) {
    if (posting.walk >= num_walks) {
      return Status::Corruption("index posting references a bad walk");
    }
    if (posting.pos >=
        frozen.offsets[posting.walk + 1] - frozen.offsets[posting.walk]) {
      return Status::Corruption("index posting position out of range");
    }
  }
  return Status::OK();
}

}  // namespace

Status SaveSketch(const core::WalkSet& walks, const SketchMeta& meta,
                  const std::string& path) {
  const core::WalkSet::Frozen& frozen = walks.frozen();
  if (frozen.offsets.empty()) {
    return Status::FailedPrecondition(
        "WalkSet must be finalized before saving");
  }
  const SketchMetaDisk disk_meta{walks.num_nodes(), meta.horizon,
                                 meta.target,       0,
                                 walks.num_walks(), meta.theta,
                                 meta.master_seed,  meta.bundle_fingerprint};
  std::vector<SectionRef> sections;
  sections.push_back({"meta", &disk_meta, sizeof(disk_meta)});
  sections.push_back(MakeSection("offsets", frozen.offsets));
  sections.push_back(MakeSection("nodes", frozen.nodes));
  sections.push_back(MakeSection("starts", frozen.starts));
  sections.push_back(MakeSection("lambda", frozen.lambda));
  sections.push_back(MakeSection("start_weight", frozen.start_weight));
  sections.push_back(MakeSection("index_offsets", frozen.index_offsets));
  sections.push_back(
      MakeSection("index_entries", frozen.index_entries));
  return WriteSectionFile(path, FileKind::kSketch, sections);
}

Result<LoadedSketch> LoadSketch(const std::string& path,
                                SketchLoadMode mode) {
  auto file = MappedFile::Open(path, mode == SketchLoadMode::kMmap
                                         ? MappedFile::Mode::kMmap
                                         : MappedFile::Mode::kCopy);
  if (!file.ok()) return file.status();
  auto reader = SectionReader::Parse(*file, FileKind::kSketch);
  if (!reader.ok()) return reader.status();

  auto meta_raw = reader->Raw("meta");
  if (!meta_raw.ok()) return meta_raw.status();
  if (meta_raw->size() != sizeof(SketchMetaDisk)) {
    return Status::Corruption(path + ": bad sketch meta section size");
  }
  SketchMetaDisk disk_meta;
  std::memcpy(&disk_meta, meta_raw->data(), sizeof(disk_meta));

  core::WalkSet::Frozen frozen;
  auto offsets = reader->Typed<uint64_t>("offsets");
  if (!offsets.ok()) return offsets.status();
  frozen.offsets = *offsets;
  auto nodes = reader->Typed<graph::NodeId>("nodes");
  if (!nodes.ok()) return nodes.status();
  frozen.nodes = *nodes;
  auto starts = reader->Typed<graph::NodeId>("starts");
  if (!starts.ok()) return starts.status();
  frozen.starts = *starts;
  auto lambda = reader->Typed<uint32_t>("lambda");
  if (!lambda.ok()) return lambda.status();
  frozen.lambda = *lambda;
  auto start_weight = reader->Typed<double>("start_weight");
  if (!start_weight.ok()) return start_weight.status();
  frozen.start_weight = *start_weight;
  auto index_offsets = reader->Typed<uint64_t>("index_offsets");
  if (!index_offsets.ok()) return index_offsets.status();
  frozen.index_offsets = *index_offsets;
  auto index_entries = reader->Typed<core::WalkSet::Posting>("index_entries");
  if (!index_entries.ok()) return index_entries.status();
  frozen.index_entries = *index_entries;

  if (Status st =
          ValidateFrozen(frozen, disk_meta.num_nodes, disk_meta.num_walks);
      !st.ok()) {
    return Status::Corruption(path + ": " + st.message());
  }

  LoadedSketch loaded;
  // The WalkSet pins the mapping (or heap copy); views stay valid for its
  // whole lifetime even after the reader goes out of scope.
  loaded.walks = core::WalkSet::AdoptFrozen(disk_meta.num_nodes, frozen,
                                            reader->file());
  loaded.meta.theta = disk_meta.theta;
  loaded.meta.horizon = disk_meta.horizon;
  loaded.meta.target = disk_meta.target;
  loaded.meta.master_seed = disk_meta.master_seed;
  loaded.meta.bundle_fingerprint = disk_meta.bundle_fingerprint;
  return loaded;
}

}  // namespace voteopt::store
