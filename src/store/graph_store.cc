#include "store/graph_store.h"

#include <cstring>

namespace voteopt::store {

namespace {

struct GraphMetaDisk {
  uint32_t num_nodes;
  uint32_t reserved;
  uint64_t num_edges;
};
static_assert(sizeof(GraphMetaDisk) == 16);

template <typename T>
std::vector<T> CopySpan(std::span<const T> view) {
  return std::vector<T>(view.begin(), view.end());
}

}  // namespace

Status SaveGraph(const graph::Graph& graph, const std::string& path) {
  const GraphMetaDisk meta{graph.num_nodes(), 0, graph.num_edges()};
  std::vector<SectionRef> sections;
  sections.push_back({"meta", &meta, sizeof(meta)});
  sections.push_back(MakeSection("out_offsets", graph.OutOffsets()));
  sections.push_back(MakeSection("out_targets", graph.OutTargets()));
  sections.push_back(MakeSection("out_weights", graph.OutWeightsRaw()));
  sections.push_back(MakeSection("in_offsets", graph.InOffsets()));
  sections.push_back(MakeSection("in_sources", graph.InSources()));
  sections.push_back(MakeSection("in_weights", graph.InWeightsRaw()));
  return WriteSectionFile(path, FileKind::kGraph, sections);
}

Result<graph::Graph> LoadGraph(const std::string& path) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  auto reader = SectionReader::Parse(*file, FileKind::kGraph);
  if (!reader.ok()) return reader.status();

  auto meta_raw = reader->Raw("meta");
  if (!meta_raw.ok()) return meta_raw.status();
  if (meta_raw->size() != sizeof(GraphMetaDisk)) {
    return Status::Corruption(path + ": bad graph meta section size");
  }
  GraphMetaDisk meta;
  std::memcpy(&meta, meta_raw->data(), sizeof(meta));

  auto out_offsets = reader->Typed<uint64_t>("out_offsets");
  if (!out_offsets.ok()) return out_offsets.status();
  auto out_targets = reader->Typed<graph::NodeId>("out_targets");
  if (!out_targets.ok()) return out_targets.status();
  auto out_weights = reader->Typed<double>("out_weights");
  if (!out_weights.ok()) return out_weights.status();
  auto in_offsets = reader->Typed<uint64_t>("in_offsets");
  if (!in_offsets.ok()) return in_offsets.status();
  auto in_sources = reader->Typed<graph::NodeId>("in_sources");
  if (!in_sources.ok()) return in_sources.status();
  auto in_weights = reader->Typed<double>("in_weights");
  if (!in_weights.ok()) return in_weights.status();

  if (out_targets->size() != meta.num_edges ||
      in_sources->size() != meta.num_edges) {
    return Status::Corruption(path + ": edge sections disagree with meta");
  }
  auto built = graph::Graph::FromCsr(
      meta.num_nodes, CopySpan(*out_offsets), CopySpan(*out_targets),
      CopySpan(*out_weights), CopySpan(*in_offsets), CopySpan(*in_sources),
      CopySpan(*in_weights));
  if (!built.ok()) {
    return Status::Corruption(path + ": " + built.status().message());
  }
  return std::move(built).value();
}

}  // namespace voteopt::store
