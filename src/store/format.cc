#include "store/format.h"

#include <bit>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define VOTEOPT_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace voteopt::store {

namespace {

// On-disk structures. All fields are naturally aligned, so the in-memory
// layout matches the packed on-disk layout byte for byte.
struct FileHeaderDisk {
  char magic[8];
  uint32_t version;
  uint32_t kind;
  uint32_t num_sections;
  uint32_t reserved;
  uint64_t table_checksum;
};
static_assert(sizeof(FileHeaderDisk) == 32);

struct SectionEntryDisk {
  char name[16];  // NUL-padded
  uint64_t offset;
  uint64_t size;
  uint64_t checksum;
};
static_assert(sizeof(SectionEntryDisk) == 40);

constexpr uint32_t kMaxSections = 64;  // sanity bound, far above real use

uint64_t Align8(uint64_t offset) { return (offset + 7) & ~uint64_t{7}; }

Status CheckLittleEndian() {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::FailedPrecondition(
        "voteopt store files are little-endian; big-endian hosts are "
        "unsupported");
  }
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

Status WriteSectionFile(const std::string& path, FileKind kind,
                        const std::vector<SectionRef>& sections) {
  VOTEOPT_RETURN_IF_ERROR(CheckLittleEndian());
  if (sections.size() > kMaxSections) {
    return Status::InvalidArgument("too many sections");
  }
  for (const SectionRef& section : sections) {
    if (section.name.empty() || section.name.size() > kMaxSectionName) {
      return Status::InvalidArgument("bad section name '" + section.name +
                                     "'");
    }
    if (section.size > 0 && section.data == nullptr) {
      return Status::InvalidArgument("section '" + section.name +
                                     "' has size but no data");
    }
  }

  // Lay out the table first: payloads start 8-aligned after it.
  const uint64_t table_begin = sizeof(FileHeaderDisk);
  const uint64_t payload_begin =
      Align8(table_begin + sections.size() * sizeof(SectionEntryDisk));
  std::vector<SectionEntryDisk> table(sections.size());
  uint64_t offset = payload_begin;
  for (size_t i = 0; i < sections.size(); ++i) {
    SectionEntryDisk& entry = table[i];
    std::memset(entry.name, 0, sizeof(entry.name));
    std::memcpy(entry.name, sections[i].name.data(), sections[i].name.size());
    entry.offset = offset;
    entry.size = sections[i].size;
    entry.checksum = Fnv1a64(sections[i].data, sections[i].size);
    offset = Align8(offset + entry.size);
  }

  FileHeaderDisk header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.kind = static_cast<uint32_t>(kind);
  header.num_sections = static_cast<uint32_t>(sections.size());
  header.reserved = 0;
  header.table_checksum =
      Fnv1a64(table.data(), table.size() * sizeof(SectionEntryDisk));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(table.data()),
            static_cast<std::streamsize>(table.size() *
                                         sizeof(SectionEntryDisk)));
  uint64_t written = payload_begin;
  static constexpr char kPad[8] = {0};
  // The gap between the table and the first (8-aligned) payload.
  out.write(kPad, static_cast<std::streamsize>(
                      payload_begin - table_begin -
                      sections.size() * sizeof(SectionEntryDisk)));
  for (size_t i = 0; i < sections.size(); ++i) {
    out.write(static_cast<const char*>(sections[i].data),
              static_cast<std::streamsize>(sections[i].size));
    written += sections[i].size;
    const uint64_t padded = Align8(written);
    out.write(kPad, static_cast<std::streamsize>(padded - written));
    written = padded;
  }
  // Flush before the final check: a buffered tail that fails at close
  // (e.g. ENOSPC) must surface here, not be swallowed by the destructor.
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

MappedFile::~MappedFile() {
#ifdef VOTEOPT_STORE_HAVE_MMAP
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
}

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path,
                                                     Mode mode) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
#ifdef VOTEOPT_STORE_HAVE_MMAP
  if (mode == Mode::kMmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError("cannot open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError("cannot stat " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size > 0) {
      void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base == MAP_FAILED) {
        ::close(fd);
        return Status::IOError("mmap failed for " + path);
      }
      file->data_ = static_cast<const uint8_t*>(base);
      file->mmapped_ = true;
    }
    file->size_ = size;
    ::close(fd);  // the mapping keeps the inode alive
    return file;
  }
#else
  (void)mode;
#endif
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  file->heap_.resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(file->heap_.data()), size)) {
    return Status::IOError("read failed for " + path);
  }
  file->data_ = file->heap_.data();
  file->size_ = file->heap_.size();
  return file;
}

Result<SectionReader> SectionReader::Parse(
    std::shared_ptr<const MappedFile> file, FileKind expected_kind) {
  VOTEOPT_RETURN_IF_ERROR(CheckLittleEndian());
  if (file == nullptr) return Status::InvalidArgument("null file");
  const uint8_t* data = file->data();
  const size_t size = file->size();
  if (size < sizeof(FileHeaderDisk)) {
    return Status::Corruption("file too small for a store header");
  }
  FileHeaderDisk header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic: not a voteopt store file");
  }
  if (header.version != kFormatVersion) {
    return Status::Corruption("unsupported store format version " +
                              std::to_string(header.version));
  }
  if (header.kind != static_cast<uint32_t>(expected_kind)) {
    return Status::InvalidArgument(
        "store file kind mismatch (expected " +
        std::to_string(static_cast<uint32_t>(expected_kind)) + ", found " +
        std::to_string(header.kind) + ")");
  }
  if (header.num_sections > kMaxSections) {
    return Status::Corruption("implausible section count");
  }
  const uint64_t table_bytes =
      uint64_t{header.num_sections} * sizeof(SectionEntryDisk);
  if (sizeof(FileHeaderDisk) + table_bytes > size) {
    return Status::Corruption("truncated section table");
  }
  const uint8_t* table_base = data + sizeof(FileHeaderDisk);
  if (Fnv1a64(table_base, table_bytes) != header.table_checksum) {
    return Status::Corruption("section table checksum mismatch");
  }

  SectionReader reader;
  reader.file_ = std::move(file);
  reader.entries_.reserve(header.num_sections);
  for (uint32_t i = 0; i < header.num_sections; ++i) {
    SectionEntryDisk entry;
    std::memcpy(&entry, table_base + i * sizeof(SectionEntryDisk),
                sizeof(entry));
    if (entry.name[sizeof(entry.name) - 1] != '\0') {
      return Status::Corruption("unterminated section name");
    }
    const std::string name(entry.name);
    if (entry.offset % 8 != 0) {
      return Status::Corruption("section '" + name + "' is misaligned");
    }
    if (entry.offset > size || entry.size > size - entry.offset) {
      return Status::Corruption("section '" + name +
                                "' extends past end of file");
    }
    if (Fnv1a64(data + entry.offset, entry.size) != entry.checksum) {
      return Status::Corruption("section '" + name + "' checksum mismatch");
    }
    reader.entries_.push_back({name, entry.offset, entry.size});
  }
  return reader;
}

Result<std::span<const uint8_t>> SectionReader::Raw(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return std::span<const uint8_t>(file_->data() + entry.offset,
                                      entry.size);
    }
  }
  return Status::NotFound("section '" + name + "' not present");
}

}  // namespace voteopt::store
