// Binary persistence for CSR graphs in the voteopt store container
// (store/format.h): a "meta" section with the node/edge counts plus the six
// raw CSR arrays. Saving is a pure function of the in-memory Graph, so
// save -> load -> save round-trips byte-identically; loads validate the
// shape via Graph::FromCsr and every checksum via the section reader.
#ifndef VOTEOPT_STORE_GRAPH_STORE_H_
#define VOTEOPT_STORE_GRAPH_STORE_H_

#include <string>

#include "graph/graph.h"
#include "store/format.h"
#include "util/status.h"

namespace voteopt::store {

/// Conventional file extension for graph store files.
inline constexpr char kGraphFileSuffix[] = ".graphbin";

Status SaveGraph(const graph::Graph& graph, const std::string& path);

/// Loads a graph store file. The CSR arrays are copied out of the (briefly
/// mapped) file — a Graph owns its storage; only sketches support the
/// zero-copy path.
Result<graph::Graph> LoadGraph(const std::string& path);

}  // namespace voteopt::store

#endif  // VOTEOPT_STORE_GRAPH_STORE_H_
