// Binary persistence for WalkSet sketch sets (the RS method's expensive
// artifact, paper § VI) in the voteopt store container: the frozen walk
// data — nodes, offsets, starts, per-node walk counts / score weights, and
// the inverted index — plus a meta section recording how the sketches were
// built (theta, horizon, target candidate, master seed).
//
// This is the offline/online split: BuildSketchSet once, SaveSketch, then
// any number of query processes LoadSketch and answer top-k / min-seed /
// evaluation queries. In kMmap mode the loaded WalkSet's frozen spans point
// straight into the mapping (no copy; pages fault in on first use); only
// the O(theta) dynamic state is materialized, by WalkSet::ResetValues.
//
// Saving is a pure function of the frozen data, so save -> load -> save
// round-trips byte-identically. Loads validate checksums (format layer)
// and full structural consistency (walk offsets monotone, ids in range,
// index sane) before adopting any bytes.
#ifndef VOTEOPT_STORE_SKETCH_STORE_H_
#define VOTEOPT_STORE_SKETCH_STORE_H_

#include <memory>
#include <string>

#include "core/walk_set.h"
#include "store/format.h"
#include "util/status.h"

namespace voteopt::store {

/// Conventional file extension for sketch store files (also the dataset
/// bundle member name: <prefix>.sketch).
inline constexpr char kSketchFileSuffix[] = ".sketch";

/// Provenance of a sketch set, persisted alongside the walks so an online
/// service can validate compatibility (the walks bake in the horizon and
/// the target campaign's stubbornness) without re-deriving anything.
struct SketchMeta {
  uint64_t theta = 0;        // number of sampled walks
  uint32_t horizon = 0;      // t the walks were generated for
  uint32_t target = 0;       // candidate whose campaign drove the walks
  uint64_t master_seed = 0;  // sharded-builder seed (0 = unknown/serial)
  /// Fingerprint of the problem instance (graph + campaign state) the
  /// walks were generated from — see api::DatasetRegistry, which refuses
  /// to serve a sketch against a bundle with a different fingerprint. A
  /// regenerated bundle with the same node count would otherwise silently
  /// produce wrong answers. 0 = unknown (no check).
  uint64_t bundle_fingerprint = 0;
};

/// Persists a finalized WalkSet. Only the frozen layer is written; the
/// dynamic truncation state is derived again on load.
Status SaveSketch(const core::WalkSet& walks, const SketchMeta& meta,
                  const std::string& path);

enum class SketchLoadMode {
  kMmap,  // zero-copy: frozen spans alias the mapping
  kCopy,  // heap-backed: safe if the file is replaced while in use
};

struct LoadedSketch {
  /// Frozen and adopted; call ResetValues(initial_opinions) before use.
  std::unique_ptr<core::WalkSet> walks;
  SketchMeta meta;
};

Result<LoadedSketch> LoadSketch(const std::string& path,
                                SketchLoadMode mode = SketchLoadMode::kMmap);

}  // namespace voteopt::store

#endif  // VOTEOPT_STORE_SKETCH_STORE_H_
