// obs::Registry — the dependency-free metrics substrate of the serving
// stack (ISSUE 7 / ROADMAP item 1: no latency SLO or admission-control
// work is possible without measurement). Three instrument kinds:
//
//  * Counter   — monotonic uint64, lock-free relaxed atomics on the hot
//                path (one fetch_add per bump);
//  * Gauge     — a settable double (last-write-wins), same atomics;
//  * Histogram — fixed upper-bound buckets (cumulative, Prometheus
//                semantics) plus running sum/count; one relaxed
//                fetch_add per observation.
//
// Instruments live in named FAMILIES, each family holding one series per
// label set (e.g. voteopt_queries_total{op="topk",dataset="default"}).
// Looking an instrument up takes a shared lock and a map probe — callers
// on a hot path should resolve the pointer once and keep it: instrument
// pointers are STABLE for the registry's lifetime (series are never
// erased), so a cached Counter* may be bumped forever without touching
// the registry again.
//
// Snapshots render two ways, both deterministic (name-sorted):
//  * ToPrometheusText() — the text exposition format (# HELP / # TYPE /
//    series lines), what voteopt_serve's --metrics_out dumps;
//  * Snapshot() — a flat name{labels} -> value map, what the protocol's
//    `stats` verb returns (histograms flatten to _count/_sum/_bucket
//    entries).
//
// Everything here is an ADDITIVE side channel: metrics never feed back
// into query execution, so answers stay bit-identical with metrics on,
// off, or absent (the determinism ledger in docs/ARCHITECTURE.md).
// Timing sources must be util/timer.h's WallTimer (steady_clock) — never
// system_clock, which steps under NTP.
#ifndef VOTEOPT_OBS_METRICS_H_
#define VOTEOPT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace voteopt::obs {

/// One series' label set, e.g. {{"op", "topk"}, {"rule", "plurality"}}.
/// Stored name-sorted so {a=1,b=2} and {b=2,a=1} are the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. All methods are safe to call from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double gauge.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus cumulative-bucket semantics:
/// bucket i counts observations <= bounds[i], plus an implicit +Inf
/// bucket. Bounds are fixed at construction; Observe is one relaxed
/// fetch_add per call (plus sum/count), never a lock.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  /// Latency buckets for query handling times, 100us .. 10s (seconds).
  static const std::vector<double>& LatencyBoundsSeconds();

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  const std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class Registry {
 public:
  /// Looks an instrument up by (family, labels), creating it on first
  /// use. The returned pointer is stable for the registry's lifetime.
  /// `help` is recorded on the first call for a family (Prometheus
  /// # HELP); later calls may pass "".
  Counter* GetCounter(const std::string& name, Labels labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, Labels labels = {},
                  const std::string& help = "");
  /// Histograms of one family share the first caller's bucket bounds.
  /// Empty `upper_bounds` means Histogram::LatencyBoundsSeconds().
  Histogram* GetHistogram(const std::string& name, Labels labels = {},
                          const std::string& help = "",
                          const std::vector<double>& upper_bounds = {});

  /// Prometheus text exposition format, families name-sorted, series
  /// label-sorted within a family — byte-deterministic for fixed values.
  std::string ToPrometheusText() const;

  /// Flat point-in-time snapshot: "name{labels}" -> value, name-sorted.
  /// Histograms flatten to name_count, name_sum, and cumulative
  /// name_bucket{le="..."} entries — the `stats` verb's payload.
  std::map<std::string, double> Snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> bounds;  // histograms only
    /// Keyed by the canonical label rendering; std::map iterates sorted,
    /// which is what makes snapshots deterministic.
    std::map<std::string, Series> series;
  };

  Series* GetSeries(const std::string& name, Labels&& labels, Kind kind,
                    const std::string& help,
                    const std::vector<double>& bounds);

  mutable SharedMutex mutex_;
  std::map<std::string, Family> families_ GUARDED_BY(mutex_);
};

/// Canonical label rendering: {op="topk",rule="plurality"} — "" for no
/// labels. Label values are escaped per the Prometheus text format.
std::string RenderLabels(const Labels& labels);

}  // namespace voteopt::obs

#endif  // VOTEOPT_OBS_METRICS_H_
