#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace voteopt::obs {

namespace {

/// Minimal JSON string escaping for the slow-query log (op/dataset/id are
/// server-controlled or echoed client bytes).
void AppendEscaped(std::ostringstream* out, const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  *out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out << "\\\""; break;
      case '\\': *out << "\\\\"; break;
      case '\n': *out << "\\n"; break;
      case '\t': *out << "\\t"; break;
      case '\r': *out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          *out << c;
        }
    }
  }
  *out << '"';
}

}  // namespace

void MaybeLogSlowQuery(const std::string& op, const std::string& dataset,
                       const std::string& id, double total_millis,
                       double threshold_millis, const Trace& trace) {
  if (threshold_millis < 0 || total_millis < threshold_millis) return;
  std::ostringstream out;
  out.precision(17);
  out << "{\"slow_query\": true, \"op\": ";
  AppendEscaped(&out, op);
  if (!dataset.empty()) {
    out << ", \"dataset\": ";
    AppendEscaped(&out, dataset);
  }
  if (!id.empty()) {
    out << ", \"id\": ";
    AppendEscaped(&out, id);
  }
  out << ", \"millis\": " << total_millis
      << ", \"threshold_millis\": " << threshold_millis << ", \"stages\": {";
  bool first = true;
  for (const auto& [name, value] : trace.entries()) {
    out << (first ? "" : ", ");
    AppendEscaped(&out, name);
    out << ": " << value;
    first = false;
  }
  out << "}}\n";
  // One write call per line: concurrent workers must not interleave
  // fragments, and stderr is unbuffered by default.
  const std::string line = out.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace voteopt::obs
