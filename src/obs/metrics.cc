#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace voteopt::obs {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Number rendering shared by the text exposition and the snapshot keys:
/// integers print without a trailing ".0" (what Prometheus scrapers and
/// the golden codec tests expect), +Inf prints as "+Inf".
std::string RenderNumber(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // Branchless-enough: bounds are few (tens) and sorted; a linear scan
  // beats binary search at this size and keeps the path trivially
  // predictable.
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::LatencyBoundsSeconds() {
  static const std::vector<double> kBounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
  return kBounds;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Series* Registry::GetSeries(const std::string& name, Labels&& labels,
                                      Kind kind, const std::string& help,
                                      const std::vector<double>& bounds) {
  std::sort(labels.begin(), labels.end());
  const std::string key = RenderLabels(labels);
  {
    // Fast path: the family and series already exist (every call after
    // the first for a given instrument) — a shared lock and two probes.
    ReaderMutexLock lock(&mutex_);
    auto family = families_.find(name);
    if (family != families_.end()) {
      auto series = family->second.series.find(key);
      if (series != family->second.series.end()) return &series->second;
    }
  }
  WriterMutexLock lock(&mutex_);
  Family& family = families_[name];
  if (family.series.empty()) {
    family.kind = kind;
    family.help = help;
    family.bounds =
        bounds.empty() ? Histogram::LatencyBoundsSeconds() : bounds;
  } else if (!help.empty() && family.help.empty()) {
    family.help = help;
  }
  Series& series = family.series[key];  // may already exist (lost race)
  if (series.counter == nullptr && series.gauge == nullptr &&
      series.histogram == nullptr) {
    series.labels = std::move(labels);
    switch (family.kind) {
      case Kind::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        series.histogram = std::make_unique<Histogram>(family.bounds);
        break;
    }
  }
  return &series;
}

Counter* Registry::GetCounter(const std::string& name, Labels labels,
                              const std::string& help) {
  return GetSeries(name, std::move(labels), Kind::kCounter, help, {})
      ->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, Labels labels,
                          const std::string& help) {
  return GetSeries(name, std::move(labels), Kind::kGauge, help, {})
      ->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name, Labels labels,
                                  const std::string& help,
                                  const std::vector<double>& upper_bounds) {
  return GetSeries(name, std::move(labels), Kind::kHistogram, help,
                   upper_bounds)
      ->histogram.get();
}

std::string Registry::ToPrometheusText() const {
  ReaderMutexLock lock(&mutex_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out << "# HELP " << name << " " << family.help << "\n";
    }
    out << "# TYPE " << name << " "
        << (family.kind == Kind::kCounter
                ? "counter"
                : family.kind == Kind::kGauge ? "gauge" : "histogram")
        << "\n";
    for (const auto& [key, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out << name << key << " " << series.counter->Value() << "\n";
          break;
        case Kind::kGauge:
          out << name << key << " " << RenderNumber(series.gauge->Value())
              << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          // Prometheus buckets are cumulative and always end at +Inf;
          // _bucket carries the extra `le` label next to the series' own.
          uint64_t cumulative = 0;
          for (size_t i = 0; i <= h.bounds().size(); ++i) {
            cumulative += h.BucketCount(i);
            Labels with_le = series.labels;
            with_le.emplace_back(
                "le", i < h.bounds().size() ? RenderNumber(h.bounds()[i])
                                            : "+Inf");
            out << name << "_bucket" << RenderLabels(with_le) << " "
                << cumulative << "\n";
          }
          out << name << "_sum" << key << " " << RenderNumber(h.Sum())
              << "\n";
          out << name << "_count" << key << " " << h.Count() << "\n";
          break;
        }
      }
    }
  }
  return out.str();
}

std::map<std::string, double> Registry::Snapshot() const {
  ReaderMutexLock lock(&mutex_);
  std::map<std::string, double> snapshot;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          snapshot[name + key] =
              static_cast<double>(series.counter->Value());
          break;
        case Kind::kGauge:
          snapshot[name + key] = series.gauge->Value();
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          snapshot[name + "_count" + key] =
              static_cast<double>(h.Count());
          snapshot[name + "_sum" + key] = h.Sum();
          uint64_t cumulative = 0;
          for (size_t i = 0; i <= h.bounds().size(); ++i) {
            cumulative += h.BucketCount(i);
            Labels with_le = series.labels;
            with_le.emplace_back(
                "le", i < h.bounds().size() ? RenderNumber(h.bounds()[i])
                                            : "+Inf");
            snapshot[name + "_bucket" + RenderLabels(with_le)] =
                static_cast<double>(cumulative);
          }
          break;
        }
      }
    }
  }
  return snapshot;
}

}  // namespace voteopt::obs
