// obs::Trace — the per-query stage-span recorder. One Trace rides along
// one request through the serving stack (parse → dispatch → state-lease →
// selection → evaluation → serialize); each stage opens a Span (RAII) or
// reports a precomputed duration, and algorithm work counts (gain
// evaluations, cache hits, sketch resets) land in the same record, so
// stage timings and selector work-counts share ONE schema — the
// `Response::diagnostics` map, serialized only when the request opted in
// via its `trace` field.
//
// Key vocabulary (docs/OBSERVABILITY.md has the full table):
//   stage.<name>_ms  — wall milliseconds spent in a stage (WallTimer,
//                      steady_clock — the one obs:: clock source)
//   work.<name>      — work counts of the answering algorithm
//
// A disabled Trace is inert: Span construction does not read the clock
// and Add is a no-op, so the untraced hot path pays one branch per stage.
// Trace is NOT thread-safe — it is per-query state, like QueryState, and
// a query runs on one worker.
//
// The slow-query log rides on the same spans: MaybeLogSlowQuery renders
// one structured JSON line to stderr when a query's handling time crosses
// the threshold, carrying the op/dataset/id and every recorded entry.
#ifndef VOTEOPT_OBS_TRACE_H_
#define VOTEOPT_OBS_TRACE_H_

#include <map>
#include <string>

#include "util/timer.h"

namespace voteopt::obs {

class Trace {
 public:
  /// A disabled trace (the default) records nothing and never reads the
  /// clock.
  explicit Trace(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// RAII stage span: measures from construction to destruction (or
  /// Stop(), whichever is first) and adds a `stage.<name>_ms` entry.
  class Span {
   public:
    Span(Trace* trace, const char* stage)
        : trace_(trace->enabled_ ? trace : nullptr), stage_(stage) {
      if (trace_ != nullptr) timer_.Restart();
    }
    ~Span() { Stop(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Ends the span early (idempotent).
    void Stop() {
      if (trace_ == nullptr) return;
      trace_->AddStageMillis(stage_, timer_.Millis());
      trace_ = nullptr;
    }

   private:
    Trace* trace_;
    const char* stage_;
    WallTimer timer_;
  };

  Span StartSpan(const char* stage) { return Span(this, stage); }

  /// Adds wall milliseconds to `stage.<stage>_ms` (accumulating: a stage
  /// entered twice — e.g. evaluation setup and final scoring — reports
  /// the total).
  void AddStageMillis(const char* stage, double millis) {
    if (!enabled_) return;
    entries_[std::string("stage.") + stage + "_ms"] += millis;
  }

  /// Adds to a `work.<name>` counter entry.
  void AddWork(const char* name, double count) {
    if (!enabled_) return;
    entries_[std::string("work.") + name] += count;
  }

  /// Everything recorded so far, schema-keyed and name-sorted — ready to
  /// merge into Response::diagnostics.
  const std::map<std::string, double>& entries() const { return entries_; }

 private:
  bool enabled_;
  std::map<std::string, double> entries_;
};

/// Renders one structured slow-query line to stderr when `total_millis >=
/// threshold_millis` (thresholds < 0 disable the log). The line is a
/// single JSON object:
///   {"slow_query": true, "op": "topk", "dataset": "d", "id": "q1",
///    "millis": 18.3, "threshold_millis": 5, "stages": {"stage.x_ms": ..}}
/// Emission is atomic per line (one write call) so concurrent workers
/// never interleave fragments.
void MaybeLogSlowQuery(const std::string& op, const std::string& dataset,
                       const std::string& id, double total_millis,
                       double threshold_millis, const Trace& trace);

}  // namespace voteopt::obs

#endif  // VOTEOPT_OBS_TRACE_H_
