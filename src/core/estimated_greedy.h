// Greedy seed selection over estimated opinions (the selection loops of
// Algorithm 4 — random walks — and Algorithm 5 — sketches).
//
// Both methods reduce to the same engine: a WalkSet provides per-start
// estimated opinions b-hat under Post-Generation Truncation, and the
// estimated score is a per-start weighted sum,
//
//   F-hat = sum_{v : lambda_v > 0} weight_v * contribution(b-hat_v)
//
// with weight_v = 1 (RW, walks from every node) or n * lambda_v / theta
// (RS, Eq. 35/42/47). Marginal gains of all candidate seeds are computed
// with one scan over the inverted walk index per iteration; selecting a
// seed truncates the walks that contain it (paper § V-B).
//
// Competitor opinions at the horizon come exactly from the ScoreEvaluator
// (the paper computes them by direct matrix-vector multiplication, adding
// O((r-1) t m) once).
#ifndef VOTEOPT_CORE_ESTIMATED_GREEDY_H_
#define VOTEOPT_CORE_ESTIMATED_GREEDY_H_

#include <functional>

#include "core/problem.h"
#include "core/walk_set.h"

namespace voteopt::core {

struct EstimatedGreedyOptions {
  /// Invoked after every seed selection with the current iteration number
  /// (1-based) and the walk set; used by the gamma* estimation heuristic
  /// (§ V-C) to observe estimated opinions along the greedy path.
  std::function<void(uint32_t, const WalkSet&)> on_iteration;
  /// Compute the exact score of the selected seeds at the end (one extra
  /// propagation). Disable for inner helper runs.
  bool evaluate_exact = true;
};

/// Runs k greedy iterations on `walks` (which must be finalized and is
/// consumed: its truncation state reflects the selected seeds afterwards).
SelectionResult EstimatedGreedySelect(
    const ScoreEvaluator& evaluator, uint32_t k, WalkSet* walks,
    const EstimatedGreedyOptions& options = EstimatedGreedyOptions());

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_ESTIMATED_GREEDY_H_
