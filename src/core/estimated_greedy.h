// Greedy seed selection over estimated opinions (the selection loops of
// Algorithm 4 — random walks — and Algorithm 5 — sketches).
//
// Both methods reduce to the same engine: a WalkSet provides per-start
// estimated opinions b-hat under Post-Generation Truncation, and the
// estimated score is a per-start weighted sum,
//
//   F-hat = sum_{v : lambda_v > 0} weight_v * contribution(b-hat_v)
//
// with weight_v = 1 (RW, walks from every node) or n * lambda_v / theta
// (RS, Eq. 35/42/47). Selecting a seed truncates the walks that contain it
// (paper § V-B).
//
// Per-iteration evaluation strategy:
//  * Cumulative score — marginal gains are submodular (truncation only
//    raises walk values toward 1 and shortens effective lengths), so the
//    default path is CELF lazy evaluation (Leskovec et al.): a max-heap of
//    stale upper bounds, re-evaluating only the heap top until it is fresh.
//    Ties break on (gain, node id), which makes the selected sequence
//    bit-identical to the exhaustive one-scan-per-iteration path (kept
//    behind `lazy = false` as the oracle/bench baseline).
//  * Rank-sensitive scores and Copeland — gains are not submodular, so
//    every iteration scans all candidates; the scan parallelizes over
//    contiguous node-id chunks on a util::ThreadPool with per-chunk
//    DeltaAccumulator scratch. The reduction keeps the (gain, node id)
//    ordering, so the result is independent of the thread count.
//
// Competitor opinions at the horizon come exactly from the ScoreEvaluator
// (the paper computes them by direct matrix-vector multiplication, adding
// O((r-1) t m) once).
#ifndef VOTEOPT_CORE_ESTIMATED_GREEDY_H_
#define VOTEOPT_CORE_ESTIMATED_GREEDY_H_

#include <functional>

#include "core/problem.h"
#include "core/walk_set.h"

namespace voteopt::core {

struct EstimatedGreedyOptions {
  /// Invoked after every seed selection with the current iteration number
  /// (1-based) and the walk set; used by the gamma* estimation heuristic
  /// (§ V-C) to observe estimated opinions along the greedy path.
  std::function<void(uint32_t, const WalkSet&)> on_iteration;
  /// Invoked after every seed selection with the 1-based prefix length, the
  /// selected seed prefix (in selection order), and the walk set. Returning
  /// true stops the selection early with exactly that prefix — the hook
  /// behind the single-pass min-seed fast path (min_seed.h), which checks
  /// the winning criterion per prefix instead of re-selecting per budget.
  std::function<bool(uint32_t, const std::vector<graph::NodeId>&,
                     const WalkSet&)>
      on_prefix;
  /// Compute the exact score of the selected seeds at the end (one extra
  /// propagation). Disable for inner helper runs.
  bool evaluate_exact = true;
  /// CELF lazy evaluation for the cumulative score (bit-identical seeds to
  /// the exhaustive scan; typically far fewer gain evaluations). Ignored by
  /// the rank-sensitive / Copeland paths, which are not submodular.
  bool lazy = true;
  /// Worker threads for the per-iteration gain scan of the rank-sensitive /
  /// Copeland paths (1 = serial, 0 = one per hardware thread). The chunked
  /// scan and its (gain, node id) reduction are deterministic: every value
  /// returns the same seeds. Also parallelizes the CELF initial scan.
  uint32_t num_threads = 1;
};

/// Runs k greedy iterations on `walks` (which must be finalized and is
/// consumed: its truncation state reflects the selected seeds afterwards).
/// Diagnostics include "estimated_score", "walks", "walk_memory_mb", and
/// "gain_evaluations" (full marginal-gain computations performed — the
/// CELF-vs-exhaustive work metric).
SelectionResult EstimatedGreedySelect(
    const ScoreEvaluator& evaluator, uint32_t k, WalkSet* walks,
    const EstimatedGreedyOptions& options = EstimatedGreedyOptions());

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_ESTIMATED_GREEDY_H_
