// Problem 1 (FJ-Vote) instance definition and the common result type all
// seed-selection algorithms return.
#ifndef VOTEOPT_CORE_PROBLEM_H_
#define VOTEOPT_CORE_PROBLEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "opinion/opinion_state.h"
#include "voting/evaluator.h"
#include "voting/scores.h"

namespace voteopt::core {

using voting::ScoreEvaluator;
using voting::ScoreSpec;

/// An FJ-Vote instance: graph + campaigns + target + horizon + budget +
/// score. The referenced graph/state must outlive the problem.
struct FJVoteProblem {
  const graph::Graph* graph = nullptr;
  const opinion::MultiCampaignState* state = nullptr;
  opinion::CandidateId target = 0;
  uint32_t horizon = 0;
  uint32_t k = 1;
  ScoreSpec spec;

  Status Validate() const;
};

/// Output of a seed-selection algorithm.
struct SelectionResult {
  std::vector<graph::NodeId> seeds;
  /// Exact score F(B(t)[seeds], c_q) as verified by the evaluator (not the
  /// algorithm's internal estimate).
  double score = 0.0;
  /// Wall-clock seconds spent selecting (excludes evaluator precompute).
  double seconds = 0.0;
  /// Algorithm-specific diagnostics (e.g. "walks", "theta",
  /// "sandwich_ratio", "celf_evaluations").
  std::map<std::string, double> diagnostics;
};

/// Any seed-selection strategy: evaluator + budget -> result.
using SeedSelector =
    std::function<SelectionResult(const ScoreEvaluator&, uint32_t k)>;

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_PROBLEM_H_
