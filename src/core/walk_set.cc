#include "core/walk_set.h"

#include <cassert>

namespace voteopt::core {

WalkSet::WalkSet(uint32_t num_nodes)
    : num_nodes_(num_nodes),
      lambda_(num_nodes, 0),
      est_sum_(num_nodes, 0.0),
      start_weight_(num_nodes, 1.0) {
  offsets_.push_back(0);
}

void WalkSet::AddWalk(const std::vector<graph::NodeId>& walk_nodes) {
  assert(!finalized_);
  assert(!walk_nodes.empty());
  nodes_.insert(nodes_.end(), walk_nodes.begin(), walk_nodes.end());
  offsets_.push_back(nodes_.size());
  starts_.push_back(walk_nodes.front());
  eff_len_.push_back(static_cast<uint32_t>(walk_nodes.size()));
  ++lambda_[walk_nodes.front()];
}

void WalkSet::AddWalks(const WalkBuffer& buffer) {
  assert(!finalized_);
  nodes_.insert(nodes_.end(), buffer.nodes.begin(), buffer.nodes.end());
  uint64_t pos = offsets_.back();
  for (const uint32_t len : buffer.lengths) {
    assert(len >= 1);
    const graph::NodeId start = nodes_[pos];
    pos += len;
    offsets_.push_back(pos);
    starts_.push_back(start);
    eff_len_.push_back(len);
    ++lambda_[start];
  }
  assert(pos == nodes_.size());
}

void WalkSet::Finalize(const std::vector<double>& initial_opinions) {
  assert(!finalized_);
  finalized_ = true;
  const size_t walks = starts_.size();
  values_.resize(walks);
  for (size_t w = 0; w < walks; ++w) {
    const graph::NodeId end = nodes_[offsets_[w + 1] - 1];
    values_[w] = initial_opinions[end];
    est_sum_[starts_[w]] += values_[w];
  }

  // Inverted index with first-occurrence dedup per walk: counting pass,
  // then fill. `last_seen[v]` stamps the walk that last recorded v.
  constexpr uint32_t kNone = static_cast<uint32_t>(-1);
  std::vector<uint32_t> last_seen(num_nodes_, kNone);
  std::vector<uint64_t> counts(num_nodes_ + 1, 0);
  for (uint32_t w = 0; w < walks; ++w) {
    for (uint64_t i = offsets_[w]; i < offsets_[w + 1]; ++i) {
      const graph::NodeId v = nodes_[i];
      if (last_seen[v] == w) continue;
      last_seen[v] = w;
      ++counts[v + 1];
    }
  }
  index_offsets_.assign(num_nodes_ + 1, 0);
  for (uint32_t v = 0; v < num_nodes_; ++v) {
    index_offsets_[v + 1] = index_offsets_[v] + counts[v + 1];
  }
  index_entries_.resize(index_offsets_[num_nodes_]);
  std::vector<uint64_t> cursor(index_offsets_.begin(),
                               index_offsets_.end() - 1);
  std::fill(last_seen.begin(), last_seen.end(), kNone);
  for (uint32_t w = 0; w < walks; ++w) {
    for (uint64_t i = offsets_[w]; i < offsets_[w + 1]; ++i) {
      const graph::NodeId v = nodes_[i];
      if (last_seen[v] == w) continue;
      last_seen[v] = w;
      index_entries_[cursor[v]++] = {
          w, static_cast<uint32_t>(i - offsets_[w])};
    }
  }
}

size_t WalkSet::memory_bytes() const {
  return nodes_.size() * sizeof(graph::NodeId) +
         offsets_.size() * sizeof(uint64_t) +
         starts_.size() * sizeof(graph::NodeId) +
         eff_len_.size() * sizeof(uint32_t) + values_.size() * sizeof(double) +
         lambda_.size() * sizeof(uint32_t) + est_sum_.size() * sizeof(double) +
         start_weight_.size() * sizeof(double) +
         index_offsets_.size() * sizeof(uint64_t) +
         index_entries_.size() * sizeof(Posting);
}

void WalkSet::Truncate(
    graph::NodeId w, const std::function<void(uint32_t, double)>& on_change) {
  assert(finalized_);
  for (const Posting& posting : PostingsOf(w)) {
    if (posting.pos >= eff_len_[posting.walk]) continue;  // already cut
    const double old_value = values_[posting.walk];
    eff_len_[posting.walk] = posting.pos + 1;
    if (old_value < 1.0) {
      values_[posting.walk] = 1.0;
      est_sum_[starts_[posting.walk]] += 1.0 - old_value;
      on_change(posting.walk, old_value);
    }
  }
}

}  // namespace voteopt::core
