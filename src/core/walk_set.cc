#include "core/walk_set.h"

#include <cassert>

namespace voteopt::core {

WalkSet::WalkSet(uint32_t num_nodes)
    : num_nodes_(num_nodes),
      lambda_(num_nodes, 0),
      start_weight_(num_nodes, 1.0) {
  offsets_.push_back(0);
}

WalkSet::WalkSet(const WalkSet& other)
    : num_nodes_(other.num_nodes_),
      finalized_(other.finalized_),
      adopted_(other.adopted_),
      nodes_(other.nodes_),
      offsets_(other.offsets_),
      starts_(other.starts_),
      lambda_(other.lambda_),
      start_weight_(other.start_weight_),
      index_offsets_(other.index_offsets_),
      index_entries_(other.index_entries_),
      keep_alive_(other.keep_alive_),
      eff_len_(other.eff_len_),
      values_(other.values_),
      est_sum_(other.est_sum_) {
  if (adopted_) {
    frozen_ = other.frozen_;  // shared immutable storage, pinned above
  } else if (finalized_) {
    FreezeOwned();  // re-point the views at this copy's vectors
  }
}

WalkSet& WalkSet::operator=(const WalkSet& other) {
  if (this != &other) *this = WalkSet(other);  // copy, then safe move
  return *this;
}

std::unique_ptr<WalkSet> WalkSet::AdoptFrozen(
    uint32_t num_nodes, const Frozen& frozen,
    std::shared_ptr<const void> keep_alive) {
  assert(frozen.offsets.size() == frozen.starts.size() + 1);
  assert(frozen.lambda.size() == num_nodes);
  assert(frozen.start_weight.size() == num_nodes);
  assert(frozen.index_offsets.size() == num_nodes + size_t{1});
  auto set = std::unique_ptr<WalkSet>(new WalkSet(num_nodes));
  // Drop the owned build-path storage allocated by the constructor; every
  // accessor routes through the frozen views from here on.
  set->offsets_.clear();
  set->offsets_.shrink_to_fit();
  set->lambda_.clear();
  set->lambda_.shrink_to_fit();
  set->start_weight_.clear();
  set->start_weight_.shrink_to_fit();
  set->frozen_ = frozen;
  set->keep_alive_ = std::move(keep_alive);
  set->finalized_ = true;
  set->adopted_ = true;
  return set;
}

std::unique_ptr<WalkSet> WalkSet::ShareFrozen(
    std::shared_ptr<const void> keep_alive) const {
  assert(finalized_);
  assert((adopted_ || keep_alive != nullptr) &&
         "owned frozen data must be pinned by the caller");
  return AdoptFrozen(num_nodes_, frozen_,
                     adopted_ ? keep_alive_ : std::move(keep_alive));
}

void WalkSet::AddWalk(const std::vector<graph::NodeId>& walk_nodes) {
  assert(!finalized_);
  assert(!walk_nodes.empty());
  nodes_.insert(nodes_.end(), walk_nodes.begin(), walk_nodes.end());
  offsets_.push_back(nodes_.size());
  starts_.push_back(walk_nodes.front());
  ++lambda_[walk_nodes.front()];
}

void WalkSet::AddWalks(const WalkBuffer& buffer) {
  assert(!finalized_);
  nodes_.insert(nodes_.end(), buffer.nodes.begin(), buffer.nodes.end());
  uint64_t pos = offsets_.back();
  for (const uint32_t len : buffer.lengths) {
    assert(len >= 1);
    const graph::NodeId start = nodes_[pos];
    pos += len;
    offsets_.push_back(pos);
    starts_.push_back(start);
    ++lambda_[start];
  }
  assert(pos == nodes_.size());
}

void WalkSet::FreezeOwned() {
  frozen_.nodes = nodes_;
  frozen_.offsets = offsets_;
  frozen_.starts = starts_;
  frozen_.lambda = lambda_;
  frozen_.start_weight = start_weight_;
  frozen_.index_offsets = index_offsets_;
  frozen_.index_entries = index_entries_;
}

void WalkSet::BuildIndex() {
  // Inverted index with first-occurrence dedup per walk: counting pass,
  // then fill. `last_seen[v]` stamps the walk that last recorded v.
  const size_t walks = starts_.size();
  constexpr uint32_t kNone = static_cast<uint32_t>(-1);
  std::vector<uint32_t> last_seen(num_nodes_, kNone);
  std::vector<uint64_t> counts(num_nodes_ + 1, 0);
  for (uint32_t w = 0; w < walks; ++w) {
    for (uint64_t i = offsets_[w]; i < offsets_[w + 1]; ++i) {
      const graph::NodeId v = nodes_[i];
      if (last_seen[v] == w) continue;
      last_seen[v] = w;
      ++counts[v + 1];
    }
  }
  index_offsets_.assign(num_nodes_ + 1, 0);
  for (uint32_t v = 0; v < num_nodes_; ++v) {
    index_offsets_[v + 1] = index_offsets_[v] + counts[v + 1];
  }
  index_entries_.resize(index_offsets_[num_nodes_]);
  std::vector<uint64_t> cursor(index_offsets_.begin(),
                               index_offsets_.end() - 1);
  std::fill(last_seen.begin(), last_seen.end(), kNone);
  for (uint32_t w = 0; w < walks; ++w) {
    for (uint64_t i = offsets_[w]; i < offsets_[w + 1]; ++i) {
      const graph::NodeId v = nodes_[i];
      if (last_seen[v] == w) continue;
      last_seen[v] = w;
      index_entries_[cursor[v]++] = {
          w, static_cast<uint32_t>(i - offsets_[w])};
    }
  }
}

void WalkSet::Finalize(const std::vector<double>& initial_opinions) {
  assert(!finalized_);
  BuildIndex();
  FreezeOwned();
  finalized_ = true;
  ResetValues(initial_opinions);
}

void WalkSet::ResetValues(const std::vector<double>& initial_opinions) {
  assert(finalized_);
  assert(initial_opinions.size() == num_nodes_);
  const size_t walks = frozen_.starts.size();
  values_.resize(walks);
  eff_len_.resize(walks);
  est_sum_.assign(num_nodes_, 0.0);
  for (size_t w = 0; w < walks; ++w) {
    const uint64_t begin = frozen_.offsets[w];
    const uint64_t end = frozen_.offsets[w + 1];
    eff_len_[w] = static_cast<uint32_t>(end - begin);
    values_[w] = initial_opinions[frozen_.nodes[end - 1]];
    est_sum_[frozen_.starts[w]] += values_[w];
  }
}

void WalkSet::SetStartWeight(graph::NodeId v, double weight) {
  assert(!adopted_ && "persisted sketches carry immutable start weights");
  // Defensive no-op in release builds: the adopted frozen data (possibly an
  // mmap) is immutable and the owned vector was released by AdoptFrozen.
  if (adopted_) return;
  start_weight_[v] = weight;
}

size_t WalkSet::memory_bytes() const {
  const Frozen& f = frozen_;
  return f.nodes.size_bytes() + f.offsets.size_bytes() +
         f.starts.size_bytes() + f.lambda.size_bytes() +
         f.start_weight.size_bytes() + f.index_offsets.size_bytes() +
         f.index_entries.size_bytes() + eff_len_.size() * sizeof(uint32_t) +
         values_.size() * sizeof(double) + est_sum_.size() * sizeof(double);
}

void WalkSet::Truncate(
    graph::NodeId w, const std::function<void(uint32_t, double)>& on_change) {
  assert(finalized_);
  for (const Posting& posting : PostingsOf(w)) {
    if (posting.pos >= eff_len_[posting.walk]) continue;  // already cut
    const double old_value = values_[posting.walk];
    eff_len_[posting.walk] = posting.pos + 1;
    if (old_value < 1.0) {
      values_[posting.walk] = 1.0;
      est_sum_[frozen_.starts[posting.walk]] += 1.0 - old_value;
      on_change(posting.walk, old_value);
    }
  }
}

}  // namespace voteopt::core
