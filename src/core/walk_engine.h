// Generation of t-step reverse random walks (paper § V-A).
//
// A walk at node u terminates there with probability d_u[S] (stubbornness;
// 1 for seeds); otherwise it moves to an in-neighbor sampled with
// probability w_uv via the alias tables. It stops after t transitions, when
// absorbed, or at a node without in-edges (such users retain their initial
// opinion, so the walk's value is well defined). The start node's estimated
// opinion is the initial opinion of the walk's end node (Thm. 8).
#ifndef VOTEOPT_CORE_WALK_ENGINE_H_
#define VOTEOPT_CORE_WALK_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/walk_set.h"
#include "graph/alias_table.h"
#include "graph/graph.h"
#include "opinion/opinion_state.h"
#include "util/rng.h"

namespace voteopt::core {

/// The per-walk RNG stream of the sharded (and out-of-core) sketch
/// builders: walk `walk_index` of a sketch keyed by `master_seed` draws
/// every random number — its start node and every transition — from
/// Rng(master_seed + (walk_index + 1) * golden-ratio). The Rng constructor
/// runs the seed through splitmix64, which decorrelates consecutive walk
/// seeds. Because each walk owns its whole stream, a scheduler may suspend
/// and resume walks in ANY order (e.g. at out-of-core block boundaries,
/// carrying the Rng in the walk state) and still reproduce the exact bytes
/// of an in-memory build.
inline Rng SketchWalkRng(uint64_t master_seed, uint64_t walk_index) {
  return Rng(master_seed + (walk_index + 1) * 0x9E3779B97F4A7C15ULL);
}

class WalkEngine {
 public:
  /// `graph`, `campaign` and `alias` must outlive the engine; `alias` must
  /// be built over `graph`.
  WalkEngine(const graph::Graph& graph, const opinion::Campaign& campaign,
             const graph::AliasSampler& alias)
      : graph_(&graph), campaign_(&campaign), alias_(&alias) {}

  /// Generates one walk with the EMPTY seed set (Post-Generation
  /// Truncation setup, Thm. 9). `out` receives the node sequence, start
  /// first; it always has between 1 and horizon+1 nodes.
  void Generate(graph::NodeId start, uint32_t horizon, Rng* rng,
                std::vector<graph::NodeId>* out) const;

  /// Generates `count` empty-seed-set walks from uniformly sampled starts,
  /// appending them to `out`. Per walk, `rng` is consumed exactly as the
  /// UniformInt(start) + Generate sequence would be, so a batch is a
  /// self-contained RNG block: the output depends only on `rng`'s state at
  /// entry. The engine is stateless, so concurrent calls on distinct
  /// (rng, out) pairs are safe — this is the unit of work the parallel
  /// sketch builder shards across a thread pool.
  void GenerateBatch(uint64_t count, uint32_t horizon, Rng* rng,
                     WalkBuffer* out) const;

  /// Generates walks `first_walk .. first_walk + count - 1` of the sketch
  /// keyed by `master_seed`, appending them to `out`. Walk j draws its
  /// start (UniformInt(n)) and its whole trajectory from
  /// SketchWalkRng(master_seed, j) — per-walk independent streams — so the
  /// output depends only on (master_seed, first_walk, count, horizon),
  /// never on batching or scheduling. This is the unit of work of BOTH the
  /// in-memory sharded builder and the out-of-core block engine; their
  /// bit-identity rests on sharing this walk definition.
  void GenerateSeeded(uint64_t first_walk, uint64_t count, uint32_t horizon,
                      uint64_t master_seed, WalkBuffer* out) const;

  /// Direct Generation (paper § V-A) with a seed set applied: seeds are
  /// fully stubborn, so the walk is absorbed on reaching one. Returns the
  /// estimate X = b0[S][end node]. Used to validate Thm. 8 against Thm. 9.
  double GenerateWithSeeds(graph::NodeId start, uint32_t horizon,
                           const std::vector<bool>& is_seed, Rng* rng) const;

 private:
  /// The shared per-step dynamics: appends the walk's nodes after `start`
  /// to *nodes (start itself is the caller's). Both Generate entry points
  /// route through this, which is what guarantees their RNG-consumption
  /// parity.
  void Extend(graph::NodeId start, uint32_t horizon, Rng* rng,
              std::vector<graph::NodeId>* nodes) const;

  const graph::Graph* graph_;
  const opinion::Campaign* campaign_;
  const graph::AliasSampler* alias_;
};

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_WALK_ENGINE_H_
