#include "core/sketch.h"

#include <algorithm>
#include <cmath>

#include "core/estimated_greedy.h"
#include "core/walk_engine.h"
#include "graph/alias_table.h"
#include "util/thread_pool.h"

namespace voteopt::core {

void ApplySketchWeights(WalkSet* walks, uint32_t n, uint64_t theta) {
  const double scale = static_cast<double>(n) / static_cast<double>(theta);
  for (graph::NodeId v = 0; v < n; ++v) {
    walks->SetStartWeight(v, scale * static_cast<double>(walks->Lambda(v)));
  }
}

std::unique_ptr<WalkSet> BuildSketchSet(const ScoreEvaluator& evaluator,
                                        uint64_t theta, Rng* rng) {
  const graph::Graph& g = evaluator.model().graph();
  const uint32_t n = g.num_nodes();
  graph::AliasSampler alias(g);
  WalkEngine engine(g, evaluator.target_campaign(), alias);

  auto walks = std::make_unique<WalkSet>(n);
  std::vector<graph::NodeId> scratch;
  for (uint64_t j = 0; j < theta; ++j) {
    const graph::NodeId start = static_cast<graph::NodeId>(rng->UniformInt(n));
    engine.Generate(start, evaluator.horizon(), rng, &scratch);
    walks->AddWalk(scratch);
  }
  walks->Finalize(evaluator.target_campaign().initial_opinions);
  ApplySketchWeights(walks.get(), n, theta);
  return walks;
}

std::unique_ptr<WalkSet> BuildSketchSet(const ScoreEvaluator& evaluator,
                                        uint64_t theta, uint64_t master_seed,
                                        const SketchBuildOptions& options) {
  const graph::Graph& g = evaluator.model().graph();
  const uint32_t n = g.num_nodes();
  graph::AliasSampler alias(g);
  const WalkEngine engine(g, evaluator.target_campaign(), alias);
  const uint32_t horizon = evaluator.horizon();

  const uint64_t block_size = std::max<uint64_t>(1, options.block_size);
  const uint64_t num_blocks = (theta + block_size - 1) / block_size;
  std::vector<WalkBuffer> buffers(num_blocks);
  auto run_block = [&](uint64_t b) {
    const uint64_t begin = b * block_size;
    const uint64_t count = std::min(block_size, theta - begin);
    buffers[b].nodes.reserve(count * (horizon / 4 + 1));
    engine.GenerateSeeded(begin, count, horizon, master_seed, &buffers[b]);
  };

  uint32_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                              : options.num_threads;
  threads = static_cast<uint32_t>(
      std::min<uint64_t>(threads, std::max<uint64_t>(num_blocks, 1)));
  if (threads <= 1) {
    for (uint64_t b = 0; b < num_blocks; ++b) run_block(b);
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<void>> done;
    done.reserve(num_blocks);
    for (uint64_t b = 0; b < num_blocks; ++b) {
      done.push_back(pool.Submit([&run_block, b] { run_block(b); }));
    }
    for (auto& f : done) f.get();
  }

  auto walks = std::make_unique<WalkSet>(n);
  for (const WalkBuffer& buffer : buffers) walks->AddWalks(buffer);
  walks->Finalize(evaluator.target_campaign().initial_opinions);
  ApplySketchWeights(walks.get(), n, theta);
  return walks;
}

double CumulativeOptLowerBound(const ScoreEvaluator& evaluator, uint32_t k) {
  const auto& base = evaluator.HorizonOpinions(evaluator.target());
  double f_empty = 0.0;
  for (double b : base) f_empty += b;
  return std::max({f_empty, static_cast<double>(k), 1.0});
}

double RefineOptLowerBound(const ScoreEvaluator& evaluator, uint32_t k,
                           double epsilon, double fallback, Rng* rng) {
  const uint32_t n = evaluator.num_users();
  double x = static_cast<double>(n) / 2.0;
  // Cheap per-test sketch budget; grows as the tested bound shrinks, as in
  // Algorithm 2 of [3].
  while (x >= std::max<double>(k, 1.0)) {
    const uint64_t theta = std::min<uint64_t>(
        static_cast<uint64_t>(std::ceil(
            (2.0 + 2.0 / 3.0 * epsilon) * static_cast<double>(n) *
            std::log(static_cast<double>(n)) / (epsilon * epsilon * x))),
        4ull * n);
    auto walks = BuildSketchSet(evaluator, theta, rng);
    EstimatedGreedyOptions opts;
    opts.evaluate_exact = false;  // the test uses the estimate only
    SelectionResult est = EstimatedGreedySelect(evaluator, k, walks.get(), opts);
    if (est.score >= (1.0 + epsilon) * x) {
      return std::max(fallback, est.score / (1.0 + epsilon));
    }
    x /= 2.0;
  }
  return fallback;
}

uint64_t EstimateThetaByConvergence(const ScoreEvaluator& evaluator,
                                    uint32_t k, uint64_t theta_start,
                                    uint64_t theta_cap, double tol,
                                    uint64_t rng_seed) {
  uint64_t theta = std::max<uint64_t>(theta_start, 16);
  double previous = -1.0;
  uint64_t last_stable = 0;
  int stable_rounds = 0;
  while (theta <= theta_cap) {
    Rng rng(rng_seed);
    auto walks = BuildSketchSet(evaluator, theta, &rng);
    const SelectionResult result =
        EstimatedGreedySelect(evaluator, k, walks.get());
    if (previous >= 0.0) {
      const double change = std::fabs(result.score - previous) /
                            std::max(1.0, std::fabs(result.score));
      if (change <= tol) {
        // Require two consecutive stable doublings before declaring
        // convergence: a single quiet doubling can be a fluke on the slow
        // climb toward the plateau (cf. Figs. 13-14).
        if (++stable_rounds >= 2) return last_stable;
        if (stable_rounds == 1) last_stable = theta;
      } else {
        stable_rounds = 0;
      }
    }
    previous = result.score;
    theta *= 2;
  }
  return std::min<uint64_t>(theta, theta_cap);
}

}  // namespace voteopt::core
