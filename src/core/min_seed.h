// Problem 2 (FJ-Vote-Win, paper Algorithm 2): the smallest seed budget k*
// for which the target candidate's score at the horizon strictly exceeds
// every competitor's.
//
// Two drivers share the result type:
//  * MinSeedsToWin — the paper's binary search over k. It treats the
//    selector as a black box and relies only on the winning predicate being
//    monotone in the budget: if the selector's k-budget set wins, its
//    k'-budget set for k' > k must win too. For the greedy selectors this
//    holds because greedy is PREFIX-NESTED — the seed set at budget k is a
//    prefix of the seed set at budget k' > k when both selections run over
//    the same frozen evaluation substrate (the exact evaluator, or one
//    fixed sketch reset between probes) — and scores are non-decreasing in
//    the seed set. tests/core_min_seed_test.cc pins the nesting invariant.
//  * MinSeedsToWinSinglePass — the fast path that makes the invariant
//    explicit: because greedy budgets nest, ONE selection at k_max visits
//    every candidate budget as a prefix, so checking the winning criterion
//    per prefix replaces the per-probe full reselection entirely — one
//    selector call instead of 1 + O(log k_max).
#ifndef VOTEOPT_CORE_MIN_SEED_H_
#define VOTEOPT_CORE_MIN_SEED_H_

#include "core/problem.h"

namespace voteopt::core {

struct MinSeedResult {
  /// Smallest budget found for which the target wins (0 when it wins with
  /// no seeds). Meaningful only when `achievable`.
  uint32_t k_star = 0;
  /// The winning seed set (empty when k_star == 0).
  std::vector<graph::NodeId> seeds;
  /// False when even the maximum budget cannot make the target win.
  bool achievable = false;
  /// Number of selector invocations spent: 1 + O(log k_max) for the binary
  /// search, at most 1 for the single-pass driver.
  uint32_t selector_calls = 0;
};

/// Algorithm 2. `selector` produces the (approximately optimal) seed set of
/// a given size; since it is approximate, k* may exceed the true minimum
/// (paper § III-C Remark 2). `k_max` bounds the search (0 means n).
MinSeedResult MinSeedsToWin(const ScoreEvaluator& evaluator,
                            const SeedSelector& selector, uint32_t k_max = 0);

/// Invoked by a PrefixSelector after each greedy iteration with the 1-based
/// prefix length and the seed prefix in selection order; returning true
/// stops the selection with exactly that prefix.
using PrefixCallback =
    std::function<bool(uint32_t, const std::vector<graph::NodeId>&)>;

/// A selection driver for the single-pass fast path: runs ONE greedy
/// selection at budget `k`, reporting every prefix through `on_prefix`
/// (e.g. EstimatedGreedySelect with EstimatedGreedyOptions::on_prefix).
using PrefixSelector = std::function<SelectionResult(
    const ScoreEvaluator&, uint32_t k, const PrefixCallback& on_prefix)>;

class WalkSet;

/// Adapts a PrefixCallback to the (iteration, prefix, walks) signature of
/// EstimatedGreedyOptions::on_prefix, dropping the walk-set argument — the
/// one-line glue every sketch-backed PrefixSelector needs.
inline std::function<bool(uint32_t, const std::vector<graph::NodeId>&,
                          const WalkSet&)>
ToGreedyPrefixHook(const PrefixCallback& on_prefix) {
  return [on_prefix](uint32_t len, const std::vector<graph::NodeId>& prefix,
                     const WalkSet&) { return on_prefix(len, prefix); };
}

/// Single-pass Algorithm 2 for prefix-nested (greedy) selectors: one
/// selection at the k_max budget, checking TargetWins after every selected
/// seed and stopping at the first winning prefix. Returns the same k* and
/// seeds as MinSeedsToWin over the equivalent per-budget selector, with
/// selector_calls <= 1 (0 when the target already wins seedless).
MinSeedResult MinSeedsToWinSinglePass(const ScoreEvaluator& evaluator,
                                      const PrefixSelector& selector,
                                      uint32_t k_max = 0);

/// True when the target's score strictly exceeds every competitor's score
/// under the given seed set.
bool TargetWins(const ScoreEvaluator& evaluator,
                const std::vector<graph::NodeId>& seeds);

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_MIN_SEED_H_
