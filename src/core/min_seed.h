// Problem 2 (FJ-Vote-Win, paper Algorithm 2): the smallest seed budget k*
// for which the target candidate's score at the horizon strictly exceeds
// every competitor's, found by binary search over k (the scores are
// non-decreasing in the seed set).
#ifndef VOTEOPT_CORE_MIN_SEED_H_
#define VOTEOPT_CORE_MIN_SEED_H_

#include "core/problem.h"

namespace voteopt::core {

struct MinSeedResult {
  /// Smallest budget found for which the target wins (0 when it wins with
  /// no seeds). Meaningful only when `achievable`.
  uint32_t k_star = 0;
  /// The winning seed set (empty when k_star == 0).
  std::vector<graph::NodeId> seeds;
  /// False when even the maximum budget cannot make the target win.
  bool achievable = false;
  /// Number of selector invocations spent by the binary search.
  uint32_t selector_calls = 0;
};

/// Algorithm 2. `selector` produces the (approximately optimal) seed set of
/// a given size; since it is approximate, k* may exceed the true minimum
/// (paper § III-C Remark 2). `k_max` bounds the search (0 means n).
MinSeedResult MinSeedsToWin(const ScoreEvaluator& evaluator,
                            const SeedSelector& selector, uint32_t k_max = 0);

/// True when the target's score strictly exceeds every competitor's score
/// under the given seed set.
bool TargetWins(const ScoreEvaluator& evaluator,
                const std::vector<graph::NodeId>& seeds);

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_MIN_SEED_H_
