#include "core/greedy_dm.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

#include "util/timer.h"

namespace voteopt::core {

DeltaPropagator::DeltaPropagator(const ScoreEvaluator& evaluator)
    : evaluator_(&evaluator) {
  const uint32_t n = evaluator.num_users();
  cur_delta_.assign(n, 0.0);
  next_delta_.assign(n, 0.0);
  cur_mark_.assign(n, 0);
  next_mark_.assign(n, 0);
  SetSeeds({});
}

void DeltaPropagator::SetSeeds(const std::vector<graph::NodeId>& seeds) {
  seeds_ = seeds;
  seeded_ = opinion::ApplySeeds(evaluator_->target_campaign(), seeds);
  trajectory_ = evaluator_->model().Trajectory(seeded_, evaluator_->horizon());
  base_horizon_ = trajectory_.back();
  if (evaluator_->spec().kind == voting::ScoreKind::kCopeland) {
    RebuildTallies();
  }
}

void DeltaPropagator::RebuildTallies() {
  const uint32_t r = evaluator_->num_candidates();
  const uint32_t n = evaluator_->num_users();
  wins_.assign(r, 0);
  losses_.assign(r, 0);
  for (opinion::CandidateId x = 0; x < r; ++x) {
    if (x == evaluator_->target()) continue;
    const auto& other = evaluator_->HorizonOpinions(x);
    for (uint32_t v = 0; v < n; ++v) {
      if (base_horizon_[v] > other[v]) {
        ++wins_[x];
      } else if (base_horizon_[v] < other[v]) {
        ++losses_[x];
      }
    }
  }
}

const std::vector<double>& DeltaPropagator::ComputeDelta(
    graph::NodeId w, std::vector<graph::NodeId>* touched) {
  const graph::Graph& g = evaluator_->model().graph();
  const uint32_t horizon = evaluator_->horizon();

  uint32_t cur_epoch = ++epoch_;
  cur_nodes_.clear();
  cur_nodes_.push_back(w);
  cur_mark_[w] = cur_epoch;
  cur_delta_[w] = 1.0 - trajectory_[0][w];

  for (uint32_t s = 0; s < horizon; ++s) {
    const uint32_t next_epoch = ++epoch_;
    next_nodes_.clear();
    for (graph::NodeId u : cur_nodes_) {
      const double du = cur_delta_[u];
      if (du <= 0.0) continue;
      const auto targets = g.OutNeighbors(u);
      const auto weights = g.OutWeights(u);
      for (size_t i = 0; i < targets.size(); ++i) {
        const graph::NodeId v = targets[i];
        if (v == w) continue;  // w is pinned below
        const double coef = 1.0 - seeded_.stubbornness[v];
        if (coef == 0.0) continue;  // seeds / fully stubborn absorb deltas
        if (next_mark_[v] != next_epoch) {
          next_mark_[v] = next_epoch;
          next_delta_[v] = 0.0;
          next_nodes_.push_back(v);
        }
        next_delta_[v] += coef * weights[i] * du;
      }
    }
    // Pin the new seed at opinion 1: its delta is exactly the base deficit.
    if (next_mark_[w] != next_epoch) {
      next_mark_[w] = next_epoch;
      next_nodes_.push_back(w);
    }
    next_delta_[w] = 1.0 - trajectory_[s + 1][w];

    std::swap(cur_delta_, next_delta_);
    std::swap(cur_mark_, next_mark_);
    std::swap(cur_nodes_, next_nodes_);
    cur_epoch = next_epoch;
  }

  *touched = cur_nodes_;
  return cur_delta_;
}

double DeltaPropagator::MarginalGain(graph::NodeId w) {
  const auto& delta = ComputeDelta(w, &touched_scratch_);
  const auto& spec = evaluator_->spec();
  switch (spec.kind) {
    case voting::ScoreKind::kCumulative: {
      double gain = 0.0;
      for (graph::NodeId v : touched_scratch_) gain += delta[v];
      return gain;
    }
    case voting::ScoreKind::kPlurality:
    case voting::ScoreKind::kPApproval:
    case voting::ScoreKind::kPositionalPApproval: {
      double gain = 0.0;
      for (graph::NodeId v : touched_scratch_) {
        if (delta[v] <= 0.0) continue;
        gain += evaluator_->UserRankWeight(v, base_horizon_[v] + delta[v]) -
                evaluator_->UserRankWeight(v, base_horizon_[v]);
      }
      return gain;
    }
    case voting::ScoreKind::kCopeland: {
      const uint32_t r = evaluator_->num_candidates();
      // Adjust the pairwise tallies by the touched users only.
      double before = 0.0, after = 0.0;
      for (opinion::CandidateId x = 0; x < r; ++x) {
        if (x == evaluator_->target()) continue;
        const auto& other = evaluator_->HorizonOpinions(x);
        int64_t dw = 0, dl = 0;
        for (graph::NodeId v : touched_scratch_) {
          if (delta[v] <= 0.0) continue;
          const double old_val = base_horizon_[v];
          const double new_val = old_val + delta[v];
          dw += (new_val > other[v]) - (old_val > other[v]);
          dl += (new_val < other[v]) - (old_val < other[v]);
        }
        before += (wins_[x] > losses_[x]) ? 1.0 : 0.0;
        after += (wins_[x] + dw > losses_[x] + dl) ? 1.0 : 0.0;
      }
      return after - before;
    }
  }
  return 0.0;
}

namespace {

constexpr graph::NodeId kInvalidNode = static_cast<graph::NodeId>(-1);

std::vector<graph::NodeId> DefaultPool(uint32_t n) {
  std::vector<graph::NodeId> pool(n);
  for (uint32_t v = 0; v < n; ++v) pool[v] = v;
  return pool;
}

}  // namespace

SelectionResult GreedyDMSelect(const ScoreEvaluator& evaluator, uint32_t k,
                               const DMOptions& options) {
  WallTimer timer;
  const uint32_t n = evaluator.num_users();
  k = std::min<uint32_t>(k, n);
  const std::vector<graph::NodeId> pool = options.candidate_pool.empty()
                                              ? DefaultPool(n)
                                              : options.candidate_pool;

  DeltaPropagator propagator(evaluator);
  std::vector<graph::NodeId> seeds;
  std::vector<bool> is_seed(n, false);
  uint64_t evaluations = 0;

  const bool celf = options.use_celf &&
                    evaluator.spec().kind == voting::ScoreKind::kCumulative;
  if (celf) {
    // CELF [49]: (gain, node, #seeds when the gain was computed). Stale
    // gains upper-bound fresh ones by submodularity (Thm. 3).
    using Entry = std::tuple<double, graph::NodeId, uint32_t>;
    auto cmp = [](const Entry& a, const Entry& b) {
      if (std::get<0>(a) != std::get<0>(b)) {
        return std::get<0>(a) < std::get<0>(b);
      }
      return std::get<1>(a) > std::get<1>(b);  // smaller id wins ties
    };
    std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);
    for (graph::NodeId u : pool) {
      queue.emplace(propagator.MarginalGain(u), u, 0);
      ++evaluations;
    }
    while (seeds.size() < k && !queue.empty()) {
      auto [gain, u, at] = queue.top();
      queue.pop();
      if (is_seed[u]) continue;
      if (at == seeds.size()) {
        seeds.push_back(u);
        is_seed[u] = true;
        propagator.SetSeeds(seeds);
      } else {
        queue.emplace(propagator.MarginalGain(u), u,
                      static_cast<uint32_t>(seeds.size()));
        ++evaluations;
      }
    }
  } else {
    // Plain greedy: exact marginal gain of every pool node each round.
    while (seeds.size() < k) {
      double best_gain = -1.0;
      graph::NodeId best = kInvalidNode;
      for (graph::NodeId u : pool) {
        if (is_seed[u]) continue;
        const double gain = propagator.MarginalGain(u);
        ++evaluations;
        if (gain > best_gain || (gain == best_gain && u < best)) {
          best_gain = gain;
          best = u;
        }
      }
      if (best == kInvalidNode) break;
      seeds.push_back(best);
      is_seed[best] = true;
      propagator.SetSeeds(seeds);
    }
  }

  SelectionResult result;
  result.seeds = std::move(seeds);
  result.score = evaluator.ScoreFromTargetOpinions(propagator.base_horizon());
  result.seconds = timer.Seconds();
  result.diagnostics["evaluations"] = static_cast<double>(evaluations);
  return result;
}

}  // namespace voteopt::core
