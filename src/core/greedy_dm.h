// Exact greedy seed selection via direct propagation — the paper's "DM"
// method (Algorithm 1), with two engineering refinements that keep results
// bit-identical to naive re-propagation:
//
//  * CELF lazy evaluation [49] for the cumulative score, sound because the
//    cumulative score is monotone submodular (Thm. 3).
//  * Sparse delta propagation for marginal gains: seeding node w pins
//    b_w = 1 and d_w = 1, which perturbs the FJ recursion only inside w's
//    t-hop out-neighborhood. The perturbation Delta(s) obeys
//      Delta(s+1)[v] = (1 - d_v[S]) * sum_u w_uv * Delta(s)[u]   (v != w)
//      Delta(s+1)[w] = 1 - b_S(s+1)[w]                           (pinned)
//    so the marginal gain of w costs O(edges within t hops of w) instead of
//    a full O(t m) re-propagation. On low-degree graphs with small t this
//    is a 10-100x speedup; at saturation it degrades gracefully to O(t m).
//
// For the non-submodular scores (plurality variants, Copeland) the paper's
// framework is sandwich approximation (§ IV); see sandwich.h. This file's
// GreedyDMSelect provides the "feasible solution" S_F used there, i.e.
// plain greedy with exact marginal gains.
#ifndef VOTEOPT_CORE_GREEDY_DM_H_
#define VOTEOPT_CORE_GREEDY_DM_H_

#include <cstdint>
#include <vector>

#include "core/problem.h"

namespace voteopt::core {

struct DMOptions {
  /// Use CELF lazy evaluation when the score is submodular (cumulative).
  bool use_celf = true;
  /// Restrict candidate seeds to this set (empty = all nodes). Used by the
  /// sandwich lower bound and by tests.
  std::vector<graph::NodeId> candidate_pool;
};

/// Algorithm 1 with exact marginal gains. Returns the greedy seed set of
/// size k together with its exact score.
SelectionResult GreedyDMSelect(const ScoreEvaluator& evaluator, uint32_t k,
                               const DMOptions& options = DMOptions());

/// Exact marginal-gain engine shared by GreedyDMSelect and the sandwich
/// lower bound. Exposed for tests.
class DeltaPropagator {
 public:
  /// `evaluator` must outlive the propagator.
  explicit DeltaPropagator(const ScoreEvaluator& evaluator);

  /// Re-bases the propagator on seed set S: recomputes the seeded campaign
  /// and the full trajectory b_S(0..t). O(t m).
  void SetSeeds(const std::vector<graph::NodeId>& seeds);

  /// Exact horizon delta of adding `w` to the current seed set: fills
  /// `touched` with the affected nodes and returns, parallel to it, each
  /// node's opinion increase at the horizon. Entries may be zero.
  const std::vector<double>& ComputeDelta(graph::NodeId w,
                                          std::vector<graph::NodeId>* touched);

  /// Target opinions at the horizon under the current seed set.
  const std::vector<double>& base_horizon() const { return base_horizon_; }

  /// Exact marginal gain of adding w under the evaluator's score spec.
  /// For Copeland this uses internally maintained win/loss tallies.
  double MarginalGain(graph::NodeId w);

 private:
  void RebuildTallies();

  const ScoreEvaluator* evaluator_;
  std::vector<graph::NodeId> seeds_;
  opinion::Campaign seeded_;                    // campaign with seeds applied
  std::vector<std::vector<double>> trajectory_; // b_S(s), s = 0..t
  std::vector<double> base_horizon_;            // = trajectory_[t]

  // Scratch for sparse frontier propagation (epoch-stamped).
  std::vector<double> cur_delta_, next_delta_;
  std::vector<uint32_t> cur_mark_, next_mark_;
  uint32_t epoch_ = 0;
  std::vector<graph::NodeId> cur_nodes_, next_nodes_;
  std::vector<graph::NodeId> touched_scratch_;

  // Copeland tallies for the current base: per competitor, #users where the
  // target is strictly ahead / strictly behind.
  std::vector<int64_t> wins_, losses_;
};

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_GREEDY_DM_H_
