#include "core/rs_greedy.h"

#include <algorithm>
#include <cmath>

#include "core/accuracy.h"
#include "core/estimated_greedy.h"
#include "core/sketch.h"
#include "util/timer.h"

namespace voteopt::core {

SelectionResult RSGreedySelect(const ScoreEvaluator& evaluator, uint32_t k,
                               const RSOptions& options) {
  WallTimer timer;
  const uint32_t n = evaluator.num_users();
  Rng rng(options.rng_seed);

  uint64_t theta = options.theta_override;
  double opt_lb = 0.0;
  if (theta == 0) {
    if (evaluator.spec().kind == voting::ScoreKind::kCumulative) {
      opt_lb = CumulativeOptLowerBound(evaluator, k);
      if (options.refine_opt_bound) {
        opt_lb = RefineOptLowerBound(evaluator, k, options.epsilon, opt_lb,
                                     &rng);
      }
      theta = static_cast<uint64_t>(std::ceil(
          ThetaForCumulative(n, k, options.epsilon, options.l, opt_lb)));
    } else {
      theta = EstimateThetaByConvergence(evaluator, k, options.theta_start,
                                         options.theta_cap,
                                         options.convergence_tol,
                                         options.rng_seed);
    }
    theta = std::clamp<uint64_t>(theta, 1, options.theta_cap);
  }

  // Every thread count goes through the sharded fixed-block builder: its
  // output is a pure function of (master_seed, theta, block_size), so the
  // sketch — and with it the selected seeds — is identical whether the
  // blocks are generated inline or on a pool. (A previous num_threads == 1
  // special case used the legacy serial stream instead, which drew walks
  // from a different RNG sequence and made --threads=1 answers diverge
  // from --threads=N; tests/core_sketch_parallel_test.cc pins the
  // invariance.)
  SketchBuildOptions build_options;
  build_options.num_threads = options.num_threads;
  std::unique_ptr<WalkSet> walks =
      BuildSketchSet(evaluator, theta, rng.Next(), build_options);
  EstimatedGreedyOptions greedy_options;
  greedy_options.num_threads = options.num_threads;
  SelectionResult result =
      EstimatedGreedySelect(evaluator, k, walks.get(), greedy_options);
  result.seconds = timer.Seconds();
  result.diagnostics["theta"] = static_cast<double>(theta);
  if (opt_lb > 0.0) result.diagnostics["opt_lower_bound"] = opt_lb;
  return result;
}

}  // namespace voteopt::core
