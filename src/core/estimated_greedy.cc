#include "core/estimated_greedy.h"

#include <algorithm>
#include <cassert>

#include "util/timer.h"

namespace voteopt::core {

namespace {

constexpr graph::NodeId kInvalidNode = static_cast<graph::NodeId>(-1);

/// Shared per-iteration scratch: accumulates, for one candidate seed w, the
/// estimated-opinion increase of every affected start node.
class DeltaAccumulator {
 public:
  explicit DeltaAccumulator(uint32_t n) : sum_(n, 0.0), mark_(n, 0) {}

  void Begin() { ++epoch_; touched_.clear(); }

  void Add(graph::NodeId start, double delta) {
    if (mark_[start] != epoch_) {
      mark_[start] = epoch_;
      sum_[start] = 0.0;
      touched_.push_back(start);
    }
    sum_[start] += delta;
  }

  const std::vector<graph::NodeId>& touched() const { return touched_; }
  double Sum(graph::NodeId v) const { return sum_[v]; }

 private:
  std::vector<double> sum_;
  std::vector<uint64_t> mark_;
  uint64_t epoch_ = 0;
  std::vector<graph::NodeId> touched_;
};

/// Copeland bookkeeping over estimated target opinions vs exact competitor
/// opinions: weighted win/loss tallies per competitor (Eq. 47).
struct CopelandTallies {
  std::vector<double> wins, losses;

  void Rebuild(const ScoreEvaluator& ev, const WalkSet& walks) {
    const uint32_t r = ev.num_candidates();
    wins.assign(r, 0.0);
    losses.assign(r, 0.0);
    for (graph::NodeId v = 0; v < walks.num_nodes(); ++v) {
      if (walks.Lambda(v) == 0) continue;
      const double bhat = walks.EstimatedOpinion(v);
      const double weight = walks.StartWeight(v);
      for (opinion::CandidateId x = 0; x < r; ++x) {
        if (x == ev.target()) continue;
        const double other = ev.HorizonOpinions(x)[v];
        if (bhat > other) {
          wins[x] += weight;
        } else if (bhat < other) {
          losses[x] += weight;
        }
      }
    }
  }

  double Score(const ScoreEvaluator& ev) const {
    double score = 0.0;
    for (opinion::CandidateId x = 0; x < wins.size(); ++x) {
      if (x == ev.target()) continue;
      if (wins[x] > losses[x]) score += 1.0;
    }
    return score;
  }
};

}  // namespace

SelectionResult EstimatedGreedySelect(const ScoreEvaluator& evaluator,
                                      uint32_t k, WalkSet* walks,
                                      const EstimatedGreedyOptions& options) {
  WallTimer timer;
  const uint32_t n = walks->num_nodes();
  k = std::min<uint32_t>(k, n);
  const auto kind = evaluator.spec().kind;

  std::vector<bool> is_seed(n, false);
  std::vector<graph::NodeId> seeds;
  DeltaAccumulator acc(n);

  CopelandTallies tallies;
  if (kind == voting::ScoreKind::kCopeland) tallies.Rebuild(evaluator, *walks);

  // gains[] reused across iterations for the cumulative single-scan path.
  std::vector<double> gains(n, 0.0);

  while (seeds.size() < k) {
    double best_gain = -std::numeric_limits<double>::infinity();
    graph::NodeId best = kInvalidNode;

    if (kind == voting::ScoreKind::kCumulative) {
      // One scan over the index computes every candidate's marginal gain
      // (paper § V-B): raising walk value to 1 adds
      // weight_start / lambda_start * (1 - value).
      for (graph::NodeId w = 0; w < n; ++w) {
        if (is_seed[w]) continue;
        double gain = 0.0;
        for (const WalkSet::Posting& posting : walks->PostingsOf(w)) {
          if (posting.pos >= walks->EffectiveLen(posting.walk)) continue;
          const graph::NodeId start = walks->StartOf(posting.walk);
          gain += walks->StartWeight(start) /
                  static_cast<double>(walks->Lambda(start)) *
                  (1.0 - walks->Value(posting.walk));
        }
        gains[w] = gain;
        if (gain > best_gain) {
          best_gain = gain;
          best = w;
        }
      }
    } else {
      // Rank-sensitive scores: per candidate, accumulate the estimated-
      // opinion deltas of the affected start nodes, then translate them
      // into a score delta.
      for (graph::NodeId w = 0; w < n; ++w) {
        if (is_seed[w]) continue;
        acc.Begin();
        for (const WalkSet::Posting& posting : walks->PostingsOf(w)) {
          if (posting.pos >= walks->EffectiveLen(posting.walk)) continue;
          const graph::NodeId start = walks->StartOf(posting.walk);
          acc.Add(start, (1.0 - walks->Value(posting.walk)) /
                             static_cast<double>(walks->Lambda(start)));
        }
        double gain = 0.0;
        if (kind == voting::ScoreKind::kCopeland) {
          const uint32_t r = evaluator.num_candidates();
          std::vector<double> dw(r, 0.0), dl(r, 0.0);
          for (graph::NodeId v : acc.touched()) {
            const double old_val = walks->EstimatedOpinion(v);
            const double new_val = old_val + acc.Sum(v);
            const double weight = walks->StartWeight(v);
            for (opinion::CandidateId x = 0; x < r; ++x) {
              if (x == evaluator.target()) continue;
              const double other = evaluator.HorizonOpinions(x)[v];
              dw[x] += weight * ((new_val > other) - (old_val > other));
              dl[x] += weight * ((new_val < other) - (old_val < other));
            }
          }
          double before = 0.0, after = 0.0;
          for (opinion::CandidateId x = 0; x < r; ++x) {
            if (x == evaluator.target()) continue;
            before += tallies.wins[x] > tallies.losses[x] ? 1.0 : 0.0;
            after += tallies.wins[x] + dw[x] > tallies.losses[x] + dl[x]
                         ? 1.0
                         : 0.0;
          }
          gain = after - before;
        } else {
          for (graph::NodeId v : acc.touched()) {
            const double old_val = walks->EstimatedOpinion(v);
            gain += walks->StartWeight(v) *
                    (evaluator.UserRankWeight(v, old_val + acc.Sum(v)) -
                     evaluator.UserRankWeight(v, old_val));
          }
        }
        if (gain > best_gain) {
          best_gain = gain;
          best = w;
        }
      }
    }

    if (best == kInvalidNode) break;
    seeds.push_back(best);
    is_seed[best] = true;
    walks->Truncate(best, [](uint32_t, double) {});
    if (kind == voting::ScoreKind::kCopeland) {
      tallies.Rebuild(evaluator, *walks);
    }
    if (options.on_iteration) {
      options.on_iteration(static_cast<uint32_t>(seeds.size()), *walks);
    }
  }

  // Estimated final score for diagnostics.
  double estimated = 0.0;
  if (kind == voting::ScoreKind::kCumulative) {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (walks->Lambda(v) > 0) {
        estimated += walks->StartWeight(v) * walks->EstimatedOpinion(v);
      }
    }
  } else if (kind == voting::ScoreKind::kCopeland) {
    estimated = tallies.Score(evaluator);
  } else {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (walks->Lambda(v) > 0) {
        estimated +=
            walks->StartWeight(v) *
            evaluator.UserRankWeight(v, walks->EstimatedOpinion(v));
      }
    }
  }

  SelectionResult result;
  result.seeds = std::move(seeds);
  result.seconds = timer.Seconds();
  result.score = options.evaluate_exact
                     ? evaluator.EvaluateSeeds(result.seeds)
                     : estimated;
  result.diagnostics["estimated_score"] = estimated;
  result.diagnostics["walks"] = static_cast<double>(walks->num_walks());
  result.diagnostics["walk_memory_mb"] =
      static_cast<double>(walks->memory_bytes()) / (1024.0 * 1024.0);
  return result;
}

}  // namespace voteopt::core
