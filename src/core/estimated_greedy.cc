#include "core/estimated_greedy.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <limits>
#include <memory>
#include <queue>
#include <utility>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace voteopt::core {

namespace {

constexpr graph::NodeId kInvalidNode = static_cast<graph::NodeId>(-1);

/// Shared per-iteration scratch: accumulates, for one candidate seed w, the
/// estimated-opinion increase of every affected start node.
class DeltaAccumulator {
 public:
  explicit DeltaAccumulator(uint32_t n) : sum_(n, 0.0), mark_(n, 0) {}

  void Begin() { ++epoch_; touched_.clear(); }

  void Add(graph::NodeId start, double delta) {
    if (mark_[start] != epoch_) {
      mark_[start] = epoch_;
      sum_[start] = 0.0;
      touched_.push_back(start);
    }
    sum_[start] += delta;
  }

  const std::vector<graph::NodeId>& touched() const { return touched_; }
  double Sum(graph::NodeId v) const { return sum_[v]; }

 private:
  std::vector<double> sum_;
  std::vector<uint64_t> mark_;
  uint64_t epoch_ = 0;
  std::vector<graph::NodeId> touched_;
};

/// Copeland bookkeeping over estimated target opinions vs exact competitor
/// opinions: weighted win/loss tallies per competitor (Eq. 47).
struct CopelandTallies {
  std::vector<double> wins, losses;

  void Rebuild(const ScoreEvaluator& ev, const WalkSet& walks) {
    const uint32_t r = ev.num_candidates();
    wins.assign(r, 0.0);
    losses.assign(r, 0.0);
    for (graph::NodeId v = 0; v < walks.num_nodes(); ++v) {
      if (walks.Lambda(v) == 0) continue;
      const double bhat = walks.EstimatedOpinion(v);
      const double weight = walks.StartWeight(v);
      for (opinion::CandidateId x = 0; x < r; ++x) {
        if (x == ev.target()) continue;
        const double other = ev.HorizonOpinions(x)[v];
        if (bhat > other) {
          wins[x] += weight;
        } else if (bhat < other) {
          losses[x] += weight;
        }
      }
    }
  }

  double Score(const ScoreEvaluator& ev) const {
    double score = 0.0;
    for (opinion::CandidateId x = 0; x < wins.size(); ++x) {
      if (x == ev.target()) continue;
      if (wins[x] > losses[x]) score += 1.0;
    }
    return score;
  }
};

/// Marginal gain of candidate w under the cumulative score: one pass over
/// w's postings (paper § V-B) — raising a live walk's value to 1 adds
/// weight_start / lambda_start * (1 - value). The lazy and exhaustive paths
/// share this helper, so their gains are computed by identical arithmetic.
double CumulativeGain(const WalkSet& walks, graph::NodeId w) {
  double gain = 0.0;
  for (const WalkSet::Posting& posting : walks.PostingsOf(w)) {
    if (posting.pos >= walks.EffectiveLen(posting.walk)) continue;
    const graph::NodeId start = walks.StartOf(posting.walk);
    gain += walks.StartWeight(start) /
            static_cast<double>(walks.Lambda(start)) *
            (1.0 - walks.Value(posting.walk));
  }
  return gain;
}

/// Per-chunk scratch of the parallel rank-sensitive scan: the accumulator
/// plus the Copeland delta-tally vectors, reused across iterations.
struct RankScratch {
  explicit RankScratch(uint32_t n) : acc(n) {}
  DeltaAccumulator acc;
  std::vector<double> dw, dl;
};

/// Marginal gain of candidate w for the rank-sensitive / Copeland scores:
/// accumulate the estimated-opinion deltas of the affected start nodes, then
/// translate them into a score delta. Reads only frozen/dynamic walk state
/// and the (iteration-constant) tallies; all mutation goes through the
/// caller-owned scratch, so concurrent calls on disjoint scratch are safe.
double RankGain(const ScoreEvaluator& evaluator, const WalkSet& walks,
                const CopelandTallies& tallies, graph::NodeId w,
                RankScratch& scratch) {
  DeltaAccumulator& acc = scratch.acc;
  acc.Begin();
  for (const WalkSet::Posting& posting : walks.PostingsOf(w)) {
    if (posting.pos >= walks.EffectiveLen(posting.walk)) continue;
    const graph::NodeId start = walks.StartOf(posting.walk);
    acc.Add(start, (1.0 - walks.Value(posting.walk)) /
                       static_cast<double>(walks.Lambda(start)));
  }
  double gain = 0.0;
  if (evaluator.spec().kind == voting::ScoreKind::kCopeland) {
    const uint32_t r = evaluator.num_candidates();
    scratch.dw.assign(r, 0.0);
    scratch.dl.assign(r, 0.0);
    for (graph::NodeId v : acc.touched()) {
      const double old_val = walks.EstimatedOpinion(v);
      const double new_val = old_val + acc.Sum(v);
      const double weight = walks.StartWeight(v);
      for (opinion::CandidateId x = 0; x < r; ++x) {
        if (x == evaluator.target()) continue;
        const double other = evaluator.HorizonOpinions(x)[v];
        scratch.dw[x] += weight * ((new_val > other) - (old_val > other));
        scratch.dl[x] += weight * ((new_val < other) - (old_val < other));
      }
    }
    double before = 0.0, after = 0.0;
    for (opinion::CandidateId x = 0; x < r; ++x) {
      if (x == evaluator.target()) continue;
      before += tallies.wins[x] > tallies.losses[x] ? 1.0 : 0.0;
      after += tallies.wins[x] + scratch.dw[x] >
                       tallies.losses[x] + scratch.dl[x]
                   ? 1.0
                   : 0.0;
    }
    gain = after - before;
  } else {
    for (graph::NodeId v : acc.touched()) {
      const double old_val = walks.EstimatedOpinion(v);
      gain += walks.StartWeight(v) *
              (evaluator.UserRankWeight(v, old_val + acc.Sum(v)) -
               evaluator.UserRankWeight(v, old_val));
    }
  }
  return gain;
}

/// (gain, node) pair under the canonical ordering: higher gain wins, node id
/// ascending on ties — exactly the exhaustive scan's first-best-wins rule.
struct BestGain {
  double gain = -std::numeric_limits<double>::infinity();
  graph::NodeId node = kInvalidNode;

  void Offer(double candidate_gain, graph::NodeId candidate) {
    if (candidate_gain > gain ||
        (candidate_gain == gain && candidate < node)) {
      gain = candidate_gain;
      node = candidate;
    }
  }
};

}  // namespace

SelectionResult EstimatedGreedySelect(const ScoreEvaluator& evaluator,
                                      uint32_t k, WalkSet* walks,
                                      const EstimatedGreedyOptions& options) {
  WallTimer timer;
  const uint32_t n = walks->num_nodes();
  k = std::min<uint32_t>(k, n);
  const auto kind = evaluator.spec().kind;

  std::vector<bool> is_seed(n, false);
  std::vector<graph::NodeId> seeds;
  uint64_t gain_evaluations = 0;

  CopelandTallies tallies;
  if (kind == voting::ScoreKind::kCopeland) tallies.Rebuild(evaluator, *walks);

  const uint32_t requested_threads = options.num_threads == 0
                                         ? ThreadPool::DefaultThreadCount()
                                         : options.num_threads;
  const uint32_t scan_chunks =
      std::min<uint32_t>(std::max<uint32_t>(requested_threads, 1), n);
  std::unique_ptr<ThreadPool> pool;
  if (scan_chunks > 1) pool = std::make_unique<ThreadPool>(scan_chunks);

  /// Runs fn(w) for every non-seed candidate, chunked over the pool when one
  /// exists; chunk c is the contiguous id range [c*per, (c+1)*per). Returns
  /// the canonical best over all candidates: chunk-local bests follow the
  /// (gain, node id) ordering and chunks are visited in id order, so the
  /// reduction is independent of the thread count.
  const auto parallel_best = [&](auto&& gain_of) {
    BestGain best;
    if (!pool) {
      for (graph::NodeId w = 0; w < n; ++w) {
        if (is_seed[w]) continue;
        best.Offer(gain_of(w, /*chunk=*/0u), w);
      }
      return best;
    }
    const uint32_t per = (n + scan_chunks - 1) / scan_chunks;
    std::vector<std::future<BestGain>> futures;
    futures.reserve(scan_chunks);
    for (uint32_t c = 0; c < scan_chunks; ++c) {
      futures.push_back(pool->Submit([&, c] {
        BestGain chunk_best;
        const graph::NodeId begin = c * per;
        const graph::NodeId end = std::min<graph::NodeId>(begin + per, n);
        for (graph::NodeId w = begin; w < end; ++w) {
          if (is_seed[w]) continue;
          chunk_best.Offer(gain_of(w, c), w);
        }
        return chunk_best;
      }));
    }
    for (auto& future : futures) {
      const BestGain chunk_best = future.get();
      if (chunk_best.node != kInvalidNode) {
        best.Offer(chunk_best.gain, chunk_best.node);
      }
    }
    return best;
  };

  /// Commits one selected seed; returns false when the selection must stop
  /// (the on_prefix hook accepted this prefix).
  const auto commit = [&](graph::NodeId best) {
    seeds.push_back(best);
    is_seed[best] = true;
    walks->Truncate(best, [](uint32_t, double) {});
    if (kind == voting::ScoreKind::kCopeland) {
      tallies.Rebuild(evaluator, *walks);
    }
    const auto iteration = static_cast<uint32_t>(seeds.size());
    if (options.on_iteration) options.on_iteration(iteration, *walks);
    if (options.on_prefix && options.on_prefix(iteration, seeds, *walks)) {
      return false;
    }
    return true;
  };

  if (kind == voting::ScoreKind::kCumulative && options.lazy) {
    // CELF lazy evaluation: truncation only raises walk values toward 1 and
    // shortens effective lengths, so cumulative marginal gains never grow as
    // seeds are added — a gain computed in an earlier round upper-bounds the
    // current one. The heap orders entries by (gain desc, node id asc); the
    // top is re-evaluated until it is fresh for the current round, at which
    // point every other entry's true gain is below it under the same
    // ordering and the top is exactly the exhaustive scan's pick.
    struct Entry {
      double gain;
      graph::NodeId node;
      uint32_t round;  // seeds.size() when `gain` was computed
    };
    const auto below = [](const Entry& a, const Entry& b) {
      return a.gain < b.gain || (a.gain == b.gain && a.node > b.node);
    };
    // Round 0 evaluates every candidate once (the exhaustive first scan),
    // chunked over the pool when one exists.
    std::vector<Entry> entries(n);
    const auto init_chunk = [&](graph::NodeId begin, graph::NodeId end) {
      for (graph::NodeId w = begin; w < end; ++w) {
        entries[w] = Entry{CumulativeGain(*walks, w), w, 0};
      }
    };
    if (pool) {
      const uint32_t per = (n + scan_chunks - 1) / scan_chunks;
      std::vector<std::future<void>> futures;
      futures.reserve(scan_chunks);
      for (uint32_t c = 0; c < scan_chunks; ++c) {
        futures.push_back(pool->Submit([&, c] {
          init_chunk(c * per, std::min<graph::NodeId>((c + 1) * per, n));
        }));
      }
      for (auto& future : futures) future.get();
    } else {
      init_chunk(0, n);
    }
    gain_evaluations += n;
    std::priority_queue<Entry, std::vector<Entry>, decltype(below)> heap(
        below, std::move(entries));

    while (seeds.size() < k && !heap.empty()) {
      Entry top = heap.top();
      heap.pop();
      const auto round = static_cast<uint32_t>(seeds.size());
      if (top.round != round) {
        top.gain = CumulativeGain(*walks, top.node);
        top.round = round;
        ++gain_evaluations;
        heap.push(top);
        continue;
      }
      if (!commit(top.node)) break;
    }
  } else if (kind == voting::ScoreKind::kCumulative) {
    // Exhaustive baseline: one scan over the index per iteration computes
    // every candidate's marginal gain (paper § V-B).
    while (seeds.size() < k) {
      const BestGain best = parallel_best(
          [&](graph::NodeId w, uint32_t) { return CumulativeGain(*walks, w); });
      gain_evaluations += n - seeds.size();
      if (best.node == kInvalidNode) break;
      if (!commit(best.node)) break;
    }
  } else {
    // Rank-sensitive scores and Copeland: not submodular, so every
    // iteration scans all candidates — in parallel over id chunks, each
    // with its own accumulator scratch.
    std::vector<RankScratch> scratch;
    scratch.reserve(scan_chunks);
    for (uint32_t c = 0; c < scan_chunks; ++c) scratch.emplace_back(n);
    while (seeds.size() < k) {
      const BestGain best = parallel_best([&](graph::NodeId w, uint32_t c) {
        return RankGain(evaluator, *walks, tallies, w, scratch[c]);
      });
      gain_evaluations += n - seeds.size();
      if (best.node == kInvalidNode) break;
      if (!commit(best.node)) break;
    }
  }

  // Estimated final score for diagnostics.
  double estimated = 0.0;
  if (kind == voting::ScoreKind::kCumulative) {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (walks->Lambda(v) > 0) {
        estimated += walks->StartWeight(v) * walks->EstimatedOpinion(v);
      }
    }
  } else if (kind == voting::ScoreKind::kCopeland) {
    estimated = tallies.Score(evaluator);
  } else {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (walks->Lambda(v) > 0) {
        estimated +=
            walks->StartWeight(v) *
            evaluator.UserRankWeight(v, walks->EstimatedOpinion(v));
      }
    }
  }

  SelectionResult result;
  result.seeds = std::move(seeds);
  result.seconds = timer.Seconds();
  result.score = options.evaluate_exact
                     ? evaluator.EvaluateSeeds(result.seeds)
                     : estimated;
  result.diagnostics["estimated_score"] = estimated;
  result.diagnostics["walks"] = static_cast<double>(walks->num_walks());
  result.diagnostics["walk_memory_mb"] =
      static_cast<double>(walks->memory_bytes()) / (1024.0 * 1024.0);
  result.diagnostics["gain_evaluations"] =
      static_cast<double>(gain_evaluations);
  return result;
}

}  // namespace voteopt::core
