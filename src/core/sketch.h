// Sketch construction for the RS method (paper § VI): theta t-step reverse
// walks from uniformly sampled start nodes, plus the machinery for choosing
// theta — Thm. 13 with an OPT lower bound for the cumulative score, and the
// empirical convergence heuristic of § VI-E for the rank-based scores.
#ifndef VOTEOPT_CORE_SKETCH_H_
#define VOTEOPT_CORE_SKETCH_H_

#include <cstdint>
#include <memory>

#include "core/problem.h"
#include "core/walk_set.h"
#include "util/rng.h"

namespace voteopt::core {

/// Builds a sketch set: `theta` walks, each from a uniformly random start
/// (with replacement). Start weights are set to n * lambda_v / theta so the
/// estimated scores follow Eq. 35 / 42 / 47.
std::unique_ptr<WalkSet> BuildSketchSet(const ScoreEvaluator& evaluator,
                                        uint64_t theta, Rng* rng);

/// Knobs for the sharded sketch builder below.
struct SketchBuildOptions {
  /// Worker threads: 0 = one per hardware thread, 1 = run inline (no pool).
  uint32_t num_threads = 0;
  /// Walks per dispatch unit. A pure scheduling knob: walk j always draws
  /// from SketchWalkRng(master_seed, j), so block size never changes the
  /// output. Smaller blocks balance load better; larger blocks amortize
  /// dispatch.
  uint64_t block_size = 8192;
};

/// Sharded BuildSketchSet: walk j draws its start and trajectory from its
/// own per-walk stream SketchWalkRng(master_seed, j) (see walk_engine.h),
/// walks are generated in block-sized batches on a thread pool, and batches
/// are merged in walk-index order. The output is therefore a pure function
/// of (master_seed, theta) — bit-identical across runs, thread counts, AND
/// block sizes, and bit-identical to the out-of-core block engine
/// (sketch_ooc/) given the same seed. Estimates follow the same
/// Eq. 35 / 42 / 47 weighting as the serial builder and agree with it
/// within the Thm. 13 epsilon bound.
/// `options` is deliberately not defaulted: a literal-0 seed with a
/// defaulted options argument would be ambiguous against the Rng* overload.
std::unique_ptr<WalkSet> BuildSketchSet(const ScoreEvaluator& evaluator,
                                        uint64_t theta, uint64_t master_seed,
                                        const SketchBuildOptions& options);

/// Eq. 35/42/47 weighting: a start sampled lambda_v times represents
/// n * lambda_v / theta users. Call after WalkSet::Finalize. Shared by the
/// in-memory builders above and the out-of-core builder (sketch_ooc/).
void ApplySketchWeights(WalkSet* walks, uint32_t n, uint64_t theta);

/// Lower bound on OPT for the cumulative score. By monotonicity
/// OPT >= F(empty set), which the evaluator has already computed exactly;
/// OPT >= k because each seed contributes opinion 1 at its own node. The
/// returned value is max of both (never below 1).
double CumulativeOptLowerBound(const ScoreEvaluator& evaluator, uint32_t k);

/// Statistical refinement of the lower bound in the spirit of the
/// hypothesis test referenced by § VI-B (Algorithm 2 of [3]): tests
/// x = n/2, n/4, ... with progressively larger sketch sets and returns the
/// largest x for which the greedy estimate certifies OPT >= x, or
/// `fallback` when no x passes.
double RefineOptLowerBound(const ScoreEvaluator& evaluator, uint32_t k,
                           double epsilon, double fallback, Rng* rng);

/// § VI-E heuristic for the plurality variants and Copeland: doubles theta
/// from `theta_start` until the exact score of the RS-selected seed set
/// changes by less than `tol` (relative) between consecutive doublings, or
/// until `theta_cap`. Returns the converged theta.
uint64_t EstimateThetaByConvergence(const ScoreEvaluator& evaluator,
                                    uint32_t k, uint64_t theta_start,
                                    uint64_t theta_cap, double tol,
                                    uint64_t rng_seed);

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_SKETCH_H_
