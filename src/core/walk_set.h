// Storage for t-step reverse random walks with Post-Generation Truncation
// (paper § V-B, Thm. 9).
//
// Walks are generated once with the empty seed set and stored flat. For a
// seed set S, a walk's estimate Y(t)[S] is the initial opinion of the end
// node after truncating the walk at the first occurrence of a node of S;
// truncating at a seed sets the value to 1 (a seed's initial opinion is 1).
//
// An inverted index node -> (walk, first position) lets the greedy loop
// compute the marginal gains of every candidate seed in one scan over the
// index (paper § V-B time-complexity discussion), and truncation after a
// selection is O(#walks containing the new seed).
#ifndef VOTEOPT_CORE_WALK_SET_H_
#define VOTEOPT_CORE_WALK_SET_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace voteopt::core {

/// A worker-local batch of walks: concatenated node sequences plus per-walk
/// lengths. Cheaper than a WalkSet (no per-node state, no index), so shards
/// can be generated independently and merged into one WalkSet in a
/// deterministic order afterwards.
struct WalkBuffer {
  std::vector<graph::NodeId> nodes;  // concatenated walk nodes
  std::vector<uint32_t> lengths;     // per-walk length in nodes (>= 1)

  size_t num_walks() const { return lengths.size(); }
};

class WalkSet {
 public:
  /// One inverted-index posting: the walk and the first position (0-based,
  /// position 0 is the walk's start node) where the node occurs.
  struct Posting {
    uint32_t walk;
    uint32_t pos;
  };

  explicit WalkSet(uint32_t num_nodes);

  /// Appends a walk; `nodes` must be non-empty and nodes[0] is the start.
  void AddWalk(const std::vector<graph::NodeId>& nodes);

  /// Bulk-appends every walk of `buffer` in order. Equivalent to calling
  /// AddWalk per walk, but with a single nodes_ splice.
  void AddWalks(const WalkBuffer& buffer);

  /// Freezes the set: assigns each walk its no-seed value (the initial
  /// opinion of its end node) and builds the inverted index. Call exactly
  /// once, after all AddWalk calls.
  void Finalize(const std::vector<double>& initial_opinions);

  // --- static shape -------------------------------------------------------
  uint32_t num_nodes() const { return num_nodes_; }
  size_t num_walks() const { return starts_.size(); }
  /// lambda_v: number of walks starting at v.
  uint32_t Lambda(graph::NodeId v) const { return lambda_[v]; }
  graph::NodeId StartOf(uint32_t walk) const { return starts_[walk]; }
  size_t total_index_entries() const { return index_entries_.size(); }
  size_t memory_bytes() const;

  /// Per-start score weight: 1 for the RW method, n * lambda_v / theta for
  /// the RS sketches (default 1).
  void SetStartWeight(graph::NodeId v, double weight) {
    start_weight_[v] = weight;
  }
  double StartWeight(graph::NodeId v) const { return start_weight_[v]; }

  // --- dynamic state under the current seed set ---------------------------
  /// Current estimate Y of this walk (initial opinion of the effective end
  /// node; 1 once truncated at a seed).
  double Value(uint32_t walk) const { return values_[walk]; }
  /// Current effective length in nodes (after truncations).
  uint32_t EffectiveLen(uint32_t walk) const { return eff_len_[walk]; }
  /// Estimated opinion of start node v: average walk value (b-hat), or
  /// `fallback` when v has no walks (possible for sketches).
  double EstimatedOpinion(graph::NodeId v, double fallback = 0.0) const {
    return lambda_[v] == 0
               ? fallback
               : est_sum_[v] / static_cast<double>(lambda_[v]);
  }

  /// Postings of node w (walks that contain w), grouped contiguously.
  std::span<const Posting> PostingsOf(graph::NodeId w) const {
    return {index_entries_.data() + index_offsets_[w],
            index_entries_.data() + index_offsets_[w + 1]};
  }

  /// Makes w a seed: truncates every walk containing w at w's first
  /// occurrence and sets its value to 1. `on_change(walk, old_value)` is
  /// invoked for every walk whose value changed (old_value < 1).
  void Truncate(graph::NodeId w,
                const std::function<void(uint32_t, double)>& on_change);

 private:
  uint32_t num_nodes_;
  bool finalized_ = false;

  std::vector<graph::NodeId> nodes_;   // concatenated walk nodes
  std::vector<uint64_t> offsets_;      // per-walk begin; size num_walks+1
  std::vector<graph::NodeId> starts_;  // per-walk start node
  std::vector<uint32_t> eff_len_;      // per-walk effective length
  std::vector<double> values_;         // per-walk current Y value

  std::vector<uint32_t> lambda_;       // per-node walk count
  std::vector<double> est_sum_;        // per-node sum of walk values
  std::vector<double> start_weight_;   // per-node score weight

  std::vector<uint64_t> index_offsets_;
  std::vector<Posting> index_entries_;
};

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_WALK_SET_H_
