// Storage for t-step reverse random walks with Post-Generation Truncation
// (paper § V-B, Thm. 9).
//
// Walks are generated once with the empty seed set and stored flat. For a
// seed set S, a walk's estimate Y(t)[S] is the initial opinion of the end
// node after truncating the walk at the first occurrence of a node of S;
// truncating at a seed sets the value to 1 (a seed's initial opinion is 1).
//
// An inverted index node -> (walk, first position) lets the greedy loop
// compute the marginal gains of every candidate seed in one scan over the
// index (paper § V-B time-complexity discussion), and truncation after a
// selection is O(#walks containing the new seed).
//
// A WalkSet is split into two layers:
//  * FROZEN data — the walk nodes, offsets, starts, per-node walk counts
//    and weights, and the inverted index. Immutable after Finalize, exposed
//    as spans for serialization (store/), and adoptable from externally
//    owned memory (e.g. an mmap'd sketch file) without copying.
//  * DYNAMIC state — per-walk values / effective lengths and per-node
//    estimate sums under the current seed set. Always owned, mutated by
//    Truncate, and rebuildable in O(total walk nodes) with ResetValues so
//    one frozen sketch can serve many queries.
//
// Threading contract (docs/ARCHITECTURE.md): the frozen layer is immutable
// after Finalize/AdoptFrozen and safe to read from any number of threads;
// the dynamic state is single-owner and must only be touched by one thread
// at a time. ShareFrozen clones a WalkSet by aliasing the frozen spans
// (zero-copy) while giving the clone its own dynamic state — that is how a
// concurrent server runs independent truncation-heavy queries against one
// shared sketch without locks.
#ifndef VOTEOPT_CORE_WALK_SET_H_
#define VOTEOPT_CORE_WALK_SET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace voteopt::core {

/// A worker-local batch of walks: concatenated node sequences plus per-walk
/// lengths. Cheaper than a WalkSet (no per-node state, no index), so shards
/// can be generated independently and merged into one WalkSet in a
/// deterministic order afterwards.
struct WalkBuffer {
  std::vector<graph::NodeId> nodes;  // concatenated walk nodes
  std::vector<uint32_t> lengths;     // per-walk length in nodes (>= 1)

  size_t num_walks() const { return lengths.size(); }
};

class WalkSet {
 public:
  /// One inverted-index posting: the walk and the first position (0-based,
  /// position 0 is the walk's start node) where the node occurs.
  struct Posting {
    uint32_t walk;
    uint32_t pos;
  };

  /// The frozen (immutable) layer as span views. After Finalize the spans
  /// alias the WalkSet's own vectors; after AdoptFrozen they alias external
  /// storage such as an mmap'd file.
  struct Frozen {
    std::span<const graph::NodeId> nodes;     // concatenated walk nodes
    std::span<const uint64_t> offsets;        // per-walk begin; num_walks+1
    std::span<const graph::NodeId> starts;    // per-walk start node
    std::span<const uint32_t> lambda;         // per-node walk count
    std::span<const double> start_weight;     // per-node score weight
    std::span<const uint64_t> index_offsets;  // num_nodes+1
    std::span<const Posting> index_entries;
  };

  explicit WalkSet(uint32_t num_nodes);

  // After Finalize the frozen views alias this object's own vectors, so
  // copying must re-point them at the copy's storage (an implicit shallow
  // copy would dangle once the source dies). Adopted sets share the
  // keep-alive instead — both copies read the same immutable mapping.
  // Moves are safe as-is: vector buffers transfer and the spans keep
  // pointing at them.
  WalkSet(const WalkSet& other);
  WalkSet& operator=(const WalkSet& other);
  WalkSet(WalkSet&&) = default;
  WalkSet& operator=(WalkSet&&) = default;

  /// Adopts externally owned frozen data without copying; `keep_alive` pins
  /// the backing storage (e.g. the mmap) for the WalkSet's lifetime. The
  /// caller must have validated internal consistency (the sketch store
  /// does). Dynamic state is empty until ResetValues is called.
  static std::unique_ptr<WalkSet> AdoptFrozen(
      uint32_t num_nodes, const Frozen& frozen,
      std::shared_ptr<const void> keep_alive);

  /// A new WalkSet aliasing this set's frozen layer (zero-copy) with its
  /// own — initially empty — dynamic state: the cheap per-worker clone
  /// behind concurrent serving. For an adopted set the existing keep-alive
  /// (e.g. the mmap) is shared and `keep_alive` may be null; for an owned
  /// set `keep_alive` must pin this WalkSet (e.g. a shared_ptr aliasing
  /// it), since the clone's views point into this object's vectors. Call
  /// ResetValues on the clone before use. Requires Finalize/AdoptFrozen.
  std::unique_ptr<WalkSet> ShareFrozen(
      std::shared_ptr<const void> keep_alive = nullptr) const;

  /// Appends a walk; `nodes` must be non-empty and nodes[0] is the start.
  void AddWalk(const std::vector<graph::NodeId>& nodes);

  /// Bulk-appends every walk of `buffer` in order. Equivalent to calling
  /// AddWalk per walk, but with a single nodes_ splice.
  void AddWalks(const WalkBuffer& buffer);

  /// Freezes the set: builds the inverted index and derives the dynamic
  /// state from `initial_opinions` (each walk's no-seed value is the
  /// initial opinion of its end node). Call exactly once, after all
  /// AddWalk calls.
  void Finalize(const std::vector<double>& initial_opinions);

  /// (Re-)derives the dynamic state from `initial_opinions`, undoing every
  /// truncation in one O(num_walks) pass — far cheaper than regenerating
  /// walks or rebuilding the index. Requires Finalize or AdoptFrozen; this
  /// is how a persisted sketch is reused across queries (and across
  /// updated campaign opinions).
  void ResetValues(const std::vector<double>& initial_opinions);

  // --- static shape -------------------------------------------------------
  uint32_t num_nodes() const { return num_nodes_; }
  size_t num_walks() const {
    return finalized_ ? frozen_.starts.size() : starts_.size();
  }
  /// lambda_v: number of walks starting at v.
  uint32_t Lambda(graph::NodeId v) const {
    return finalized_ ? frozen_.lambda[v] : lambda_[v];
  }
  graph::NodeId StartOf(uint32_t walk) const { return frozen_.starts[walk]; }
  size_t total_index_entries() const { return frozen_.index_entries.size(); }
  size_t memory_bytes() const;

  /// The frozen layer (requires Finalize / AdoptFrozen). This is what the
  /// sketch store serializes; saving is a pure function of these spans.
  const Frozen& frozen() const { return frozen_; }
  /// True when the frozen data lives in adopted external storage.
  bool adopted() const { return adopted_; }

  /// Per-start score weight: 1 for the RW method, n * lambda_v / theta for
  /// the RS sketches (default 1). Only valid on owned (non-adopted) sets;
  /// persisted sketches carry their weights in the file.
  void SetStartWeight(graph::NodeId v, double weight);
  double StartWeight(graph::NodeId v) const { return frozen_.start_weight[v]; }

  // --- dynamic state under the current seed set ---------------------------
  /// Current estimate Y of this walk (initial opinion of the effective end
  /// node; 1 once truncated at a seed).
  double Value(uint32_t walk) const { return values_[walk]; }
  /// Current effective length in nodes (after truncations).
  uint32_t EffectiveLen(uint32_t walk) const { return eff_len_[walk]; }
  /// Estimated opinion of start node v: average walk value (b-hat), or
  /// `fallback` when v has no walks (possible for sketches).
  double EstimatedOpinion(graph::NodeId v, double fallback = 0.0) const {
    const uint32_t lambda = frozen_.lambda[v];
    return lambda == 0 ? fallback
                       : est_sum_[v] / static_cast<double>(lambda);
  }

  /// Postings of node w (walks that contain w), grouped contiguously.
  std::span<const Posting> PostingsOf(graph::NodeId w) const {
    return frozen_.index_entries.subspan(
        frozen_.index_offsets[w],
        frozen_.index_offsets[w + 1] - frozen_.index_offsets[w]);
  }

  /// Makes w a seed: truncates every walk containing w at w's first
  /// occurrence and sets its value to 1. `on_change(walk, old_value)` is
  /// invoked for every walk whose value changed (old_value < 1).
  void Truncate(graph::NodeId w,
                const std::function<void(uint32_t, double)>& on_change);

 private:
  /// Points the frozen views at the owned vectors.
  void FreezeOwned();
  /// Counting-sort construction of the first-occurrence inverted index.
  void BuildIndex();

  uint32_t num_nodes_;
  bool finalized_ = false;
  bool adopted_ = false;

  // Owned frozen storage (build path; empty after AdoptFrozen).
  std::vector<graph::NodeId> nodes_;   // concatenated walk nodes
  std::vector<uint64_t> offsets_;      // per-walk begin; size num_walks+1
  std::vector<graph::NodeId> starts_;  // per-walk start node
  std::vector<uint32_t> lambda_;       // per-node walk count
  std::vector<double> start_weight_;   // per-node score weight
  std::vector<uint64_t> index_offsets_;
  std::vector<Posting> index_entries_;
  /// Pins adopted external storage (mmap) for the WalkSet's lifetime.
  std::shared_ptr<const void> keep_alive_;

  Frozen frozen_;  // views over the owned vectors or adopted storage

  // Dynamic state (always owned, rebuilt by ResetValues).
  std::vector<uint32_t> eff_len_;  // per-walk effective length
  std::vector<double> values_;     // per-walk current Y value
  std::vector<double> est_sum_;    // per-node sum of walk values
};

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_WALK_SET_H_
