#include "core/problem.h"

namespace voteopt::core {

Status FJVoteProblem::Validate() const {
  if (graph == nullptr || state == nullptr) {
    return Status::InvalidArgument("graph and state must be set");
  }
  VOTEOPT_RETURN_IF_ERROR(state->Validate(graph->num_nodes()));
  if (target >= state->num_candidates()) {
    return Status::InvalidArgument("target candidate id out of range");
  }
  if (k == 0 || k > graph->num_nodes()) {
    return Status::InvalidArgument("seed budget k must be in [1, n]");
  }
  VOTEOPT_RETURN_IF_ERROR(spec.Validate(state->num_candidates()));
  if (!graph->IsColumnStochastic(1e-6)) {
    return Status::FailedPrecondition(
        "influence matrix must be column-stochastic (normalize incoming "
        "weights)");
  }
  return Status::OK();
}

}  // namespace voteopt::core
