// The paper's RS method (§ VI, Algorithm 5) — its recommended algorithm:
// theta reverse walks from uniformly sampled start nodes, greedy selection
// on the sketch estimates. theta follows Thm. 13 (cumulative, via an OPT
// lower bound) or the § VI-E convergence heuristic (plurality variants /
// Copeland).
#ifndef VOTEOPT_CORE_RS_GREEDY_H_
#define VOTEOPT_CORE_RS_GREEDY_H_

#include "core/problem.h"

namespace voteopt::core {

struct RSOptions {
  /// Approximation slack of Thm. 13 (paper default 0.1).
  double epsilon = 0.1;
  /// Failure exponent: success probability 1 - n^-l (paper uses l = 1).
  double l = 1.0;
  /// If > 0, skip theta estimation and use exactly this many sketches.
  uint64_t theta_override = 0;
  /// Hard cap on theta (sketching only beats RW when theta << n * lambda;
  /// at bench scale the Thm. 13 value can exceed it).
  uint64_t theta_cap = 1u << 22;
  /// Run the statistical OPT lower-bound refinement (cumulative only).
  bool refine_opt_bound = false;
  /// Convergence heuristic knobs (plurality variants / Copeland).
  uint64_t theta_start = 256;
  double convergence_tol = 0.02;
  uint64_t rng_seed = 42;
  /// Worker threads for sketch construction AND the per-iteration gain
  /// scan of the rank-sensitive / Copeland selection paths: 0 = one per
  /// hardware thread, N = exactly N workers (1 runs inline). All counts go
  /// through the sharded fixed-block builder and the deterministic chunked
  /// scan, so seeds and scores are identical for every value.
  uint32_t num_threads = 1;
};

/// Algorithm 5. Diagnostics: "theta", "opt_lower_bound", "walks",
/// "walk_memory_mb", "estimated_score".
SelectionResult RSGreedySelect(const ScoreEvaluator& evaluator, uint32_t k,
                               const RSOptions& options = RSOptions());

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_RS_GREEDY_H_
