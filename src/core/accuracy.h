// Sample-size bounds for the estimators (paper § V-C and § VI-B):
//
//   Thm. 10 (cumulative):   lambda_v >= ln(2/(1-rho)) / (2 delta^2)
//   Thm. 11 (plurality):    lambda_v >= ln(2/(1-rho)) / (2 gamma_v^2)
//   Thm. 12 (Copeland):     lambda_v >= ln(1/(1-rho)) / (2 gamma_v^2)
//   Thm. 13 (sketches):     theta    >= Eq. 40 (needs a lower bound on OPT)
//
// plus the greedy heuristic of § V-C that estimates
// gamma*_v = min_{|S| <= k} gamma_v[S], the smallest margin between the
// target's opinion and any competitor's opinion for user v along the greedy
// seeding path.
#ifndef VOTEOPT_CORE_ACCURACY_H_
#define VOTEOPT_CORE_ACCURACY_H_

#include <cstdint>
#include <vector>

#include "core/problem.h"
#include "util/rng.h"

namespace voteopt::core {

/// Thm. 10: walks per node so that |b-hat - b| < delta with prob >= rho.
uint64_t LambdaForCumulative(double delta, double rho);

/// Thm. 11 (two-sided, plurality variants) / Thm. 12 (one-sided, Copeland):
/// walks per node so the estimated ranking of the target vs each competitor
/// is correct with probability >= rho, given margin gamma.
uint64_t LambdaFromGamma(double gamma, double rho, bool one_sided);

/// Thm. 13 / Eq. 40: number of sketches for a (1 - 1/e - epsilon)-
/// approximation with probability >= 1 - n^-l, given OPT >= opt_lower_bound.
double ThetaForCumulative(uint64_t n, uint32_t k, double epsilon, double l,
                          double opt_lower_bound);

/// ln C(n, k) via lgamma (used by Eq. 39/40 and by tests).
double LogBinomial(uint64_t n, uint64_t k);

struct GammaOptions {
  /// alpha: walks per node for the cheap estimation pass (§ V-C suggests
  /// ln(2/(1-rho)) / (2 delta^2); a small constant works well in practice).
  uint32_t alpha_walks = 16;
  /// Lower clamp on the returned gamma (prevents lambda -> infinity when a
  /// user's margin crosses zero along the greedy path).
  double gamma_floor = 0.02;
  uint64_t rng_seed = 0x5EEDBEEF;
};

/// § V-C heuristic: estimates gamma*_v for every user by sweeping a greedy
/// cumulative seeding path S_0 = {} . S_1 . ... . S_k on alpha walks per
/// node and taking the minimum observed margin min_i gamma_v[S_i].
std::vector<double> EstimateGammaStar(const ScoreEvaluator& evaluator,
                                      uint32_t k, const GammaOptions& options);

/// Per-node lambda from gamma* with a cap (memory guard).
std::vector<uint64_t> LambdasFromGammaStar(const std::vector<double>& gamma,
                                           double rho, bool one_sided,
                                           uint64_t lambda_cap);

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_ACCURACY_H_
