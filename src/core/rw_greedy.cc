#include "core/rw_greedy.h"

#include <algorithm>

#include "core/estimated_greedy.h"
#include "core/walk_engine.h"
#include "core/walk_set.h"
#include "graph/alias_table.h"
#include "util/timer.h"

namespace voteopt::core {

SelectionResult RWGreedySelect(const ScoreEvaluator& evaluator, uint32_t k,
                               const RWOptions& options) {
  WallTimer timer;
  const graph::Graph& g = evaluator.model().graph();
  const uint32_t n = g.num_nodes();
  Rng rng(options.rng_seed);

  // Per-node walk counts from the score-specific accuracy bound.
  std::vector<uint64_t> lambdas;
  if (options.lambda_override > 0) {
    lambdas.assign(n, options.lambda_override);
  } else {
    switch (evaluator.spec().kind) {
      case voting::ScoreKind::kCumulative:
        lambdas.assign(n, std::min<uint64_t>(
                              LambdaForCumulative(options.delta, options.rho),
                              options.lambda_cap));
        break;
      case voting::ScoreKind::kCopeland: {
        const std::vector<double> gamma =
            EstimateGammaStar(evaluator, k, options.gamma);
        lambdas = LambdasFromGammaStar(gamma, options.rho, /*one_sided=*/true,
                                       options.lambda_cap);
        break;
      }
      default: {  // plurality variants
        const std::vector<double> gamma =
            EstimateGammaStar(evaluator, k, options.gamma);
        lambdas = LambdasFromGammaStar(gamma, options.rho, /*one_sided=*/false,
                                       options.lambda_cap);
        break;
      }
    }
  }

  graph::AliasSampler alias(g);
  WalkEngine engine(g, evaluator.target_campaign(), alias);
  WalkSet walks(n);
  std::vector<graph::NodeId> scratch;
  double lambda_sum = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    lambda_sum += static_cast<double>(lambdas[v]);
    for (uint64_t j = 0; j < lambdas[v]; ++j) {
      engine.Generate(v, evaluator.horizon(), &rng, &scratch);
      walks.AddWalk(scratch);
    }
  }
  walks.Finalize(evaluator.target_campaign().initial_opinions);
  const double generation_seconds = timer.Seconds();

  SelectionResult result = EstimatedGreedySelect(evaluator, k, &walks);
  result.seconds = timer.Seconds();
  result.diagnostics["lambda_mean"] = lambda_sum / static_cast<double>(n);
  result.diagnostics["generation_seconds"] = generation_seconds;
  return result;
}

}  // namespace voteopt::core
