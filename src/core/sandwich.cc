#include "core/sandwich.h"

#include <algorithm>
#include <cmath>
#include <cassert>
#include <queue>
#include <tuple>

#include "core/greedy_dm.h"
#include "graph/traversal.h"
#include "util/timer.h"

namespace voteopt::core {

std::vector<graph::NodeId> FavorableUsers(const ScoreEvaluator& evaluator) {
  const auto& base = evaluator.HorizonOpinions(evaluator.target());
  const uint32_t p =
      evaluator.spec().kind == voting::ScoreKind::kPlurality ||
              evaluator.spec().kind == voting::ScoreKind::kCopeland
          ? 1
          : evaluator.spec().p;
  std::vector<graph::NodeId> favorable;
  for (uint32_t v = 0; v < evaluator.num_users(); ++v) {
    if (evaluator.UserRank(v, base[v]) <= p) favorable.push_back(v);
  }
  return favorable;
}

std::vector<graph::NodeId> WeaklyFavorableUsers(
    const ScoreEvaluator& evaluator) {
  const auto& base = evaluator.HorizonOpinions(evaluator.target());
  std::vector<graph::NodeId> weakly;
  for (uint32_t v = 0; v < evaluator.num_users(); ++v) {
    // Prefers the target to at least one competitor: b_qv > min_x b_xv.
    double min_competitor = std::numeric_limits<double>::infinity();
    for (opinion::CandidateId x = 0; x < evaluator.num_candidates(); ++x) {
      if (x == evaluator.target()) continue;
      min_competitor =
          std::min(min_competitor, evaluator.HorizonOpinions(x)[v]);
    }
    if (base[v] > min_competitor) weakly.push_back(v);
  }
  return weakly;
}

BoundResult MaximizeUpperBound(const ScoreEvaluator& evaluator, uint32_t k,
                               const std::vector<graph::NodeId>& base,
                               double unit_weight) {
  WallTimer timer;
  const graph::Graph& g = evaluator.model().graph();
  const uint32_t n = g.num_nodes();
  const uint32_t t = evaluator.horizon();
  k = std::min<uint32_t>(k, n);

  std::vector<bool> covered(n, false);
  size_t covered_count = 0;
  for (graph::NodeId v : base) {
    if (!covered[v]) {
      covered[v] = true;
      ++covered_count;
    }
  }

  graph::HopLimitedBfs bfs(g, graph::Direction::kForward);
  auto fresh_gain = [&](graph::NodeId s) {
    size_t newly = 0;
    bfs.Run({s}, t, [&](graph::NodeId v, uint32_t) {
      if (!covered[v]) ++newly;
    });
    return newly;
  };

  // Lazy greedy; valid since coverage is monotone submodular (Thm. 6/7).
  using Entry = std::tuple<size_t, graph::NodeId, uint32_t>;
  auto cmp = [](const Entry& a, const Entry& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) > std::get<1>(b);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);
  for (graph::NodeId s = 0; s < n; ++s) {
    // Optimistic initial bound: everything within t hops could be new.
    queue.emplace(fresh_gain(s), s, 0);
  }

  BoundResult result;
  std::vector<bool> chosen(n, false);
  uint32_t round = 0;
  while (result.seeds.size() < k && !queue.empty()) {
    auto [gain, s, at] = queue.top();
    queue.pop();
    if (chosen[s]) continue;
    if (at == round) {
      chosen[s] = true;
      result.seeds.push_back(s);
      bfs.Run({s}, t, [&](graph::NodeId v, uint32_t) {
        if (!covered[v]) {
          covered[v] = true;
          ++covered_count;
        }
      });
      ++round;
    } else {
      queue.emplace(fresh_gain(s), s, round);
    }
  }
  result.bound_value = unit_weight * static_cast<double>(covered_count);
  result.seconds = timer.Seconds();
  return result;
}

BoundResult MaximizeLowerBound(const ScoreEvaluator& evaluator, uint32_t k,
                               const std::vector<graph::NodeId>& favorable,
                               double omega_p) {
  WallTimer timer;
  const uint32_t n = evaluator.num_users();
  k = std::min<uint32_t>(k, n);
  std::vector<bool> in_favorable(n, false);
  for (graph::NodeId v : favorable) in_favorable[v] = true;

  DeltaPropagator propagator(evaluator);
  std::vector<graph::NodeId> touched;
  auto restricted_gain = [&](graph::NodeId w) {
    const auto& delta = propagator.ComputeDelta(w, &touched);
    double gain = 0.0;
    for (graph::NodeId v : touched) {
      if (in_favorable[v]) gain += delta[v];
    }
    return gain;
  };

  // CELF over the restricted cumulative sum (submodular by Thm. 3).
  using Entry = std::tuple<double, graph::NodeId, uint32_t>;
  auto cmp = [](const Entry& a, const Entry& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) > std::get<1>(b);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);
  for (graph::NodeId s = 0; s < n; ++s) queue.emplace(restricted_gain(s), s, 0);

  BoundResult result;
  std::vector<bool> chosen(n, false);
  while (result.seeds.size() < k && !queue.empty()) {
    auto [gain, s, at] = queue.top();
    queue.pop();
    if (chosen[s]) continue;
    if (at == result.seeds.size()) {
      chosen[s] = true;
      result.seeds.push_back(s);
      propagator.SetSeeds(result.seeds);
    } else {
      queue.emplace(restricted_gain(s), s,
                    static_cast<uint32_t>(result.seeds.size()));
    }
  }
  double lb = 0.0;
  const auto& horizon = propagator.base_horizon();
  for (graph::NodeId v : favorable) lb += horizon[v];
  result.bound_value = omega_p * lb;
  result.seconds = timer.Seconds();
  return result;
}

SelectionResult SandwichSelect(const ScoreEvaluator& evaluator, uint32_t k,
                               const SandwichOptions& options) {
  WallTimer timer;
  SeedSelector feasible = options.feasible;
  if (!feasible) {
    feasible = [](const ScoreEvaluator& ev, uint32_t budget) {
      return GreedyDMSelect(ev, budget);
    };
  }
  const auto kind = evaluator.spec().kind;
  if (kind == voting::ScoreKind::kCumulative) {
    return feasible(evaluator, k);  // submodular: no sandwich required
  }

  SelectionResult sf = feasible(evaluator, k);

  const uint32_t n = evaluator.num_users();
  const uint32_t r = evaluator.num_candidates();
  BoundResult su;
  BoundResult sl;
  bool have_lower = false;
  if (kind == voting::ScoreKind::kCopeland) {
    const double unit = static_cast<double>(r - 1) /
                        (std::floor(static_cast<double>(n) / 2.0) + 1.0);
    su = MaximizeUpperBound(evaluator, k, WeaklyFavorableUsers(evaluator),
                            unit);
  } else {
    const std::vector<graph::NodeId> favorable = FavorableUsers(evaluator);
    const double omega1 = evaluator.spec().RankWeight(1);
    su = MaximizeUpperBound(evaluator, k, favorable, omega1);
    const double omega_p = evaluator.spec().RankWeight(evaluator.spec().p);
    sl = MaximizeLowerBound(evaluator, k, favorable, omega_p);
    have_lower = true;
  }

  const double f_su = evaluator.EvaluateSeeds(su.seeds);
  const double f_sl = have_lower ? evaluator.EvaluateSeeds(sl.seeds) : -1.0;

  SelectionResult best = sf;
  const char* origin = "SF";
  if (f_su > best.score) {
    best.seeds = su.seeds;
    best.score = f_su;
    origin = "SU";
  }
  if (have_lower && f_sl > best.score) {
    best.seeds = sl.seeds;
    best.score = f_sl;
    origin = "SL";
  }
  best.seconds = timer.Seconds();
  best.diagnostics["score_SF"] = sf.score;
  best.diagnostics["score_SU"] = f_su;
  if (have_lower) best.diagnostics["score_SL"] = f_sl;
  best.diagnostics["UB_at_SU"] = su.bound_value;
  // Empirical sandwich factor F(S_U)/UB(S_U) of Eq. 20 / Fig. 2.
  best.diagnostics["sandwich_ratio"] =
      su.bound_value > 0.0 ? f_su / su.bound_value : 1.0;
  best.diagnostics["origin"] = origin == std::string("SF")   ? 0.0
                               : origin == std::string("SU") ? 1.0
                                                             : 2.0;
  return best;
}

}  // namespace voteopt::core
