#include "core/walk_engine.h"

namespace voteopt::core {

void WalkEngine::Extend(graph::NodeId start, uint32_t horizon, Rng* rng,
                        std::vector<graph::NodeId>* nodes) const {
  graph::NodeId current = start;
  for (uint32_t step = 0; step < horizon; ++step) {
    const double d = campaign_->stubbornness[current];
    if (d >= 1.0 || (d > 0.0 && rng->Uniform() < d)) break;  // absorbed
    const graph::NodeId next = alias_->SampleInNeighbor(current, rng);
    if (next == graph::AliasSampler::kNoNeighbor) break;  // no in-edges
    nodes->push_back(next);
    current = next;
  }
}

void WalkEngine::Generate(graph::NodeId start, uint32_t horizon, Rng* rng,
                          std::vector<graph::NodeId>* out) const {
  out->clear();
  out->push_back(start);
  Extend(start, horizon, rng, out);
}

void WalkEngine::GenerateBatch(uint64_t count, uint32_t horizon, Rng* rng,
                               WalkBuffer* out) const {
  const uint64_t n = graph_->num_nodes();
  for (uint64_t j = 0; j < count; ++j) {
    const auto start = static_cast<graph::NodeId>(rng->UniformInt(n));
    const size_t before = out->nodes.size();
    out->nodes.push_back(start);
    Extend(start, horizon, rng, &out->nodes);
    out->lengths.push_back(static_cast<uint32_t>(out->nodes.size() - before));
  }
}

void WalkEngine::GenerateSeeded(uint64_t first_walk, uint64_t count,
                                uint32_t horizon, uint64_t master_seed,
                                WalkBuffer* out) const {
  const uint64_t n = graph_->num_nodes();
  for (uint64_t j = 0; j < count; ++j) {
    Rng rng = SketchWalkRng(master_seed, first_walk + j);
    const auto start = static_cast<graph::NodeId>(rng.UniformInt(n));
    const size_t before = out->nodes.size();
    out->nodes.push_back(start);
    Extend(start, horizon, &rng, &out->nodes);
    out->lengths.push_back(static_cast<uint32_t>(out->nodes.size() - before));
  }
}

double WalkEngine::GenerateWithSeeds(graph::NodeId start, uint32_t horizon,
                                     const std::vector<bool>& is_seed,
                                     Rng* rng) const {
  graph::NodeId current = start;
  for (uint32_t step = 0; step < horizon; ++step) {
    if (is_seed[current]) break;  // d[S] = 1: absorbed at the seed
    const double d = campaign_->stubbornness[current];
    if (d >= 1.0 || (d > 0.0 && rng->Uniform() < d)) break;
    const graph::NodeId next = alias_->SampleInNeighbor(current, rng);
    if (next == graph::AliasSampler::kNoNeighbor) break;
    current = next;
  }
  return is_seed[current] ? 1.0 : campaign_->initial_opinions[current];
}

}  // namespace voteopt::core
