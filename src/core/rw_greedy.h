// The paper's RW method (§ V, Algorithm 4): generate lambda_v t-step
// reverse random walks from every node once, then run the greedy loop with
// Post-Generation Truncation. lambda_v follows Thm. 10 for the cumulative
// score (driven by delta, rho) and Thms. 11/12 for the rank-based scores
// (driven by the estimated margins gamma*_v and rho).
#ifndef VOTEOPT_CORE_RW_GREEDY_H_
#define VOTEOPT_CORE_RW_GREEDY_H_

#include "core/accuracy.h"
#include "core/problem.h"

namespace voteopt::core {

struct RWOptions {
  /// Success probability of the per-user estimates (paper default 0.9).
  double rho = 0.9;
  /// Additive opinion error for the cumulative score (paper default 0.1).
  double delta = 0.1;
  /// Upper clamp on lambda_v (memory guard for tiny margins).
  uint64_t lambda_cap = 1024;
  /// If > 0, use this lambda for every node and skip the bound machinery
  /// (used by ablations and parameter sweeps).
  uint64_t lambda_override = 0;
  /// gamma* estimation knobs (plurality variants / Copeland only).
  GammaOptions gamma;
  uint64_t rng_seed = 42;
};

/// Algorithm 4. Diagnostics: "lambda_mean", "walks", "walk_memory_mb",
/// "estimated_score".
SelectionResult RWGreedySelect(const ScoreEvaluator& evaluator, uint32_t k,
                               const RWOptions& options = RWOptions());

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_RW_GREEDY_H_
