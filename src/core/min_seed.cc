#include "core/min_seed.h"

#include <algorithm>
#include <utility>

namespace voteopt::core {

bool TargetWins(const ScoreEvaluator& evaluator,
                const std::vector<graph::NodeId>& seeds) {
  const std::vector<double> scores =
      evaluator.ScoresAllCandidates(evaluator.TargetHorizonOpinions(seeds));
  const double target_score = scores[evaluator.target()];
  for (opinion::CandidateId x = 0; x < scores.size(); ++x) {
    if (x == evaluator.target()) continue;
    if (scores[x] >= target_score) return false;
  }
  return true;
}

MinSeedResult MinSeedsToWin(const ScoreEvaluator& evaluator,
                            const SeedSelector& selector, uint32_t k_max) {
  MinSeedResult result;
  if (TargetWins(evaluator, {})) {
    result.achievable = true;
    result.k_star = 0;
    return result;
  }

  const uint32_t n = evaluator.num_users();
  const uint32_t upper = (k_max == 0 || k_max > n) ? n : k_max;

  // Check feasibility at the maximum budget first.
  SelectionResult at_upper = selector(evaluator, upper);
  ++result.selector_calls;
  if (!TargetWins(evaluator, at_upper.seeds)) {
    result.achievable = false;
    result.k_star = upper;
    result.seeds = std::move(at_upper.seeds);
    return result;
  }
  result.achievable = true;
  result.k_star = upper;
  result.seeds = std::move(at_upper.seeds);

  // Binary search: invariant — target loses at `lower`, wins with
  // result.seeds of size result.k_star <= upper. Correct exactly when the
  // winning predicate is monotone in the budget, which the greedy
  // selectors guarantee through prefix nesting (see min_seed.h).
  uint32_t lower = 0;
  while (result.k_star - lower > 1) {
    const uint32_t mid = lower + (result.k_star - lower) / 2;
    SelectionResult attempt = selector(evaluator, mid);
    ++result.selector_calls;
    if (TargetWins(evaluator, attempt.seeds)) {
      result.k_star = mid;
      result.seeds = std::move(attempt.seeds);
    } else {
      lower = mid;
    }
  }
  return result;
}

MinSeedResult MinSeedsToWinSinglePass(const ScoreEvaluator& evaluator,
                                      const PrefixSelector& selector,
                                      uint32_t k_max) {
  MinSeedResult result;
  if (TargetWins(evaluator, {})) {
    result.achievable = true;
    result.k_star = 0;
    return result;
  }

  const uint32_t n = evaluator.num_users();
  const uint32_t upper = (k_max == 0 || k_max > n) ? n : k_max;

  // One selection at the full budget; prefix nesting means the budget-j
  // greedy set IS the length-j prefix, so the first winning prefix is the
  // binary search's k*. The winning prefix is captured here rather than
  // taken from the returned result, so a selector that keeps selecting
  // after the stop signal still yields the right seed set.
  uint32_t winning_len = 0;
  std::vector<graph::NodeId> winning_seeds;
  const PrefixCallback on_prefix =
      [&](uint32_t len, const std::vector<graph::NodeId>& prefix) {
        if (!TargetWins(evaluator, prefix)) return false;
        winning_len = len;
        winning_seeds = prefix;
        return true;  // stop selecting: this prefix already wins
      };
  SelectionResult full = selector(evaluator, upper, on_prefix);
  ++result.selector_calls;

  if (winning_len > 0) {
    result.achievable = true;
    result.k_star = winning_len;
    result.seeds = std::move(winning_seeds);
  } else {
    result.achievable = false;
    result.k_star = upper;  // reports the exhausted budget, like the search
    result.seeds = std::move(full.seeds);
  }
  return result;
}

}  // namespace voteopt::core
