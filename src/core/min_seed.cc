#include "core/min_seed.h"

#include <algorithm>

namespace voteopt::core {

bool TargetWins(const ScoreEvaluator& evaluator,
                const std::vector<graph::NodeId>& seeds) {
  const std::vector<double> scores =
      evaluator.ScoresAllCandidates(evaluator.TargetHorizonOpinions(seeds));
  const double target_score = scores[evaluator.target()];
  for (opinion::CandidateId x = 0; x < scores.size(); ++x) {
    if (x == evaluator.target()) continue;
    if (scores[x] >= target_score) return false;
  }
  return true;
}

MinSeedResult MinSeedsToWin(const ScoreEvaluator& evaluator,
                            const SeedSelector& selector, uint32_t k_max) {
  MinSeedResult result;
  if (TargetWins(evaluator, {})) {
    result.achievable = true;
    result.k_star = 0;
    return result;
  }

  const uint32_t n = evaluator.num_users();
  uint32_t upper = (k_max == 0 || k_max > n) ? n : k_max;

  // Check feasibility at the maximum budget first.
  SelectionResult at_upper = selector(evaluator, upper);
  ++result.selector_calls;
  if (!TargetWins(evaluator, at_upper.seeds)) {
    result.achievable = false;
    result.k_star = upper;
    result.seeds = std::move(at_upper.seeds);
    return result;
  }
  result.achievable = true;
  result.k_star = upper;
  result.seeds = at_upper.seeds;

  // Binary search: invariant — target loses at `lower`, wins with
  // result.seeds of size result.k_star <= upper.
  uint32_t lower = 0;
  while (result.k_star - lower > 1) {
    const uint32_t mid = lower + (result.k_star - lower) / 2;
    SelectionResult attempt = selector(evaluator, mid);
    ++result.selector_calls;
    if (TargetWins(evaluator, attempt.seeds)) {
      result.k_star = mid;
      result.seeds = std::move(attempt.seeds);
    } else {
      lower = mid;
    }
  }
  return result;
}

}  // namespace voteopt::core
