#include "core/accuracy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/walk_engine.h"
#include "core/walk_set.h"
#include "graph/alias_table.h"

namespace voteopt::core {

uint64_t LambdaForCumulative(double delta, double rho) {
  assert(delta > 0.0 && rho > 0.0 && rho < 1.0);
  return static_cast<uint64_t>(
      std::ceil(std::log(2.0 / (1.0 - rho)) / (2.0 * delta * delta)));
}

uint64_t LambdaFromGamma(double gamma, double rho, bool one_sided) {
  assert(gamma > 0.0 && rho > 0.0 && rho < 1.0);
  const double numerator = one_sided ? 1.0 : 2.0;
  return static_cast<uint64_t>(std::ceil(
      std::log(numerator / (1.0 - rho)) / (2.0 * gamma * gamma)));
}

namespace {

/// std::lgamma writes the process-global `signgam` (C99 allows it; glibc
/// does), so concurrent engine workers sizing theta race on it — TSan
/// flags the write under serve_net_test. lgamma_r returns the identical
/// value with the sign in an out-parameter; non-POSIX builds keep
/// std::lgamma and only lose the reentrancy guarantee.
double ReentrantLgamma(double x) {
#if defined(__linux__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double LogBinomial(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return ReentrantLgamma(static_cast<double>(n) + 1.0) -
         ReentrantLgamma(static_cast<double>(k) + 1.0) -
         ReentrantLgamma(static_cast<double>(n - k) + 1.0);
}

double ThetaForCumulative(uint64_t n, uint32_t k, double epsilon, double l,
                          double opt_lower_bound) {
  assert(epsilon > 0.0 && opt_lower_bound > 0.0);
  const double nd = static_cast<double>(n);
  const double one_minus_inv_e = 1.0 - 1.0 / std::numbers::e;
  const double log_2nl = std::log(2.0) + l * std::log(nd);
  const double log_binom = LogBinomial(n, k);
  const double bracket =
      one_minus_inv_e * std::sqrt(log_2nl) +
      std::sqrt(one_minus_inv_e * (log_2nl + log_binom));
  return 2.0 * nd / (opt_lower_bound * epsilon * epsilon) * bracket * bracket;
}

std::vector<double> EstimateGammaStar(const ScoreEvaluator& evaluator,
                                      uint32_t k,
                                      const GammaOptions& options) {
  const graph::Graph& g = evaluator.model().graph();
  const uint32_t n = g.num_nodes();
  Rng rng(options.rng_seed);

  // Cheap estimation pass: alpha walks per node, empty seed set.
  graph::AliasSampler alias(g);
  WalkEngine engine(g, evaluator.target_campaign(), alias);
  WalkSet walks(n);
  std::vector<graph::NodeId> scratch;
  for (graph::NodeId v = 0; v < n; ++v) {
    for (uint32_t j = 0; j < options.alpha_walks; ++j) {
      engine.Generate(v, evaluator.horizon(), &rng, &scratch);
      walks.AddWalk(scratch);
    }
  }
  walks.Finalize(evaluator.target_campaign().initial_opinions);

  std::vector<double> gamma(n);
  auto sweep = [&]() {
    bool decreased = false;
    for (graph::NodeId v = 0; v < n; ++v) {
      const double margin =
          evaluator.UserGamma(v, walks.EstimatedOpinion(v));
      if (margin < gamma[v]) {
        gamma[v] = margin;
        decreased = true;
      }
    }
    return decreased;
  };
  for (graph::NodeId v = 0; v < n; ++v) {
    gamma[v] = evaluator.UserGamma(v, walks.EstimatedOpinion(v));
  }

  // Greedy cumulative seeding path: each round add the node with the
  // largest estimated cumulative gain (the most opinion-raising seed),
  // sweeping the margins it induces. Stops early when no margin shrinks
  // (§ V-C stopping rule).
  std::vector<bool> is_seed(n, false);
  for (uint32_t round = 0; round < k; ++round) {
    double best_gain = -1.0;
    graph::NodeId best = static_cast<graph::NodeId>(-1);
    for (graph::NodeId w = 0; w < n; ++w) {
      if (is_seed[w]) continue;
      double gain = 0.0;
      for (const WalkSet::Posting& posting : walks.PostingsOf(w)) {
        if (posting.pos >= walks.EffectiveLen(posting.walk)) continue;
        gain += (1.0 - walks.Value(posting.walk)) /
                static_cast<double>(walks.Lambda(walks.StartOf(posting.walk)));
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = w;
      }
    }
    if (best == static_cast<graph::NodeId>(-1)) break;
    is_seed[best] = true;
    walks.Truncate(best, [](uint32_t, double) {});
    if (!sweep()) break;
  }

  for (double& gamma_v : gamma) {
    gamma_v = std::max(gamma_v, options.gamma_floor);
  }
  return gamma;
}

std::vector<uint64_t> LambdasFromGammaStar(const std::vector<double>& gamma,
                                           double rho, bool one_sided,
                                           uint64_t lambda_cap) {
  std::vector<uint64_t> lambdas(gamma.size());
  for (size_t v = 0; v < gamma.size(); ++v) {
    lambdas[v] =
        std::clamp<uint64_t>(LambdaFromGamma(gamma[v], rho, one_sided),
                             uint64_t{1}, lambda_cap);
  }
  return lambdas;
}

}  // namespace voteopt::core
