// Sandwich approximation (paper § IV) for the non-submodular scores.
//
// For the plurality variants the paper sandwiches F between
//   LB(S) = omega[p] * sum_{v in V_q^(t)} b_qv(t)[S]          (Def. 3)
//   UB(S) = omega[1] * |N_S^(t) u V_q^(t)|                    (Def. 4)
// and for Copeland
//   UB(S) = (r-1)/(floor(n/2)+1) * |N_S^(t) u U_q^(t)|        (Def. 6)
// where V_q^(t) / U_q^(t) are the (weakly) favorable users (Defs. 1 and 5)
// and N_S^(t) is the set of users within t forward hops of S (Def. 2).
//
// LB is a cumulative score restricted to V_q^(t) (submodular by Thm. 3 =>
// CELF-greedy with exact delta propagation); UB is weighted max coverage
// (submodular => lazy greedy over hop-limited BFS). Algorithm 3 then keeps
// the best of S_U, S_L and the plain-greedy feasible solution S_F under the
// true score F.
#ifndef VOTEOPT_CORE_SANDWICH_H_
#define VOTEOPT_CORE_SANDWICH_H_

#include <vector>

#include "core/problem.h"

namespace voteopt::core {

/// V_q^(t): users who rank the target within the top p at the horizon even
/// with no seeds (Def. 1). For plurality / Copeland callers, p = 1.
std::vector<graph::NodeId> FavorableUsers(const ScoreEvaluator& evaluator);

/// U_q^(t): users who prefer the target to at least one other candidate at
/// the horizon with no seeds (Def. 5).
std::vector<graph::NodeId> WeaklyFavorableUsers(
    const ScoreEvaluator& evaluator);

/// Result of maximizing one of the bound functions.
struct BoundResult {
  std::vector<graph::NodeId> seeds;
  /// Bound value at the returned seed set (UB(S_U) resp. LB(S_L)).
  double bound_value = 0.0;
  double seconds = 0.0;
};

/// Lazy-greedy maximization of the coverage upper bound. `base` is the
/// favorable (plurality variants) or weakly favorable (Copeland) user set;
/// `unit_weight` is omega[1] resp. (r-1)/(floor(n/2)+1).
BoundResult MaximizeUpperBound(const ScoreEvaluator& evaluator, uint32_t k,
                               const std::vector<graph::NodeId>& base,
                               double unit_weight);

/// CELF-greedy maximization of the restricted-cumulative lower bound over
/// the favorable set (plurality variants only).
BoundResult MaximizeLowerBound(const ScoreEvaluator& evaluator, uint32_t k,
                               const std::vector<graph::NodeId>& favorable,
                               double omega_p);

struct SandwichOptions {
  /// Produces the feasible solution S_F; defaults to exact plain greedy
  /// (GreedyDMSelect). The RW/RS methods plug their estimated greedy here.
  SeedSelector feasible;
};

/// Algorithm 3: returns argmax_{S in {S_U, S_L, S_F}} F(S). Diagnostics
/// include "sandwich_ratio" = F(S_U)/UB(S_U) (the empirical factor of
/// Fig. 2) plus the individual scores. For the cumulative score this
/// delegates directly to the feasible selector (no sandwich needed).
SelectionResult SandwichSelect(const ScoreEvaluator& evaluator, uint32_t k,
                               const SandwichOptions& options = {});

}  // namespace voteopt::core

#endif  // VOTEOPT_CORE_SANDWICH_H_
