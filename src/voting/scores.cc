#include "voting/scores.h"

#include <cassert>

namespace voteopt::voting {

std::string ScoreKindName(ScoreKind kind) {
  switch (kind) {
    case ScoreKind::kCumulative:
      return "cumulative";
    case ScoreKind::kPlurality:
      return "plurality";
    case ScoreKind::kPApproval:
      return "p-approval";
    case ScoreKind::kPositionalPApproval:
      return "positional-p-approval";
    case ScoreKind::kCopeland:
      return "copeland";
  }
  return "unknown";
}

ScoreSpec ScoreSpec::Borda(uint32_t num_candidates) {
  assert(num_candidates >= 2);
  std::vector<double> omega(num_candidates);
  for (uint32_t i = 0; i < num_candidates; ++i) {
    omega[i] = static_cast<double>(num_candidates - 1 - i) /
               static_cast<double>(num_candidates - 1);
  }
  return PositionalPApproval(std::move(omega));
}

Status ScoreSpec::Validate(uint32_t num_candidates) const {
  if (kind == ScoreKind::kCumulative || kind == ScoreKind::kCopeland) {
    return Status::OK();
  }
  if (p < 1 || p > num_candidates) {
    return Status::InvalidArgument("approval depth p = " + std::to_string(p) +
                                   " outside [1, r = " +
                                   std::to_string(num_candidates) + "]");
  }
  if (kind == ScoreKind::kPositionalPApproval) {
    if (omega.size() < p) {
      return Status::InvalidArgument("omega has fewer than p entries");
    }
    for (size_t i = 0; i < omega.size(); ++i) {
      if (!(omega[i] >= 0.0 && omega[i] <= 1.0)) {
        return Status::OutOfRange("omega[" + std::to_string(i) +
                                  "] outside [0, 1]");
      }
      if (i > 0 && omega[i] > omega[i - 1]) {
        return Status::InvalidArgument("omega must be non-increasing");
      }
    }
  }
  return Status::OK();
}

double ScoreSpec::RankWeight(uint32_t beta) const {
  assert(beta >= 1);
  if (beta > p) return 0.0;
  if (kind == ScoreKind::kPositionalPApproval) return omega[beta - 1];
  return 1.0;  // plurality / p-approval weigh every approved rank as 1
}

uint32_t Rank(const OpinionMatrix& opinions, CandidateId q, uint32_t v) {
  const double bqv = opinions[q][v];
  uint32_t rank = 0;
  for (const auto& row : opinions) {
    if (row[v] >= bqv) ++rank;  // includes q itself
  }
  return rank;
}

namespace {

double ApprovalStyleScore(const OpinionMatrix& opinions, CandidateId q,
                          const ScoreSpec& spec) {
  const size_t n = opinions[q].size();
  double total = 0.0;
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t beta = Rank(opinions, q, v);
    total += spec.RankWeight(beta);
  }
  return total;
}

double CopelandScoreImpl(const OpinionMatrix& opinions, CandidateId q) {
  const size_t n = opinions[q].size();
  double wins_total = 0.0;
  for (CandidateId x = 0; x < opinions.size(); ++x) {
    if (x == q) continue;
    int64_t wins = 0, losses = 0;
    for (uint32_t v = 0; v < n; ++v) {
      if (opinions[q][v] > opinions[x][v]) {
        ++wins;
      } else if (opinions[q][v] < opinions[x][v]) {
        ++losses;
      }
    }
    if (wins > losses) wins_total += 1.0;
  }
  return wins_total;
}

}  // namespace

double Score(const OpinionMatrix& opinions, CandidateId q,
             const ScoreSpec& spec) {
  assert(q < opinions.size());
  switch (spec.kind) {
    case ScoreKind::kCumulative: {
      double sum = 0.0;
      for (double b : opinions[q]) sum += b;
      return sum;
    }
    case ScoreKind::kPlurality: {
      ScoreSpec plurality = spec;
      plurality.p = 1;
      return ApprovalStyleScore(opinions, q, plurality);
    }
    case ScoreKind::kPApproval:
    case ScoreKind::kPositionalPApproval:
      return ApprovalStyleScore(opinions, q, spec);
    case ScoreKind::kCopeland:
      return CopelandScoreImpl(opinions, q);
  }
  return 0.0;
}

std::vector<double> AllScores(const OpinionMatrix& opinions,
                              const ScoreSpec& spec) {
  std::vector<double> scores(opinions.size());
  for (CandidateId q = 0; q < opinions.size(); ++q) {
    scores[q] = Score(opinions, q, spec);
  }
  return scores;
}

CandidateId Winner(const OpinionMatrix& opinions, const ScoreSpec& spec) {
  const std::vector<double> scores = AllScores(opinions, spec);
  CandidateId best = 0;
  for (CandidateId q = 1; q < scores.size(); ++q) {
    if (scores[q] > scores[best]) best = q;
  }
  return best;
}

std::optional<CandidateId> CondorcetWinner(const OpinionMatrix& opinions) {
  const double target = static_cast<double>(opinions.size()) - 1.0;
  for (CandidateId q = 0; q < opinions.size(); ++q) {
    if (CopelandScoreImpl(opinions, q) == target) return q;
  }
  return std::nullopt;
}

}  // namespace voteopt::voting
