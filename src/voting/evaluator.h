// ScoreEvaluator: the bridge between opinion diffusion and voting scores.
//
// In Problem 1 (FJ-Vote) only the target candidate receives seeds, and
// opinions for different candidates diffuse independently (paper § II-C,
// Remark 2). The evaluator therefore propagates every competitor's opinions
// to the horizon once, caches them (plus per-user sorted copies for O(log r)
// rank queries), and afterwards evaluates any seed set by propagating only
// the target's row. This is what makes the greedy algorithms O(k t m n)
// instead of O(k t m n r).
#ifndef VOTEOPT_VOTING_EVALUATOR_H_
#define VOTEOPT_VOTING_EVALUATOR_H_

#include <memory>
#include <vector>

#include "opinion/fj_model.h"
#include "opinion/opinion_state.h"
#include "voting/scores.h"

namespace voteopt::voting {

/// Evaluates F(B(t)[S], c_q) for a fixed problem instance (graph, campaigns,
/// target candidate q, horizon t, score spec).
class ScoreEvaluator {
 public:
  /// `model` and `state` must outlive the evaluator.
  /// Precondition (checked): state validates, target < r, spec validates.
  ScoreEvaluator(const opinion::FJModel& model,
                 const opinion::MultiCampaignState& state, CandidateId target,
                 uint32_t horizon, ScoreSpec spec);

  /// Per-candidate influence matrices W_q (paper § II-A): one model per
  /// campaign, in candidate order; all must share the node universe. The
  /// target's model drives seed selection; each competitor's opinions are
  /// propagated over its own graph.
  ScoreEvaluator(const std::vector<const opinion::FJModel*>& models,
                 const opinion::MultiCampaignState& state, CandidateId target,
                 uint32_t horizon, ScoreSpec spec);

  /// Exact score of a seed set: applies seeds, propagates the target row t
  /// steps, scores against the cached competitor rows. O(t m + n log r).
  double EvaluateSeeds(const std::vector<graph::NodeId>& seeds) const;

  /// The target's exact horizon opinions under a seed set. O(t m).
  std::vector<double> TargetHorizonOpinions(
      const std::vector<graph::NodeId>& seeds) const;

  /// Score given an (exact or estimated) target horizon opinion vector.
  double ScoreFromTargetOpinions(const std::vector<double>& target_row) const;

  /// Scores of all r candidates with the target row replaced by
  /// `target_row` (competitor rows are the cached no-seed horizons). Used by
  /// the winning criterion of Problem 2.
  std::vector<double> ScoresAllCandidates(
      const std::vector<double>& target_row) const;

  /// Rank beta of the target for user v if the target's opinion were x:
  /// 1 + #competitors with cached horizon value >= x. O(log r).
  uint32_t UserRank(uint32_t v, double x) const;

  /// omega[beta] * 1[beta <= p] for user v at target opinion x — the user's
  /// contribution to the plurality-variant scores.
  double UserRankWeight(uint32_t v, double x) const;

  /// gamma_v = min over competitors x of |b_xv(t) - value| (Thm. 11/12).
  double UserGamma(uint32_t v, double value) const;

  /// Cached no-seed horizon opinions of candidate x (x != target allowed;
  /// for x == target these are the no-seed target opinions).
  const std::vector<double>& HorizonOpinions(CandidateId x) const {
    return horizon_opinions_[x];
  }

  /// The target candidate's diffusion model (what seed selection runs on).
  const opinion::FJModel& model() const { return *models_[target_]; }
  /// Candidate x's diffusion model.
  const opinion::FJModel& model_of(CandidateId x) const { return *models_[x]; }
  const opinion::Campaign& target_campaign() const {
    return state_->campaigns[target_];
  }
  CandidateId target() const { return target_; }
  uint32_t horizon() const { return horizon_; }
  uint32_t num_candidates() const { return state_->num_candidates(); }
  uint32_t num_users() const { return model().graph().num_nodes(); }
  const ScoreSpec& spec() const { return spec_; }

 private:
  std::vector<const opinion::FJModel*> models_;  // one per candidate
  const opinion::MultiCampaignState* state_;
  CandidateId target_;
  uint32_t horizon_;
  ScoreSpec spec_;

  /// horizon_opinions_[x][v] = b_xv(t) with no seeds, for every candidate.
  std::vector<std::vector<double>> horizon_opinions_;
  /// sorted_competitors_[v] = ascending competitor opinions at the horizon
  /// (r-1 values per user), for rank / gamma binary searches.
  std::vector<std::vector<double>> sorted_competitors_;
};

}  // namespace voteopt::voting

#endif  // VOTEOPT_VOTING_EVALUATOR_H_
