// The five voting-based scoring functions of paper § II-B, computed from an
// opinion matrix B(t) (r candidate rows of n user opinions each):
//
//   cumulative            F = sum_v b_qv                               (Eq. 3)
//   plurality             F = #{v : beta_v(q) = 1}                     (Eq. 4)
//   p-approval            F = #{v : beta_v(q) <= p}                    (Eq. 5)
//   positional-p-approval F = sum_v omega[beta_v(q)] * 1[beta <= p]    (Eq. 6)
//   Copeland              F = #{x : q beats x in a one-on-one}         (Eq. 7)
//
// where beta_v(q) = #{x in C : b_xv >= b_qv} is q's rank in user v's
// preference order (q itself counts, so the top candidate has rank 1 and
// ties push every tied candidate's rank past 1).
#ifndef VOTEOPT_VOTING_SCORES_H_
#define VOTEOPT_VOTING_SCORES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "opinion/opinion_state.h"
#include "util/status.h"

namespace voteopt::voting {

using opinion::CandidateId;

/// Opinion matrix at a fixed timestamp: opinions[q][v] = b_qv.
using OpinionMatrix = std::vector<std::vector<double>>;

enum class ScoreKind {
  kCumulative,
  kPlurality,
  kPApproval,
  kPositionalPApproval,
  kCopeland,
};

std::string ScoreKindName(ScoreKind kind);

/// Which score to optimize, plus the plurality-variant parameters.
struct ScoreSpec {
  ScoreKind kind = ScoreKind::kCumulative;
  /// Approval depth p in [1, r]; used by the approval variants.
  uint32_t p = 1;
  /// Position weights omega[0] >= omega[1] >= ... in [0, 1], one per rank;
  /// used by kPositionalPApproval only. Must have >= p entries.
  std::vector<double> omega;

  static ScoreSpec Cumulative() { return {ScoreKind::kCumulative, 1, {}}; }
  static ScoreSpec Plurality() { return {ScoreKind::kPlurality, 1, {}}; }
  static ScoreSpec PApproval(uint32_t p) {
    return {ScoreKind::kPApproval, p, {}};
  }
  static ScoreSpec PositionalPApproval(std::vector<double> omega_weights) {
    ScoreSpec spec{ScoreKind::kPositionalPApproval,
                   static_cast<uint32_t>(omega_weights.size()),
                   std::move(omega_weights)};
    return spec;
  }
  static ScoreSpec Copeland() { return {ScoreKind::kCopeland, 1, {}}; }

  /// Borda count (extension; paper § IX future work): rank beta earns
  /// (r - beta) / (r - 1) points — exactly positional-r-approval with
  /// linearly decaying weights. Requires r >= 2.
  static ScoreSpec Borda(uint32_t num_candidates);

  /// Validates p / omega against the number of candidates r.
  Status Validate(uint32_t num_candidates) const;

  /// Effective weight of rank `beta` (1-based): 0 beyond p; 1 for plain
  /// plurality / p-approval; omega[beta-1] for positional.
  double RankWeight(uint32_t beta) const;
};

/// Rank beta of candidate q in user v's preference order (1-based).
uint32_t Rank(const OpinionMatrix& opinions, CandidateId q, uint32_t v);

/// F(B, c_q) for the requested score.
double Score(const OpinionMatrix& opinions, CandidateId q,
             const ScoreSpec& spec);

/// Scores of every candidate under the same spec.
std::vector<double> AllScores(const OpinionMatrix& opinions,
                              const ScoreSpec& spec);

/// Candidate with the maximum score (ties broken toward the smaller id).
CandidateId Winner(const OpinionMatrix& opinions, const ScoreSpec& spec);

/// The Condorcet winner — the candidate that wins all r-1 one-on-one
/// competitions — when one exists.
std::optional<CandidateId> CondorcetWinner(const OpinionMatrix& opinions);

}  // namespace voteopt::voting

#endif  // VOTEOPT_VOTING_SCORES_H_
