#include "voting/evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace voteopt::voting {

ScoreEvaluator::ScoreEvaluator(const opinion::FJModel& model,
                               const opinion::MultiCampaignState& state,
                               CandidateId target, uint32_t horizon,
                               ScoreSpec spec)
    : ScoreEvaluator(
          std::vector<const opinion::FJModel*>(state.num_candidates(),
                                               &model),
          state, target, horizon, std::move(spec)) {}

ScoreEvaluator::ScoreEvaluator(
    const std::vector<const opinion::FJModel*>& models,
    const opinion::MultiCampaignState& state, CandidateId target,
    uint32_t horizon, ScoreSpec spec)
    : models_(models),
      state_(&state),
      target_(target),
      horizon_(horizon),
      spec_(std::move(spec)) {
  assert(models_.size() == state.num_candidates());
  assert(target < state.num_candidates());
  assert(state.Validate(models_[target]->graph().num_nodes()).ok());
  assert(spec_.Validate(state.num_candidates()).ok());

  const uint32_t r = state.num_candidates();
  const uint32_t n = models_[target]->graph().num_nodes();
  horizon_opinions_.resize(r);
  for (CandidateId x = 0; x < r; ++x) {
    assert(models_[x]->graph().num_nodes() == n);
    horizon_opinions_[x] = models_[x]->Propagate(state.campaigns[x], horizon_);
  }
  sorted_competitors_.assign(n, {});
  for (uint32_t v = 0; v < n; ++v) {
    auto& row = sorted_competitors_[v];
    row.reserve(r - 1);
    for (CandidateId x = 0; x < r; ++x) {
      if (x != target_) row.push_back(horizon_opinions_[x][v]);
    }
    std::sort(row.begin(), row.end());
  }
}

std::vector<double> ScoreEvaluator::TargetHorizonOpinions(
    const std::vector<graph::NodeId>& seeds) const {
  return model().PropagateWithSeeds(state_->campaigns[target_], seeds,
                                    horizon_);
}

double ScoreEvaluator::EvaluateSeeds(
    const std::vector<graph::NodeId>& seeds) const {
  return ScoreFromTargetOpinions(TargetHorizonOpinions(seeds));
}

uint32_t ScoreEvaluator::UserRank(uint32_t v, double x) const {
  const auto& row = sorted_competitors_[v];
  // #competitors with value >= x.
  const auto it = std::lower_bound(row.begin(), row.end(), x);
  return 1 + static_cast<uint32_t>(row.end() - it);
}

double ScoreEvaluator::UserRankWeight(uint32_t v, double x) const {
  return spec_.RankWeight(UserRank(v, x));
}

double ScoreEvaluator::UserGamma(uint32_t v, double value) const {
  const auto& row = sorted_competitors_[v];
  assert(!row.empty());
  const auto it = std::lower_bound(row.begin(), row.end(), value);
  double best = std::numeric_limits<double>::infinity();
  if (it != row.end()) best = std::min(best, std::fabs(*it - value));
  if (it != row.begin()) best = std::min(best, std::fabs(*(it - 1) - value));
  return best;
}

double ScoreEvaluator::ScoreFromTargetOpinions(
    const std::vector<double>& target_row) const {
  const uint32_t n = num_users();
  assert(target_row.size() == n);
  switch (spec_.kind) {
    case ScoreKind::kCumulative: {
      double sum = 0.0;
      for (double b : target_row) sum += b;
      return sum;
    }
    case ScoreKind::kPlurality:
    case ScoreKind::kPApproval:
    case ScoreKind::kPositionalPApproval: {
      double total = 0.0;
      for (uint32_t v = 0; v < n; ++v) {
        total += UserRankWeight(v, target_row[v]);
      }
      return total;
    }
    case ScoreKind::kCopeland: {
      double wins_total = 0.0;
      for (CandidateId x = 0; x < num_candidates(); ++x) {
        if (x == target_) continue;
        const auto& other = horizon_opinions_[x];
        int64_t wins = 0, losses = 0;
        for (uint32_t v = 0; v < n; ++v) {
          if (target_row[v] > other[v]) {
            ++wins;
          } else if (target_row[v] < other[v]) {
            ++losses;
          }
        }
        if (wins > losses) wins_total += 1.0;
      }
      return wins_total;
    }
  }
  return 0.0;
}

std::vector<double> ScoreEvaluator::ScoresAllCandidates(
    const std::vector<double>& target_row) const {
  OpinionMatrix matrix = horizon_opinions_;
  matrix[target_] = target_row;
  return AllScores(matrix, spec_);
}

}  // namespace voteopt::voting
