// Synthetic analogs of the paper's five evaluation datasets (Table III).
//
// The real corpora (DBLP snapshot, Yelp reviews, three Twitter crawls with
// VADER sentiment) are not redistributable, so each dataset is synthesized
// to match the paper's structural recipe at laptop scale:
//
//  * topology: collaboration/friendship graphs are Barabási–Albert with
//    bidirected edges; retweet graphs are heavy-tailed digraphs;
//  * edge weights: per-edge interaction counts a (co-author counts, common
//    restaurant visits, retweet counts) mapped through w = 1 - e^{-a/mu}
//    [74] and then normalized so incoming weights sum to 1 (§ VIII-A,
//    App. D);
//  * initial opinions in [0,1]: affinity / rating / sentiment mixtures;
//  * stubbornness: 1 - opinion-variance proxies (DBLP, Yelp) or U[0,1]
//    (Twitter, where most users have a single tweet).
//
// Every generator takes a `scale` factor (1.0 = default bench size) and a
// seed; all outputs are deterministic in (name, scale, seed, mu).
#ifndef VOTEOPT_DATASETS_SYNTHETIC_H_
#define VOTEOPT_DATASETS_SYNTHETIC_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "opinion/opinion_state.h"
#include "util/rng.h"

namespace voteopt::datasets {

enum class DatasetName {
  kDblp,               // 2 candidates (ACM election)
  kYelp,               // 10 candidates (restaurant categories)
  kTwitterElection,    // 4 candidates (parties)
  kTwitterDistancing,  // 2 candidates (for / against)
  kTwitterMask,        // 2 candidates (for / against)
};

const char* DatasetDisplayName(DatasetName name);
std::vector<DatasetName> AllDatasets();

/// A ready-to-use problem substrate.
struct Dataset {
  std::string name;
  /// Column-stochastic influence graph (weights = normalized 1 - e^{-a/mu}).
  graph::Graph influence;
  /// Raw interaction-count graph, kept so the mu sweep of Fig. 19 can
  /// re-derive influence weights without regenerating the topology.
  graph::Graph counts;
  opinion::MultiCampaignState state;
  /// The paper's default target for this dataset (e.g. "Chinese" on Yelp,
  /// "Democratic" on Twitter US Election).
  opinion::CandidateId default_target = 0;
};

/// Builds a dataset analog. `scale` multiplies the default node count.
Dataset MakeDataset(DatasetName name, double scale, uint64_t seed,
                    double mu = 10.0);

/// The paper's edge-weight pipeline: w = 1 - e^{-a/mu} on interaction
/// counts, then incoming normalization (App. D).
graph::Graph ReweightWithMu(const graph::Graph& counts, double mu);

/// Default node count at scale 1 (exposed for bench labels).
uint32_t DefaultNumNodes(DatasetName name);

}  // namespace voteopt::datasets

#endif  // VOTEOPT_DATASETS_SYNTHETIC_H_
