#include "datasets/convert.h"

#include <fstream>
#include <vector>

#include "datasets/io.h"
#include "store/format.h"
#include "store/graph_store.h"
#include "util/rng.h"

namespace voteopt::datasets {

namespace {

/// FNV-1a of a whole file (for the conversion report / golden fixtures).
Result<uint64_t> FileFnv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return store::Fnv1a64(bytes.data(), bytes.size());
}

}  // namespace

Result<ConvertReport> ConvertEdgeListToBundle(const std::string& edge_path,
                                              const std::string& prefix,
                                              const ConvertOptions& options) {
  if (options.num_candidates < 2) {
    return Status::InvalidArgument("a voting instance needs >= 2 candidates");
  }
  if (options.target >= options.num_candidates) {
    return Status::InvalidArgument("target candidate out of range");
  }

  ConvertReport report;
  graph::EdgeStreamOptions stream = options.stream;
  stream.normalize_incoming = false;  // counts stay raw; mu pipeline below
  auto counts = graph::StreamEdgeList(edge_path, stream, &report.parse);
  if (!counts.ok()) return counts.status();
  report.num_nodes = counts->num_nodes();
  report.num_edges = counts->num_edges();

  Dataset dataset;
  dataset.name = options.name;
  dataset.counts = std::move(counts).value();
  dataset.influence = ReweightWithMu(dataset.counts, options.mu);
  dataset.default_target = options.target;

  // Synthetic campaigns: crawls carry no opinion signal, so draw the same
  // U[0,1] opinions/stubbornness recipe as the synthetic Twitter datasets,
  // deterministically in opinion_seed.
  Rng rng(options.opinion_seed);
  const uint32_t n = dataset.influence.num_nodes();
  dataset.state.campaigns.resize(options.num_candidates);
  for (auto& campaign : dataset.state.campaigns) {
    campaign.initial_opinions.resize(n);
    campaign.stubbornness.resize(n);
    for (uint32_t v = 0; v < n; ++v) {
      campaign.initial_opinions[v] = rng.Uniform();
      campaign.stubbornness[v] = rng.Uniform();
    }
  }

  const std::string influence_path = prefix + ".influence.graphbin";
  VOTEOPT_RETURN_IF_ERROR(store::SaveGraph(dataset.influence, influence_path));
  VOTEOPT_RETURN_IF_ERROR(
      store::SaveGraph(dataset.counts, prefix + ".counts.graphbin"));
  VOTEOPT_RETURN_IF_ERROR(
      SaveCampaigns(dataset.state, prefix + ".campaigns.tsv"));
  std::ofstream meta(prefix + ".meta");
  if (!meta) return Status::IOError("cannot open " + prefix + ".meta");
  meta << "name " << dataset.name << "\n"
       << "target " << dataset.default_target << "\n";
  if (!meta) return Status::IOError("write failed for " + prefix + ".meta");

  auto fnv = FileFnv(influence_path);
  if (!fnv.ok()) return fnv.status();
  report.influence_file_fnv = *fnv;
  return report;
}

}  // namespace voteopt::datasets
