#include "datasets/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "graph/builder.h"
#include "graph/generators.h"

namespace voteopt::datasets {

const char* DatasetDisplayName(DatasetName name) {
  switch (name) {
    case DatasetName::kDblp:
      return "DBLP";
    case DatasetName::kYelp:
      return "Yelp";
    case DatasetName::kTwitterElection:
      return "Twitter US Election";
    case DatasetName::kTwitterDistancing:
      return "Twitter Social Distancing";
    case DatasetName::kTwitterMask:
      return "Twitter Mask";
  }
  return "?";
}

std::vector<DatasetName> AllDatasets() {
  return {DatasetName::kDblp, DatasetName::kYelp,
          DatasetName::kTwitterElection, DatasetName::kTwitterDistancing,
          DatasetName::kTwitterMask};
}

uint32_t DefaultNumNodes(DatasetName name) {
  switch (name) {
    case DatasetName::kDblp:
      return 3000;
    case DatasetName::kYelp:
      return 5000;
    case DatasetName::kTwitterElection:
      return 8000;
    case DatasetName::kTwitterDistancing:
      return 10000;
    case DatasetName::kTwitterMask:
      return 8000;
  }
  return 1000;
}

graph::Graph ReweightWithMu(const graph::Graph& counts, double mu) {
  assert(mu > 0.0);
  graph::GraphBuilder builder(counts.num_nodes());
  for (graph::NodeId u = 0; u < counts.num_nodes(); ++u) {
    const auto targets = counts.OutNeighbors(u);
    const auto interactions = counts.OutWeights(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      const double w = 1.0 - std::exp(-interactions[i] / mu);
      if (w > 0.0) builder.AddEdge(u, targets[i], w);
    }
  }
  auto built = builder.Build(
      {.merge_parallel_edges = false, .normalize_incoming = true});
  assert(built.ok());
  return std::move(built).value();
}

namespace {

/// Opinion/stubbornness recipes. Each candidate gets a "camp" of users with
/// high affinity; the rest lean away, with plenty of near-neutral users —
/// the dispersion that makes rank-based scores interesting. `camp_share`
/// (optional, size r, sums to ~1) skews camp sizes: real electorates are
/// rarely 50/50, and an asymmetric split gives the FJ-Vote-Win experiments
/// a meaningful deficit to overcome.
opinion::MultiCampaignState MakePolarizedOpinions(
    uint32_t n, uint32_t r, bool uniform_stubbornness, Rng* rng,
    const std::vector<double>& camp_share = {}) {
  opinion::MultiCampaignState state;
  state.campaigns.resize(r);
  for (auto& campaign : state.campaigns) {
    campaign.initial_opinions.resize(n);
    campaign.stubbornness.resize(n);
  }
  for (uint32_t v = 0; v < n; ++v) {
    // Soft camp assignment: one preferred candidate, but opinions about the
    // others remain positive (the paper's key modelling point).
    uint32_t camp;
    if (camp_share.empty()) {
      camp = static_cast<uint32_t>(rng->UniformInt(r));
    } else {
      double u = rng->Uniform();
      camp = r - 1;
      for (uint32_t q = 0; q < r; ++q) {
        if (u < camp_share[q]) {
          camp = q;
          break;
        }
        u -= camp_share[q];
      }
    }
    for (uint32_t q = 0; q < r; ++q) {
      const double opinionated = rng->Uniform();
      double value;
      if (opinionated < 0.25) {
        value = rng->Beta(2.0, 2.0);  // near-neutral users
      } else if (q == camp) {
        value = rng->Beta(5.0, 2.0);  // sympathetic
      } else {
        value = rng->Beta(2.0, 5.0);  // leaning away
      }
      state.campaigns[q].initial_opinions[v] = value;
    }
    for (uint32_t q = 0; q < r; ++q) {
      double d;
      if (uniform_stubbornness) {
        d = rng->Uniform();  // Twitter: U[0,1] (§ VIII-A)
      } else {
        // 1 - variance proxy: users with stable historical opinions are
        // stubborn. Beta(5,2) concentrates near 1 like the paper's
        // 1 - var(yearly averages).
        d = rng->Beta(5.0, 2.0);
      }
      state.campaigns[q].stubbornness[v] = d;
    }
  }
  return state;
}

}  // namespace

Dataset MakeDataset(DatasetName name, double scale, uint64_t seed, double mu) {
  assert(scale > 0.0);
  Rng rng(seed ^ (static_cast<uint64_t>(name) << 32));
  const uint32_t n = std::max<uint32_t>(
      64, static_cast<uint32_t>(DefaultNumNodes(name) * scale));

  Dataset ds;
  ds.name = DatasetDisplayName(name);

  graph::InteractionCounts counts;
  switch (name) {
    case DatasetName::kDblp: {
      // Senior-researcher collaboration graph: dense BA core, co-author
      // counts Zipf-like (a few long-running collaborations dominate).
      counts.kind = graph::InteractionCounts::Kind::kZipf;
      counts.zipf_max = 50;
      counts.zipf_exponent = 1.6;
      ds.counts = graph::BarabasiAlbert(n, 8, counts, &rng);
      ds.state = MakePolarizedOpinions(n, 2, /*uniform_stubbornness=*/false,
                                       &rng);
      ds.default_target = 1;  // "Joseph A. Konstan" analog
      break;
    }
    case DatasetName::kYelp: {
      // Friendship graph with common-visit counts ~ Poisson.
      counts.kind = graph::InteractionCounts::Kind::kPoisson;
      counts.mean = 6.0;
      ds.counts = graph::BarabasiAlbert(n, 5, counts, &rng);
      ds.state = MakePolarizedOpinions(n, 10, /*uniform_stubbornness=*/false,
                                       &rng);
      ds.default_target = 2;  // "Chinese" analog
      break;
    }
    case DatasetName::kTwitterElection: {
      counts.kind = graph::InteractionCounts::Kind::kPoisson;
      counts.mean = 3.0;
      ds.counts = graph::PowerLawDigraph(n, 2.0, 1.3, counts, &rng);
      // Party support is asymmetric (the two big parties dominate).
      ds.state = MakePolarizedOpinions(n, 4, /*uniform_stubbornness=*/true,
                                       &rng, {0.30, 0.34, 0.18, 0.18});
      ds.default_target = 0;  // "Democratic" analog
      break;
    }
    case DatasetName::kTwitterDistancing: {
      counts.kind = graph::InteractionCounts::Kind::kPoisson;
      counts.mean = 3.0;
      ds.counts = graph::PowerLawDigraph(n, 1.4, 1.3, counts, &rng);
      // "For" trails "against": FJ-Vote-Win needs a deficit to overcome.
      ds.state = MakePolarizedOpinions(n, 2, /*uniform_stubbornness=*/true,
                                       &rng, {0.44, 0.56});
      ds.default_target = 0;  // "For Social Distancing"
      break;
    }
    case DatasetName::kTwitterMask: {
      counts.kind = graph::InteractionCounts::Kind::kPoisson;
      counts.mean = 3.0;
      ds.counts = graph::PowerLawDigraph(n, 1.5, 1.3, counts, &rng);
      ds.state = MakePolarizedOpinions(n, 2, /*uniform_stubbornness=*/true,
                                       &rng, {0.46, 0.54});
      ds.default_target = 0;  // "For Wearing a Mask"
      break;
    }
  }
  ds.influence = ReweightWithMu(ds.counts, mu);
  return ds;
}

}  // namespace voteopt::datasets
