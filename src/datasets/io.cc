#include "datasets/io.h"

#include <fstream>
#include <sstream>

#include "graph/io.h"
#include "store/graph_store.h"

namespace voteopt::datasets {

namespace {
constexpr char kMagic[] = "# voteopt-campaigns v1";
}

Status SaveCampaigns(const opinion::MultiCampaignState& state,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const uint32_t r = state.num_candidates();
  if (r == 0) return Status::InvalidArgument("no campaigns to save");
  const size_t n = state.campaigns[0].initial_opinions.size();
  out << kMagic << "\n" << r << ' ' << n << "\n";
  out.precision(17);
  for (const auto& campaign : state.campaigns) {
    if (campaign.initial_opinions.size() != n ||
        campaign.stubbornness.size() != n) {
      return Status::InvalidArgument("campaign size mismatch");
    }
    for (size_t v = 0; v < n; ++v) {
      out << campaign.initial_opinions[v] << ' ' << campaign.stubbornness[v]
          << "\n";
    }
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<opinion::MultiCampaignState> LoadCampaigns(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string header;
  std::getline(in, header);
  if (header != kMagic) {
    return Status::Corruption(path + ": missing campaigns header");
  }
  uint32_t r = 0;
  size_t n = 0;
  if (!(in >> r >> n) || r < 2) {
    return Status::Corruption(path + ": bad dimensions");
  }
  opinion::MultiCampaignState state;
  state.campaigns.resize(r);
  for (auto& campaign : state.campaigns) {
    campaign.initial_opinions.resize(n);
    campaign.stubbornness.resize(n);
    for (size_t v = 0; v < n; ++v) {
      if (!(in >> campaign.initial_opinions[v] >> campaign.stubbornness[v])) {
        return Status::Corruption(path + ": truncated campaign data");
      }
    }
  }
  VOTEOPT_RETURN_IF_ERROR(state.Validate(static_cast<uint32_t>(n)));
  return state;
}

Status SaveDatasetBundle(const Dataset& dataset, const std::string& prefix) {
  VOTEOPT_RETURN_IF_ERROR(
      graph::SaveEdgeList(dataset.influence, prefix + ".influence.edges"));
  VOTEOPT_RETURN_IF_ERROR(
      graph::SaveEdgeList(dataset.counts, prefix + ".counts.edges"));
  VOTEOPT_RETURN_IF_ERROR(
      SaveCampaigns(dataset.state, prefix + ".campaigns.tsv"));
  std::ofstream meta(prefix + ".meta");
  if (!meta) return Status::IOError("cannot open " + prefix + ".meta");
  meta << "name " << dataset.name << "\n"
       << "target " << dataset.default_target << "\n";
  if (!meta) return Status::IOError("write failed for " + prefix + ".meta");
  return Status::OK();
}

namespace {

/// A bundle graph member: the binary CSR written by voteopt_convert
/// (`<prefix>.<member>.graphbin`, already normalized where applicable) is
/// preferred; synthetic bundles fall back to the text edge list.
Result<graph::Graph> LoadGraphMember(const std::string& prefix,
                                     const std::string& member,
                                     bool normalize_incoming) {
  auto binary = store::LoadGraph(prefix + "." + member + ".graphbin");
  if (binary.ok()) return binary;
  if (binary.status().code() != Status::Code::kIOError) {
    return binary.status();  // present but unreadable: surface it
  }
  return graph::LoadEdgeList(prefix + "." + member + ".edges",
                             {.normalize_incoming = normalize_incoming});
}

}  // namespace

Result<Dataset> LoadDatasetBundle(const std::string& prefix) {
  Dataset dataset;
  {
    auto influence =
        LoadGraphMember(prefix, "influence", /*normalize_incoming=*/true);
    if (!influence.ok()) return influence.status();
    dataset.influence = std::move(influence).value();
  }
  {
    auto counts =
        LoadGraphMember(prefix, "counts", /*normalize_incoming=*/false);
    if (!counts.ok()) return counts.status();
    dataset.counts = std::move(counts).value();
  }
  {
    auto campaigns = LoadCampaigns(prefix + ".campaigns.tsv");
    if (!campaigns.ok()) return campaigns.status();
    dataset.state = std::move(campaigns).value();
  }
  std::ifstream meta(prefix + ".meta");
  if (!meta) return Status::IOError("cannot open " + prefix + ".meta");
  std::string line;
  while (std::getline(meta, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "name") {
      std::string rest;
      std::getline(ls, rest);
      dataset.name = rest.empty() ? "" : rest.substr(1);
    } else if (key == "target") {
      uint32_t target = 0;
      ls >> target;
      dataset.default_target = target;
    }
  }
  if (dataset.default_target >= dataset.state.num_candidates()) {
    return Status::Corruption(prefix + ".meta: target out of range");
  }
  if (dataset.state.campaigns[0].initial_opinions.size() !=
      dataset.influence.num_nodes()) {
    return Status::Corruption(prefix + ": campaigns and graph disagree on n");
  }
  return dataset;
}

std::string BundleSketchPath(const std::string& prefix) {
  // Kept as a literal so the low-level dataset I/O layer stays decoupled
  // from store/; must match store::kSketchFileSuffix (static-checked by
  // datasets_io_test / serve_service_test).
  return prefix + ".sketch";
}

}  // namespace voteopt::datasets
