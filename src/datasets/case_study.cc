#include "datasets/case_study.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "graph/builder.h"
#include "opinion/fj_model.h"

namespace voteopt::datasets {

const std::array<const char*, kNumDomains> kDomainNames = {
    "DM", "HCI", "ML", "CN", "AL", "SW", "HW"};

namespace {

// Domain base popularity (paper Table IV population ordering: DM and CN
// largest, SW smallest) and overlap structure: DM overlaps strongly with
// ML/HCI/CN; HW barely overlaps DM (paper's observation).
constexpr std::array<double, kNumDomains> kDomainWeight = {
    1.00, 0.92, 0.85, 0.98, 0.52, 0.34, 0.81};

// Pairwise co-membership affinity (symmetric, diagonal unused).
constexpr double kOverlap[kNumDomains][kNumDomains] = {
    // DM   HCI   ML    CN    AL    SW    HW
    {0.0, 0.50, 0.60, 0.45, 0.35, 0.15, 0.05},  // DM
    {0.50, 0.0, 0.40, 0.20, 0.10, 0.25, 0.10},  // HCI
    {0.60, 0.40, 0.0, 0.25, 0.30, 0.10, 0.10},  // ML
    {0.45, 0.20, 0.25, 0.0, 0.20, 0.15, 0.40},  // CN
    {0.35, 0.10, 0.30, 0.20, 0.0, 0.15, 0.15},  // AL
    {0.15, 0.25, 0.10, 0.15, 0.15, 0.0, 0.35},  // SW
    {0.05, 0.10, 0.10, 0.40, 0.15, 0.35, 0.0},  // HW
};

uint8_t SampleDomain(Rng* rng) {
  double total = 0.0;
  for (double w : kDomainWeight) total += w;
  double u = rng->Uniform() * total;
  for (uint8_t d = 0; d < kNumDomains; ++d) {
    if (u < kDomainWeight[d]) return d;
    u -= kDomainWeight[d];
  }
  return kNumDomains - 1;
}

}  // namespace

CaseStudyData MakeCaseStudy(const CaseStudyConfig& config) {
  Rng rng(config.rng_seed);
  const uint32_t n = config.num_users;

  CaseStudyData data;
  // --- domain memberships: primary domain + 0-2 correlated secondaries ---
  data.domains.resize(n);
  for (uint32_t v = 0; v < n; ++v) {
    const uint8_t primary = SampleDomain(&rng);
    data.domains[v].push_back(primary);
    for (uint8_t d = 0; d < kNumDomains; ++d) {
      if (d == primary || data.domains[v].size() >= 3) continue;
      if (rng.Bernoulli(0.6 * kOverlap[primary][d])) {
        data.domains[v].push_back(d);
      }
    }
  }

  // --- collaboration graph: preferential within shared domains -----------
  // Group users per domain, then wire each user to a few collaborators
  // drawn from her domains (weighted by seniority rank), plus occasional
  // cross-domain edges.
  std::vector<std::vector<graph::NodeId>> members(kNumDomains);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint8_t d : data.domains[v]) members[d].push_back(v);
  }
  graph::GraphBuilder builder(n);
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t collaborations = 2 + static_cast<uint32_t>(rng.Poisson(3));
    for (uint32_t c = 0; c < collaborations; ++c) {
      const uint8_t domain =
          data.domains[v][rng.UniformInt(data.domains[v].size())];
      const auto& pool = members[domain];
      // Zipf rank within the domain approximates seniority: low ranks are
      // prolific, highly connected researchers.
      const uint64_t rank = rng.Zipf(pool.size(), 1.1);
      const graph::NodeId u = pool[rank - 1];
      if (u == v) continue;
      const double coauthored_papers = static_cast<double>(rng.Zipf(40, 1.5));
      builder.AddUndirectedEdge(v, u, coauthored_papers);
    }
  }
  auto counts = builder.Build({.merge_parallel_edges = true});
  assert(counts.ok());

  // --- candidate profiles (Ioannidis: DM-centric; Konstan: HCI/ML) -------
  data.candidate_profiles[0] = {0.42, 0.06, 0.10, 0.12, 0.16, 0.06, 0.08};
  data.candidate_profiles[1] = {0.22, 0.34, 0.20, 0.06, 0.04, 0.10, 0.04};

  // --- initial opinions: profile overlap + noise; stubbornness high ------
  opinion::MultiCampaignState state;
  state.campaigns.resize(2);
  for (auto& campaign : state.campaigns) {
    campaign.initial_opinions.resize(n);
    campaign.stubbornness.resize(n);
  }
  for (uint32_t v = 0; v < n; ++v) {
    // User profile: uniform mass over her domains.
    std::array<double, kNumDomains> profile{};
    for (uint8_t d : data.domains[v]) {
      profile[d] += 1.0 / static_cast<double>(data.domains[v].size());
    }
    for (uint32_t q = 0; q < 2; ++q) {
      double dot = 0.0, nu = 0.0, nc = 0.0;
      for (uint8_t d = 0; d < kNumDomains; ++d) {
        dot += profile[d] * data.candidate_profiles[q][d];
        nu += profile[d] * profile[d];
        nc += data.candidate_profiles[q][d] * data.candidate_profiles[q][d];
      }
      const double cosine = dot / std::sqrt(nu * nc);
      const double noisy =
          std::clamp(0.15 + 0.7 * cosine + rng.Normal(0.0, 0.08), 0.0, 1.0);
      state.campaigns[q].initial_opinions[v] = noisy;
      state.campaigns[q].stubbornness[v] = rng.Beta(5.0, 2.0);
    }
  }

  data.dataset.name = "ACM-Election-CaseStudy";
  data.dataset.counts = std::move(counts).value();
  data.dataset.influence = ReweightWithMu(data.dataset.counts, config.mu);
  data.dataset.state = std::move(state);
  data.dataset.default_target = 1;  // "Konstan" analog
  return data;
}

std::vector<DomainReport> AnalyzeCaseStudy(
    const CaseStudyData& data, const std::vector<graph::NodeId>& seeds,
    uint32_t horizon) {
  const auto& ds = data.dataset;
  const uint32_t n = ds.influence.num_nodes();
  opinion::FJModel model(ds.influence);
  const opinion::CandidateId target = ds.default_target;
  const opinion::CandidateId rival = 1 - target;

  const std::vector<double> rival_final =
      model.Propagate(ds.state.campaigns[rival], horizon);
  const std::vector<double> before =
      model.Propagate(ds.state.campaigns[target], horizon);
  const std::vector<double> after = model.PropagateWithSeeds(
      ds.state.campaigns[target], seeds, horizon);

  std::vector<DomainReport> report(kNumDomains);
  for (uint8_t d = 0; d < kNumDomains; ++d) {
    report[d].domain = kDomainNames[d];
  }
  for (uint32_t v = 0; v < n; ++v) {
    for (uint8_t d : data.domains[v]) {
      ++report[d].total_users;
      if (before[v] > rival_final[v]) ++report[d].voting_for_target_before;
      if (after[v] > rival_final[v]) ++report[d].voting_for_target_after;
    }
  }
  for (graph::NodeId s : seeds) {
    const uint8_t primary = data.domains[s].front();
    report[primary].seeds_in_domain.push_back(s);
  }
  return report;
}

}  // namespace voteopt::datasets
