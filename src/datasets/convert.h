// Real-dataset ingestion (the back half of tools/voteopt_convert): a
// SNAP-style edge list streams through graph::StreamEdgeList, runs the
// paper's w = 1 - e^{-a/mu} weight pipeline, gains deterministic synthetic
// campaigns (real opinion data rarely ships with crawls), and lands as a
// standard dataset bundle whose graph members are BINARY CSR files
// (store/graph_store.h) — byte-stable, mmap-parseable, and orders of
// magnitude faster to reload than the text edge lists of synthetic
// bundles. datasets::LoadDatasetBundle prefers the binary members when
// both exist.
#ifndef VOTEOPT_DATASETS_CONVERT_H_
#define VOTEOPT_DATASETS_CONVERT_H_

#include <cstdint>
#include <string>

#include "datasets/synthetic.h"
#include "graph/edge_stream.h"
#include "util/status.h"

namespace voteopt::datasets {

struct ConvertOptions {
  /// Parser behavior (undirected, self-loops, id compaction, caps).
  /// normalize_incoming is ignored: the counts graph is kept raw and the
  /// influence graph always goes through the mu pipeline below.
  graph::EdgeStreamOptions stream;
  /// The paper's interaction-count decay: w = 1 - e^{-a/mu} (App. D).
  double mu = 10.0;
  /// Synthetic campaign recipe: r candidates with U[0,1] opinions and
  /// stubbornness drawn from Rng(opinion_seed) — deterministic.
  uint32_t num_candidates = 2;
  uint64_t opinion_seed = 7;
  uint32_t target = 0;
  /// Display name recorded in the bundle meta.
  std::string name = "converted";
};

struct ConvertReport {
  graph::EdgeStreamStats parse;
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  /// FNV-1a of the written influence .graphbin file bytes: the format is a
  /// pure function of its sections, so this hash pins the whole conversion
  /// (tests/golden fixtures assert it exactly).
  uint64_t influence_file_fnv = 0;
};

/// Streams `edge_path` into a bundle at `prefix`:
///   <prefix>.influence.graphbin   normalized influence CSR (binary)
///   <prefix>.counts.graphbin      raw interaction counts CSR (binary)
///   <prefix>.campaigns.tsv        synthetic campaigns
///   <prefix>.meta                 display name + default target
Result<ConvertReport> ConvertEdgeListToBundle(const std::string& edge_path,
                                              const std::string& prefix,
                                              const ConvertOptions& options);

}  // namespace voteopt::datasets

#endif  // VOTEOPT_DATASETS_CONVERT_H_
