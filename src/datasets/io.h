// Persistence for problem instances: campaign states (initial opinions +
// stubbornness per candidate) and whole dataset bundles. Lets users run the
// library on their own data — graphs load via graph::LoadEdgeList, opinions
// via the TSV format here — and makes synthetic benchmarks shareable.
//
// Campaign TSV format:
//   # voteopt-campaigns v1
//   <r> <n>
//   <r * n lines: "<b0> <d>" in candidate-major order>
//
// A dataset bundle under <prefix> consists of:
//   <prefix>.influence.edges   normalized influence graph
//   <prefix>.counts.edges      raw interaction counts (for mu sweeps)
//   — or, for converted real datasets (tools/voteopt_convert), binary CSR
//   members <prefix>.influence.graphbin / <prefix>.counts.graphbin
//   (store/graph_store.h), which LoadDatasetBundle prefers when present —
//   <prefix>.campaigns.tsv     the campaign state
//   <prefix>.meta              "name <display name>\ntarget <id>"
//   <prefix>.sketch            OPTIONAL persisted sketch set (binary,
//                              store/sketch_store.h) — the precomputed
//                              walk artifact the serve layer queries;
//                              absent bundles are still valid and the
//                              service rebuilds (and can re-persist) it
#ifndef VOTEOPT_DATASETS_IO_H_
#define VOTEOPT_DATASETS_IO_H_

#include <string>

#include "datasets/synthetic.h"
#include "opinion/opinion_state.h"
#include "util/status.h"

namespace voteopt::datasets {

Status SaveCampaigns(const opinion::MultiCampaignState& state,
                     const std::string& path);
Result<opinion::MultiCampaignState> LoadCampaigns(const std::string& path);

Status SaveDatasetBundle(const Dataset& dataset, const std::string& prefix);
Result<Dataset> LoadDatasetBundle(const std::string& prefix);

/// Path of the bundle's optional persisted-sketch member
/// (`<prefix>.sketch`, store/sketch_store.h format).
std::string BundleSketchPath(const std::string& prefix);

}  // namespace voteopt::datasets

#endif  // VOTEOPT_DATASETS_IO_H_
