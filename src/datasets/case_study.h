// ACM-general-election case study substrate (paper § VIII-B, Fig. 4,
// Tables IV-V).
//
// The paper's study runs on DBLP with 7 research domains, two candidates
// (Ioannidis: data management; Konstan: HCI / recommender systems), initial
// opinions = embedding similarity between a user's papers and a candidate's.
// We synthesize the same structure: an overlapping-community collaboration
// graph where every user belongs to 1-3 of 7 domains, candidate profiles
// put mass on disjoint-ish domain subsets, and a user's initial opinion
// about a candidate is the cosine-similarity-like overlap of her domain
// profile with the candidate's, plus noise.
#ifndef VOTEOPT_DATASETS_CASE_STUDY_H_
#define VOTEOPT_DATASETS_CASE_STUDY_H_

#include <array>
#include <string>
#include <vector>

#include "datasets/synthetic.h"

namespace voteopt::datasets {

inline constexpr uint32_t kNumDomains = 7;

/// Domain labels matching paper Table IV.
extern const std::array<const char*, kNumDomains> kDomainNames;

struct CaseStudyData {
  Dataset dataset;  // 2 candidates; target = 1 ("Konstan" analog)
  /// domains[v] = the 1-3 domains user v belongs to.
  std::vector<std::vector<uint8_t>> domains;
  /// Per-candidate domain affinity profiles (rows sum to 1).
  std::array<std::array<double, kNumDomains>, 2> candidate_profiles;
};

struct CaseStudyConfig {
  uint32_t num_users = 4000;
  uint64_t rng_seed = 7;
  double mu = 10.0;
};

CaseStudyData MakeCaseStudy(const CaseStudyConfig& config = CaseStudyConfig());

/// One row of the Table-IV-style report.
struct DomainReport {
  std::string domain;
  uint32_t total_users = 0;
  uint32_t voting_for_target_before = 0;
  uint32_t voting_for_target_after = 0;
  /// Seeds (from the provided seed set) whose strongest domain is this one.
  std::vector<graph::NodeId> seeds_in_domain;
};

/// Evaluates the case study: who votes for the target (plurality sense) at
/// the horizon, per domain, without vs with the seed set.
std::vector<DomainReport> AnalyzeCaseStudy(
    const CaseStudyData& data, const std::vector<graph::NodeId>& seeds,
    uint32_t horizon);

}  // namespace voteopt::datasets

#endif  // VOTEOPT_DATASETS_CASE_STUDY_H_
