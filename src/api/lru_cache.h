// Tiny string-keyed LRU cache used by api::Engine's per-worker QueryStates
// to retain the most recently used per-voting-rule evaluator states (each
// one caches the competitors' propagated horizon opinions — the expensive
// part).
//
// Thread-compatibility: deliberately unsynchronized. Each instance lives
// inside one pooled QueryState, and api::StatePool hands a QueryState to
// at most one worker at a time (states_pool ownership transfer), so the
// cache is single-thread-confined by construction — a mutex here would
// only hide a pool bug. Confinement is exercised by the ASan/TSan runs
// of serve_concurrency_test.
#ifndef VOTEOPT_API_LRU_CACHE_H_
#define VOTEOPT_API_LRU_CACHE_H_

#include <cassert>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

namespace voteopt::api {

template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the cached value and marks it most recently used, or nullptr.
  V* Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    items_.splice(items_.begin(), items_, it->second);
    return &it->second->second;
  }

  /// Inserts (or replaces) a value, evicting the least recently used entry
  /// when over capacity. Returns the stored value.
  V* Put(const std::string& key, V value) {
    if (auto it = index_.find(key); it != index_.end()) {
      it->second->second = std::move(value);
      items_.splice(items_.begin(), items_, it->second);
      return &it->second->second;
    }
    items_.emplace_front(key, std::move(value));
    index_[key] = items_.begin();
    if (items_.size() > capacity_) {
      index_.erase(items_.back().first);
      items_.pop_back();
    }
    assert(items_.size() == index_.size());
    return &items_.front().second;
  }

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::list<std::pair<std::string, V>> items_;  // front = most recent
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, V>>::iterator>
      index_;
};

}  // namespace voteopt::api

#endif  // VOTEOPT_API_LRU_CACHE_H_
