// Per-query mutable state, pooled per worker. The frozen sketch of a
// DatasetEntry is shared read-only across every thread; everything a query
// actually mutates lives in a QueryState:
//
//  * a working WalkSet that aliases the frozen walk arrays (zero-copy,
//    WalkSet::ShareFrozen) but owns its dynamic truncation state — the
//    per-walk values / effective lengths / per-node sums that ResetValues
//    rebuilds and Truncate consumes, and
//  * the per-voting-rule ScoreEvaluator LRU (each evaluator caches the
//    competitors' propagated horizon opinions — the expensive part of its
//    construction).
//
// A query checks a state out of the StatePool, runs on it with no locking
// at all, and checks it back in via the RAII lease. The pool grows to at
// most one state per concurrently executing query of a dataset, and states
// are generation-tagged: when a dataset is unloaded (Evict) or re-loaded
// under the same name, stale pooled states are discarded instead of
// answering from dead data.
#ifndef VOTEOPT_API_STATE_POOL_H_
#define VOTEOPT_API_STATE_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/walk_set.h"
#include "api/lru_cache.h"
#include "api/registry.h"
#include "obs/metrics.h"
#include "util/thread_annotations.h"
#include "util/timer.h"
#include "voting/evaluator.h"

namespace voteopt::api {

/// One worker's mutable state for one dataset generation.
struct QueryState {
  QueryState(std::shared_ptr<const DatasetEntry> entry,
             uint32_t evaluator_cache_capacity);

  /// Cached evaluator for a spec; builds and inserts on miss — except for
  /// the entry's retained build evaluator, which is adopted instead of
  /// rebuilt. Sets `*cache_hit` accordingly (an adoption counts as a hit:
  /// nothing was constructed). The returned pointer stays valid until the
  /// LRU evicts the entry (i.e. for the duration of the current query).
  /// Repeated queries under one rule skip the string-keyed LRU entirely
  /// via a last-used memo — the common serving pattern and the reason the
  /// engine's dispatch overhead stays in the noise.
  const voting::ScoreEvaluator* EvaluatorFor(const voting::ScoreSpec& spec,
                                             bool* cache_hit);

  /// Pins the model / campaign state / frozen sketch the members below
  /// reference, even past an Unload of the dataset.
  std::shared_ptr<const DatasetEntry> entry;
  /// Shares the entry's frozen walk data; owns the dynamic state.
  std::unique_ptr<core::WalkSet> walks;
  /// shared_ptr values: evaluators are immutable after construction, so
  /// the entry's build evaluator can sit in every worker's LRU at once.
  LruCache<std::shared_ptr<const voting::ScoreEvaluator>> evaluators;

 private:
  /// Last-used memo: the spec and evaluator of the previous EvaluatorFor
  /// call. The pointer stays valid as long as the LRU holds the entry;
  /// the memo is invalidated whenever an insertion may have evicted it.
  voting::ScoreSpec last_spec_;
  const voting::ScoreEvaluator* last_evaluator_ = nullptr;
};

class StatePool {
 public:
  explicit StatePool(uint32_t evaluator_cache_capacity)
      : evaluator_cache_capacity_(evaluator_cache_capacity) {}

  /// RAII check-out handle; returns the state to the pool on destruction.
  class Lease {
   public:
    Lease(StatePool* pool, std::unique_ptr<QueryState> state)
        : pool_(pool), state_(std::move(state)) {}
    ~Lease() {
      if (state_ != nullptr) pool_->Release(std::move(state_));
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), state_(std::move(other.state_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    QueryState* operator->() const { return state_.get(); }
    QueryState& operator*() const { return *state_; }

   private:
    StatePool* pool_;
    std::unique_ptr<QueryState> state_;
  };

  /// Checks out a state bound to `entry`: reuses an idle one of the same
  /// generation, discards stale ones, builds a fresh one otherwise.
  Lease Acquire(std::shared_ptr<const DatasetEntry> entry);

  /// Retires every pooled (and future checked-in) state of `name` with
  /// generation <= `upto_generation`. Called on unload; in-flight leases
  /// are unaffected and their states are discarded on check-in.
  void Evict(const std::string& name, uint64_t upto_generation);

  /// Idle (checked-in) states currently pooled for `name`.
  size_t IdleStates(const std::string& name) const;
  /// Total QueryStates ever constructed (telemetry: worker-state churn).
  uint64_t states_created() const;

  /// Wires lease metrics (acquire-wait histogram, state-churn counter)
  /// into `metrics`, which must outlive the pool. Null disables (the
  /// default). Set before concurrent use (api::Engine wires it at Open).
  void set_metrics(obs::Registry* metrics);

 private:
  void Release(std::unique_ptr<QueryState> state);

  const uint32_t evaluator_cache_capacity_;
  /// Resolved once by set_metrics (before concurrent use — see above) —
  /// the Acquire hot path just bumps them. Deliberately unguarded.
  obs::Histogram* lease_wait_seconds_ = nullptr;
  obs::Counter* states_created_total_ = nullptr;
  mutable Mutex mutex_;
  std::unordered_map<std::string, std::vector<std::unique_ptr<QueryState>>>
      idle_ GUARDED_BY(mutex_);
  /// name -> highest generation retired by Evict. An entry exists only
  /// while leases of that name are outstanding (it guards their check-in);
  /// Release drops it with the last lease, so unload-heavy servers with
  /// rotating dataset names don't accumulate dead watermarks.
  std::unordered_map<std::string, uint64_t> retired_upto_
      GUARDED_BY(mutex_);
  /// name -> currently checked-out leases.
  std::unordered_map<std::string, uint64_t> outstanding_
      GUARDED_BY(mutex_);
  uint64_t states_created_ GUARDED_BY(mutex_) = 0;
};

}  // namespace voteopt::api

#endif  // VOTEOPT_API_STATE_POOL_H_
