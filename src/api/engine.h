// api::Engine: the single query-dispatch component. Every front door —
// the JSON wire protocol (serve::CampaignService is a thin transport shim),
// the voteopt_serve CLI, the examples, and the bench drivers — funnels
// typed api::Requests into Engine::Execute, so an embedded C++ answer and
// a served answer are the same bytes by construction, not by parallel
// maintenance of two code paths.
//
// The engine owns the multi-tenant substrate:
//   * a DatasetRegistry of named immutable problem instances (bundle +
//     diffusion model + frozen sketch), manageable at runtime via the
//     Load/Unload/List requests or directly (registry(), Host());
//   * a StatePool of per-worker mutable query state (working WalkSet views
//     + per-voting-rule evaluator LRUs);
//   * a util::ThreadPool for ExecuteBatch fan-out.
//
// Concurrency model (docs/ARCHITECTURE.md): everything reachable from a
// published DatasetEntry is immutable and shared across workers; all
// per-query mutable state lives in pooled QueryStates. Each query is
// deterministic in isolation, so answers are bit-identical whatever the
// worker count. Admin requests act as ordering barriers inside a batch,
// which preserves exact serial semantics.
//
// Method dispatch: the RS method (the default) answers from the hosted
// frozen sketch — selection is a zero-copy working view plus an O(theta)
// ResetValues. The other eight roster methods (DM, RW, IC, LT, GED-T, PR,
// RWR, DC) build their own substrate per query via
// baselines::SelectWithMethod; they are deterministic in
// QueryOptions::methods.rng_seed but cost what the offline algorithm
// costs. MethodCompare runs the whole roster on one instance; RuleSweep
// scores one budget under all five voting rules.
#ifndef VOTEOPT_API_ENGINE_H_
#define VOTEOPT_API_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "api/query.h"
#include "api/registry.h"
#include "api/state_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace voteopt::api {

struct EngineOptions {
  /// Bootstrap dataset registered at Open under `dataset_name`. Its
  /// bundle_prefix may be left empty to start with an empty registry —
  /// datasets then arrive via Load requests or Host(). These options are
  /// also the defaults inherited by protocol-level loads.
  DatasetLoadOptions load;
  std::string dataset_name = "default";

  /// Worker threads for ExecuteBatch fan-out (0 = one per hardware
  /// thread). Answers are identical for every value; this only sets how
  /// many independent queries run at once.
  uint32_t num_worker_threads = 1;

  /// Capacity of each worker state's per-voting-rule evaluator LRU. The
  /// default holds RuleSweep's five specs plus one client-chosen rule —
  /// any smaller and a repeated sweep's sequential rule order would evict
  /// each evaluator just before reusing it, rebuilding all five horizon
  /// propagations per sweep.
  uint32_t evaluator_cache_capacity = 6;

  /// Record engine/registry/state-pool metrics into the engine's
  /// obs::Registry. Metrics are a strictly additive side channel — they
  /// never feed back into execution, so answers are bit-identical on or
  /// off; the toggle exists so bench_serve can price the instrumentation
  /// (gated at <= 2% on the serve batch).
  bool enable_metrics = true;

  /// Slow-query log threshold in wall milliseconds: a query whose
  /// handling time reaches it emits one structured JSON line to stderr
  /// (obs::MaybeLogSlowQuery) carrying its stage spans. Negative disables
  /// the log (the default).
  double slow_query_millis = -1.0;
};

class Engine {
 public:
  /// Monotonic engine-wide counters (a point-in-time snapshot; the live
  /// counters are atomics updated from every worker).
  struct Stats {
    uint64_t queries = 0;
    uint64_t errors = 0;
    uint64_t evaluator_cache_hits = 0;
    uint64_t evaluator_cache_misses = 0;
    uint64_t sketch_resets = 0;
    /// QueryStates ever constructed — the worker-state churn; stays at the
    /// worker count in steady single-dataset operation.
    uint64_t worker_states = 0;
    bool sketch_built = false;  // the bootstrap Open had to build (no file)
  };

  /// Creates the engine and, when options.load.bundle_prefix is set, loads
  /// the bootstrap dataset. Fails with a clean Status on any inconsistency
  /// (see DatasetRegistry::Load).
  static Result<std::unique_ptr<Engine>> Open(const EngineOptions& options);

  /// Hosts an in-memory dataset (no disk round trip) under `name` — the
  /// embedded-caller bootstrap. See DatasetRegistry::Host.
  Status Host(const std::string& name, datasets::Dataset dataset,
              const HostOptions& host_options = {});

  /// Answers one request inline on the calling thread. Never throws;
  /// failures come back as error responses so a stream keeps flowing.
  /// Thread-safe: any number of client threads may call concurrently.
  Response Execute(const Request& request);

  /// Answers a batch with responses in request order. Query requests run
  /// concurrently on the worker pool; admin requests (load/unload/list)
  /// are ordering barriers, so the result is identical to serial
  /// execution.
  std::vector<Response> ExecuteBatch(const std::vector<Request>& batch);

  DatasetRegistry& registry() { return registry_; }
  const StatePool& state_pool() const { return states_; }
  uint32_t num_worker_threads() const { return pool_->num_threads(); }

  /// The engine's metrics registry: what the `stats` verb snapshots and
  /// voteopt_serve's --metrics_out renders as Prometheus text. Always
  /// present; empty when EngineOptions::enable_metrics is false.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  // Single-tenant conveniences: the sole hosted dataset (precondition:
  // the registry hosts exactly one, e.g. right after a bootstrap Open).
  const datasets::Dataset& dataset() const;
  const store::SketchMeta& sketch_meta() const;
  const core::WalkSet& walks() const;

  Stats stats() const;

 private:
  explicit Engine(const EngineOptions& options);

  /// Routes one request (query → pooled state, admin → registry). The
  /// trace rides along the whole query (never null; disabled unless the
  /// request set `trace`) collecting stage spans and work counts.
  Response Dispatch(const Request& request, obs::Trace* trace);
  Response ExecuteQuery(const Request& request, obs::Trace* trace);

  Response HandleTopK(const Request& request, const DatasetEntry& entry,
                      QueryState& state, obs::Trace* trace);
  Response HandleMinSeed(const Request& request, const DatasetEntry& entry,
                         QueryState& state, obs::Trace* trace);
  Response HandleEvaluate(const Request& request, const DatasetEntry& entry,
                          QueryState& state, obs::Trace* trace);
  Response HandleMethodCompare(const Request& request,
                               const DatasetEntry& entry, QueryState& state,
                               obs::Trace* trace);
  Response HandleRuleSweep(const Request& request, const DatasetEntry& entry,
                           QueryState& state, obs::Trace* trace);
  Response HandleLoad(const Request& request);
  Response HandleUnload(const Request& request);
  Response HandleList(const Request& request);
  Response HandleStats(const Request& request);
  /// All four mutation verbs (edge_add / edge_del / set_opinion / mutate):
  /// patches the graph+opinions, repairs the sketch incrementally
  /// (dyn::SketchRepairer — bit-identical to a from-scratch rebuild by
  /// determinism ledger entry #10), persists the mutation journal, and
  /// commits via DatasetRegistry::Replace + StatePool::Evict.
  Response HandleMutate(const Request& request);

  /// One method's selection on the shared instance: the hosted sketch for
  /// RS, baselines::SelectWithMethod for everything else. Wraps itself in
  /// the trace's `selection` span.
  core::SelectionResult SelectSeeds(baselines::Method method,
                                    const voting::ScoreEvaluator& evaluator,
                                    uint32_t k, const QueryOptions& options,
                                    const DatasetEntry& entry,
                                    QueryState& state, obs::Trace* trace);

  /// Cached evaluator from the leased state, with hit/miss accounting
  /// (engine atomics, metrics counters, and trace work counts; a miss's
  /// construction time lands in the `evaluation` stage span).
  const voting::ScoreEvaluator* EvaluatorFor(const voting::ScoreSpec& spec,
                                             QueryState& state,
                                             obs::Trace* trace);
  /// Rebuilds the leased working sketch's dynamic state for a selection.
  void ResetSketch(const DatasetEntry& entry, QueryState& state,
                   obs::Trace* trace);

  /// Folds the trace into the response's diagnostics and flags it for
  /// serialization; promotes selector work counts into the `work.` schema
  /// (keeping `gain_evaluations` as its one-version legacy alias).
  static void AttachTrace(const obs::Trace& trace, Response* response);

  EngineOptions options_;
  /// Declared before the components that hold a pointer to it (registry,
  /// state pool): members destroy in reverse order, so the instruments
  /// outlive every writer.
  obs::Registry metrics_;
  DatasetRegistry registry_;
  StatePool states_;
  std::unique_ptr<ThreadPool> pool_;
  bool bootstrap_built_ = false;

  /// Serializes mutation commits: each is a read-modify-write of one
  /// registry entry (resolve → patch → repair → Replace), and Replace
  /// itself checks no lineage. Queries never take this mutex — they keep
  /// resolving entries through the registry's own lock and finish on
  /// whatever instance they resolved.
  Mutex mutate_mutex_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> evaluator_cache_hits_{0};
  std::atomic<uint64_t> evaluator_cache_misses_{0};
  std::atomic<uint64_t> sketch_resets_{0};

  // Cached instrument pointers (stable for the registry's lifetime);
  // null when EngineOptions::enable_metrics is false.
  obs::Registry* mx_ = nullptr;  // &metrics_ when enabled
  obs::Counter* m_evaluator_hits_ = nullptr;
  obs::Counter* m_evaluator_misses_ = nullptr;
  obs::Counter* m_sketch_resets_ = nullptr;
  obs::Histogram* m_batch_size_ = nullptr;
  obs::Gauge* m_batch_inflight_ = nullptr;
  obs::Counter* m_dyn_commits_ = nullptr;
  obs::Counter* m_dyn_walks_repaired_ = nullptr;
  obs::Histogram* m_dyn_repair_seconds_ = nullptr;
};

}  // namespace voteopt::api

#endif  // VOTEOPT_API_ENGINE_H_
