#include "api/state_pool.h"

#include <string>

namespace voteopt::api {

QueryState::QueryState(std::shared_ptr<const DatasetEntry> owning_entry,
                       uint32_t evaluator_cache_capacity)
    : entry(std::move(owning_entry)),
      // For a built (owned) sketch the clone's views alias the entry's
      // vectors, so the keep-alive must pin the WalkSet itself; the entry
      // shared_ptr does that transitively and also keeps mmap-adopted
      // storage alive through the sketch member.
      walks(entry->sketch->ShareFrozen(entry->sketch)),
      evaluators(evaluator_cache_capacity) {}

const voting::ScoreEvaluator* QueryState::EvaluatorFor(
    const voting::ScoreSpec& spec, bool* cache_hit) {
  // Same rule as the previous query on this state (the common serving
  // pattern): skip the string key and the LRU splice entirely. The memo
  // always names the LRU's most-recently-used entry, which is never the
  // eviction victim, so the pointer cannot dangle.
  if (last_evaluator_ != nullptr && spec.kind == last_spec_.kind &&
      spec.p == last_spec_.p && spec.omega == last_spec_.omega) {
    *cache_hit = true;
    return last_evaluator_;
  }
  const voting::ScoreEvaluator* found = nullptr;
  const std::string key = EvaluatorSpecKey(spec);
  if (auto* cached = evaluators.Get(key); cached != nullptr) {
    *cache_hit = true;
    found = cached->get();
  } else if (entry->build_evaluator != nullptr &&
             key == entry->build_evaluator_key) {
    // The build fallback already paid for this evaluator's horizon
    // propagation once — adopt the shared instance instead of rebuilding.
    *cache_hit = true;
    found = evaluators.Put(key, entry->build_evaluator)->get();
  } else {
    *cache_hit = false;
    auto evaluator = std::make_shared<const voting::ScoreEvaluator>(
        *entry->model, entry->dataset.state, entry->meta.target,
        entry->meta.horizon, spec);
    found = evaluators.Put(key, std::move(evaluator))->get();
  }
  last_spec_ = spec;
  last_evaluator_ = found;
  return found;
}

void StatePool::set_metrics(obs::Registry* metrics) {
  if (metrics == nullptr) {
    lease_wait_seconds_ = nullptr;
    states_created_total_ = nullptr;
    return;
  }
  lease_wait_seconds_ = metrics->GetHistogram(
      "voteopt_state_lease_wait_seconds", {},
      "Wall seconds a query spends checking a QueryState out of the pool "
      "(lock wait plus fresh-state construction on a pool miss)");
  states_created_total_ = metrics->GetCounter(
      "voteopt_worker_states_total", {},
      "QueryStates ever constructed (worker-state churn; stays at the "
      "worker count in steady single-dataset operation)");
}

StatePool::Lease StatePool::Acquire(
    std::shared_ptr<const DatasetEntry> entry) {
  WallTimer timer;
  {
    MutexLock lock(&mutex_);
    ++outstanding_[entry->name];
    auto it = idle_.find(entry->name);
    if (it != idle_.end()) {
      auto& states = it->second;
      for (size_t i = states.size(); i-- > 0;) {
        const uint64_t pooled = states[i]->entry->generation;
        if (pooled == entry->generation) {
          std::unique_ptr<QueryState> state = std::move(states[i]);
          states.erase(states.begin() + static_cast<ptrdiff_t>(i));
          if (lease_wait_seconds_ != nullptr) {
            lease_wait_seconds_->Observe(timer.Seconds());
          }
          return Lease(this, std::move(state));
        }
        // Older generation: the dataset was re-loaded since this state was
        // pooled; it references dead data — discard. NEWER generation: the
        // requester itself holds a pre-reload entry; leave the live
        // dataset's warmed states (and their evaluator caches) alone.
        if (pooled < entry->generation) {
          states.erase(states.begin() + static_cast<ptrdiff_t>(i));
        }
      }
    }
  }
  // Constructing outside the lock: ShareFrozen is cheap, but the LRU and
  // dynamic-state allocations need not serialize other workers.
  auto state =
      std::make_unique<QueryState>(std::move(entry), evaluator_cache_capacity_);
  {
    MutexLock lock(&mutex_);
    ++states_created_;
  }
  if (states_created_total_ != nullptr) states_created_total_->Increment();
  if (lease_wait_seconds_ != nullptr) {
    lease_wait_seconds_->Observe(timer.Seconds());
  }
  return Lease(this, std::move(state));
}

void StatePool::Release(std::unique_ptr<QueryState> state) {
  MutexLock lock(&mutex_);
  const std::string& name = state->entry->name;
  auto retired = retired_upto_.find(state->entry->name);
  const bool discard = retired != retired_upto_.end() &&
                       state->entry->generation <= retired->second;
  if (auto out = outstanding_.find(name);
      out != outstanding_.end() && --out->second == 0) {
    // Last lease of this name checked in: no stale check-in can happen
    // anymore, so the eviction watermark has done its job.
    outstanding_.erase(out);
    retired_upto_.erase(name);
  }
  if (discard) return;  // the dataset was unloaded while this query ran
  idle_[state->entry->name].push_back(std::move(state));
}

void StatePool::Evict(const std::string& name, uint64_t upto_generation) {
  MutexLock lock(&mutex_);
  // The watermark only guards the check-in of leases already in flight;
  // with none outstanding there is nothing to guard.
  if (outstanding_.count(name) != 0) {
    uint64_t& watermark = retired_upto_[name];
    if (upto_generation > watermark) watermark = upto_generation;
  }
  auto it = idle_.find(name);
  if (it == idle_.end()) return;
  auto& states = it->second;
  std::erase_if(states, [&](const std::unique_ptr<QueryState>& state) {
    return state->entry->generation <= upto_generation;
  });
  if (states.empty()) idle_.erase(it);
}

size_t StatePool::IdleStates(const std::string& name) const {
  MutexLock lock(&mutex_);
  auto it = idle_.find(name);
  return it == idle_.end() ? 0 : it->second.size();
}

uint64_t StatePool::states_created() const {
  MutexLock lock(&mutex_);
  return states_created_;
}

}  // namespace voteopt::api
