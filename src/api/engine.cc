#include "api/engine.h"

#include <algorithm>
#include <future>
#include <utility>

#include "core/estimated_greedy.h"
#include "core/min_seed.h"
#include "util/timer.h"

namespace voteopt::api {

namespace {

/// Sketch-selection options for one query. Explicit rather than
/// default-constructed so the engine, not the library default, decides the
/// evaluate_exact semantics: inner selections never pay the extra exact
/// propagation — the topk/minseed handlers score the final answer exactly
/// themselves, exactly once (when the request asks for it). The lazy /
/// num_threads knobs come from the request's QueryOptions; their defaults
/// reproduce the serve layer's historical behavior bit-identically.
core::EstimatedGreedyOptions SketchSelectionOptions(
    const QueryOptions& options) {
  core::EstimatedGreedyOptions greedy;
  greedy.evaluate_exact = false;
  greedy.lazy = options.lazy;
  greedy.num_threads = options.num_threads;
  return greedy;
}

DatasetInfo InfoOf(const DatasetEntry& entry) {
  DatasetInfo info;
  info.name = entry.name;
  info.num_nodes = entry.dataset.influence.num_nodes();
  info.num_candidates = entry.dataset.state.num_candidates();
  info.theta = entry.meta.theta;
  info.horizon = entry.meta.horizon;
  info.target = entry.meta.target;
  info.sketch_built = entry.sketch_built;
  return info;
}

/// The method's own score estimate when it reports one (RW/RS sketch
/// estimates), else the given fallback (exact methods estimate nothing).
double EstimateOf(const core::SelectionResult& selection, double fallback) {
  const auto it = selection.diagnostics.find("estimated_score");
  return it != selection.diagnostics.end() ? it->second : fallback;
}

uint32_t ArgMax(const std::vector<double>& scores) {
  return static_cast<uint32_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace

Engine::Engine(const EngineOptions& options)
    : options_(options),
      states_(options.evaluator_cache_capacity),
      pool_(std::make_unique<ThreadPool>(options.num_worker_threads)) {
  if (!options_.enable_metrics) return;
  mx_ = &metrics_;
  registry_.set_metrics(mx_);
  states_.set_metrics(mx_);
  m_evaluator_hits_ = metrics_.GetCounter(
      "voteopt_evaluator_cache_hits_total", {},
      "Evaluator-LRU hits across all worker states (incl. last-used-memo "
      "hits and build-evaluator adoptions)");
  m_evaluator_misses_ = metrics_.GetCounter(
      "voteopt_evaluator_cache_misses_total", {},
      "Evaluator-LRU misses: a ScoreEvaluator (horizon propagation) had "
      "to be constructed");
  m_sketch_resets_ = metrics_.GetCounter(
      "voteopt_sketch_resets_total", {},
      "Working-sketch ResetValues rebuilds (one per RS selection)");
  m_batch_size_ = metrics_.GetHistogram(
      "voteopt_batch_requests", {},
      "Requests per ExecuteBatch call (batch occupancy)",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  m_batch_inflight_ = metrics_.GetGauge(
      "voteopt_batch_inflight", {},
      "Queries of the current batch submitted to the worker pool and not "
      "yet drained (queue depth; 0 between batches)");
}

Result<std::unique_ptr<Engine>> Engine::Open(const EngineOptions& options) {
  auto engine = std::unique_ptr<Engine>(new Engine(options));
  if (!options.load.bundle_prefix.empty()) {
    auto entry = engine->registry_.Load(options.dataset_name, options.load);
    if (!entry.ok()) return entry.status();
    engine->bootstrap_built_ = (*entry)->sketch_built;
  }
  return engine;
}

Status Engine::Host(const std::string& name, datasets::Dataset dataset,
                    const HostOptions& host_options) {
  auto entry = registry_.Host(name, std::move(dataset), host_options);
  return entry.ok() ? Status::OK() : entry.status();
}

const datasets::Dataset& Engine::dataset() const {
  return registry_.Resolve("").value()->dataset;
}

const store::SketchMeta& Engine::sketch_meta() const {
  return registry_.Resolve("").value()->meta;
}

const core::WalkSet& Engine::walks() const {
  return *registry_.Resolve("").value()->sketch;
}

Engine::Stats Engine::stats() const {
  Stats stats;
  stats.queries = queries_.load();
  stats.errors = errors_.load();
  stats.evaluator_cache_hits = evaluator_cache_hits_.load();
  stats.evaluator_cache_misses = evaluator_cache_misses_.load();
  stats.sketch_resets = sketch_resets_.load();
  stats.worker_states = states_.states_created();
  stats.sketch_built = bootstrap_built_;
  return stats;
}

const voting::ScoreEvaluator* Engine::EvaluatorFor(
    const voting::ScoreSpec& spec, QueryState& state, obs::Trace* trace) {
  bool cache_hit = false;
  // A miss constructs the evaluator (a horizon propagation — the costly
  // part); that lands in the `evaluation` stage. Hits stop the span in
  // nanoseconds and add noise-floor time only.
  obs::Trace::Span span(trace, "evaluation");
  const voting::ScoreEvaluator* evaluator =
      state.EvaluatorFor(spec, &cache_hit);
  span.Stop();
  ++(cache_hit ? evaluator_cache_hits_ : evaluator_cache_misses_);
  if (cache_hit) {
    if (m_evaluator_hits_ != nullptr) m_evaluator_hits_->Increment();
    trace->AddWork("evaluator_cache_hits", 1);
  } else {
    if (m_evaluator_misses_ != nullptr) m_evaluator_misses_->Increment();
    trace->AddWork("evaluator_cache_misses", 1);
  }
  return evaluator;
}

void Engine::ResetSketch(const DatasetEntry& entry, QueryState& state,
                         obs::Trace* trace) {
  state.walks->ResetValues(entry.target_opinions());
  ++sketch_resets_;
  if (m_sketch_resets_ != nullptr) m_sketch_resets_->Increment();
  trace->AddWork("sketch_resets", 1);
}

void Engine::AttachTrace(const obs::Trace& trace, Response* response) {
  std::map<std::string, double> merged;
  for (const auto& [name, value] : response->diagnostics) {
    if (name == "estimated_score") continue;  // already a response field
    merged["work." + name] = value;
  }
  // gain_evaluations predates the work. schema (PR 4); the bare spelling
  // stays as an alias for one protocol version (see docs/PROTOCOL.md).
  if (auto legacy = response->diagnostics.find("gain_evaluations");
      legacy != response->diagnostics.end()) {
    merged["gain_evaluations"] = legacy->second;
  }
  for (const auto& [name, value] : trace.entries()) merged[name] += value;
  response->diagnostics = std::move(merged);
  response->traced = true;
}

Response Engine::Execute(const Request& request) {
  ++queries_;
  WallTimer timer;
  // The trace records when the client opted in OR the slow-query log is
  // armed (a slow line without its stage breakdown would be useless);
  // it reaches the wire only on client opt-in.
  obs::Trace trace(request.trace || options_.slow_query_millis >= 0);
  if (request.parse_millis > 0) {
    trace.AddStageMillis("parse", request.parse_millis);
  }
  Response response;
  if (request.v == 0 || request.v > kProtocolVersion) {
    // The codec rejects these before they reach the engine; typed callers
    // get the same clean error instead of silently-wrong semantics.
    response = Response::Error(
        request, Status::InvalidArgument(
                     "unsupported protocol version v=" +
                     std::to_string(request.v) + " (this engine speaks v1-v" +
                     std::to_string(kProtocolVersion) + ")"));
  } else {
    response = Dispatch(request, &trace);
  }
  if (!response.ok) ++errors_;
  const double seconds = timer.Seconds();
  if (mx_ != nullptr) {
    const char* op = OpName(request.op);
    mx_->GetCounter("voteopt_queries_total",
                    {{"op", op},
                     {"method", baselines::MethodName(request.method)},
                     {"rule", request.rule}},
                    "Requests answered, labeled by the request's verb, "
                    "method, and rule fields")
        ->Increment();
    if (!response.ok) {
      mx_->GetCounter("voteopt_errors_total", {{"op", op}},
                      "Error responses, by verb")
          ->Increment();
    }
    mx_->GetHistogram("voteopt_query_seconds",
                      {{"op", op}, {"dataset", response.dataset}},
                      "Server-side handling seconds, by verb and answering "
                      "dataset")
        ->Observe(seconds);
  }
  if (request.trace) AttachTrace(trace, &response);
  obs::MaybeLogSlowQuery(OpName(request.op), response.dataset, request.id,
                         seconds * 1e3, options_.slow_query_millis, trace);
  return response;
}

Response Engine::Dispatch(const Request& request, obs::Trace* trace) {
  switch (request.op) {
    case Request::Op::kTopK:
    case Request::Op::kMinSeed:
    case Request::Op::kEvaluate:
    case Request::Op::kMethodCompare:
    case Request::Op::kRuleSweep:
      return ExecuteQuery(request, trace);
    case Request::Op::kLoad:
      return HandleLoad(request);
    case Request::Op::kUnload:
      return HandleUnload(request);
    case Request::Op::kList:
      return HandleList(request);
    case Request::Op::kStats:
      return HandleStats(request);
  }
  return Response::Error(request, Status::Internal("unroutable op"));
}

std::vector<Response> Engine::ExecuteBatch(const std::vector<Request>& batch) {
  if (m_batch_size_ != nullptr) {
    m_batch_size_->Observe(static_cast<double>(batch.size()));
  }
  // A one-request batch (the interactive stdin path) gains nothing from a
  // pool hand-off; answer inline and skip two cross-thread hops.
  if (batch.size() == 1) return {Execute(batch[0])};
  std::vector<Response> responses(batch.size());
  std::vector<std::pair<size_t, std::future<Response>>> inflight;
  auto drain = [&] {
    for (auto& [index, future] : inflight) responses[index] = future.get();
    inflight.clear();
    if (m_batch_inflight_ != nullptr) m_batch_inflight_->Set(0);
  };
  for (size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i];
    if (IsAdminOp(request.op)) {
      // Admin requests are ordering barriers: every query before them sees
      // the registry as it was, every query after them the updated one —
      // exactly the serial semantics, whatever the worker count. (The
      // stats verb is admin for the same reason: its counters are exact
      // with respect to its position in the batch.)
      drain();
      responses[i] = Execute(request);
    } else {
      inflight.emplace_back(
          i, pool_->Submit([this, &request] { return Execute(request); }));
      if (m_batch_inflight_ != nullptr) {
        m_batch_inflight_->Set(static_cast<double>(inflight.size()));
      }
    }
  }
  drain();
  return responses;
}

Response Engine::ExecuteQuery(const Request& request, obs::Trace* trace) {
  obs::Trace::Span dispatch_span(trace, "dispatch");
  auto entry = registry_.Resolve(request.dataset);
  if (!entry.ok()) return Response::Error(request, entry.status());
  dispatch_span.Stop();
  obs::Trace::Span lease_span(trace, "state_lease");
  StatePool::Lease state = states_.Acquire(*entry);
  lease_span.Stop();
  switch (request.op) {
    case Request::Op::kTopK:
      return HandleTopK(request, **entry, *state, trace);
    case Request::Op::kMinSeed:
      return HandleMinSeed(request, **entry, *state, trace);
    case Request::Op::kMethodCompare:
      return HandleMethodCompare(request, **entry, *state, trace);
    case Request::Op::kRuleSweep:
      return HandleRuleSweep(request, **entry, *state, trace);
    default:
      return HandleEvaluate(request, **entry, *state, trace);
  }
}

core::SelectionResult Engine::SelectSeeds(
    baselines::Method method, const voting::ScoreEvaluator& evaluator,
    uint32_t k, const QueryOptions& options, const DatasetEntry& entry,
    QueryState& state, obs::Trace* trace) {
  obs::Trace::Span span(trace, "selection");
  if (mx_ != nullptr) {
    mx_->GetCounter("voteopt_selections_total",
                    {{"method", baselines::MethodName(method)},
                     {"dataset", entry.name}},
                    "Seed selections run, by method and dataset (a "
                    "methodcompare query runs one per roster entry)")
        ->Increment();
  }
  if (method == baselines::Method::kRS) {
    // RS answers from the hosted artifact: rebuild the working view's
    // O(theta) dynamic state, then run the greedy loop on the frozen walks.
    ResetSketch(entry, state, trace);
    return core::EstimatedGreedySelect(evaluator, k, state.walks.get(),
                                       SketchSelectionOptions(options));
  }
  // The rest of the roster builds its own substrate per query (walks for
  // RW, RR sets for IC/LT, score vectors for the heuristics) — exactly the
  // offline § VIII-A comparison, deterministic in options.methods.rng_seed.
  return baselines::SelectWithMethod(method, evaluator, k, options.methods);
}

Response Engine::HandleTopK(const Request& request, const DatasetEntry& entry,
                            QueryState& state, obs::Trace* trace) {
  WallTimer timer;
  auto spec = ResolveRule(request, entry.dataset.state.num_candidates());
  if (!spec.ok()) return Response::Error(request, spec.status());
  if (request.k == 0 || request.k > entry.dataset.influence.num_nodes()) {
    return Response::Error(
        request, Status::InvalidArgument("k must be in [1, num_nodes]"));
  }
  const voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec, state, trace);
  core::SelectionResult selection =
      SelectSeeds(request.method, *evaluator, request.k, request.options,
                  entry, state, trace);

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = entry.name;
  if (request.method != baselines::Method::kRS) {
    response.method = baselines::MethodName(request.method);
  }
  if (request.method == baselines::Method::kRS) {
    response.estimated_score = selection.diagnostics.at("estimated_score");
    obs::Trace::Span eval_span(trace, "evaluation");
    response.exact_score = request.options.evaluate_exact
                               ? evaluator->EvaluateSeeds(selection.seeds)
                               : 0.0;
  } else {
    // SelectWithMethod scores its answer exactly as part of the contract.
    response.estimated_score = EstimateOf(selection, selection.score);
    response.exact_score = selection.score;
  }
  response.seeds = std::move(selection.seeds);
  response.diagnostics = std::move(selection.diagnostics);
  response.millis = timer.Millis();
  return response;
}

Response Engine::HandleMinSeed(const Request& request,
                               const DatasetEntry& entry, QueryState& state,
                               obs::Trace* trace) {
  WallTimer timer;
  auto spec = ResolveRule(request, entry.dataset.state.num_candidates());
  if (!spec.ok()) return Response::Error(request, spec.status());
  if (request.k_max > entry.dataset.influence.num_nodes()) {
    return Response::Error(
        request, Status::InvalidArgument("k_max exceeds num_nodes"));
  }
  const voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec, state, trace);

  obs::Trace::Span selection_span(trace, "selection");
  core::MinSeedResult result;
  if (request.method == baselines::Method::kRS && request.options.single_pass) {
    // Single-pass Algorithm 2: greedy on the frozen sketch is
    // prefix-nested, so ONE selection at k_max — checking the winning
    // criterion per prefix — replaces the binary search's per-probe
    // ResetSketch + full reselection. selector_calls is therefore at most
    // 1 (see PROTOCOL.md).
    const core::PrefixSelector selector =
        [this, &request, &entry, &state, trace](
            const voting::ScoreEvaluator& evaluator_ref, uint32_t budget,
            const core::PrefixCallback& on_prefix) {
          ResetSketch(entry, state, trace);
          core::EstimatedGreedyOptions greedy =
              SketchSelectionOptions(request.options);
          greedy.on_prefix = core::ToGreedyPrefixHook(on_prefix);
          return core::EstimatedGreedySelect(evaluator_ref, budget,
                                             state.walks.get(), greedy);
        };
    result = core::MinSeedsToWinSinglePass(*evaluator, selector,
                                           request.k_max);
  } else {
    // The paper's budget binary search — over fresh sketch selections for
    // RS (the single-pass oracle baseline), or over any other roster
    // method via its generic SeedSelector adapter.
    core::SeedSelector selector;
    if (request.method == baselines::Method::kRS) {
      selector = [this, &request, &entry, &state, trace](
                     const voting::ScoreEvaluator& evaluator_ref,
                     uint32_t budget) {
        ResetSketch(entry, state, trace);
        return core::EstimatedGreedySelect(
            evaluator_ref, budget, state.walks.get(),
            SketchSelectionOptions(request.options));
      };
    } else {
      selector =
          baselines::MakeSelector(request.method, request.options.methods);
    }
    result = core::MinSeedsToWin(*evaluator, selector, request.k_max);
  }
  selection_span.Stop();

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = entry.name;
  if (request.method != baselines::Method::kRS) {
    response.method = baselines::MethodName(request.method);
  }
  response.achievable = result.achievable;
  response.k_star = result.k_star;
  response.seeds = result.seeds;
  response.selector_calls = result.selector_calls;
  trace->AddWork("selector_calls", result.selector_calls);
  {
    obs::Trace::Span eval_span(trace, "evaluation");
    response.exact_score = request.options.evaluate_exact
                               ? evaluator->EvaluateSeeds(result.seeds)
                               : 0.0;
  }
  response.millis = timer.Millis();
  return response;
}

Response Engine::HandleEvaluate(const Request& request,
                                const DatasetEntry& entry, QueryState& state,
                                obs::Trace* trace) {
  WallTimer timer;
  auto spec = ResolveRule(request, entry.dataset.state.num_candidates());
  if (!spec.ok()) return Response::Error(request, spec.status());
  const uint32_t n = entry.dataset.influence.num_nodes();
  for (const graph::NodeId seed : request.seeds) {
    if (seed >= n) {
      return Response::Error(request,
                             Status::OutOfRange("seed id out of range"));
    }
  }
  for (const auto& [user, opinion] : request.overrides) {
    if (user >= n) {
      return Response::Error(request,
                             Status::OutOfRange("override user out of range"));
    }
    if (opinion < 0.0 || opinion > 1.0) {
      return Response::Error(
          request,
          Status::InvalidArgument("override opinion must be in [0, 1]"));
    }
  }
  const voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec, state, trace);

  obs::Trace::Span eval_span(trace, "evaluation");
  // Exact propagation of the (possibly overridden) target campaign; the
  // competitors' horizon opinions come from the cached evaluator state.
  opinion::Campaign campaign = entry.dataset.state.campaigns[entry.meta.target];
  for (const auto& [user, opinion] : request.overrides) {
    campaign.initial_opinions[user] = opinion;
  }
  const std::vector<double> target_row = entry.model->PropagateWithSeeds(
      campaign, request.seeds, entry.meta.horizon);

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = entry.name;
  response.score = evaluator->ScoreFromTargetOpinions(target_row);
  response.all_scores = evaluator->ScoresAllCandidates(target_row);
  response.winner = ArgMax(response.all_scores);
  eval_span.Stop();
  response.millis = timer.Millis();
  return response;
}

Response Engine::HandleMethodCompare(const Request& request,
                                     const DatasetEntry& entry,
                                     QueryState& state, obs::Trace* trace) {
  WallTimer timer;
  auto spec = ResolveRule(request, entry.dataset.state.num_candidates());
  if (!spec.ok()) return Response::Error(request, spec.status());
  if (request.k == 0 || request.k > entry.dataset.influence.num_nodes()) {
    return Response::Error(
        request, Status::InvalidArgument("k must be in [1, num_nodes]"));
  }
  const voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec, state, trace);
  // Default roster: all nine methods, in the paper's plotting order.
  const std::vector<baselines::Method> roster =
      request.methods.empty() ? baselines::AllMethods() : request.methods;

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = entry.name;
  response.method_scores.reserve(roster.size());
  for (const baselines::Method method : roster) {
    const core::SelectionResult selection = SelectSeeds(
        method, *evaluator, request.k, request.options, entry, state, trace);
    MethodScore entry_score;
    entry_score.method = baselines::MethodName(method);
    entry_score.seeds = selection.seeds;
    obs::Trace::Span eval_span(trace, "evaluation");
    entry_score.exact_score = method == baselines::Method::kRS
                                  ? evaluator->EvaluateSeeds(selection.seeds)
                                  : selection.score;
    eval_span.Stop();
    entry_score.estimated_score =
        EstimateOf(selection, entry_score.exact_score);
    entry_score.seconds = selection.seconds;
    response.method_scores.push_back(std::move(entry_score));
  }
  response.millis = timer.Millis();
  return response;
}

Response Engine::HandleRuleSweep(const Request& request,
                                 const DatasetEntry& entry,
                                 QueryState& state, obs::Trace* trace) {
  WallTimer timer;
  const uint32_t r = entry.dataset.state.num_candidates();
  if (request.k == 0 || request.k > entry.dataset.influence.num_nodes()) {
    return Response::Error(
        request, Status::InvalidArgument("k must be in [1, num_nodes]"));
  }
  // The paper's five voting rules (§ II-B). The positional entry uses the
  // request's omega when supplied and the Borda weight vector otherwise
  // (the natural r-rank default; requires r >= 2 like rule=borda).
  std::vector<std::pair<std::string, Result<voting::ScoreSpec>>> rules;
  rules.emplace_back("cumulative",
                     ResolveRule("cumulative", 1, {}, r));
  rules.emplace_back("plurality", ResolveRule("plurality", 1, {}, r));
  rules.emplace_back("papproval", ResolveRule("papproval", request.p, {}, r));
  rules.emplace_back("positional",
                     request.omega.empty()
                         ? ResolveRule("borda", 1, {}, r)
                         : ResolveRule("positional", request.p, request.omega,
                                       r));
  rules.emplace_back("copeland", ResolveRule("copeland", 1, {}, r));

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = entry.name;
  response.rule_scores.reserve(rules.size());
  for (const auto& [name, spec] : rules) {
    if (!spec.ok()) return Response::Error(request, spec.status());
    const voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec, state, trace);
    const core::SelectionResult selection =
        SelectSeeds(request.method, *evaluator, request.k, request.options,
                    entry, state, trace);
    RuleScore rule_score;
    rule_score.rule = name;
    rule_score.seeds = selection.seeds;
    // One exact propagation yields the target's score, every candidate's
    // score, and the post-seeding winner under this rule.
    obs::Trace::Span eval_span(trace, "evaluation");
    const std::vector<double> target_row =
        evaluator->TargetHorizonOpinions(selection.seeds);
    rule_score.exact_score = evaluator->ScoreFromTargetOpinions(target_row);
    rule_score.estimated_score =
        EstimateOf(selection, rule_score.exact_score);
    rule_score.winner = ArgMax(evaluator->ScoresAllCandidates(target_row));
    eval_span.Stop();
    response.rule_scores.push_back(std::move(rule_score));
  }
  response.millis = timer.Millis();
  return response;
}

Response Engine::HandleLoad(const Request& request) {
  WallTimer timer;
  if (request.dataset.empty()) {
    return Response::Error(
        request, Status::InvalidArgument("load requires a 'dataset' name"));
  }
  if (request.bundle.empty()) {
    return Response::Error(
        request, Status::InvalidArgument("load requires a 'bundle' prefix"));
  }
  DatasetLoadOptions load = options_.load;  // engine defaults
  load.bundle_prefix = request.bundle;
  load.sketch_path = request.sketch;
  if (request.theta > 0) load.build_theta = request.theta;
  auto entry = registry_.Load(request.dataset, load);
  if (!entry.ok()) return Response::Error(request, entry.status());

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = (*entry)->name;
  response.datasets.push_back(InfoOf(**entry));
  response.millis = timer.Millis();
  return response;
}

Response Engine::HandleUnload(const Request& request) {
  WallTimer timer;
  if (request.dataset.empty()) {
    return Response::Error(
        request, Status::InvalidArgument("unload requires a 'dataset' name"));
  }
  auto removed = registry_.Unload(request.dataset);
  if (!removed.ok()) return Response::Error(request, removed.status());
  // Drop pooled idle states; states leased to in-flight queries are
  // discarded when they check back in.
  states_.Evict(request.dataset, (*removed)->generation);

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = request.dataset;
  response.millis = timer.Millis();
  return response;
}

Response Engine::HandleList(const Request& request) {
  WallTimer timer;
  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  for (const auto& entry : registry_.List()) {
    response.datasets.push_back(InfoOf(*entry));
  }
  response.millis = timer.Millis();
  return response;
}

Response Engine::HandleStats(const Request& request) {
  WallTimer timer;
  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  // The flat registry snapshot ("name{labels}" -> value), plus the
  // engine's core atomics as engine_* entries — present even when
  // enable_metrics is false, so `stats` always answers something.
  response.stats = metrics_.Snapshot();
  response.stats.emplace("engine_queries_total",
                         static_cast<double>(queries_.load()));
  response.stats.emplace("engine_errors_total",
                         static_cast<double>(errors_.load()));
  response.millis = timer.Millis();
  return response;
}

}  // namespace voteopt::api
