#include "api/query.h"

namespace voteopt::api {

const char* OpName(Request::Op op) {
  switch (op) {
    case Request::Op::kTopK: return "topk";
    case Request::Op::kMinSeed: return "minseed";
    case Request::Op::kEvaluate: return "evaluate";
    case Request::Op::kMethodCompare: return "methodcompare";
    case Request::Op::kRuleSweep: return "rulesweep";
    case Request::Op::kLoad: return "load";
    case Request::Op::kUnload: return "unload";
    case Request::Op::kList: return "list";
    case Request::Op::kStats: return "stats";
    case Request::Op::kEdgeAdd: return "edge_add";
    case Request::Op::kEdgeDel: return "edge_del";
    case Request::Op::kSetOpinion: return "set_opinion";
    case Request::Op::kMutate: return "mutate";
  }
  return "?";
}

bool IsAdminOp(Request::Op op) {
  return op == Request::Op::kLoad || op == Request::Op::kUnload ||
         op == Request::Op::kList || op == Request::Op::kStats ||
         op == Request::Op::kEdgeAdd || op == Request::Op::kEdgeDel ||
         op == Request::Op::kSetOpinion || op == Request::Op::kMutate;
}

Result<voting::ScoreSpec> ResolveRule(const std::string& rule, uint32_t p,
                                      const std::vector<double>& omega,
                                      uint32_t num_candidates) {
  voting::ScoreSpec spec;
  if (rule == "cumulative") {
    spec = voting::ScoreSpec::Cumulative();
  } else if (rule == "plurality") {
    spec = voting::ScoreSpec::Plurality();
  } else if (rule == "papproval" || rule == "p-approval") {
    spec = voting::ScoreSpec::PApproval(p);
  } else if (rule == "positional") {
    if (omega.empty()) {
      return Status::InvalidArgument(
          "rule 'positional' requires the 'omega' weights");
    }
    spec = voting::ScoreSpec::PositionalPApproval(omega);
  } else if (rule == "copeland") {
    spec = voting::ScoreSpec::Copeland();
  } else if (rule == "borda") {
    // ScoreSpec::Borda derives its weights from r and is undefined for a
    // single-candidate walkover — validate instead of asserting.
    if (num_candidates < 2) {
      return Status::InvalidArgument(
          "rule 'borda' requires at least 2 candidates (r = " +
          std::to_string(num_candidates) + ")");
    }
    spec = voting::ScoreSpec::Borda(num_candidates);
  } else {
    return Status::InvalidArgument(
        "unknown rule '" + rule +
        "' (valid: cumulative, plurality, papproval, positional, copeland, "
        "borda)");
  }
  VOTEOPT_RETURN_IF_ERROR(spec.Validate(num_candidates));
  return spec;
}

void SpecToRuleFields(const voting::ScoreSpec& spec, Request* request) {
  request->p = spec.p;
  request->omega = spec.omega;
  switch (spec.kind) {
    case voting::ScoreKind::kCumulative:
      request->rule = "cumulative";
      break;
    case voting::ScoreKind::kPlurality:
      request->rule = "plurality";
      break;
    case voting::ScoreKind::kPApproval:
      request->rule = "papproval";
      break;
    case voting::ScoreKind::kPositionalPApproval:
      request->rule = "positional";
      break;
    case voting::ScoreKind::kCopeland:
      request->rule = "copeland";
      break;
  }
}

Request Request::TopK(uint32_t k, const voting::ScoreSpec& spec,
                      baselines::Method method) {
  Request request;
  request.op = Op::kTopK;
  request.k = k;
  request.method = method;
  SpecToRuleFields(spec, &request);
  return request;
}

Request Request::MinSeed(uint32_t k_max, const voting::ScoreSpec& spec,
                         baselines::Method method) {
  Request request;
  request.op = Op::kMinSeed;
  request.k_max = k_max;
  request.method = method;
  SpecToRuleFields(spec, &request);
  return request;
}

Request Request::Evaluate(std::vector<graph::NodeId> seeds,
                          const voting::ScoreSpec& spec) {
  Request request;
  request.op = Op::kEvaluate;
  request.seeds = std::move(seeds);
  SpecToRuleFields(spec, &request);
  return request;
}

Request Request::MethodCompare(uint32_t k, const voting::ScoreSpec& spec) {
  Request request;
  request.op = Op::kMethodCompare;
  request.k = k;
  SpecToRuleFields(spec, &request);
  return request;
}

Request Request::RuleSweep(uint32_t k) {
  Request request;
  request.op = Op::kRuleSweep;
  request.k = k;
  return request;
}

Request Request::EdgeAdd(uint32_t from, uint32_t to, double weight) {
  Request request;
  request.op = Op::kEdgeAdd;
  request.mutations.push_back(dyn::Mutation::EdgeAdd(from, to, weight));
  return request;
}

Request Request::EdgeDel(uint32_t from, uint32_t to) {
  Request request;
  request.op = Op::kEdgeDel;
  request.mutations.push_back(dyn::Mutation::EdgeDel(from, to));
  return request;
}

Request Request::SetOpinion(uint32_t candidate, graph::NodeId node,
                            double value) {
  Request request;
  request.op = Op::kSetOpinion;
  request.mutations.push_back(
      dyn::Mutation::SetOpinion(candidate, node, value));
  return request;
}

Request Request::Mutate(std::vector<dyn::Mutation> mutations) {
  Request request;
  request.op = Op::kMutate;
  request.mutations = std::move(mutations);
  return request;
}

Response Response::Error(const Request& request, const Status& status) {
  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.ok = false;
  response.error = status.ToString();
  return response;
}

}  // namespace voteopt::api
