// DatasetRegistry: the multi-tenant heart of the query engine. Each entry
// hosts one immutable problem instance — dataset bundle + diffusion model +
// frozen sketch — under a runtime-chosen name, so a single process serves
// several campaigns (or several model variants of one campaign, cf. the
// varying-susceptibility line of work) side by side, and datasets can be
// loaded and evicted while queries are in flight via the protocol's
// load / unload / list verbs. Embedded callers can also publish a dataset
// they already hold in memory (Host), skipping disk entirely.
//
// Entries are published as shared_ptr<const DatasetEntry>: a query resolves
// its dataset name to an entry once and holds the shared_ptr for the
// request's duration, so Unload never pulls data out from under an in-flight
// query — the entry (and the mmap behind its sketch) is freed when the last
// reference drops. The registry itself is a small mutex-guarded map;
// everything reachable from a published entry is immutable (the threading
// contract is documented in docs/ARCHITECTURE.md).
#ifndef VOTEOPT_API_REGISTRY_H_
#define VOTEOPT_API_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/walk_set.h"
#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "dyn/mutation.h"
#include "graph/alias_table.h"
#include "obs/metrics.h"
#include "opinion/fj_model.h"
#include "store/sketch_store.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "voting/evaluator.h"

namespace voteopt::api {

/// Canonical cache key for a voting rule (omega is hashed; two positional
/// rules with different weights must not share an evaluator).
std::string EvaluatorSpecKey(const voting::ScoreSpec& spec);

/// Fingerprint of a problem instance: every CSR array of the influence
/// graph plus every campaign's opinions and stubbornness. Binds sketches
/// to bundles (SketchMeta::bundle_fingerprint) and mutation journals to
/// their base bundle (dyn/journal.h).
uint64_t BundleFingerprint(const datasets::Dataset& dataset);

/// How to materialize one dataset: where the bundle lives and what to do
/// when its sketch member is missing.
struct DatasetLoadOptions {
  /// Dataset bundle prefix (graph + campaigns + meta; datasets/io.h).
  std::string bundle_prefix;
  /// Sketch store file; empty means `<bundle_prefix>.sketch`.
  std::string sketch_path;
  /// Map the sketch instead of copying it into RAM.
  store::SketchLoadMode sketch_load_mode = store::SketchLoadMode::kMmap;

  /// Fallback when the sketch file is missing: build this many walks
  /// (0 = fail instead of building).
  uint64_t build_theta = uint64_t{1} << 18;
  /// Horizon for a freshly built sketch (persisted files carry their own).
  uint32_t build_horizon = 20;
  /// Persist a freshly built sketch next to the bundle.
  bool save_built_sketch = false;
  /// Sketch-builder threads (0 = one per hardware thread).
  uint32_t build_threads = 0;
  uint64_t rng_seed = 42;

  /// When > 0, a build fallback runs OUT OF CORE: the graph is partitioned
  /// into node-range blocks of at most this many resident bytes
  /// (sketch_ooc/), built block-at-a-time, and — by determinism ledger
  /// entry #7 — yields the exact WalkSet the in-memory builder would.
  /// 0 keeps the in-memory sharded builder.
  uint64_t block_budget_bytes = 0;
  /// Where the OOC build parks its scratch block files; empty means next
  /// to the bundle (`<bundle_prefix>.oocblk`). Cleaned up after the build.
  std::string ooc_scratch_prefix;
};

/// One hosted problem instance. Immutable once published by Load; shared
/// with every in-flight query through shared_ptr<const DatasetEntry>.
struct DatasetEntry {
  std::string name;
  /// Unique per successful Load. Pooled per-worker state is tagged with the
  /// generation it was built against, so state for an unloaded or re-loaded
  /// name is detected as stale and discarded instead of reused.
  uint64_t generation = 0;

  datasets::Dataset dataset;
  std::unique_ptr<opinion::FJModel> model;
  /// The frozen sketch layer. Never mutated after publication; queries run
  /// on per-worker WalkSet::ShareFrozen clones instead.
  std::shared_ptr<const core::WalkSet> sketch;
  store::SketchMeta meta;
  bool sketch_built = false;  // Load had to build (no persisted file)

  /// The evaluator the sketch-build fallback had to construct anyway. Its
  /// horizon propagation is the expensive part, so it is kept (immutable,
  /// const-only methods — safe to share across workers) and seeds every
  /// QueryState's LRU under `build_evaluator_key` instead of being rebuilt
  /// once per worker. Null when the sketch was loaded from disk.
  std::shared_ptr<const voting::ScoreEvaluator> build_evaluator;
  std::string build_evaluator_key;

  // --- dynamic-graph state (src/dyn) --------------------------------------
  /// Bundle prefix the entry was loaded from; "" for hosted (in-memory)
  /// entries — then the mutation journal is not persisted.
  std::string bundle_prefix;
  /// Fingerprint of the on-disk base bundle (what a journal replays
  /// against). Unlike meta.bundle_fingerprint — which tracks the CURRENT,
  /// possibly mutated instance — this never changes across mutations.
  uint64_t base_fingerprint = 0;
  /// Every committed mutation since the base bundle, in commit order.
  dyn::MutationLog mutation_log;
  /// Alias tables over the current influence graph, populated lazily by
  /// the first edge mutation so later repairs rebuild rows, not tables.
  /// Null until then (query paths never need it).
  std::shared_ptr<const graph::AliasSampler> alias;

  /// The target campaign's initial opinions — what each query's
  /// WalkSet::ResetValues rebuilds the dynamic truncation state from.
  const std::vector<double>& target_opinions() const {
    return dataset.state.campaigns[meta.target].initial_opinions;
  }
};

/// How to host an in-memory dataset (DatasetRegistry::Host): the sketch is
/// always built inline — there is no file to load — so these are the
/// build-recipe knobs of DatasetLoadOptions without the disk paths.
struct HostOptions {
  uint64_t theta = uint64_t{1} << 18;  // sketch walk count
  uint32_t horizon = 20;
  /// Target candidate the sketch is built for (and every query answers
  /// about). Defaults to the dataset's default_target.
  std::optional<uint32_t> target;
  /// Sketch-builder threads (0 = one per hardware thread).
  uint32_t num_threads = 0;
  uint64_t rng_seed = 42;

  /// When > 0, the inline build runs out of core under this per-block
  /// resident-byte budget (see DatasetLoadOptions::block_budget_bytes);
  /// the resulting sketch is bit-identical either way.
  uint64_t block_budget_bytes = 0;
  /// Scratch prefix for the OOC block files; empty means a unique prefix
  /// under the system temp directory. Cleaned up after the build.
  std::string ooc_scratch_prefix;
};

class DatasetRegistry {
 public:
  /// Loads a bundle (and its sketch — building one inline when the file is
  /// absent and `build_theta > 0`) and publishes it under `name`. Fails
  /// with a clean Status on any inconsistency — e.g. a sketch whose node
  /// universe, target, or bundle fingerprint disagrees with the bundle —
  /// and with FailedPrecondition when the name is already taken.
  Result<std::shared_ptr<const DatasetEntry>> Load(
      const std::string& name, const DatasetLoadOptions& options);

  /// Publishes a dataset the caller already holds in memory: builds the
  /// sketch inline (sharded builder, deterministic in `rng_seed` and
  /// independent of `num_threads`) and hosts it under `name` without
  /// touching disk — the embedded-caller analog of Load. The entry is
  /// indistinguishable from a loaded one to every query path.
  Result<std::shared_ptr<const DatasetEntry>> Host(
      const std::string& name, datasets::Dataset dataset,
      const HostOptions& options);

  /// Removes `name` and returns the removed entry (so the caller can evict
  /// dependent per-worker state by generation). In-flight queries holding
  /// the entry finish unharmed; its memory is freed when the last reference
  /// drops. NotFound when absent.
  Result<std::shared_ptr<const DatasetEntry>> Unload(const std::string& name);

  /// Atomically swaps the entry hosted under entry->name for `entry` (the
  /// commit step of a mutation): stamps a fresh generation and returns the
  /// REPLACED entry so the caller can evict per-worker state built against
  /// it. In-flight queries holding the old entry finish unharmed on the
  /// pre-mutation instance — exactly the Unload consistency story.
  /// NotFound when the name is not currently hosted (mutating and
  /// unloading race; the mutation loses).
  Result<std::shared_ptr<const DatasetEntry>> Replace(
      std::shared_ptr<DatasetEntry> entry);

  /// Resolves a query's dataset name. "" means "the sole hosted dataset" —
  /// a convenience for single-tenant deployments; an error when the
  /// registry hosts zero or several datasets.
  Result<std::shared_ptr<const DatasetEntry>> Resolve(
      const std::string& name) const;

  /// Every hosted entry, name-sorted.
  std::vector<std::shared_ptr<const DatasetEntry>> List() const;

  size_t size() const;

  /// Wires the registry's lifecycle metrics (loads/builds/unloads,
  /// hosted-dataset and generation gauges, sketch-build timing incl. the
  /// walks/s gauge and the OOC block counters) into `metrics`. Null (the
  /// default) disables instrumentation; `metrics` must outlive the
  /// registry. Set before concurrent use (api::Engine wires it at Open).
  void set_metrics(obs::Registry* metrics) { metrics_ = metrics; }

 private:
  /// Final step shared by Load and Host: generation-stamps the entry and
  /// inserts it under its name (FailedPrecondition when taken).
  Result<std::shared_ptr<const DatasetEntry>> Publish(
      std::shared_ptr<DatasetEntry> entry);

  mutable Mutex mutex_;
  std::map<std::string, std::shared_ptr<const DatasetEntry>> entries_
      GUARDED_BY(mutex_);
  uint64_t next_generation_ GUARDED_BY(mutex_) = 1;
  /// Deliberately unguarded: set once by set_metrics before concurrent
  /// use (api::Engine wires it at Open), read-only afterwards.
  obs::Registry* metrics_ = nullptr;
};

}  // namespace voteopt::api

#endif  // VOTEOPT_API_REGISTRY_H_
