// The typed query API: one request/response vocabulary shared by every
// front door — embedded C++ callers (api::Engine), the JSON wire protocol
// (serve/protocol.h is a pure codec over these types), the voteopt_serve
// CLI, and the bench drivers. All of them execute the identical
// Engine::Execute path, so an embedded answer and a served answer are
// bit-identical by construction.
//
// Query kinds (run against one hosted dataset):
//   * TopK          — budget-k seed selection under any of the nine
//                     selection methods (§ VIII-A roster)
//   * MinSeed       — Problem 2's minimum winning budget
//   * Evaluate      — exact score of a supplied seed set, optionally under
//                     overridden target opinions
//   * MethodCompare — the full method roster (DM/RW/RS + six baselines) on
//                     one instance, one scored entry per method in the
//                     paper's plotting order
//   * RuleSweep     — one seed budget scored under all five voting rules
// Admin kinds (manage/inspect the engine; ordering barriers in a batch):
//   * Load / Unload / List
//   * Stats — a flat snapshot of the engine's obs::Registry (admin so the
//     counters it reports are exact at its barrier point in a batch)
// Mutation kinds (v4, dynamic graphs — src/dyn): admin-adjacent barriers
// that commit edits to a hosted dataset and repair its sketch in place:
//   * EdgeAdd / EdgeDel / SetOpinion — one streaming edit each
//   * Mutate — a batch of edits committed atomically (one repair)
//
// Requests are a flat tagged struct rather than a std::variant so the wire
// codec, which sees untyped JSON fields before it knows the op, can fill
// them in one pass; the static builders below are the typed constructors
// embedded callers use.
#ifndef VOTEOPT_API_QUERY_H_
#define VOTEOPT_API_QUERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "baselines/selector_factory.h"
#include "dyn/mutation.h"
#include "graph/graph.h"
#include "util/status.h"
#include "voting/scores.h"

namespace voteopt::api {

/// Highest protocol major version this engine speaks. Version 1 is the
/// PR-2..4 protocol (topk/minseed/evaluate/load/unload/list, RS only);
/// version 2 adds `method`, `methodcompare`, and `rulesweep`; version 3
/// adds the `stats` verb and the per-request `trace` field; version 4 adds
/// the dynamic-graph mutation verbs `edge_add` / `edge_del` /
/// `set_opinion` / `mutate`. Requests omitting "v" are treated as v1;
/// v1..v4 parse identically (each is a strict superset of the last);
/// higher majors are rejected with InvalidArgument.
inline constexpr uint32_t kProtocolVersion = 4;

/// Per-query selection knobs — the one options surface consolidating what
/// used to be scattered across RSOptions / RWOptions /
/// EstimatedGreedyOptions / MethodOptions call sites. Defaults reproduce
/// the serving layer's PR-4 behavior exactly; the per-method overrides in
/// `methods` only matter for the non-RS roster (which builds its own
/// substrate per query instead of using the hosted sketch).
struct QueryOptions {
  /// Knobs for the non-RS methods (RW walk bounds, IMM epsilon, restart
  /// probabilities, rng seed, ...). The RS entries inside are ignored by
  /// the engine: RS queries answer from the hosted sketch, never a rebuilt
  /// one.
  baselines::MethodOptions methods;

  /// CELF lazy evaluation for cumulative-score sketch selections
  /// (bit-identical seeds to the exhaustive scan; see estimated_greedy.h).
  /// `false` is the exhaustive oracle/bench baseline.
  bool lazy = true;

  /// Worker threads for the per-iteration gain scan of rank-sensitive /
  /// Copeland sketch selections (1 = serial, 0 = one per hardware thread).
  /// Answers are identical for every value.
  uint32_t num_threads = 1;

  /// MinSeed driver: one prefix-checked selection at k_max (true, the
  /// PR-4 fast path) vs the paper's binary search over budgets (false, the
  /// oracle/bench baseline). Both return identical k*, seeds, and
  /// achievability for the prefix-nested greedy selectors.
  bool single_pass = true;

  /// Compute the exact score of the selected seeds (one extra exact
  /// propagation; response.exact_score). Embedded benches disable it to
  /// time pure selection; the wire default is always true.
  bool evaluate_exact = true;
};

struct Request {
  enum class Op {
    kTopK,
    kMinSeed,
    kEvaluate,
    kMethodCompare,
    kRuleSweep,
    kLoad,
    kUnload,
    kList,
    kStats,
    // v4 mutation verbs (dynamic graphs). All four route into the same
    // commit path: apply, repair, publish. The single-edit verbs are
    // sugar for a one-element kMutate batch.
    kEdgeAdd,
    kEdgeDel,
    kSetOpinion,
    kMutate,
  };

  Op op = Op::kTopK;
  /// Protocol major version the request was written against (wire field
  /// "v"; absent = 1). Purely a compatibility gate — see kProtocolVersion.
  uint32_t v = 1;
  std::string id;  // echoed when non-empty

  /// Queries: which hosted dataset answers ("" = the sole loaded one).
  /// load/unload: the registry name to (de)register.
  std::string dataset;

  // Voting rule selection (resolved against the dataset by ResolveRule).
  std::string rule = "cumulative";
  uint32_t p = 1;
  std::vector<double> omega;

  /// Seed-selection method for topk / minseed (wire field "method",
  /// default RS — the paper's recommendation and the only method that
  /// answers from the hosted sketch artifact).
  baselines::Method method = baselines::Method::kRS;
  /// methodcompare: the roster to run (empty = all nine, paper order).
  std::vector<baselines::Method> methods;

  uint32_t k = 1;      // topk / methodcompare / rulesweep: budget
  uint32_t k_max = 0;  // minseed: search bound (0 = num nodes)

  std::vector<graph::NodeId> seeds;                         // evaluate
  std::vector<std::pair<graph::NodeId, double>> overrides;  // evaluate

  std::string bundle;  // load: dataset bundle prefix (required)
  std::string sketch;  // load: explicit sketch path ("" = bundle member)
  uint64_t theta = 0;  // load: build-fallback walk count (0 = server default)

  /// Mutation verbs: the edits to commit, in order. The single-edit verbs
  /// carry exactly one entry; `mutate` any number (>= 1).
  std::vector<dyn::Mutation> mutations;

  /// Selection knobs; defaults reproduce the wire protocol's behavior.
  QueryOptions options;

  /// v3: opt into per-query stage tracing — the response carries its
  /// `diagnostics` map (stage timings + work counts) on the wire. Traced
  /// and untraced requests produce byte-identical STABLE answers:
  /// ToStableJson strips the traced block alongside millis.
  bool trace = false;

  /// Transport-side parse time in milliseconds, recorded by the wire
  /// codec caller (voteopt_serve) before Execute so the engine can fold a
  /// `stage.parse_ms` span into the trace. NOT a wire field — embedded
  /// callers leave it 0.
  double parse_millis = 0.0;

  // Typed constructors for embedded callers: the ScoreSpec is translated
  // into the same rule/p/omega wire fields the codec produces, so a built
  // request and a parsed request are indistinguishable to the engine.
  static Request TopK(uint32_t k, const voting::ScoreSpec& spec,
                      baselines::Method method = baselines::Method::kRS);
  static Request MinSeed(uint32_t k_max, const voting::ScoreSpec& spec,
                         baselines::Method method = baselines::Method::kRS);
  static Request Evaluate(std::vector<graph::NodeId> seeds,
                          const voting::ScoreSpec& spec);
  static Request MethodCompare(uint32_t k, const voting::ScoreSpec& spec);
  static Request RuleSweep(uint32_t k);
  static Request EdgeAdd(uint32_t from, uint32_t to, double weight);
  static Request EdgeDel(uint32_t from, uint32_t to);
  static Request SetOpinion(uint32_t candidate, graph::NodeId node,
                            double value);
  static Request Mutate(std::vector<dyn::Mutation> mutations);
};

const char* OpName(Request::Op op);

/// True for the registry-management verbs (load / unload / list / stats)
/// AND the v4 mutation verbs. Admin verbs act as ordering barriers in a
/// batch: queries ahead of them see the registry as it was, queries after
/// them see the updated one. Mutations need exactly those semantics — a
/// query is answered entirely by the pre- or post-mutation generation,
/// never a mix — which is why they ride the same classification through
/// Engine::ExecuteBatch, net::Batcher, and net::Server.
bool IsAdminOp(Request::Op op);

/// Resolves a request's rule/p/omega fields into a validated ScoreSpec for
/// a dataset with `num_candidates` candidates. Unknown rule names fail
/// with an InvalidArgument enumerating the valid ones; `borda` requires
/// num_candidates >= 2 (its weights are undefined for a walkover).
Result<voting::ScoreSpec> ResolveRule(const std::string& rule, uint32_t p,
                                      const std::vector<double>& omega,
                                      uint32_t num_candidates);
inline Result<voting::ScoreSpec> ResolveRule(const Request& request,
                                             uint32_t num_candidates) {
  return ResolveRule(request.rule, request.p, request.omega, num_candidates);
}

/// The wire spelling of a ScoreSpec's rule (the inverse of ResolveRule for
/// the rule/p/omega triple; Borda-weight positionals render as
/// "positional" with explicit omega).
void SpecToRuleFields(const voting::ScoreSpec& spec, Request* request);

/// One hosted dataset as reported by `list` and echoed by `load`.
struct DatasetInfo {
  std::string name;
  uint32_t num_nodes = 0;
  uint32_t num_candidates = 0;
  uint64_t theta = 0;    // sketch walk count
  uint32_t horizon = 0;  // sketch horizon t
  uint32_t target = 0;   // sketch target candidate
  bool sketch_built = false;  // sketch was built at load (no persisted file)
};

/// One MethodCompare entry: a method's seed set and scores on the shared
/// instance. `seconds` is the selection wall time (never serialized — the
/// wire form must stay reproducible run-to-run).
struct MethodScore {
  std::string method;
  std::vector<graph::NodeId> seeds;
  /// The method's own score estimate (RW/RS sketch estimates); equal to
  /// exact_score for methods that estimate nothing.
  double estimated_score = 0.0;
  double exact_score = 0.0;
  double seconds = 0.0;
};

/// One RuleSweep entry: the selected seeds and outcome under one rule.
struct RuleScore {
  std::string rule;
  std::vector<graph::NodeId> seeds;
  double estimated_score = 0.0;
  double exact_score = 0.0;
  uint32_t winner = 0;  // argmax candidate under this rule, post-seeding
};

struct Response {
  std::string id;
  std::string op;
  bool ok = true;
  std::string error;  // set when !ok

  /// Name of the hosted dataset that answered (queries, load, unload).
  std::string dataset;

  /// Selection method that answered topk / minseed. Set (and serialized)
  /// only for non-RS methods: the RS default stays off the wire so v1
  /// responses are byte-identical to the pre-api serving layer.
  std::string method;

  // topk / minseed payload.
  std::vector<graph::NodeId> seeds;
  double estimated_score = 0.0;
  double exact_score = 0.0;

  // minseed payload.
  uint32_t k_star = 0;
  bool achievable = false;
  uint32_t selector_calls = 0;

  // evaluate payload.
  double score = 0.0;
  std::vector<double> all_scores;  // one per candidate
  uint32_t winner = 0;

  // methodcompare / rulesweep payloads.
  std::vector<MethodScore> method_scores;
  std::vector<RuleScore> rule_scores;

  // load / list payload: the loaded dataset, resp. every hosted one.
  std::vector<DatasetInfo> datasets;

  /// stats payload: a flat point-in-time metrics snapshot
  /// ("name{labels}" -> value) from the engine's obs::Registry.
  std::map<std::string, double> stats;

  // Mutation-verb payload: what the commit did. All deterministic
  // functions of (dataset state, mutation batch) — they go on the wire
  // and survive ToStableJson.
  uint64_t applied = 0;          // mutations committed in this batch
  uint64_t dirty_nodes = 0;      // nodes whose in-rows changed
  uint64_t walks_repaired = 0;   // sketch walks regenerated
  uint64_t walks_total = 0;      // sketch size (theta), for rates

  /// Selection diagnostics of the answering algorithm: stage timings
  /// (`stage.<name>_ms`) and work counts (`work.<name>`, plus the legacy
  /// `gain_evaluations` alias of `work.gain_evaluations`). Serialized on
  /// the wire only when the request set `trace` (v3) — ToStableJson
  /// strips them, so traced answers stay bit-identical to untraced ones.
  std::map<std::string, double> diagnostics;

  /// True when the request opted into tracing: diagnostics go on the
  /// wire. Like millis, a volatile side channel — stripped by
  /// ToStableJson.
  bool traced = false;

  double millis = 0.0;  // server-side handling time

  static Response Error(const Request& request, const Status& status);

  /// Canonical JSON encoding. Declared here so every front door shares one
  /// rendering; implemented by the wire codec (serve/protocol.cc), which
  /// owns the JSON vocabulary end to end.
  std::string ToJson() const;

  /// ToJson minus the volatile tail (`millis`, and the traced
  /// `diagnostics` block when present) — everything that must be
  /// invariant across runs, worker thread counts, build-vs-load serving
  /// paths, and trace on/off. The single source of truth for determinism
  /// comparisons (tests, bench_serve's answers_match check).
  std::string ToStableJson() const;
};

}  // namespace voteopt::api

#endif  // VOTEOPT_API_QUERY_H_
