#include "api/registry.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "core/sketch.h"
#include "dyn/journal.h"
#include "dyn/repair.h"
#include "sketch_ooc/ooc_builder.h"
#include "store/format.h"
#include "util/timer.h"

namespace voteopt::api {

std::string EvaluatorSpecKey(const voting::ScoreSpec& spec) {
  std::string key = voting::ScoreKindName(spec.kind);
  key += "/p=" + std::to_string(spec.p);
  if (!spec.omega.empty()) {
    key += "/omega=" + std::to_string(store::Fnv1a64(
                           spec.omega.data(),
                           spec.omega.size() * sizeof(double)));
  }
  return key;
}

/// A regenerated bundle with the same node count but different
/// edges/opinions would otherwise silently serve wrong answers from a
/// stale sketch. (The bundle's default target is deliberately excluded:
/// the sketch pins its own target in SketchMeta.)
uint64_t BundleFingerprint(const datasets::Dataset& dataset) {
  std::vector<uint64_t> digests;
  auto add = [&digests](const void* data, size_t size) {
    digests.push_back(store::Fnv1a64(data, size));
  };
  const graph::Graph& g = dataset.influence;
  add(g.OutOffsets().data(), g.OutOffsets().size_bytes());
  add(g.OutTargets().data(), g.OutTargets().size_bytes());
  add(g.OutWeightsRaw().data(), g.OutWeightsRaw().size_bytes());
  add(g.InOffsets().data(), g.InOffsets().size_bytes());
  add(g.InSources().data(), g.InSources().size_bytes());
  add(g.InWeightsRaw().data(), g.InWeightsRaw().size_bytes());
  for (const opinion::Campaign& campaign : dataset.state.campaigns) {
    add(campaign.initial_opinions.data(),
        campaign.initial_opinions.size() * sizeof(double));
    add(campaign.stubbornness.data(),
        campaign.stubbornness.size() * sizeof(double));
  }
  return store::Fnv1a64(digests.data(), digests.size() * sizeof(uint64_t));
}

namespace {

/// A collision-free scratch prefix for one OOC build: concurrent loads may
/// share a base prefix, so each build gets a unique numbered sibling.
std::string UniqueScratchPrefix(std::string base) {
  static std::atomic<uint64_t> scratch_counter{0};
  if (base.empty()) {
    base = (std::filesystem::temp_directory_path() / "voteopt_ooc").string();
  }
  return base + "." + std::to_string(scratch_counter.fetch_add(1));
}

/// The inline sketch build shared by Load's build fallback and Host: fills
/// the entry's meta/sketch/build_evaluator from the recipe. The evaluator's
/// horizon propagation is the expensive part, so it is retained on the
/// entry and seeds every worker state's LRU. When `block_budget_bytes > 0`
/// the walks are generated out of core (sketch_ooc/) — bit-identical to
/// the in-memory path by determinism ledger entry #7, so callers cannot
/// tell the difference except in peak memory.
Status BuildSketchInline(DatasetEntry* entry, uint64_t theta, uint32_t horizon,
                         uint32_t target, uint32_t num_threads,
                         uint64_t rng_seed, uint64_t fingerprint,
                         uint64_t block_budget_bytes = 0,
                         const std::string& ooc_scratch_prefix = "",
                         obs::Registry* metrics = nullptr) {
  if (target >= entry->dataset.state.num_candidates()) {
    return Status::InvalidArgument(
        "target candidate " + std::to_string(target) +
        " not in the dataset (r = " +
        std::to_string(entry->dataset.state.num_candidates()) + ")");
  }
  entry->meta.theta = theta;
  entry->meta.horizon = horizon;
  entry->meta.target = target;
  entry->meta.master_seed = rng_seed;
  entry->meta.bundle_fingerprint = fingerprint;
  const voting::ScoreSpec build_spec = voting::ScoreSpec::Cumulative();
  auto build_evaluator = std::make_shared<const voting::ScoreEvaluator>(
      *entry->model, entry->dataset.state, entry->meta.target,
      entry->meta.horizon, build_spec);
  WallTimer build_timer;
  if (block_budget_bytes > 0) {
    sketch_ooc::OocBuildOptions ooc_options;
    ooc_options.num_threads = num_threads;
    sketch_ooc::OocBuildStats ooc_stats;
    auto built = sketch_ooc::BuildSketchSetOocFromGraph(
        entry->dataset.influence, entry->dataset.state.campaigns[target],
        horizon, theta, rng_seed, block_budget_bytes,
        UniqueScratchPrefix(ooc_scratch_prefix), ooc_options, &ooc_stats);
    if (!built.ok()) return built.status();
    entry->sketch = std::move(built).value();
    if (metrics != nullptr) {
      metrics
          ->GetCounter("voteopt_ooc_block_loads_total", {},
                       "OOC sketch-build block loads (file map + validate + "
                       "alias-table compile)")
          ->Increment(ooc_stats.block_loads);
      metrics
          ->GetCounter("voteopt_ooc_boundary_hops_total", {},
                       "OOC sketch-build walk suspensions at partition "
                       "boundaries")
          ->Increment(ooc_stats.boundary_hops);
      metrics
          ->GetGauge("voteopt_ooc_blocks", {{"dataset", entry->name}},
                     "Blocks of the last OOC sketch build for this dataset")
          ->Set(static_cast<double>(ooc_stats.num_blocks));
    }
  } else {
    core::SketchBuildOptions build_options;
    build_options.num_threads = num_threads;
    entry->sketch =
        core::BuildSketchSet(*build_evaluator, theta, rng_seed, build_options);
  }
  if (metrics != nullptr) {
    const double seconds = build_timer.Seconds();
    metrics
        ->GetCounter("voteopt_sketch_builds_total",
                     {{"mode", block_budget_bytes > 0 ? "ooc" : "inline"}},
                     "Inline sketch builds (load fallback or Host)")
        ->Increment();
    metrics
        ->GetGauge("voteopt_sketch_build_seconds",
                   {{"dataset", entry->name}},
                   "Wall seconds of this dataset's last inline sketch build")
        ->Set(seconds);
    metrics
        ->GetGauge("voteopt_sketch_build_walks_per_second",
                   {{"dataset", entry->name}},
                   "Walk-generation throughput of this dataset's last "
                   "inline sketch build")
        ->Set(seconds > 0 ? static_cast<double>(theta) / seconds : 0.0);
  }
  entry->sketch_built = true;
  entry->build_evaluator = std::move(build_evaluator);
  entry->build_evaluator_key = EvaluatorSpecKey(build_spec);
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const DatasetEntry>> DatasetRegistry::Load(
    const std::string& name, const DatasetLoadOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  {
    MutexLock lock(&mutex_);
    if (entries_.count(name) != 0) {
      return Status::FailedPrecondition(
          "dataset '" + name + "' is already loaded — unload it first");
    }
  }

  // The expensive part — bundle I/O, sketch load or build — runs outside
  // the lock so concurrent queries against other datasets keep flowing.
  auto entry = std::make_shared<DatasetEntry>();
  entry->name = name;
  auto bundle = datasets::LoadDatasetBundle(options.bundle_prefix);
  if (!bundle.ok()) return bundle.status();
  entry->dataset = std::move(bundle).value();
  entry->model = std::make_unique<opinion::FJModel>(entry->dataset.influence);

  const uint64_t fingerprint = BundleFingerprint(entry->dataset);
  const std::string sketch_path =
      options.sketch_path.empty()
          ? datasets::BundleSketchPath(options.bundle_prefix)
          : options.sketch_path;
  auto loaded = store::LoadSketch(sketch_path, options.sketch_load_mode);
  if (loaded.ok()) {
    entry->sketch =
        std::shared_ptr<const core::WalkSet>(std::move(loaded->walks));
    entry->meta = loaded->meta;
    if (entry->meta.bundle_fingerprint != 0 &&
        entry->meta.bundle_fingerprint != fingerprint) {
      return Status::FailedPrecondition(
          sketch_path +
          ": sketch was built from a different bundle (fingerprint "
          "mismatch) — rebuild it against the current data");
    }
  } else if (loaded.status().code() == Status::Code::kIOError &&
             options.build_theta > 0) {
    // No persisted sketch: fall back to the offline build, inline.
    const std::string scratch = options.ooc_scratch_prefix.empty()
                                    ? options.bundle_prefix + ".oocblk"
                                    : options.ooc_scratch_prefix;
    if (Status st = BuildSketchInline(
            entry.get(), options.build_theta, options.build_horizon,
            entry->dataset.default_target, options.build_threads,
            options.rng_seed, fingerprint, options.block_budget_bytes,
            scratch, metrics_);
        !st.ok()) {
      return st;
    }
    if (options.save_built_sketch) {
      // Protocol-level loads run concurrently, and two of them may name
      // the same bundle prefix: write to a unique temp path and rename
      // into place so the persisted artifact is never a torn mix of two
      // writers.
      static std::atomic<uint64_t> save_counter{0};
      const std::string tmp_path =
          sketch_path + ".tmp" + std::to_string(save_counter.fetch_add(1));
      if (Status st = store::SaveSketch(*entry->sketch, entry->meta, tmp_path);
          !st.ok()) {
        std::remove(tmp_path.c_str());  // don't leave a partial file behind
        return st;
      }
      if (std::rename(tmp_path.c_str(), sketch_path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return Status::IOError(
            sketch_path + ": cannot move the freshly built sketch into place");
      }
    }
  } else {
    return loaded.status();
  }

  if (entry->sketch->num_nodes() != entry->dataset.influence.num_nodes()) {
    return Status::FailedPrecondition(
        sketch_path + ": sketch node universe disagrees with the bundle");
  }
  if (entry->meta.target >= entry->dataset.state.num_candidates()) {
    return Status::FailedPrecondition(
        sketch_path + ": sketch target candidate not in the bundle");
  }

  entry->bundle_prefix = options.bundle_prefix;
  entry->base_fingerprint = fingerprint;

  // Crash recovery for dynamic graphs: a committed mutation journal next
  // to the bundle means the process last served a mutated instance —
  // replay it on top of the base bundle and repair the sketch so the
  // hosted entry is bit-identical to the pre-crash one (ledger entry 10).
  const std::string journal_path =
      options.bundle_prefix + dyn::kMutationLogSuffix;
  if (std::filesystem::exists(journal_path)) {
    auto journal = dyn::LoadMutationLog(journal_path);
    if (!journal.ok()) return journal.status();
    if (journal->base_fingerprint != fingerprint) {
      return Status::FailedPrecondition(
          journal_path +
          ": mutation journal was recorded against a different base bundle "
          "(fingerprint mismatch) — remove it or restore the bundle");
    }
    if (!journal->mutations.empty()) {
      auto patched = dyn::ApplyMutations(entry->dataset.influence,
                                         entry->dataset.state,
                                         journal->mutations);
      if (!patched.ok()) return patched.status();
      // Install the patched instance BEFORE repairing: the repair's alias
      // tables bind to the graph object they are built over, so that graph
      // must already sit in its published home, not in a local about to be
      // moved from.
      entry->dataset.influence = std::move(patched->graph);
      entry->dataset.state = std::move(patched->state);
      if (!patched->dirty_nodes.empty()) {
        dyn::RepairOptions repair_options;
        repair_options.num_threads = options.build_threads;
        auto repaired = dyn::SketchRepairer::Repair(
            *entry->sketch, entry->dataset.influence,
            entry->dataset.state.campaigns[entry->meta.target], entry->meta,
            patched->dirty_nodes, /*base_alias=*/nullptr, repair_options);
        if (!repaired.ok()) return repaired.status();
        entry->sketch = std::shared_ptr<const core::WalkSet>(
            std::move(repaired->sketch));
        entry->alias = std::move(repaired->alias);
      }
      entry->model =
          std::make_unique<opinion::FJModel>(entry->dataset.influence);
      entry->meta.bundle_fingerprint = BundleFingerprint(entry->dataset);
      // The retained build evaluator propagated opinions over the BASE
      // instance; dropping it is correct (workers rebuild on demand),
      // keeping it would be a stale-answer bug.
      entry->build_evaluator = nullptr;
      entry->build_evaluator_key.clear();
      entry->mutation_log.Append(std::span<const dyn::Mutation>(
          journal->mutations));
    }
  }

  return Publish(std::move(entry));
}

Result<std::shared_ptr<const DatasetEntry>> DatasetRegistry::Host(
    const std::string& name, datasets::Dataset dataset,
    const HostOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (options.theta == 0) {
    return Status::InvalidArgument("hosting requires theta > 0 sketch walks");
  }
  auto entry = std::make_shared<DatasetEntry>();
  entry->name = name;
  entry->dataset = std::move(dataset);
  entry->model = std::make_unique<opinion::FJModel>(entry->dataset.influence);
  const uint32_t target =
      options.target.value_or(entry->dataset.default_target);
  if (Status st = BuildSketchInline(
          entry.get(), options.theta, options.horizon, target,
          options.num_threads, options.rng_seed,
          BundleFingerprint(entry->dataset), options.block_budget_bytes,
          options.ooc_scratch_prefix, metrics_);
      !st.ok()) {
    return st;
  }
  return Publish(std::move(entry));
}

Result<std::shared_ptr<const DatasetEntry>> DatasetRegistry::Publish(
    std::shared_ptr<DatasetEntry> entry) {
  MutexLock lock(&mutex_);
  if (entries_.count(entry->name) != 0) {  // also catches a lost Load race
    return Status::FailedPrecondition(
        "dataset '" + entry->name + "' is already loaded — unload it first");
  }
  entry->generation = next_generation_++;
  entries_[entry->name] = entry;
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("voteopt_dataset_loads_total",
                     {{"source", entry->sketch_built ? "built" : "file"}},
                     "Datasets published into the registry, by sketch "
                     "provenance (file = persisted sketch, built = inline "
                     "build incl. Host)")
        ->Increment();
    metrics_
        ->GetGauge("voteopt_datasets_hosted", {},
                   "Datasets currently hosted by the registry")
        ->Set(static_cast<double>(entries_.size()));
    metrics_
        ->GetGauge("voteopt_dataset_generation", {{"dataset", entry->name}},
                   "Generation stamp of this dataset's current entry "
                   "(bumps on every re-load under the same name)")
        ->Set(static_cast<double>(entry->generation));
  }
  return std::shared_ptr<const DatasetEntry>(entry);
}

Result<std::shared_ptr<const DatasetEntry>> DatasetRegistry::Replace(
    std::shared_ptr<DatasetEntry> entry) {
  MutexLock lock(&mutex_);
  auto it = entries_.find(entry->name);
  if (it == entries_.end()) {
    return Status::NotFound("dataset '" + entry->name +
                            "' is not loaded (unloaded mid-mutation?)");
  }
  std::shared_ptr<const DatasetEntry> replaced = std::move(it->second);
  entry->generation = next_generation_++;
  it->second = entry;
  if (metrics_ != nullptr) {
    metrics_
        ->GetGauge("voteopt_dataset_generation", {{"dataset", entry->name}},
                   "Generation stamp of this dataset's current entry "
                   "(bumps on every re-load under the same name)")
        ->Set(static_cast<double>(entry->generation));
  }
  return replaced;
}

Result<std::shared_ptr<const DatasetEntry>> DatasetRegistry::Unload(
    const std::string& name) {
  MutexLock lock(&mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("dataset '" + name + "' is not loaded");
  }
  std::shared_ptr<const DatasetEntry> removed = std::move(it->second);
  entries_.erase(it);
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("voteopt_dataset_unloads_total", {},
                     "Datasets removed from the registry")
        ->Increment();
    metrics_
        ->GetGauge("voteopt_datasets_hosted", {},
                   "Datasets currently hosted by the registry")
        ->Set(static_cast<double>(entries_.size()));
  }
  return removed;
}

Result<std::shared_ptr<const DatasetEntry>> DatasetRegistry::Resolve(
    const std::string& name) const {
  MutexLock lock(&mutex_);
  if (name.empty()) {
    if (entries_.size() == 1) return entries_.begin()->second;
    return entries_.empty()
               ? Status::NotFound("no dataset is loaded")
               : Status::InvalidArgument(
                     "several datasets are loaded — name one in 'dataset'");
  }
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("dataset '" + name + "' is not loaded");
  }
  return it->second;
}

std::vector<std::shared_ptr<const DatasetEntry>> DatasetRegistry::List()
    const {
  MutexLock lock(&mutex_);
  std::vector<std::shared_ptr<const DatasetEntry>> entries;
  entries.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) entries.push_back(entry);
  return entries;  // std::map iterates name-sorted
}

size_t DatasetRegistry::size() const {
  MutexLock lock(&mutex_);
  return entries_.size();
}

}  // namespace voteopt::api
