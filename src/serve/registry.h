// Compatibility shim: the dataset registry moved into the api layer
// (api/registry.h) when query dispatch was unified behind api::Engine.
// serve code and existing callers keep the voteopt::serve spellings.
#ifndef VOTEOPT_SERVE_REGISTRY_H_
#define VOTEOPT_SERVE_REGISTRY_H_

#include "api/registry.h"

namespace voteopt::serve {

using DatasetLoadOptions = api::DatasetLoadOptions;
using DatasetEntry = api::DatasetEntry;
using DatasetRegistry = api::DatasetRegistry;
using HostOptions = api::HostOptions;
using api::EvaluatorSpecKey;

}  // namespace voteopt::serve

#endif  // VOTEOPT_SERVE_REGISTRY_H_
