#include "serve/service.h"

#include <algorithm>
#include <future>
#include <utility>

#include "core/estimated_greedy.h"
#include "core/min_seed.h"
#include "util/timer.h"

namespace voteopt::serve {

namespace {

/// Resolves a request's voting rule into a validated ScoreSpec.
Result<voting::ScoreSpec> ResolveSpec(const Request& request,
                                      uint32_t num_candidates) {
  voting::ScoreSpec spec;
  if (request.rule == "cumulative") {
    spec = voting::ScoreSpec::Cumulative();
  } else if (request.rule == "plurality") {
    spec = voting::ScoreSpec::Plurality();
  } else if (request.rule == "papproval" || request.rule == "p-approval") {
    spec = voting::ScoreSpec::PApproval(request.p);
  } else if (request.rule == "positional") {
    if (request.omega.empty()) {
      return Status::InvalidArgument(
          "rule 'positional' requires the 'omega' weights");
    }
    spec = voting::ScoreSpec::PositionalPApproval(request.omega);
  } else if (request.rule == "copeland") {
    spec = voting::ScoreSpec::Copeland();
  } else if (request.rule == "borda") {
    spec = voting::ScoreSpec::Borda(num_candidates);
  } else {
    return Status::InvalidArgument("unknown rule '" + request.rule + "'");
  }
  VOTEOPT_RETURN_IF_ERROR(spec.Validate(num_candidates));
  return spec;
}

/// Selection options for serve-side greedy runs. Explicit rather than
/// default-constructed so the service, not the library default, decides the
/// evaluate_exact semantics: inner selections never pay the extra exact
/// propagation — HandleTopK and HandleMinSeed score the final answer
/// exactly themselves, exactly once. Queries already run one-per-worker, so
/// the gain scan stays single-threaded (num_threads = 1).
core::EstimatedGreedyOptions ServeSelectionOptions() {
  core::EstimatedGreedyOptions options;
  options.evaluate_exact = false;
  return options;
}

DatasetInfo InfoOf(const DatasetEntry& entry) {
  DatasetInfo info;
  info.name = entry.name;
  info.num_nodes = entry.dataset.influence.num_nodes();
  info.num_candidates = entry.dataset.state.num_candidates();
  info.theta = entry.meta.theta;
  info.horizon = entry.meta.horizon;
  info.target = entry.meta.target;
  info.sketch_built = entry.sketch_built;
  return info;
}

}  // namespace

CampaignService::CampaignService(const ServiceOptions& options)
    : options_(options),
      states_(options.evaluator_cache_capacity),
      pool_(std::make_unique<ThreadPool>(options.num_worker_threads)) {}

Result<std::unique_ptr<CampaignService>> CampaignService::Open(
    const ServiceOptions& options) {
  auto service =
      std::unique_ptr<CampaignService>(new CampaignService(options));
  if (!options.load.bundle_prefix.empty()) {
    auto entry = service->registry_.Load(options.dataset_name, options.load);
    if (!entry.ok()) return entry.status();
    service->bootstrap_built_ = (*entry)->sketch_built;
  }
  return service;
}

const datasets::Dataset& CampaignService::dataset() const {
  return registry_.Resolve("").value()->dataset;
}

const store::SketchMeta& CampaignService::sketch_meta() const {
  return registry_.Resolve("").value()->meta;
}

const core::WalkSet& CampaignService::walks() const {
  return *registry_.Resolve("").value()->sketch;
}

CampaignService::Stats CampaignService::stats() const {
  Stats stats;
  stats.queries = queries_.load();
  stats.errors = errors_.load();
  stats.evaluator_cache_hits = evaluator_cache_hits_.load();
  stats.evaluator_cache_misses = evaluator_cache_misses_.load();
  stats.sketch_resets = sketch_resets_.load();
  stats.worker_states = states_.states_created();
  stats.sketch_built = bootstrap_built_;
  return stats;
}

const voting::ScoreEvaluator* CampaignService::EvaluatorFor(
    const voting::ScoreSpec& spec, QueryState& state) {
  bool cache_hit = false;
  const voting::ScoreEvaluator* evaluator = state.EvaluatorFor(spec, &cache_hit);
  ++(cache_hit ? evaluator_cache_hits_ : evaluator_cache_misses_);
  return evaluator;
}

void CampaignService::ResetSketch(const DatasetEntry& entry,
                                  QueryState& state) {
  state.walks->ResetValues(entry.target_opinions());
  ++sketch_resets_;
}

Response CampaignService::Handle(const Request& request) {
  return Execute(request);
}

std::vector<Response> CampaignService::HandleBatch(
    const std::vector<Request>& batch) {
  // A one-request batch (the interactive stdin path) gains nothing from a
  // pool hand-off; answer inline and skip two cross-thread hops.
  if (batch.size() == 1) return {Execute(batch[0])};
  std::vector<Response> responses(batch.size());
  std::vector<std::pair<size_t, std::future<Response>>> inflight;
  auto drain = [&] {
    for (auto& [index, future] : inflight) responses[index] = future.get();
    inflight.clear();
  };
  for (size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i];
    if (IsAdminOp(request.op)) {
      // Admin verbs are ordering barriers: every query before them sees
      // the registry as it was, every query after them the updated one —
      // exactly the serial semantics, whatever the worker count.
      drain();
      responses[i] = Execute(request);
    } else {
      inflight.emplace_back(
          i, pool_->Submit([this, &request] { return Execute(request); }));
    }
  }
  drain();
  return responses;
}

Response CampaignService::Execute(const Request& request) {
  ++queries_;
  Response response;
  switch (request.op) {
    case Request::Op::kTopK:
    case Request::Op::kMinSeed:
    case Request::Op::kEvaluate:
      response = ExecuteQuery(request);
      break;
    case Request::Op::kLoad:
      response = HandleLoad(request);
      break;
    case Request::Op::kUnload:
      response = HandleUnload(request);
      break;
    case Request::Op::kList:
      response = HandleList(request);
      break;
  }
  if (!response.ok) ++errors_;
  return response;
}

Response CampaignService::ExecuteQuery(const Request& request) {
  auto entry = registry_.Resolve(request.dataset);
  if (!entry.ok()) return Response::Error(request, entry.status());
  StatePool::Lease state = states_.Acquire(*entry);
  switch (request.op) {
    case Request::Op::kTopK:
      return HandleTopK(request, **entry, *state);
    case Request::Op::kMinSeed:
      return HandleMinSeed(request, **entry, *state);
    default:
      return HandleEvaluate(request, **entry, *state);
  }
}

Response CampaignService::HandleTopK(const Request& request,
                                     const DatasetEntry& entry,
                                     QueryState& state) {
  WallTimer timer;
  auto spec = ResolveSpec(request, entry.dataset.state.num_candidates());
  if (!spec.ok()) return Response::Error(request, spec.status());
  if (request.k == 0 || request.k > entry.dataset.influence.num_nodes()) {
    return Response::Error(
        request, Status::InvalidArgument("k must be in [1, num_nodes]"));
  }
  const voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec, state);
  ResetSketch(entry, state);
  const core::SelectionResult selection = core::EstimatedGreedySelect(
      *evaluator, request.k, state.walks.get(), ServeSelectionOptions());

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = entry.name;
  response.seeds = selection.seeds;
  response.estimated_score = selection.diagnostics.at("estimated_score");
  response.exact_score = evaluator->EvaluateSeeds(selection.seeds);
  response.millis = timer.Millis();
  return response;
}

Response CampaignService::HandleMinSeed(const Request& request,
                                        const DatasetEntry& entry,
                                        QueryState& state) {
  WallTimer timer;
  auto spec = ResolveSpec(request, entry.dataset.state.num_candidates());
  if (!spec.ok()) return Response::Error(request, spec.status());
  if (request.k_max > entry.dataset.influence.num_nodes()) {
    return Response::Error(
        request, Status::InvalidArgument("k_max exceeds num_nodes"));
  }
  const voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec, state);
  // Single-pass Algorithm 2: greedy on the frozen sketch is prefix-nested,
  // so ONE selection at k_max — checking the winning criterion per prefix —
  // replaces the old binary search's per-probe ResetSketch + full
  // reselection. selector_calls is therefore at most 1 (see PROTOCOL.md).
  const core::PrefixSelector selector =
      [this, &entry, &state](const voting::ScoreEvaluator& evaluator_ref,
                             uint32_t budget,
                             const core::PrefixCallback& on_prefix) {
        ResetSketch(entry, state);
        core::EstimatedGreedyOptions options = ServeSelectionOptions();
        options.on_prefix = core::ToGreedyPrefixHook(on_prefix);
        return core::EstimatedGreedySelect(evaluator_ref, budget,
                                           state.walks.get(), options);
      };
  const core::MinSeedResult result =
      core::MinSeedsToWinSinglePass(*evaluator, selector, request.k_max);

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = entry.name;
  response.achievable = result.achievable;
  response.k_star = result.k_star;
  response.seeds = result.seeds;
  response.selector_calls = result.selector_calls;
  response.exact_score = evaluator->EvaluateSeeds(result.seeds);
  response.millis = timer.Millis();
  return response;
}

Response CampaignService::HandleEvaluate(const Request& request,
                                         const DatasetEntry& entry,
                                         QueryState& state) {
  WallTimer timer;
  auto spec = ResolveSpec(request, entry.dataset.state.num_candidates());
  if (!spec.ok()) return Response::Error(request, spec.status());
  const uint32_t n = entry.dataset.influence.num_nodes();
  for (const graph::NodeId seed : request.seeds) {
    if (seed >= n) {
      return Response::Error(request,
                             Status::OutOfRange("seed id out of range"));
    }
  }
  for (const auto& [user, opinion] : request.overrides) {
    if (user >= n) {
      return Response::Error(request,
                             Status::OutOfRange("override user out of range"));
    }
    if (opinion < 0.0 || opinion > 1.0) {
      return Response::Error(
          request,
          Status::InvalidArgument("override opinion must be in [0, 1]"));
    }
  }
  const voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec, state);

  // Exact propagation of the (possibly overridden) target campaign; the
  // competitors' horizon opinions come from the cached evaluator state.
  opinion::Campaign campaign = entry.dataset.state.campaigns[entry.meta.target];
  for (const auto& [user, opinion] : request.overrides) {
    campaign.initial_opinions[user] = opinion;
  }
  const std::vector<double> target_row = entry.model->PropagateWithSeeds(
      campaign, request.seeds, entry.meta.horizon);

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = entry.name;
  response.score = evaluator->ScoreFromTargetOpinions(target_row);
  response.all_scores = evaluator->ScoresAllCandidates(target_row);
  response.winner = static_cast<uint32_t>(
      std::max_element(response.all_scores.begin(),
                       response.all_scores.end()) -
      response.all_scores.begin());
  response.millis = timer.Millis();
  return response;
}

Response CampaignService::HandleLoad(const Request& request) {
  WallTimer timer;
  if (request.dataset.empty()) {
    return Response::Error(
        request, Status::InvalidArgument("load requires a 'dataset' name"));
  }
  if (request.bundle.empty()) {
    return Response::Error(
        request, Status::InvalidArgument("load requires a 'bundle' prefix"));
  }
  DatasetLoadOptions load = options_.load;  // service defaults
  load.bundle_prefix = request.bundle;
  load.sketch_path = request.sketch;
  if (request.theta > 0) load.build_theta = request.theta;
  auto entry = registry_.Load(request.dataset, load);
  if (!entry.ok()) return Response::Error(request, entry.status());

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = (*entry)->name;
  response.datasets.push_back(InfoOf(**entry));
  response.millis = timer.Millis();
  return response;
}

Response CampaignService::HandleUnload(const Request& request) {
  WallTimer timer;
  if (request.dataset.empty()) {
    return Response::Error(
        request, Status::InvalidArgument("unload requires a 'dataset' name"));
  }
  auto removed = registry_.Unload(request.dataset);
  if (!removed.ok()) return Response::Error(request, removed.status());
  // Drop pooled idle states; states leased to in-flight queries are
  // discarded when they check back in.
  states_.Evict(request.dataset, (*removed)->generation);

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.dataset = request.dataset;
  response.millis = timer.Millis();
  return response;
}

Response CampaignService::HandleList(const Request& request) {
  WallTimer timer;
  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  for (const auto& entry : registry_.List()) {
    response.datasets.push_back(InfoOf(*entry));
  }
  response.millis = timer.Millis();
  return response;
}

}  // namespace voteopt::serve
