#include "serve/service.h"

namespace voteopt::serve {

Result<std::unique_ptr<CampaignService>> CampaignService::Open(
    const ServiceOptions& options) {
  auto engine = api::Engine::Open(options);
  if (!engine.ok()) return engine.status();
  return std::unique_ptr<CampaignService>(
      new CampaignService(std::move(engine).value()));
}

}  // namespace voteopt::serve
