#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "core/estimated_greedy.h"
#include "core/min_seed.h"
#include "core/sketch.h"
#include "util/timer.h"

namespace voteopt::serve {

namespace {

/// Fingerprint of the problem instance a sketch is bound to: every CSR
/// array of the influence graph plus every campaign's opinions and
/// stubbornness. A regenerated bundle with the same node count but
/// different edges/opinions would otherwise silently serve wrong answers
/// from a stale sketch. (The bundle's default target is deliberately
/// excluded: the sketch pins its own target in SketchMeta.)
uint64_t BundleFingerprint(const datasets::Dataset& dataset) {
  std::vector<uint64_t> digests;
  auto add = [&digests](const void* data, size_t size) {
    digests.push_back(store::Fnv1a64(data, size));
  };
  const graph::Graph& g = dataset.influence;
  add(g.OutOffsets().data(), g.OutOffsets().size_bytes());
  add(g.OutTargets().data(), g.OutTargets().size_bytes());
  add(g.OutWeightsRaw().data(), g.OutWeightsRaw().size_bytes());
  add(g.InOffsets().data(), g.InOffsets().size_bytes());
  add(g.InSources().data(), g.InSources().size_bytes());
  add(g.InWeightsRaw().data(), g.InWeightsRaw().size_bytes());
  for (const opinion::Campaign& campaign : dataset.state.campaigns) {
    add(campaign.initial_opinions.data(),
        campaign.initial_opinions.size() * sizeof(double));
    add(campaign.stubbornness.data(),
        campaign.stubbornness.size() * sizeof(double));
  }
  return store::Fnv1a64(digests.data(), digests.size() * sizeof(uint64_t));
}

/// Canonical cache key for a voting rule (omega is hashed; two positional
/// rules with different weights must not share an evaluator).
std::string SpecKey(const voting::ScoreSpec& spec) {
  std::string key = voting::ScoreKindName(spec.kind);
  key += "/p=" + std::to_string(spec.p);
  if (!spec.omega.empty()) {
    key += "/omega=" + std::to_string(store::Fnv1a64(
                           spec.omega.data(),
                           spec.omega.size() * sizeof(double)));
  }
  return key;
}

}  // namespace

Result<std::unique_ptr<CampaignService>> CampaignService::Open(
    const ServiceOptions& options) {
  auto service = std::unique_ptr<CampaignService>(new CampaignService());
  service->options_ = options;

  auto bundle = datasets::LoadDatasetBundle(options.bundle_prefix);
  if (!bundle.ok()) return bundle.status();
  service->dataset_ = std::move(bundle).value();
  service->model_ =
      std::make_unique<opinion::FJModel>(service->dataset_.influence);
  service->evaluators_ =
      std::make_unique<LruCache<std::unique_ptr<voting::ScoreEvaluator>>>(
          options.evaluator_cache_capacity);

  const uint64_t fingerprint = BundleFingerprint(service->dataset_);
  const std::string sketch_path =
      options.sketch_path.empty()
          ? datasets::BundleSketchPath(options.bundle_prefix)
          : options.sketch_path;
  auto loaded = store::LoadSketch(sketch_path, options.sketch_load_mode);
  if (loaded.ok()) {
    service->walks_ = std::move(loaded->walks);
    service->meta_ = loaded->meta;
    if (service->meta_.bundle_fingerprint != 0 &&
        service->meta_.bundle_fingerprint != fingerprint) {
      return Status::FailedPrecondition(
          sketch_path +
          ": sketch was built from a different bundle (fingerprint "
          "mismatch) — rebuild it against the current data");
    }
  } else if (loaded.status().code() == Status::Code::kIOError &&
             options.build_theta > 0) {
    // No persisted sketch: fall back to the offline build, inline.
    service->meta_.theta = options.build_theta;
    service->meta_.horizon = options.build_horizon;
    service->meta_.target = service->dataset_.default_target;
    service->meta_.master_seed = options.rng_seed;
    service->meta_.bundle_fingerprint = fingerprint;
    const voting::ScoreSpec build_spec = voting::ScoreSpec::Cumulative();
    auto build_evaluator = std::make_unique<voting::ScoreEvaluator>(
        *service->model_, service->dataset_.state, service->meta_.target,
        service->meta_.horizon, build_spec);
    core::SketchBuildOptions build_options;
    build_options.num_threads = options.num_threads;
    service->walks_ =
        core::BuildSketchSet(*build_evaluator, options.build_theta,
                             options.rng_seed, build_options);
    service->stats_.sketch_built = true;
    // The evaluator's horizon propagation is the expensive part of its
    // construction — seed the cache so the first cumulative query reuses it.
    service->evaluators_->Put(SpecKey(build_spec),
                              std::move(build_evaluator));
    if (options.save_built_sketch) {
      VOTEOPT_RETURN_IF_ERROR(
          store::SaveSketch(*service->walks_, service->meta_, sketch_path));
    }
  } else {
    return loaded.status();
  }

  if (service->walks_->num_nodes() !=
      service->dataset_.influence.num_nodes()) {
    return Status::FailedPrecondition(
        sketch_path + ": sketch node universe disagrees with the bundle");
  }
  if (service->meta_.target >= service->dataset_.state.num_candidates()) {
    return Status::FailedPrecondition(
        sketch_path + ": sketch target candidate not in the bundle");
  }
  return service;
}

Result<voting::ScoreSpec> CampaignService::ResolveSpec(
    const Request& request) const {
  const uint32_t r = dataset_.state.num_candidates();
  voting::ScoreSpec spec;
  if (request.rule == "cumulative") {
    spec = voting::ScoreSpec::Cumulative();
  } else if (request.rule == "plurality") {
    spec = voting::ScoreSpec::Plurality();
  } else if (request.rule == "papproval" || request.rule == "p-approval") {
    spec = voting::ScoreSpec::PApproval(request.p);
  } else if (request.rule == "positional") {
    if (request.omega.empty()) {
      return Status::InvalidArgument(
          "rule 'positional' requires the 'omega' weights");
    }
    spec = voting::ScoreSpec::PositionalPApproval(request.omega);
  } else if (request.rule == "copeland") {
    spec = voting::ScoreSpec::Copeland();
  } else if (request.rule == "borda") {
    spec = voting::ScoreSpec::Borda(r);
  } else {
    return Status::InvalidArgument("unknown rule '" + request.rule + "'");
  }
  VOTEOPT_RETURN_IF_ERROR(spec.Validate(r));
  return spec;
}

voting::ScoreEvaluator* CampaignService::EvaluatorFor(
    const voting::ScoreSpec& spec) {
  const std::string key = SpecKey(spec);
  if (auto* cached = evaluators_->Get(key); cached != nullptr) {
    ++stats_.evaluator_cache_hits;
    return cached->get();
  }
  ++stats_.evaluator_cache_misses;
  auto evaluator = std::make_unique<voting::ScoreEvaluator>(
      *model_, dataset_.state, meta_.target, meta_.horizon, spec);
  return evaluators_->Put(key, std::move(evaluator))->get();
}

void CampaignService::ResetSketch() {
  walks_->ResetValues(
      dataset_.state.campaigns[meta_.target].initial_opinions);
  ++stats_.sketch_resets;
}

Response CampaignService::Handle(const Request& request) {
  ++stats_.queries;
  Response response;
  switch (request.op) {
    case Request::Op::kTopK:
      response = HandleTopK(request);
      break;
    case Request::Op::kMinSeed:
      response = HandleMinSeed(request);
      break;
    case Request::Op::kEvaluate:
      response = HandleEvaluate(request);
      break;
  }
  if (!response.ok) ++stats_.errors;
  return response;
}

std::vector<Response> CampaignService::HandleBatch(
    const std::vector<Request>& batch) {
  std::vector<Response> responses;
  responses.reserve(batch.size());
  for (const Request& request : batch) responses.push_back(Handle(request));
  return responses;
}

Response CampaignService::HandleTopK(const Request& request) {
  WallTimer timer;
  auto spec = ResolveSpec(request);
  if (!spec.ok()) return Response::Error(request, spec.status());
  if (request.k == 0 || request.k > dataset_.influence.num_nodes()) {
    return Response::Error(
        request, Status::InvalidArgument("k must be in [1, num_nodes]"));
  }
  voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec);
  ResetSketch();
  const core::SelectionResult selection =
      core::EstimatedGreedySelect(*evaluator, request.k, walks_.get());

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.seeds = selection.seeds;
  response.estimated_score = selection.diagnostics.at("estimated_score");
  response.exact_score = selection.score;
  response.millis = timer.Millis();
  return response;
}

Response CampaignService::HandleMinSeed(const Request& request) {
  WallTimer timer;
  auto spec = ResolveSpec(request);
  if (!spec.ok()) return Response::Error(request, spec.status());
  if (request.k_max > dataset_.influence.num_nodes()) {
    return Response::Error(
        request, Status::InvalidArgument("k_max exceeds num_nodes"));
  }
  voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec);
  const core::SeedSelector selector =
      [this](const voting::ScoreEvaluator& evaluator_ref, uint32_t budget) {
        ResetSketch();
        return core::EstimatedGreedySelect(evaluator_ref, budget,
                                           walks_.get());
      };
  const core::MinSeedResult result =
      core::MinSeedsToWin(*evaluator, selector, request.k_max);

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.achievable = result.achievable;
  response.k_star = result.k_star;
  response.seeds = result.seeds;
  response.selector_calls = result.selector_calls;
  response.exact_score = evaluator->EvaluateSeeds(result.seeds);
  response.millis = timer.Millis();
  return response;
}

Response CampaignService::HandleEvaluate(const Request& request) {
  WallTimer timer;
  auto spec = ResolveSpec(request);
  if (!spec.ok()) return Response::Error(request, spec.status());
  const uint32_t n = dataset_.influence.num_nodes();
  for (const graph::NodeId seed : request.seeds) {
    if (seed >= n) {
      return Response::Error(request,
                             Status::OutOfRange("seed id out of range"));
    }
  }
  for (const auto& [user, opinion] : request.overrides) {
    if (user >= n) {
      return Response::Error(request,
                             Status::OutOfRange("override user out of range"));
    }
    if (opinion < 0.0 || opinion > 1.0) {
      return Response::Error(
          request,
          Status::InvalidArgument("override opinion must be in [0, 1]"));
    }
  }
  voting::ScoreEvaluator* evaluator = EvaluatorFor(*spec);

  // Exact propagation of the (possibly overridden) target campaign; the
  // competitors' horizon opinions come from the cached evaluator state.
  opinion::Campaign campaign = dataset_.state.campaigns[meta_.target];
  for (const auto& [user, opinion] : request.overrides) {
    campaign.initial_opinions[user] = opinion;
  }
  const std::vector<double> target_row =
      model_->PropagateWithSeeds(campaign, request.seeds, meta_.horizon);

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.score = evaluator->ScoreFromTargetOpinions(target_row);
  response.all_scores = evaluator->ScoresAllCandidates(target_row);
  response.winner = static_cast<uint32_t>(
      std::max_element(response.all_scores.begin(),
                       response.all_scores.end()) -
      response.all_scores.begin());
  response.millis = timer.Millis();
  return response;
}

}  // namespace voteopt::serve
