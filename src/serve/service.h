// CampaignService: the online half of the offline-build → persist → serve
// split. It owns a loaded problem instance (influence graph + campaign
// state, from a dataset bundle) and one persisted sketch set (store/), and
// answers batched queries against them:
//
//   * topk      — budget-k seed selection on the sketch (RS greedy loop)
//   * minseed   — Problem 2's minimum winning budget (binary search)
//   * evaluate  — exact score of a supplied seed set, optionally under
//                 updated ("override") target opinions — a campaign's
//                 current state
//
// One sketch set serves every query: before each selection the dynamic
// truncation state is rebuilt in O(theta) by WalkSet::ResetValues — the
// walks themselves (the expensive artifact) are never regenerated. Per
// voting rule, the exact-evaluation state (competitor horizon opinions,
// sorted per-user copies) is kept in an LRU cache of ScoreEvaluators.
//
// The sketch bakes in the horizon and the target campaign's stubbornness,
// so the service pins (target, horizon) from the sketch's persisted meta.
#ifndef VOTEOPT_SERVE_SERVICE_H_
#define VOTEOPT_SERVE_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "opinion/fj_model.h"
#include "serve/lru_cache.h"
#include "serve/protocol.h"
#include "store/sketch_store.h"
#include "voting/evaluator.h"

namespace voteopt::serve {

struct ServiceOptions {
  /// Dataset bundle prefix (graph + campaigns + meta; datasets/io.h).
  std::string bundle_prefix;
  /// Sketch store file; empty means `<bundle_prefix>.sketch`.
  std::string sketch_path;
  /// Map the sketch instead of copying it into RAM.
  store::SketchLoadMode sketch_load_mode = store::SketchLoadMode::kMmap;

  /// Fallback when the sketch file is missing: build this many walks
  /// (0 = fail instead of building).
  uint64_t build_theta = uint64_t{1} << 18;
  /// Horizon for a freshly built sketch (persisted files carry their own).
  uint32_t build_horizon = 20;
  /// Persist a freshly built sketch next to the bundle.
  bool save_built_sketch = false;
  /// Sketch-builder threads (0 = one per hardware thread).
  uint32_t num_threads = 0;
  uint64_t rng_seed = 42;

  /// Capacity of the per-voting-rule evaluator LRU.
  uint32_t evaluator_cache_capacity = 4;
};

class CampaignService {
 public:
  struct Stats {
    uint64_t queries = 0;
    uint64_t errors = 0;
    uint64_t evaluator_cache_hits = 0;
    uint64_t evaluator_cache_misses = 0;
    uint64_t sketch_resets = 0;
    bool sketch_built = false;  // true when Open had to build (no file)
  };

  /// Loads the bundle and the sketch (building + optionally persisting one
  /// when absent). Fails with a clean Status on any inconsistency — e.g. a
  /// sketch whose node universe or target disagrees with the bundle.
  static Result<std::unique_ptr<CampaignService>> Open(
      const ServiceOptions& options);

  /// Answers one query. Never throws; failures come back as error
  /// responses so a batch keeps flowing.
  Response Handle(const Request& request);

  /// Answers a batch in order against the same loaded store.
  std::vector<Response> HandleBatch(const std::vector<Request>& batch);

  const datasets::Dataset& dataset() const { return dataset_; }
  const store::SketchMeta& sketch_meta() const { return meta_; }
  const core::WalkSet& walks() const { return *walks_; }
  const Stats& stats() const { return stats_; }

 private:
  CampaignService() = default;

  /// Resolves the request's voting rule into a validated ScoreSpec.
  Result<voting::ScoreSpec> ResolveSpec(const Request& request) const;
  /// Cached evaluator for a spec (builds + inserts on miss).
  voting::ScoreEvaluator* EvaluatorFor(const voting::ScoreSpec& spec);
  /// Rebuilds the sketch's dynamic state for a fresh selection.
  void ResetSketch();

  Response HandleTopK(const Request& request);
  Response HandleMinSeed(const Request& request);
  Response HandleEvaluate(const Request& request);

  ServiceOptions options_;
  datasets::Dataset dataset_;
  std::unique_ptr<opinion::FJModel> model_;
  std::unique_ptr<core::WalkSet> walks_;
  store::SketchMeta meta_;
  std::unique_ptr<LruCache<std::unique_ptr<voting::ScoreEvaluator>>>
      evaluators_;
  Stats stats_;
};

}  // namespace voteopt::serve

#endif  // VOTEOPT_SERVE_SERVICE_H_
