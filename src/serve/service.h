// CampaignService: the wire-transport shim of the serving layer. All query
// dispatch — registry resolution, pooled per-worker state, method routing,
// batch fan-out with admin barriers — lives in api::Engine (api/engine.h),
// the ONE component that executes queries; CampaignService merely owns an
// engine and forwards, keeping the historical serve-layer surface for the
// CLI, tests, and benches. Because the shim adds nothing to the path, a
// wire client and an embedded api::Engine caller get bit-identical answers
// by construction.
//
// The concurrency model (frozen shared entries, per-query mutable state,
// admin verbs as batch barriers, thread-count-invariant answers) is
// documented in docs/ARCHITECTURE.md and implemented by the engine.
#ifndef VOTEOPT_SERVE_SERVICE_H_
#define VOTEOPT_SERVE_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/state_pool.h"

namespace voteopt::serve {

/// The engine's options under their historical serve-layer name: bootstrap
/// dataset load options, worker-pool width, evaluator-LRU capacity.
using ServiceOptions = api::EngineOptions;

class CampaignService {
 public:
  /// Monotonic service-wide counters (snapshot of the engine's atomics).
  using Stats = api::Engine::Stats;

  /// Creates the service and, when options.load.bundle_prefix is set,
  /// loads the bootstrap dataset. Fails with a clean Status on any
  /// inconsistency (see DatasetRegistry::Load).
  static Result<std::unique_ptr<CampaignService>> Open(
      const ServiceOptions& options);

  /// Answers one request inline on the calling thread. Never throws;
  /// failures come back as error responses so a stream keeps flowing.
  /// Thread-safe: any number of client threads may call concurrently.
  Response Handle(const Request& request) { return engine_->Execute(request); }

  /// Answers a batch with responses in request order. Query verbs run
  /// concurrently on the worker pool; admin verbs (load/unload/list) are
  /// ordering barriers, so the result is identical to serial execution.
  std::vector<Response> HandleBatch(const std::vector<Request>& batch) {
    return engine_->ExecuteBatch(batch);
  }

  /// The engine behind the shim — the typed API surface for callers that
  /// outgrow the wire protocol.
  api::Engine& engine() { return *engine_; }

  DatasetRegistry& registry() { return engine_->registry(); }
  const StatePool& state_pool() const { return engine_->state_pool(); }
  uint32_t num_worker_threads() const { return engine_->num_worker_threads(); }

  // Single-tenant conveniences: the sole hosted dataset (precondition:
  // the registry hosts exactly one, e.g. right after a bootstrap Open).
  const datasets::Dataset& dataset() const { return engine_->dataset(); }
  const store::SketchMeta& sketch_meta() const {
    return engine_->sketch_meta();
  }
  const core::WalkSet& walks() const { return engine_->walks(); }

  Stats stats() const { return engine_->stats(); }

 private:
  explicit CampaignService(std::unique_ptr<api::Engine> engine)
      : engine_(std::move(engine)) {}

  std::unique_ptr<api::Engine> engine_;
};

}  // namespace voteopt::serve

#endif  // VOTEOPT_SERVE_SERVICE_H_
