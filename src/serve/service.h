// CampaignService: the online half of the offline-build → persist → serve
// split — now a concurrent, multi-tenant service.
//
// A DatasetRegistry hosts any number of named bundle+sketch pairs; the
// protocol's load / unload / list verbs manage them at runtime. Query verbs
// run against one hosted dataset each:
//
//   * topk      — budget-k seed selection on the sketch (RS greedy loop)
//   * minseed   — Problem 2's minimum winning budget (binary search)
//   * evaluate  — exact score of a supplied seed set, optionally under
//                 updated ("override") target opinions — a campaign's
//                 current state
//
// Concurrency model (docs/ARCHITECTURE.md): HandleBatch fans queries out
// onto a util::ThreadPool. The frozen WalkSet spans and everything else
// reachable from a DatasetEntry are immutable and shared across workers;
// all per-query mutable state — the O(theta) dynamic truncation state that
// WalkSet::ResetValues rebuilds before each selection, and the per-voting-
// rule ScoreEvaluator LRU — lives in QueryStates checked out of a
// StatePool, so concurrent queries never contend on mutable sketch state.
// Each query is deterministic in isolation; answers are therefore
// bit-identical whatever the worker count. Admin verbs act as ordering
// barriers inside a batch, which preserves exact serial semantics.
//
// Each sketch bakes in its horizon and its target campaign's stubbornness,
// so every entry pins (target, horizon) from the sketch's persisted meta.
#ifndef VOTEOPT_SERVE_SERVICE_H_
#define VOTEOPT_SERVE_SERVICE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/state_pool.h"
#include "util/thread_pool.h"

namespace voteopt::serve {

struct ServiceOptions {
  /// Bootstrap dataset registered at Open under `dataset_name`. Its
  /// bundle_prefix may be left empty to start with an empty registry —
  /// datasets then arrive via the protocol's `load` verb. These options
  /// are also the defaults inherited by protocol-level loads.
  DatasetLoadOptions load;
  std::string dataset_name = "default";

  /// Serving worker threads for HandleBatch fan-out (0 = one per hardware
  /// thread). Answers are identical for every value; this only sets how
  /// many independent queries run at once.
  uint32_t num_worker_threads = 1;

  /// Capacity of each worker state's per-voting-rule evaluator LRU.
  uint32_t evaluator_cache_capacity = 4;
};

class CampaignService {
 public:
  /// Monotonic service-wide counters (a point-in-time snapshot; the live
  /// counters are atomics updated from every worker).
  struct Stats {
    uint64_t queries = 0;
    uint64_t errors = 0;
    uint64_t evaluator_cache_hits = 0;
    uint64_t evaluator_cache_misses = 0;
    uint64_t sketch_resets = 0;
    /// QueryStates ever constructed — the worker-state churn; stays at the
    /// worker count in steady single-dataset operation.
    uint64_t worker_states = 0;
    bool sketch_built = false;  // the bootstrap Open had to build (no file)
  };

  /// Creates the service and, when options.load.bundle_prefix is set,
  /// loads the bootstrap dataset. Fails with a clean Status on any
  /// inconsistency (see DatasetRegistry::Load).
  static Result<std::unique_ptr<CampaignService>> Open(
      const ServiceOptions& options);

  /// Answers one request inline on the calling thread. Never throws;
  /// failures come back as error responses so a stream keeps flowing.
  /// Thread-safe: any number of client threads may call concurrently.
  Response Handle(const Request& request);

  /// Answers a batch with responses in request order. Query verbs run
  /// concurrently on the worker pool; admin verbs (load/unload/list) are
  /// ordering barriers, so the result is identical to serial execution.
  std::vector<Response> HandleBatch(const std::vector<Request>& batch);

  DatasetRegistry& registry() { return registry_; }
  const StatePool& state_pool() const { return states_; }
  uint32_t num_worker_threads() const { return pool_->num_threads(); }

  // Single-tenant conveniences: the sole hosted dataset (precondition:
  // the registry hosts exactly one, e.g. right after a bootstrap Open).
  const datasets::Dataset& dataset() const;
  const store::SketchMeta& sketch_meta() const;
  const core::WalkSet& walks() const;

  Stats stats() const;

 private:
  explicit CampaignService(const ServiceOptions& options);

  /// Routes one request (query → pooled state, admin → registry).
  Response Execute(const Request& request);
  Response ExecuteQuery(const Request& request);

  Response HandleTopK(const Request& request, const DatasetEntry& entry,
                      QueryState& state);
  Response HandleMinSeed(const Request& request, const DatasetEntry& entry,
                         QueryState& state);
  Response HandleEvaluate(const Request& request, const DatasetEntry& entry,
                          QueryState& state);
  Response HandleLoad(const Request& request);
  Response HandleUnload(const Request& request);
  Response HandleList(const Request& request);

  /// Cached evaluator from the leased state, with hit/miss accounting.
  const voting::ScoreEvaluator* EvaluatorFor(const voting::ScoreSpec& spec,
                                             QueryState& state);
  /// Rebuilds the leased working sketch's dynamic state for a selection.
  void ResetSketch(const DatasetEntry& entry, QueryState& state);

  ServiceOptions options_;
  DatasetRegistry registry_;
  StatePool states_;
  std::unique_ptr<ThreadPool> pool_;
  bool bootstrap_built_ = false;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> evaluator_cache_hits_{0};
  std::atomic<uint64_t> evaluator_cache_misses_{0};
  std::atomic<uint64_t> sketch_resets_{0};
};

}  // namespace voteopt::serve

#endif  // VOTEOPT_SERVE_SERVICE_H_
