// Compatibility shim: the per-query state pool moved into the api layer
// (api/state_pool.h) when query dispatch was unified behind api::Engine.
#ifndef VOTEOPT_SERVE_STATE_POOL_H_
#define VOTEOPT_SERVE_STATE_POOL_H_

#include "api/state_pool.h"
#include "serve/registry.h"

namespace voteopt::serve {

using QueryState = api::QueryState;
using StatePool = api::StatePool;

}  // namespace voteopt::serve

#endif  // VOTEOPT_SERVE_STATE_POOL_H_
