#include "serve/protocol.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace voteopt::serve {

namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader — just enough for the flat request objects above
// (objects, arrays, strings, numbers, booleans, null; no \uXXXX escapes).
// Kept dependency-free on purpose: the serving scaffold must not pull a
// JSON library into the core build.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  // kObject

  const JsonValue* Find(const std::string& name) const {
    for (const auto& [key, value] : fields) {
      if (key == name) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    auto value = ParseValue(/*depth=*/0);
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 8;

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Status::InvalidArgument("JSON too deep");
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(int depth) {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    Consume('{');
    if (Consume('}')) return value;
    while (true) {
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Status::InvalidArgument("expected ':'");
      auto field = ParseValue(depth + 1);
      if (!field.ok()) return field;
      value.fields.emplace_back(std::move(key->str), std::move(*field));
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Status::InvalidArgument("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    Consume('[');
    if (Consume(']')) return value;
    while (true) {
      auto item = ParseValue(depth + 1);
      if (!item.ok()) return item;
      value.items.push_back(std::move(*item));
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Status::InvalidArgument("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::InvalidArgument("expected '\"'");
    }
    ++pos_;
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': value.str += '"'; break;
          case '\\': value.str += '\\'; break;
          case '/': value.str += '/'; break;
          case 'n': value.str += '\n'; break;
          case 't': value.str += '\t'; break;
          case 'r': value.str += '\r'; break;
          default:
            return Status::InvalidArgument("unsupported string escape");
        }
      } else {
        value.str += c;
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNumber() {
    const size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    const char* first = text_.data() + begin;
    const char* last = text_.data() + pos_;
    auto [end, ec] = std::from_chars(first, last, value.number);
    if (ec != std::errc() || end != last || begin == pos_) {
      return Status::InvalidArgument("bad number");
    }
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<uint32_t> AsU32(const JsonValue& value, const std::string& name) {
  if (value.type != JsonValue::Type::kNumber || value.number < 0 ||
      value.number != std::floor(value.number) ||
      value.number > 4294967295.0) {
    return Status::InvalidArgument("field '" + name +
                                   "' must be a non-negative integer");
  }
  return static_cast<uint32_t>(value.number);
}

Result<uint64_t> AsU64(const JsonValue& value, const std::string& name) {
  // Strictly below 2^53: from 2^53 on, distinct JSON integers collapse to
  // the same double, so accepting them would silently coerce the value.
  if (value.type != JsonValue::Type::kNumber || value.number < 0 ||
      value.number != std::floor(value.number) ||
      value.number >= 9007199254740992.0) {
    return Status::InvalidArgument("field '" + name +
                                   "' must be a non-negative integer");
  }
  return static_cast<uint64_t>(value.number);
}

Result<std::string> AsString(const JsonValue& value, const std::string& name) {
  if (value.type != JsonValue::Type::kString) {
    return Status::InvalidArgument("field '" + name + "' must be a string");
  }
  return value.str;
}

void AppendJsonString(std::ostringstream* out, const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  *out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out << "\\\""; break;
      case '\\': *out << "\\\\"; break;
      case '\n': *out << "\\n"; break;
      case '\t': *out << "\\t"; break;
      case '\r': *out << "\\r"; break;
      default:
        // RFC 8259: control characters must be escaped; echoed request ids
        // may carry arbitrary bytes.
        if (static_cast<unsigned char>(c) < 0x20) {
          *out << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          *out << c;
        }
        break;
    }
  }
  *out << '"';
}

}  // namespace

const char* OpName(Request::Op op) {
  switch (op) {
    case Request::Op::kTopK: return "topk";
    case Request::Op::kMinSeed: return "minseed";
    case Request::Op::kEvaluate: return "evaluate";
    case Request::Op::kLoad: return "load";
    case Request::Op::kUnload: return "unload";
    case Request::Op::kList: return "list";
  }
  return "?";
}

bool IsAdminOp(Request::Op op) {
  return op == Request::Op::kLoad || op == Request::Op::kUnload ||
         op == Request::Op::kList;
}

Result<Request> ParseRequest(const std::string& line) {
  JsonParser parser(line);
  auto parsed = parser.Parse();
  if (!parsed.ok()) return parsed.status();
  if (parsed->type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const JsonValue& object = *parsed;

  Request request;
  const JsonValue* op = object.Find("op");
  if (op == nullptr || op->type != JsonValue::Type::kString) {
    return Status::InvalidArgument("missing string field 'op'");
  }
  if (op->str == "topk") {
    request.op = Request::Op::kTopK;
  } else if (op->str == "minseed") {
    request.op = Request::Op::kMinSeed;
  } else if (op->str == "evaluate") {
    request.op = Request::Op::kEvaluate;
  } else if (op->str == "load") {
    request.op = Request::Op::kLoad;
  } else if (op->str == "unload") {
    request.op = Request::Op::kUnload;
  } else if (op->str == "list") {
    request.op = Request::Op::kList;
  } else {
    return Status::InvalidArgument("unknown op '" + op->str + "'");
  }

  if (const JsonValue* id = object.Find("id"); id != nullptr) {
    auto parsed_id = AsString(*id, "id");
    if (!parsed_id.ok()) return parsed_id.status();
    request.id = *parsed_id;
  }
  if (const JsonValue* dataset = object.Find("dataset"); dataset != nullptr) {
    auto parsed_dataset = AsString(*dataset, "dataset");
    if (!parsed_dataset.ok()) return parsed_dataset.status();
    request.dataset = *parsed_dataset;
  }
  if (const JsonValue* bundle = object.Find("bundle"); bundle != nullptr) {
    auto parsed_bundle = AsString(*bundle, "bundle");
    if (!parsed_bundle.ok()) return parsed_bundle.status();
    request.bundle = *parsed_bundle;
  }
  if (const JsonValue* sketch = object.Find("sketch"); sketch != nullptr) {
    auto parsed_sketch = AsString(*sketch, "sketch");
    if (!parsed_sketch.ok()) return parsed_sketch.status();
    request.sketch = *parsed_sketch;
  }
  if (const JsonValue* theta = object.Find("theta"); theta != nullptr) {
    auto parsed_theta = AsU64(*theta, "theta");
    if (!parsed_theta.ok()) return parsed_theta.status();
    request.theta = *parsed_theta;
  }
  if (const JsonValue* rule = object.Find("rule"); rule != nullptr) {
    auto parsed_rule = AsString(*rule, "rule");
    if (!parsed_rule.ok()) return parsed_rule.status();
    request.rule = *parsed_rule;
  }
  if (const JsonValue* p = object.Find("p"); p != nullptr) {
    auto parsed_p = AsU32(*p, "p");
    if (!parsed_p.ok()) return parsed_p.status();
    request.p = *parsed_p;
  }
  if (const JsonValue* omega = object.Find("omega"); omega != nullptr) {
    if (omega->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'omega' must be an array");
    }
    for (const JsonValue& item : omega->items) {
      if (item.type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument("'omega' entries must be numbers");
      }
      request.omega.push_back(item.number);
    }
  }
  if (const JsonValue* k = object.Find("k"); k != nullptr) {
    auto parsed_k = AsU32(*k, "k");
    if (!parsed_k.ok()) return parsed_k.status();
    request.k = *parsed_k;
  }
  if (const JsonValue* k_max = object.Find("k_max"); k_max != nullptr) {
    auto parsed_k = AsU32(*k_max, "k_max");
    if (!parsed_k.ok()) return parsed_k.status();
    request.k_max = *parsed_k;
  }
  if (const JsonValue* seeds = object.Find("seeds"); seeds != nullptr) {
    if (seeds->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'seeds' must be an array");
    }
    for (const JsonValue& item : seeds->items) {
      auto id = AsU32(item, "seeds");
      if (!id.ok()) return id.status();
      request.seeds.push_back(*id);
    }
  }
  if (const JsonValue* overrides = object.Find("override");
      overrides != nullptr) {
    if (overrides->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'override' must be an array");
    }
    for (const JsonValue& pair : overrides->items) {
      if (pair.type != JsonValue::Type::kArray || pair.items.size() != 2 ||
          pair.items[1].type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument(
            "'override' entries must be [user, opinion] pairs");
      }
      auto user = AsU32(pair.items[0], "override");
      if (!user.ok()) return user.status();
      request.overrides.emplace_back(*user, pair.items[1].number);
    }
  }
  return request;
}

Response Response::Error(const Request& request, const Status& status) {
  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.ok = false;
  response.error = status.ToString();
  return response;
}

std::string Response::ToJson() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\"op\": ";
  AppendJsonString(&out, op);
  if (!id.empty()) {
    out << ", \"id\": ";
    AppendJsonString(&out, id);
  }
  out << ", \"ok\": " << (ok ? "true" : "false");
  if (!ok) {
    out << ", \"error\": ";
    AppendJsonString(&out, error);
    out << "}";
    return out.str();
  }
  if (!dataset.empty()) {
    out << ", \"dataset\": ";
    AppendJsonString(&out, dataset);
  }
  auto append_seeds = [&] {
    out << ", \"seeds\": [";
    for (size_t i = 0; i < seeds.size(); ++i) {
      out << (i == 0 ? "" : ", ") << seeds[i];
    }
    out << "]";
  };
  if (op == "topk") {
    append_seeds();
    out << ", \"estimated_score\": " << estimated_score
        << ", \"exact_score\": " << exact_score;
  } else if (op == "minseed") {
    out << ", \"achievable\": " << (achievable ? "true" : "false")
        << ", \"k_star\": " << k_star;
    append_seeds();
    out << ", \"exact_score\": " << exact_score
        << ", \"selector_calls\": " << selector_calls;
  } else if (op == "evaluate") {
    out << ", \"score\": " << score << ", \"scores\": [";
    for (size_t i = 0; i < all_scores.size(); ++i) {
      out << (i == 0 ? "" : ", ") << all_scores[i];
    }
    out << "], \"winner\": " << winner;
  } else if (op == "load" || op == "list") {
    out << ", \"datasets\": [";
    for (size_t i = 0; i < datasets.size(); ++i) {
      const DatasetInfo& info = datasets[i];
      out << (i == 0 ? "" : ", ") << "{\"name\": ";
      AppendJsonString(&out, info.name);
      out << ", \"n\": " << info.num_nodes << ", \"r\": "
          << info.num_candidates << ", \"theta\": " << info.theta
          << ", \"t\": " << info.horizon << ", \"target\": " << info.target
          << ", \"sketch_built\": " << (info.sketch_built ? "true" : "false")
          << "}";
    }
    out << "]";
  }
  out << ", \"millis\": " << millis << "}";
  return out.str();
}

std::string Response::ToStableJson() const {
  std::string json = ToJson();
  // millis is always the trailing field when present (error responses
  // carry none).
  const size_t millis_at = json.rfind(", \"millis\": ");
  if (millis_at != std::string::npos) {
    json.erase(millis_at, json.size() - 1 - millis_at);
  }
  return json;
}

}  // namespace voteopt::serve
