#include "serve/protocol.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace voteopt {

namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader — just enough for the flat request/response objects
// of this protocol (objects, arrays, strings, numbers, booleans, null; no
// \uXXXX escapes). Kept dependency-free on purpose: the serving scaffold
// must not pull a JSON library into the core build.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  // kObject

  const JsonValue* Find(const std::string& name) const {
    for (const auto& [key, value] : fields) {
      if (key == name) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    auto value = ParseValue(/*depth=*/0);
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 8;

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Status::InvalidArgument("JSON too deep");
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(int depth) {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    Consume('{');
    if (Consume('}')) return value;
    while (true) {
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Status::InvalidArgument("expected ':'");
      auto field = ParseValue(depth + 1);
      if (!field.ok()) return field;
      value.fields.emplace_back(std::move(key->str), std::move(*field));
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Status::InvalidArgument("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    Consume('[');
    if (Consume(']')) return value;
    while (true) {
      auto item = ParseValue(depth + 1);
      if (!item.ok()) return item;
      value.items.push_back(std::move(*item));
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Status::InvalidArgument("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::InvalidArgument("expected '\"'");
    }
    ++pos_;
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': value.str += '"'; break;
          case '\\': value.str += '\\'; break;
          case '/': value.str += '/'; break;
          case 'n': value.str += '\n'; break;
          case 't': value.str += '\t'; break;
          case 'r': value.str += '\r'; break;
          default:
            return Status::InvalidArgument("unsupported string escape");
        }
      } else {
        value.str += c;
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Status::InvalidArgument("bad literal");
  }

  Result<JsonValue> ParseNumber() {
    const size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    const char* first = text_.data() + begin;
    const char* last = text_.data() + pos_;
    auto [end, ec] = std::from_chars(first, last, value.number);
    if (ec != std::errc() || end != last || begin == pos_) {
      return Status::InvalidArgument("bad number");
    }
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<uint32_t> AsU32(const JsonValue& value, const std::string& name) {
  if (value.type != JsonValue::Type::kNumber || value.number < 0 ||
      value.number != std::floor(value.number) ||
      value.number > 4294967295.0) {
    return Status::InvalidArgument("field '" + name +
                                   "' must be a non-negative integer");
  }
  return static_cast<uint32_t>(value.number);
}

Result<uint64_t> AsU64(const JsonValue& value, const std::string& name) {
  // Strictly below 2^53: from 2^53 on, distinct JSON integers collapse to
  // the same double, so accepting them would silently coerce the value.
  if (value.type != JsonValue::Type::kNumber || value.number < 0 ||
      value.number != std::floor(value.number) ||
      value.number >= 9007199254740992.0) {
    return Status::InvalidArgument("field '" + name +
                                   "' must be a non-negative integer");
  }
  return static_cast<uint64_t>(value.number);
}

Result<double> AsNumber(const JsonValue& value, const std::string& name) {
  if (value.type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument("field '" + name + "' must be a number");
  }
  return value.number;
}

Result<std::string> AsString(const JsonValue& value, const std::string& name) {
  if (value.type != JsonValue::Type::kString) {
    return Status::InvalidArgument("field '" + name + "' must be a string");
  }
  return value.str;
}

void AppendJsonString(std::ostringstream* out, const std::string& s) {
  static constexpr char kHex[] = "0123456789abcdef";
  *out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out << "\\\""; break;
      case '\\': *out << "\\\\"; break;
      case '\n': *out << "\\n"; break;
      case '\t': *out << "\\t"; break;
      case '\r': *out << "\\r"; break;
      default:
        // RFC 8259: control characters must be escaped; echoed request ids
        // may carry arbitrary bytes.
        if (static_cast<unsigned char>(c) < 0x20) {
          *out << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          *out << c;
        }
        break;
    }
  }
  *out << '"';
}

template <typename T>
void AppendNumberArray(std::ostringstream* out, const std::vector<T>& items) {
  *out << "[";
  for (size_t i = 0; i < items.size(); ++i) {
    *out << (i == 0 ? "" : ", ") << items[i];
  }
  *out << "]";
}

/// One mutation from a flat field set: "from"/"to" (+"weight", default 1 —
/// the row renormalizes, so only ratios matter) for the edge kinds,
/// "candidate"/"node"/"value" for set_opinion. Shared by the single-edit
/// verbs (fields on the request object, kind implied by the op) and the
/// mutate batch (fields per array entry, kind explicit).
Result<dyn::Mutation> ParseMutationFields(const JsonValue& object,
                                          dyn::Mutation::Kind kind) {
  auto require_u32 = [&object](const char* name) -> Result<uint32_t> {
    const JsonValue* v = object.Find(name);
    if (v == nullptr) {
      return Status::InvalidArgument(std::string("missing field '") + name +
                                     "'");
    }
    return AsU32(*v, name);
  };
  switch (kind) {
    case dyn::Mutation::Kind::kEdgeAdd: {
      auto from = require_u32("from");
      if (!from.ok()) return from.status();
      auto to = require_u32("to");
      if (!to.ok()) return to.status();
      double weight = 1.0;
      if (const JsonValue* w = object.Find("weight"); w != nullptr) {
        auto number = AsNumber(*w, "weight");
        if (!number.ok()) return number.status();
        weight = *number;
      }
      return dyn::Mutation::EdgeAdd(*from, *to, weight);
    }
    case dyn::Mutation::Kind::kEdgeDel: {
      auto from = require_u32("from");
      if (!from.ok()) return from.status();
      auto to = require_u32("to");
      if (!to.ok()) return to.status();
      return dyn::Mutation::EdgeDel(*from, *to);
    }
    case dyn::Mutation::Kind::kSetOpinion: {
      auto candidate = require_u32("candidate");
      if (!candidate.ok()) return candidate.status();
      auto node = require_u32("node");
      if (!node.ok()) return node.status();
      const JsonValue* v = object.Find("value");
      if (v == nullptr) {
        return Status::InvalidArgument("missing field 'value'");
      }
      auto number = AsNumber(*v, "value");
      if (!number.ok()) return number.status();
      return dyn::Mutation::SetOpinion(*candidate, *node, *number);
    }
  }
  return Status::InvalidArgument("bad mutation kind");
}

}  // namespace

namespace serve {

Result<Request> ParseRequest(const std::string& line) {
  JsonParser parser(line);
  auto parsed = parser.Parse();
  if (!parsed.ok()) return parsed.status();
  if (parsed->type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const JsonValue& object = *parsed;

  Request request;
  // The version gate runs BEFORE the op dispatch: a future-major request
  // whose verb this server has never heard of must fail with the version
  // message (telling the client what this server speaks), not with
  // "unknown op".
  if (const JsonValue* v = object.Find("v"); v != nullptr) {
    auto parsed_v = AsU32(*v, "v");
    if (!parsed_v.ok()) return parsed_v.status();
    // v1 through v4 parse identically (each a strict superset of the
    // last); an unknown major means the client wants semantics this server
    // does not speak, so fail clean instead of answering something subtly
    // different (docs/PROTOCOL.md).
    if (*parsed_v == 0 || *parsed_v > api::kProtocolVersion) {
      return Status::InvalidArgument(
          "unsupported protocol version v=" + std::to_string(*parsed_v) +
          " (this server speaks v1-v" +
          std::to_string(api::kProtocolVersion) + ")");
    }
    request.v = *parsed_v;
  }
  const JsonValue* op = object.Find("op");
  if (op == nullptr || op->type != JsonValue::Type::kString) {
    return Status::InvalidArgument("missing string field 'op'");
  }
  if (op->str == "topk") {
    request.op = Request::Op::kTopK;
  } else if (op->str == "minseed") {
    request.op = Request::Op::kMinSeed;
  } else if (op->str == "evaluate") {
    request.op = Request::Op::kEvaluate;
  } else if (op->str == "methodcompare") {
    request.op = Request::Op::kMethodCompare;
  } else if (op->str == "rulesweep") {
    request.op = Request::Op::kRuleSweep;
  } else if (op->str == "load") {
    request.op = Request::Op::kLoad;
  } else if (op->str == "unload") {
    request.op = Request::Op::kUnload;
  } else if (op->str == "list") {
    request.op = Request::Op::kList;
  } else if (op->str == "stats") {
    request.op = Request::Op::kStats;
  } else if (op->str == "edge_add") {
    request.op = Request::Op::kEdgeAdd;
  } else if (op->str == "edge_del") {
    request.op = Request::Op::kEdgeDel;
  } else if (op->str == "set_opinion") {
    request.op = Request::Op::kSetOpinion;
  } else if (op->str == "mutate") {
    request.op = Request::Op::kMutate;
  } else {
    return Status::InvalidArgument("unknown op '" + op->str + "'");
  }

  if (const JsonValue* id = object.Find("id"); id != nullptr) {
    auto parsed_id = AsString(*id, "id");
    if (!parsed_id.ok()) return parsed_id.status();
    request.id = *parsed_id;
  }
  if (const JsonValue* dataset = object.Find("dataset"); dataset != nullptr) {
    auto parsed_dataset = AsString(*dataset, "dataset");
    if (!parsed_dataset.ok()) return parsed_dataset.status();
    request.dataset = *parsed_dataset;
  }
  if (const JsonValue* bundle = object.Find("bundle"); bundle != nullptr) {
    auto parsed_bundle = AsString(*bundle, "bundle");
    if (!parsed_bundle.ok()) return parsed_bundle.status();
    request.bundle = *parsed_bundle;
  }
  if (const JsonValue* sketch = object.Find("sketch"); sketch != nullptr) {
    auto parsed_sketch = AsString(*sketch, "sketch");
    if (!parsed_sketch.ok()) return parsed_sketch.status();
    request.sketch = *parsed_sketch;
  }
  if (const JsonValue* theta = object.Find("theta"); theta != nullptr) {
    auto parsed_theta = AsU64(*theta, "theta");
    if (!parsed_theta.ok()) return parsed_theta.status();
    request.theta = *parsed_theta;
  }
  if (const JsonValue* rule = object.Find("rule"); rule != nullptr) {
    auto parsed_rule = AsString(*rule, "rule");
    if (!parsed_rule.ok()) return parsed_rule.status();
    request.rule = *parsed_rule;
  }
  if (const JsonValue* method = object.Find("method"); method != nullptr) {
    auto parsed_name = AsString(*method, "method");
    if (!parsed_name.ok()) return parsed_name.status();
    auto parsed_method = baselines::ParseMethod(*parsed_name);
    if (!parsed_method.ok()) return parsed_method.status();
    request.method = *parsed_method;
  }
  if (const JsonValue* methods = object.Find("methods"); methods != nullptr) {
    if (methods->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'methods' must be an array");
    }
    for (const JsonValue& item : methods->items) {
      auto parsed_name = AsString(item, "methods");
      if (!parsed_name.ok()) return parsed_name.status();
      auto parsed_method = baselines::ParseMethod(*parsed_name);
      if (!parsed_method.ok()) return parsed_method.status();
      request.methods.push_back(*parsed_method);
    }
  }
  if (const JsonValue* p = object.Find("p"); p != nullptr) {
    auto parsed_p = AsU32(*p, "p");
    if (!parsed_p.ok()) return parsed_p.status();
    request.p = *parsed_p;
  }
  if (const JsonValue* omega = object.Find("omega"); omega != nullptr) {
    if (omega->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'omega' must be an array");
    }
    for (const JsonValue& item : omega->items) {
      if (item.type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument("'omega' entries must be numbers");
      }
      request.omega.push_back(item.number);
    }
  }
  if (const JsonValue* k = object.Find("k"); k != nullptr) {
    auto parsed_k = AsU32(*k, "k");
    if (!parsed_k.ok()) return parsed_k.status();
    request.k = *parsed_k;
  }
  if (const JsonValue* k_max = object.Find("k_max"); k_max != nullptr) {
    auto parsed_k = AsU32(*k_max, "k_max");
    if (!parsed_k.ok()) return parsed_k.status();
    request.k_max = *parsed_k;
  }
  if (const JsonValue* seeds = object.Find("seeds"); seeds != nullptr) {
    if (seeds->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'seeds' must be an array");
    }
    for (const JsonValue& item : seeds->items) {
      auto id = AsU32(item, "seeds");
      if (!id.ok()) return id.status();
      request.seeds.push_back(*id);
    }
  }
  if (const JsonValue* trace = object.Find("trace"); trace != nullptr) {
    if (trace->type != JsonValue::Type::kBool) {
      return Status::InvalidArgument("field 'trace' must be a bool");
    }
    request.trace = trace->boolean;
  }
  if (const JsonValue* overrides = object.Find("override");
      overrides != nullptr) {
    if (overrides->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'override' must be an array");
    }
    for (const JsonValue& pair : overrides->items) {
      if (pair.type != JsonValue::Type::kArray || pair.items.size() != 2 ||
          pair.items[1].type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument(
            "'override' entries must be [user, opinion] pairs");
      }
      auto user = AsU32(pair.items[0], "override");
      if (!user.ok()) return user.status();
      request.overrides.emplace_back(*user, pair.items[1].number);
    }
  }
  if (request.op == Request::Op::kEdgeAdd ||
      request.op == Request::Op::kEdgeDel ||
      request.op == Request::Op::kSetOpinion) {
    const dyn::Mutation::Kind kind =
        request.op == Request::Op::kEdgeAdd ? dyn::Mutation::Kind::kEdgeAdd
        : request.op == Request::Op::kEdgeDel
            ? dyn::Mutation::Kind::kEdgeDel
            : dyn::Mutation::Kind::kSetOpinion;
    auto mutation = ParseMutationFields(object, kind);
    if (!mutation.ok()) return mutation.status();
    request.mutations.push_back(*mutation);
  }
  if (const JsonValue* mutations = object.Find("mutations");
      mutations != nullptr) {
    if (request.op != Request::Op::kMutate) {
      return Status::InvalidArgument(
          "field 'mutations' is only valid for op 'mutate'");
    }
    if (mutations->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'mutations' must be an array");
    }
    for (const JsonValue& item : mutations->items) {
      if (item.type != JsonValue::Type::kObject) {
        return Status::InvalidArgument("'mutations' entries must be objects");
      }
      const JsonValue* kind = item.Find("kind");
      if (kind == nullptr || kind->type != JsonValue::Type::kString) {
        return Status::InvalidArgument(
            "'mutations' entry missing string field 'kind'");
      }
      dyn::Mutation::Kind parsed_kind;
      if (kind->str == "edge_add") {
        parsed_kind = dyn::Mutation::Kind::kEdgeAdd;
      } else if (kind->str == "edge_del") {
        parsed_kind = dyn::Mutation::Kind::kEdgeDel;
      } else if (kind->str == "set_opinion") {
        parsed_kind = dyn::Mutation::Kind::kSetOpinion;
      } else {
        return Status::InvalidArgument("unknown mutation kind '" + kind->str +
                                       "'");
      }
      auto mutation = ParseMutationFields(item, parsed_kind);
      if (!mutation.ok()) return mutation.status();
      request.mutations.push_back(*mutation);
    }
  }
  return request;
}

std::string RequestToJson(const Request& request) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"op\": ";
  AppendJsonString(&out, OpName(request.op));
  // Canonical form: fields at their defaults are omitted, so a v1 request
  // encodes exactly as a v1 client would have written it.
  if (request.v != 1) out << ", \"v\": " << request.v;
  if (!request.id.empty()) {
    out << ", \"id\": ";
    AppendJsonString(&out, request.id);
  }
  if (!request.dataset.empty()) {
    out << ", \"dataset\": ";
    AppendJsonString(&out, request.dataset);
  }
  const bool is_query = !IsAdminOp(request.op);
  if (is_query && request.rule != "cumulative") {
    out << ", \"rule\": ";
    AppendJsonString(&out, request.rule);
  }
  if (is_query && request.p != 1) out << ", \"p\": " << request.p;
  if (!request.omega.empty()) {
    out << ", \"omega\": ";
    AppendNumberArray(&out, request.omega);
  }
  if (is_query && request.method != baselines::Method::kRS) {
    out << ", \"method\": ";
    AppendJsonString(&out, baselines::MethodName(request.method));
  }
  if (!request.methods.empty()) {
    out << ", \"methods\": [";
    for (size_t i = 0; i < request.methods.size(); ++i) {
      out << (i == 0 ? "" : ", ");
      AppendJsonString(&out, baselines::MethodName(request.methods[i]));
    }
    out << "]";
  }
  if (request.op == Request::Op::kTopK ||
      request.op == Request::Op::kMethodCompare ||
      request.op == Request::Op::kRuleSweep) {
    out << ", \"k\": " << request.k;
  }
  if (request.op == Request::Op::kMinSeed) {
    out << ", \"k_max\": " << request.k_max;
  }
  if (request.op == Request::Op::kEvaluate) {
    out << ", \"seeds\": ";
    AppendNumberArray(&out, request.seeds);
    if (!request.overrides.empty()) {
      out << ", \"override\": [";
      for (size_t i = 0; i < request.overrides.size(); ++i) {
        out << (i == 0 ? "" : ", ") << "[" << request.overrides[i].first
            << ", " << request.overrides[i].second << "]";
      }
      out << "]";
    }
  }
  if ((request.op == Request::Op::kEdgeAdd ||
       request.op == Request::Op::kEdgeDel ||
       request.op == Request::Op::kSetOpinion) &&
      !request.mutations.empty()) {
    // Single-edit sugar: the one mutation's fields ride flat on the
    // request object (weight always emitted — canonical form).
    const dyn::Mutation& m = request.mutations.front();
    if (request.op == Request::Op::kSetOpinion) {
      out << ", \"candidate\": " << m.u << ", \"node\": " << m.v
          << ", \"value\": " << m.value;
    } else {
      out << ", \"from\": " << m.u << ", \"to\": " << m.v;
      if (request.op == Request::Op::kEdgeAdd) {
        out << ", \"weight\": " << m.value;
      }
    }
  }
  if (request.op == Request::Op::kMutate) {
    out << ", \"mutations\": [";
    for (size_t i = 0; i < request.mutations.size(); ++i) {
      const dyn::Mutation& m = request.mutations[i];
      out << (i == 0 ? "" : ", ") << "{\"kind\": ";
      AppendJsonString(&out, dyn::MutationKindName(m.kind));
      switch (m.kind) {
        case dyn::Mutation::Kind::kEdgeAdd:
          out << ", \"from\": " << m.u << ", \"to\": " << m.v
              << ", \"weight\": " << m.value;
          break;
        case dyn::Mutation::Kind::kEdgeDel:
          out << ", \"from\": " << m.u << ", \"to\": " << m.v;
          break;
        case dyn::Mutation::Kind::kSetOpinion:
          out << ", \"candidate\": " << m.u << ", \"node\": " << m.v
              << ", \"value\": " << m.value;
          break;
      }
      out << "}";
    }
    out << "]";
  }
  if (!request.bundle.empty()) {
    out << ", \"bundle\": ";
    AppendJsonString(&out, request.bundle);
  }
  if (!request.sketch.empty()) {
    out << ", \"sketch\": ";
    AppendJsonString(&out, request.sketch);
  }
  if (request.theta != 0) out << ", \"theta\": " << request.theta;
  if (request.trace) out << ", \"trace\": true";
  out << "}";
  return out.str();
}

Result<Response> ParseResponse(const std::string& line) {
  JsonParser parser(line);
  auto parsed = parser.Parse();
  if (!parsed.ok()) return parsed.status();
  if (parsed->type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  const JsonValue& object = *parsed;

  Response response;
  const JsonValue* op = object.Find("op");
  if (op == nullptr || op->type != JsonValue::Type::kString) {
    return Status::InvalidArgument("missing string field 'op'");
  }
  response.op = op->str;
  const JsonValue* ok = object.Find("ok");
  if (ok == nullptr || ok->type != JsonValue::Type::kBool) {
    return Status::InvalidArgument("missing bool field 'ok'");
  }
  response.ok = ok->boolean;

  // Field readers shared by the flat payload and the nested entries.
  auto read_string = [&object](const char* name,
                               std::string* into) -> Status {
    if (const JsonValue* v = object.Find(name); v != nullptr) {
      auto parsed_value = AsString(*v, name);
      if (!parsed_value.ok()) return parsed_value.status();
      *into = *parsed_value;
    }
    return Status::OK();
  };
  auto read_seeds = [](const JsonValue& array, const char* name,
                       std::vector<graph::NodeId>* into) -> Status {
    if (array.type != JsonValue::Type::kArray) {
      return Status::InvalidArgument(std::string("field '") + name +
                                     "' must be an array");
    }
    for (const JsonValue& item : array.items) {
      auto id = AsU32(item, name);
      if (!id.ok()) return id.status();
      into->push_back(*id);
    }
    return Status::OK();
  };

  VOTEOPT_RETURN_IF_ERROR(read_string("id", &response.id));
  VOTEOPT_RETURN_IF_ERROR(read_string("error", &response.error));
  VOTEOPT_RETURN_IF_ERROR(read_string("dataset", &response.dataset));
  VOTEOPT_RETURN_IF_ERROR(read_string("method", &response.method));
  if (const JsonValue* seeds = object.Find("seeds"); seeds != nullptr) {
    VOTEOPT_RETURN_IF_ERROR(read_seeds(*seeds, "seeds", &response.seeds));
  }
  struct NumberField {
    const char* name;
    double* into;
  };
  double k_star = 0, selector_calls = 0, winner = 0;
  for (const NumberField field :
       {NumberField{"estimated_score", &response.estimated_score},
        NumberField{"exact_score", &response.exact_score},
        NumberField{"score", &response.score},
        NumberField{"k_star", &k_star},
        NumberField{"selector_calls", &selector_calls},
        NumberField{"winner", &winner},
        NumberField{"millis", &response.millis}}) {
    if (const JsonValue* v = object.Find(field.name); v != nullptr) {
      auto number = AsNumber(*v, field.name);
      if (!number.ok()) return number.status();
      *field.into = *number;
    }
  }
  response.k_star = static_cast<uint32_t>(k_star);
  response.selector_calls = static_cast<uint32_t>(selector_calls);
  response.winner = static_cast<uint32_t>(winner);
  struct U64Field {
    const char* name;
    uint64_t* into;
  };
  for (const U64Field field :
       {U64Field{"applied", &response.applied},
        U64Field{"dirty_nodes", &response.dirty_nodes},
        U64Field{"walks_repaired", &response.walks_repaired},
        U64Field{"walks_total", &response.walks_total}}) {
    if (const JsonValue* v = object.Find(field.name); v != nullptr) {
      auto number = AsU64(*v, field.name);
      if (!number.ok()) return number.status();
      *field.into = *number;
    }
  }
  if (const JsonValue* achievable = object.Find("achievable");
      achievable != nullptr) {
    if (achievable->type != JsonValue::Type::kBool) {
      return Status::InvalidArgument("field 'achievable' must be a bool");
    }
    response.achievable = achievable->boolean;
  }
  if (const JsonValue* scores = object.Find("scores"); scores != nullptr) {
    if (scores->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'scores' must be an array");
    }
    for (const JsonValue& item : scores->items) {
      auto number = AsNumber(item, "scores");
      if (!number.ok()) return number.status();
      response.all_scores.push_back(*number);
    }
  }
  if (const JsonValue* methods = object.Find("methods"); methods != nullptr) {
    if (methods->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'methods' must be an array");
    }
    for (const JsonValue& item : methods->items) {
      if (item.type != JsonValue::Type::kObject) {
        return Status::InvalidArgument("'methods' entries must be objects");
      }
      MethodScore entry;
      const JsonValue* name = item.Find("method");
      if (name == nullptr || name->type != JsonValue::Type::kString) {
        return Status::InvalidArgument("'methods' entry missing 'method'");
      }
      entry.method = name->str;
      if (const JsonValue* seeds = item.Find("seeds"); seeds != nullptr) {
        VOTEOPT_RETURN_IF_ERROR(read_seeds(*seeds, "seeds", &entry.seeds));
      }
      if (const JsonValue* v = item.Find("estimated_score"); v != nullptr) {
        auto number = AsNumber(*v, "estimated_score");
        if (!number.ok()) return number.status();
        entry.estimated_score = *number;
      }
      if (const JsonValue* v = item.Find("exact_score"); v != nullptr) {
        auto number = AsNumber(*v, "exact_score");
        if (!number.ok()) return number.status();
        entry.exact_score = *number;
      }
      response.method_scores.push_back(std::move(entry));
    }
  }
  if (const JsonValue* rules = object.Find("rules"); rules != nullptr) {
    if (rules->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'rules' must be an array");
    }
    for (const JsonValue& item : rules->items) {
      if (item.type != JsonValue::Type::kObject) {
        return Status::InvalidArgument("'rules' entries must be objects");
      }
      RuleScore entry;
      const JsonValue* name = item.Find("rule");
      if (name == nullptr || name->type != JsonValue::Type::kString) {
        return Status::InvalidArgument("'rules' entry missing 'rule'");
      }
      entry.rule = name->str;
      if (const JsonValue* seeds = item.Find("seeds"); seeds != nullptr) {
        VOTEOPT_RETURN_IF_ERROR(read_seeds(*seeds, "seeds", &entry.seeds));
      }
      if (const JsonValue* v = item.Find("estimated_score"); v != nullptr) {
        auto number = AsNumber(*v, "estimated_score");
        if (!number.ok()) return number.status();
        entry.estimated_score = *number;
      }
      if (const JsonValue* v = item.Find("exact_score"); v != nullptr) {
        auto number = AsNumber(*v, "exact_score");
        if (!number.ok()) return number.status();
        entry.exact_score = *number;
      }
      if (const JsonValue* v = item.Find("winner"); v != nullptr) {
        auto id = AsU32(*v, "winner");
        if (!id.ok()) return id.status();
        entry.winner = *id;
      }
      response.rule_scores.push_back(std::move(entry));
    }
  }
  if (const JsonValue* stats = object.Find("stats"); stats != nullptr) {
    if (stats->type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("field 'stats' must be an object");
    }
    for (const auto& [name, value] : stats->fields) {
      auto number = AsNumber(value, "stats");
      if (!number.ok()) return number.status();
      response.stats[name] = *number;
    }
  }
  if (const JsonValue* diagnostics = object.Find("diagnostics");
      diagnostics != nullptr) {
    if (diagnostics->type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("field 'diagnostics' must be an object");
    }
    for (const auto& [name, value] : diagnostics->fields) {
      auto number = AsNumber(value, "diagnostics");
      if (!number.ok()) return number.status();
      response.diagnostics[name] = *number;
    }
    // Only traced responses carry diagnostics on the wire.
    response.traced = true;
  }
  if (const JsonValue* datasets = object.Find("datasets");
      datasets != nullptr) {
    if (datasets->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("field 'datasets' must be an array");
    }
    for (const JsonValue& item : datasets->items) {
      if (item.type != JsonValue::Type::kObject) {
        return Status::InvalidArgument("'datasets' entries must be objects");
      }
      DatasetInfo info;
      if (const JsonValue* v = item.Find("name"); v != nullptr) {
        auto name = AsString(*v, "name");
        if (!name.ok()) return name.status();
        info.name = *name;
      }
      struct U32Field {
        const char* name;
        uint32_t* into;
      };
      for (const U32Field field :
           {U32Field{"n", &info.num_nodes}, U32Field{"r", &info.num_candidates},
            U32Field{"t", &info.horizon}, U32Field{"target", &info.target}}) {
        if (const JsonValue* v = item.Find(field.name); v != nullptr) {
          auto number = AsU32(*v, field.name);
          if (!number.ok()) return number.status();
          *field.into = *number;
        }
      }
      if (const JsonValue* v = item.Find("theta"); v != nullptr) {
        auto number = AsU64(*v, "theta");
        if (!number.ok()) return number.status();
        info.theta = *number;
      }
      if (const JsonValue* v = item.Find("sketch_built"); v != nullptr) {
        if (v->type != JsonValue::Type::kBool) {
          return Status::InvalidArgument("field 'sketch_built' must be a bool");
        }
        info.sketch_built = v->boolean;
      }
      response.datasets.push_back(std::move(info));
    }
  }
  return response;
}

}  // namespace serve

// ---------------------------------------------------------------------------
// The encoder half of the codec. Declared on api::Response (every front
// door shares one canonical rendering); implemented here because the JSON
// vocabulary — field names, ordering, number formatting — belongs to the
// wire protocol, not the typed API.
// ---------------------------------------------------------------------------
namespace api {

std::string Response::ToJson() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\"op\": ";
  AppendJsonString(&out, op);
  if (!id.empty()) {
    out << ", \"id\": ";
    AppendJsonString(&out, id);
  }
  out << ", \"ok\": " << (ok ? "true" : "false");
  if (!ok) {
    out << ", \"error\": ";
    AppendJsonString(&out, error);
    out << "}";
    return out.str();
  }
  if (!dataset.empty()) {
    out << ", \"dataset\": ";
    AppendJsonString(&out, dataset);
  }
  if (!method.empty()) {
    // Only set for non-RS selections, so v1 answers stay byte-identical.
    out << ", \"method\": ";
    AppendJsonString(&out, method);
  }
  auto append_seeds = [&] {
    out << ", \"seeds\": ";
    AppendNumberArray(&out, seeds);
  };
  if (op == "topk") {
    append_seeds();
    out << ", \"estimated_score\": " << estimated_score
        << ", \"exact_score\": " << exact_score;
  } else if (op == "minseed") {
    out << ", \"achievable\": " << (achievable ? "true" : "false")
        << ", \"k_star\": " << k_star;
    append_seeds();
    out << ", \"exact_score\": " << exact_score
        << ", \"selector_calls\": " << selector_calls;
  } else if (op == "evaluate") {
    out << ", \"score\": " << score << ", \"scores\": ";
    AppendNumberArray(&out, all_scores);
    out << ", \"winner\": " << winner;
  } else if (op == "methodcompare") {
    out << ", \"methods\": [";
    for (size_t i = 0; i < method_scores.size(); ++i) {
      const MethodScore& entry = method_scores[i];
      out << (i == 0 ? "" : ", ") << "{\"method\": ";
      AppendJsonString(&out, entry.method);
      out << ", \"seeds\": ";
      AppendNumberArray(&out, entry.seeds);
      // Per-entry selection seconds are deliberately NOT serialized: the
      // wire form must be reproducible run-to-run (only the top-level
      // millis may vary, and ToStableJson strips it).
      out << ", \"estimated_score\": " << entry.estimated_score
          << ", \"exact_score\": " << entry.exact_score << "}";
    }
    out << "]";
  } else if (op == "rulesweep") {
    out << ", \"rules\": [";
    for (size_t i = 0; i < rule_scores.size(); ++i) {
      const RuleScore& entry = rule_scores[i];
      out << (i == 0 ? "" : ", ") << "{\"rule\": ";
      AppendJsonString(&out, entry.rule);
      out << ", \"seeds\": ";
      AppendNumberArray(&out, entry.seeds);
      out << ", \"estimated_score\": " << entry.estimated_score
          << ", \"exact_score\": " << entry.exact_score
          << ", \"winner\": " << entry.winner << "}";
    }
    out << "]";
  } else if (op == "load" || op == "list") {
    out << ", \"datasets\": [";
    for (size_t i = 0; i < datasets.size(); ++i) {
      const DatasetInfo& info = datasets[i];
      out << (i == 0 ? "" : ", ") << "{\"name\": ";
      AppendJsonString(&out, info.name);
      out << ", \"n\": " << info.num_nodes << ", \"r\": "
          << info.num_candidates << ", \"theta\": " << info.theta
          << ", \"t\": " << info.horizon << ", \"target\": " << info.target
          << ", \"sketch_built\": " << (info.sketch_built ? "true" : "false")
          << "}";
    }
    out << "]";
  } else if (op == "stats") {
    out << ", \"stats\": {";
    bool first = true;
    for (const auto& [name, value] : stats) {
      out << (first ? "" : ", ");
      AppendJsonString(&out, name);
      out << ": " << value;
      first = false;
    }
    out << "}";
  } else if (op == "edge_add" || op == "edge_del" || op == "set_opinion" ||
             op == "mutate") {
    // Deterministic repair accounting (ahead of the volatile millis tail,
    // so ToStableJson keeps it): how many mutations committed, how many
    // nodes' in-rows changed, and the dirty-walk share of the sketch.
    out << ", \"applied\": " << applied
        << ", \"dirty_nodes\": " << dirty_nodes
        << ", \"walks_repaired\": " << walks_repaired
        << ", \"walks_total\": " << walks_total;
  }
  out << ", \"millis\": " << millis;
  if (traced) {
    // The traced diagnostics ride BEHIND millis by contract: ToStableJson
    // strips everything from millis on, so traced and untraced answers
    // compare byte-identical.
    out << ", \"diagnostics\": {";
    bool first = true;
    for (const auto& [name, value] : diagnostics) {
      out << (first ? "" : ", ");
      AppendJsonString(&out, name);
      out << ": " << value;
      first = false;
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

std::string Response::ToStableJson() const {
  std::string json = ToJson();
  // millis is always the first field of the volatile tail when present
  // (error responses carry none); erasing from it to the closing brace
  // also drops the traced diagnostics block that may follow it.
  const size_t millis_at = json.rfind(", \"millis\": ");
  if (millis_at != std::string::npos) {
    json.erase(millis_at, json.size() - 1 - millis_at);
  }
  return json;
}

}  // namespace api
}  // namespace voteopt
