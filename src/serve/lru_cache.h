// Compatibility shim: the LRU cache moved into the api layer
// (api/lru_cache.h) with the per-query state pool it serves.
#ifndef VOTEOPT_SERVE_LRU_CACHE_H_
#define VOTEOPT_SERVE_LRU_CACHE_H_

#include "api/lru_cache.h"

namespace voteopt::serve {

template <typename V>
using LruCache = api::LruCache<V>;

}  // namespace voteopt::serve

#endif  // VOTEOPT_SERVE_LRU_CACHE_H_
