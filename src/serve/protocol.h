// The voteopt_serve wire codec: newline-delimited JSON over the typed
// api::Request / api::Response vocabulary (api/query.h). This layer is a
// PURE codec — parse a line into a typed request, render a typed response
// (or request) back to JSON — with no business logic: every request is
// executed by api::Engine, the one dispatch component, so wire clients and
// embedded C++ callers run the identical code path.
//
// One request object per line, one response object per line, same order.
// The full reference — every verb, the protocol-version negotiation rule,
// worked examples, and the error-status vocabulary — lives in
// docs/PROTOCOL.md; this header only sketches the shapes.
//
// Query verbs (run against one hosted dataset, in parallel):
//   {"op": "topk",     "k": 10, "rule": "plurality", "method": "RS"}
//   {"op": "minseed",  "k_max": 100, "rule": "cumulative"}
//   {"op": "evaluate", "seeds": [3, 17], "rule": "copeland",
//    "override": [[5, 0.9], [12, 0.1]]}
//   {"op": "methodcompare", "v": 2, "k": 10, "methods": ["DM", "RS", "DC"]}
//   {"op": "rulesweep",     "v": 2, "k": 10}
// Admin verbs (manage/inspect the engine; ordering barriers):
//   {"op": "load",     "dataset": "yelp", "bundle": "/data/yelp"}
//   {"op": "unload",   "dataset": "yelp"}
//   {"op": "list"}
//   {"op": "stats", "v": 3}   — flat metrics snapshot ("name{labels}" -> value)
// Common optional fields:
//   "v"       — protocol major version (absent = 1; see api::kProtocolVersion)
//   "id"      — opaque string echoed into the response (request matching)
//   "dataset" — which hosted dataset answers a query ("" = the sole one)
//   "rule"    — cumulative (default) | plurality | papproval | positional |
//               copeland | borda
//   "p"       — approval depth for papproval
//   "omega"   — positional weights (descending, in [0,1]) for positional
//   "method"  — seed-selection method for topk / minseed (default RS;
//               case-insensitive: DM, RW, RS, IC, LT, GED-T, PR, RWR, DC)
//   "trace"   — v3: bool; attach per-query stage timings and work counts
//               as a "diagnostics" object behind "millis" (stripped by
//               ToStableJson — traced answers stay bit-identical)
// "override" entries are (user, opinion) pairs applied to the target
// campaign's initial opinions before scoring — the "supplied campaign
// state" of an in-flight campaign.
//
// Responses always carry "op", "ok", and the echoed "id"; on failure only
// "error" is added, on success the op-specific payload (see
// api::Response::ToJson, implemented here).
#ifndef VOTEOPT_SERVE_PROTOCOL_H_
#define VOTEOPT_SERVE_PROTOCOL_H_

#include <string>

#include "api/query.h"
#include "util/status.h"

namespace voteopt::serve {

// The typed vocabulary is the api layer's; the serve spellings remain for
// existing callers (serve::Request etc.).
using Request = api::Request;
using Response = api::Response;
using DatasetInfo = api::DatasetInfo;
using MethodScore = api::MethodScore;
using RuleScore = api::RuleScore;
using api::IsAdminOp;
using api::OpName;

/// Parses one request line. Unknown fields are ignored (forward compat);
/// malformed JSON, a missing/unknown "op", an unsupported "v" major, or
/// ill-typed fields are InvalidArgument.
Result<Request> ParseRequest(const std::string& line);

/// Canonical JSON encoding of a request — what a well-behaved client
/// sends. Fields at their default values are omitted; "v" is emitted only
/// for requests written against a version > 1. Round trip:
/// ParseRequest(RequestToJson(r)) parses every field RequestToJson emits.
std::string RequestToJson(const Request& request);

/// Parses one response line back into the typed form (for clients and the
/// codec round-trip tests). Accepts exactly what Response::ToJson emits.
Result<Response> ParseResponse(const std::string& line);

}  // namespace voteopt::serve

#endif  // VOTEOPT_SERVE_PROTOCOL_H_
