// The voteopt_serve wire protocol: newline-delimited JSON requests and
// responses — the scaffold a real RPC frontend plugs into later. One
// request object per line, one response object per line, same order.
//
// Request fields (op selects the query; everything else is optional):
//   {"op": "topk",     "k": 10, "rule": "plurality"}
//   {"op": "minseed",  "k_max": 100, "rule": "cumulative"}
//   {"op": "evaluate", "seeds": [3, 17], "rule": "copeland",
//    "override": [[5, 0.9], [12, 0.1]]}
// Common optional fields:
//   "id"    — opaque string echoed into the response (request matching)
//   "rule"  — cumulative (default) | plurality | papproval | positional |
//             copeland | borda
//   "p"     — approval depth for papproval
//   "omega" — positional weights (descending, in [0,1]) for positional
// "override" entries are (user, opinion) pairs applied to the target
// campaign's initial opinions before scoring — the "supplied campaign
// state" of an in-flight campaign.
//
// Responses always carry "op", "ok", and the echoed "id"; on failure only
// "error" is added, on success the op-specific payload (see ToJson).
#ifndef VOTEOPT_SERVE_PROTOCOL_H_
#define VOTEOPT_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace voteopt::serve {

struct Request {
  enum class Op { kTopK, kMinSeed, kEvaluate };

  Op op = Op::kTopK;
  std::string id;  // echoed when non-empty

  // Voting rule selection.
  std::string rule = "cumulative";
  uint32_t p = 1;
  std::vector<double> omega;

  uint32_t k = 1;      // topk: budget
  uint32_t k_max = 0;  // minseed: search bound (0 = num nodes)

  std::vector<graph::NodeId> seeds;                         // evaluate
  std::vector<std::pair<graph::NodeId, double>> overrides;  // evaluate
};

const char* OpName(Request::Op op);

/// Parses one request line. Unknown fields are ignored (forward compat);
/// malformed JSON, a missing/unknown "op", or ill-typed fields are
/// InvalidArgument.
Result<Request> ParseRequest(const std::string& line);

struct Response {
  std::string id;
  std::string op;
  bool ok = true;
  std::string error;  // set when !ok

  // topk / minseed payload.
  std::vector<graph::NodeId> seeds;
  double estimated_score = 0.0;
  double exact_score = 0.0;

  // minseed payload.
  uint32_t k_star = 0;
  bool achievable = false;
  uint32_t selector_calls = 0;

  // evaluate payload.
  double score = 0.0;
  std::vector<double> all_scores;  // one per candidate
  uint32_t winner = 0;

  double millis = 0.0;  // server-side handling time

  static Response Error(const Request& request, const Status& status);

  std::string ToJson() const;
};

}  // namespace voteopt::serve

#endif  // VOTEOPT_SERVE_PROTOCOL_H_
