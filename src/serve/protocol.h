// The voteopt_serve wire protocol: newline-delimited JSON requests and
// responses — the scaffold a real RPC frontend plugs into later. One
// request object per line, one response object per line, same order.
// The full request/response reference — every verb, a worked example, and
// the error-status vocabulary — lives in docs/PROTOCOL.md; this header
// only sketches the shapes.
//
// Query verbs (run against one hosted dataset, in parallel):
//   {"op": "topk",     "k": 10, "rule": "plurality"}
//   {"op": "minseed",  "k_max": 100, "rule": "cumulative"}
//   {"op": "evaluate", "seeds": [3, 17], "rule": "copeland",
//    "override": [[5, 0.9], [12, 0.1]]}
// Admin verbs (manage the multi-dataset registry; ordering barriers):
//   {"op": "load",     "dataset": "yelp", "bundle": "/data/yelp"}
//   {"op": "unload",   "dataset": "yelp"}
//   {"op": "list"}
// Common optional fields:
//   "id"      — opaque string echoed into the response (request matching)
//   "dataset" — which hosted dataset answers a query ("" = the sole one)
//   "rule"    — cumulative (default) | plurality | papproval | positional |
//               copeland | borda
//   "p"       — approval depth for papproval
//   "omega"   — positional weights (descending, in [0,1]) for positional
// "override" entries are (user, opinion) pairs applied to the target
// campaign's initial opinions before scoring — the "supplied campaign
// state" of an in-flight campaign.
//
// Responses always carry "op", "ok", and the echoed "id"; on failure only
// "error" is added, on success the op-specific payload (see ToJson).
#ifndef VOTEOPT_SERVE_PROTOCOL_H_
#define VOTEOPT_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace voteopt::serve {

struct Request {
  enum class Op { kTopK, kMinSeed, kEvaluate, kLoad, kUnload, kList };

  Op op = Op::kTopK;
  std::string id;  // echoed when non-empty

  /// Queries: which hosted dataset answers ("" = the sole loaded one).
  /// load/unload: the registry name to (de)register.
  std::string dataset;

  // Voting rule selection.
  std::string rule = "cumulative";
  uint32_t p = 1;
  std::vector<double> omega;

  uint32_t k = 1;      // topk: budget
  uint32_t k_max = 0;  // minseed: search bound (0 = num nodes)

  std::vector<graph::NodeId> seeds;                         // evaluate
  std::vector<std::pair<graph::NodeId, double>> overrides;  // evaluate

  std::string bundle;  // load: dataset bundle prefix (required)
  std::string sketch;  // load: explicit sketch path ("" = bundle member)
  uint64_t theta = 0;  // load: build-fallback walk count (0 = server default)
};

const char* OpName(Request::Op op);

/// True for the registry-management verbs (load / unload / list). Admin
/// verbs act as ordering barriers in a batch: queries ahead of them see the
/// registry as it was, queries after them see the updated one.
bool IsAdminOp(Request::Op op);

/// Parses one request line. Unknown fields are ignored (forward compat);
/// malformed JSON, a missing/unknown "op", or ill-typed fields are
/// InvalidArgument.
Result<Request> ParseRequest(const std::string& line);

/// One hosted dataset as reported by `list` and echoed by `load`.
struct DatasetInfo {
  std::string name;
  uint32_t num_nodes = 0;
  uint32_t num_candidates = 0;
  uint64_t theta = 0;    // sketch walk count
  uint32_t horizon = 0;  // sketch horizon t
  uint32_t target = 0;   // sketch target candidate
  bool sketch_built = false;  // sketch was built at load (no persisted file)
};

struct Response {
  std::string id;
  std::string op;
  bool ok = true;
  std::string error;  // set when !ok

  /// Name of the hosted dataset that answered (queries, load, unload).
  std::string dataset;

  // topk / minseed payload.
  std::vector<graph::NodeId> seeds;
  double estimated_score = 0.0;
  double exact_score = 0.0;

  // minseed payload.
  uint32_t k_star = 0;
  bool achievable = false;
  uint32_t selector_calls = 0;

  // evaluate payload.
  double score = 0.0;
  std::vector<double> all_scores;  // one per candidate
  uint32_t winner = 0;

  // load / list payload: the loaded dataset, resp. every hosted one.
  std::vector<DatasetInfo> datasets;

  double millis = 0.0;  // server-side handling time

  static Response Error(const Request& request, const Status& status);

  std::string ToJson() const;

  /// ToJson minus the `millis` field — everything that must be invariant
  /// across runs, worker thread counts, and build-vs-load serving paths.
  /// The single source of truth for determinism comparisons (tests,
  /// bench_serve's answers_match check).
  std::string ToStableJson() const;
};

}  // namespace voteopt::serve

#endif  // VOTEOPT_SERVE_PROTOCOL_H_
