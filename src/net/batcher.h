// net::Batcher — admission control and request coalescing between the
// epoll transport (net/server.h) and api::Engine. This is where the TCP
// front end gets its two load properties (ROADMAP item 1):
//
//  * BOUNDED QUEUEING. Every parsed request is admitted into a per-dataset
//    lane with a fixed depth cap. A full lane refuses admission (Submit
//    returns false) and the transport answers `Overloaded` immediately —
//    overload turns into explicit, cheap load-shedding responses instead
//    of unbounded memory growth and collapsing tail latency. Shedding is
//    deterministic in arrival order: the requests beyond the cap are the
//    ones refused, never an arbitrary victim.
//
//  * COALESCED DISPATCH. A coordinator thread drains lanes into
//    Engine::ExecuteBatch windows (up to `batch_max` requests, waiting up
//    to `coalesce_micros` for a window to fill when the lane just became
//    busy) and hands each window to a bounded executor pool. Lanes are
//    round-robined and windows never mix datasets, so one dataset's slow
//    minseed occupies one executor while other lanes keep flowing — it
//    cannot starve another dataset's topk traffic.
//
// Ordering semantics match the stdin path's batch window exactly: query
// requests are independent (answers are bit-identical however they are
// grouped or interleaved — the engine's determinism contract), and ADMIN
// requests (load/unload/list/stats) are GLOBAL BARRIERS: an admin request
// admitted at global sequence S executes only after every request admitted
// before S has completed, and no request admitted after S starts until it
// finishes. Per-connection response order is the transport's job (the
// server reorders by per-connection sequence number); the batcher only
// promises one delivery per admitted ticket — except after Stop(), which
// drains in-flight windows but drops still-queued tickets (the server
// only stops when its connections are already gone).
//
// Thread-safety: Submit may be called from any thread; delivery callbacks
// fire on executor threads (queries) or the coordinator thread (admins)
// and must be thread-safe.
#ifndef VOTEOPT_NET_BATCHER_H_
#define VOTEOPT_NET_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace voteopt::net {

struct BatcherOptions {
  /// Admission cap per dataset lane (and for the admin lane). Requests
  /// arriving at a full lane are refused — the transport sheds them with
  /// an `Overloaded` response.
  size_t queue_depth = 256;

  /// Largest Engine::ExecuteBatch window assembled from one lane.
  size_t batch_max = 64;

  /// How long a lane with a free executor waits for more requests before
  /// dispatching a sub-batch_max window. 0 dispatches immediately —
  /// batching still emerges under load, because requests arriving while
  /// every executor is busy accumulate in their lane.
  uint32_t coalesce_micros = 0;

  /// Engine batches in flight at once (>= 1). Each occupies one executor
  /// thread for the duration of its window; the engine's own worker pool
  /// parallelizes queries within a window.
  uint32_t num_executors = 2;

  /// Metrics sink (queue-depth gauges, batch occupancy, queue-wait
  /// histograms). Null disables instrumentation; answers are identical
  /// either way.
  obs::Registry* metrics = nullptr;

  /// Fault-injection seam for the abuse tests: runs on the executor
  /// thread after a window is claimed and before Engine::ExecuteBatch. A
  /// blocking hook freezes dispatch at a deterministic point, which is
  /// how serve_net_fault_test pins down admission-overflow shedding
  /// without racing a slow query. Never set in production.
  std::function<void(const std::string& dataset, size_t window)>
      batch_started_hook;
};

class Batcher {
 public:
  /// One admitted request. (conn_id, seq) is the transport's writeback
  /// address — opaque to the batcher and echoed into the delivery.
  struct Ticket {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    api::Request request;
  };

  /// Delivery of one response, already rendered to its wire line.
  using Delivery =
      std::function<void(uint64_t conn_id, uint64_t seq, std::string line)>;

  Batcher(api::Engine* engine, const BatcherOptions& options,
          Delivery deliver);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Admits one request into its dataset's lane (admin requests into the
  /// barrier lane). Returns false when the lane is at queue_depth — the
  /// caller owns the shed response. Thread-safe.
  bool Submit(Ticket ticket);

  /// Stops the coordinator: in-flight windows complete (and deliver),
  /// still-queued tickets are dropped. Idempotent.
  void Stop();

  /// Queued (admitted, not yet dispatched) requests for one dataset lane.
  size_t QueueDepth(const std::string& dataset) const;

  /// Windows currently executing on the pool.
  size_t InFlight() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Item {
    Ticket ticket;
    uint64_t global_seq = 0;
    Clock::time_point admitted_at;
  };

  struct Lane {
    std::deque<Item> queue;
    obs::Gauge* depth_gauge = nullptr;  // net_queue_depth{dataset=...}
  };

  void CoordinatorLoop();
  /// Dispatches up to batch_max items from `lane` (only items admitted
  /// before `barrier_seq`) onto the executor pool.
  void DispatchWindow(const std::string& name, Lane& lane,
                      uint64_t barrier_seq) REQUIRES(mutex_);
  void RunWindow(std::string dataset, std::vector<Item> window);
  /// Executes one admin request as a global barrier (mutex_ held on entry
  /// and exit; released around the engine call).
  void RunAdmin() REQUIRES(mutex_);

  api::Engine* const engine_;
  const BatcherOptions options_;
  const Delivery deliver_;

  mutable Mutex mutex_;
  CondVar cv_;
  std::map<std::string, Lane> lanes_ GUARDED_BY(mutex_);
  std::deque<Item> admin_queue_ GUARDED_BY(mutex_);
  uint64_t next_global_seq_ GUARDED_BY(mutex_) = 0;
  size_t inflight_ GUARDED_BY(mutex_) = 0;
  bool stopping_ GUARDED_BY(mutex_) = false;
  /// Round-robin cursor over lane names.
  std::string last_lane_ GUARDED_BY(mutex_);

  obs::Histogram* m_batch_requests_ = nullptr;
  obs::Histogram* m_queue_wait_seconds_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;
  obs::Counter* m_admin_barriers_ = nullptr;

  std::unique_ptr<ThreadPool> executors_;
  std::thread coordinator_;
};

}  // namespace voteopt::net

#endif  // VOTEOPT_NET_BATCHER_H_
