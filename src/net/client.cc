#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace voteopt::net {

BlockingClient::~BlockingClient() { Close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(other.fd_),
      rbuf_(std::move(other.rbuf_)),
      consumed_(other.consumed_) {
  other.fd_ = -1;
}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    rbuf_ = std::move(other.rbuf_);
    consumed_ = other.consumed_;
    other.fd_ = -1;
  }
  return *this;
}

Status BlockingClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    Close();
    return Status::Internal("connect " + host + ":" + std::to_string(port) +
                            ": " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  rbuf_.clear();
  consumed_ = 0;
  return Status::OK();
}

Status BlockingClient::SendBytes(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status BlockingClient::SendLine(const std::string& line) {
  return SendBytes(line + "\n");
}

Status BlockingClient::ReadLine(std::string* line, int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  while (true) {
    const size_t newline = rbuf_.find('\n', consumed_);
    if (newline != std::string::npos) {
      size_t end = newline;
      if (end > consumed_ && rbuf_[end - 1] == '\r') --end;
      line->assign(rbuf_, consumed_, end - consumed_);
      consumed_ = newline + 1;
      if (consumed_ >= rbuf_.size()) {
        rbuf_.clear();
        consumed_ = 0;
      }
      return Status::OK();
    }
    if (timeout_ms > 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0 && errno != EINTR) {
        return Status::Internal(std::string("poll: ") + std::strerror(errno));
      }
      if (ready == 0) {
        return Status::Internal("read timeout after " +
                                std::to_string(timeout_ms) + "ms");
      }
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::Internal("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    rbuf_.append(chunk, static_cast<size_t>(n));
  }
}

void BlockingClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
  consumed_ = 0;
}

}  // namespace voteopt::net
