// net::BlockingClient — a deliberately simple synchronous TCP client for
// the newline-JSON protocol. This is the test-and-bench side of the
// socket stack: serve_net_test splits requests at every byte boundary,
// serve_net_fault_test half-sends and disconnects, bench_serve drives
// open-loop load — all through this class, so its primitives are
// byte-level (SendBytes) rather than request-level.
//
// Not a production client: one blocking socket, no reconnects, no TLS.
#ifndef VOTEOPT_NET_CLIENT_H_
#define VOTEOPT_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace voteopt::net {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }

  /// Writes the raw bytes as-is (no terminator added). The fault tests
  /// use this to send partial frames.
  Status SendBytes(const std::string& bytes);

  /// Writes `line` + '\n'.
  Status SendLine(const std::string& line);

  /// Reads until one full line (without the trailing '\n') is available.
  /// Fails on EOF, on socket error, or when no byte arrives within
  /// `timeout_ms` (0 waits forever).
  Status ReadLine(std::string* line, int timeout_ms = 10000);

  /// Half-close: no more requests, but responses can still be read. The
  /// server answers everything in flight, then closes.
  void ShutdownWrite();

  void Close();

 private:
  int fd_ = -1;
  std::string rbuf_;
  size_t consumed_ = 0;
};

}  // namespace voteopt::net

#endif  // VOTEOPT_NET_CLIENT_H_
