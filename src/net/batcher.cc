#include "net/batcher.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace voteopt::net {

namespace {

constexpr uint64_t kNoBarrier = std::numeric_limits<uint64_t>::max();

}  // namespace

Batcher::Batcher(api::Engine* engine, const BatcherOptions& options,
                 Delivery deliver)
    : engine_(engine), options_(options), deliver_(std::move(deliver)) {
  if (options_.metrics != nullptr) {
    m_batch_requests_ = options_.metrics->GetHistogram(
        "net_batch_requests", {},
        "Requests per coalesced Engine batch window (occupancy)",
        {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
    m_queue_wait_seconds_ = options_.metrics->GetHistogram(
        "net_queue_wait_seconds", {},
        "Seconds a request spent in its admission lane between admission "
        "and dispatch");
    m_inflight_ = options_.metrics->GetGauge(
        "net_inflight_batches", {},
        "Engine batch windows currently executing on the executor pool");
    m_admin_barriers_ = options_.metrics->GetCounter(
        "net_admin_barriers_total", {},
        "Admin requests executed as global barriers (load/unload/list/"
        "stats)");
  }
  executors_ = std::make_unique<ThreadPool>(
      std::max<uint32_t>(1, options_.num_executors));
  coordinator_ = std::thread([this] { CoordinatorLoop(); });
}

Batcher::~Batcher() { Stop(); }

void Batcher::Stop() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  if (coordinator_.joinable()) coordinator_.join();
  executors_.reset();
}

bool Batcher::Submit(Ticket ticket) {
  MutexLock lock(&mutex_);
  if (stopping_) return false;
  std::deque<Item>* queue = nullptr;
  obs::Gauge* depth_gauge = nullptr;
  if (api::IsAdminOp(ticket.request.op)) {
    queue = &admin_queue_;
  } else {
    auto [it, inserted] = lanes_.try_emplace(ticket.request.dataset);
    Lane& lane = it->second;
    if (inserted && options_.metrics != nullptr) {
      lane.depth_gauge = options_.metrics->GetGauge(
          "net_queue_depth", {{"dataset", it->first}},
          "Admitted-but-undispatched requests per dataset admission lane");
    }
    queue = &lane.queue;
    depth_gauge = lane.depth_gauge;
  }
  if (queue->size() >= options_.queue_depth) return false;
  Item item;
  item.ticket = std::move(ticket);
  item.global_seq = next_global_seq_++;
  item.admitted_at = Clock::now();
  queue->push_back(std::move(item));
  if (depth_gauge != nullptr) {
    depth_gauge->Set(static_cast<double>(queue->size()));
  }
  cv_.NotifyAll();
  return true;
}

size_t Batcher::QueueDepth(const std::string& dataset) const {
  MutexLock lock(&mutex_);
  const auto it = lanes_.find(dataset);
  return it == lanes_.end() ? 0 : it->second.queue.size();
}

size_t Batcher::InFlight() const {
  MutexLock lock(&mutex_);
  return inflight_;
}

void Batcher::CoordinatorLoop() {
  MutexLock lock(&mutex_);
  const auto coalesce = std::chrono::microseconds(options_.coalesce_micros);
  while (true) {
    if (stopping_) {
      // Drop still-queued tickets (the transport's connections are gone by
      // the time the server stops the batcher), but let in-flight windows
      // finish: they hold engine state and must deliver-or-drop cleanly.
      for (auto& [name, lane] : lanes_) {
        lane.queue.clear();
        if (lane.depth_gauge != nullptr) lane.depth_gauge->Set(0);
      }
      admin_queue_.clear();
      while (inflight_ != 0) cv_.Wait(&mutex_);
      return;
    }

    const uint64_t barrier_seq =
        admin_queue_.empty() ? kNoBarrier : admin_queue_.front().global_seq;

    // A due admin barrier: everything admitted before it has completed
    // (no in-flight window, no queued ticket older than it).
    if (barrier_seq != kNoBarrier && inflight_ == 0) {
      bool older_pending = false;
      for (const auto& [name, lane] : lanes_) {
        if (!lane.queue.empty() &&
            lane.queue.front().global_seq < barrier_seq) {
          older_pending = true;
          break;
        }
      }
      if (!older_pending) {
        RunAdmin();
        continue;
      }
    }

    // Dispatch ready lane windows round-robin while executors are free. A
    // pending barrier waives the coalescing wait: older tickets must
    // flush so the barrier can run.
    bool dispatched = false;
    bool have_deadline = false;
    Clock::time_point deadline{};
    if (!lanes_.empty() && inflight_ < options_.num_executors) {
      const Clock::time_point now = Clock::now();
      auto it = lanes_.upper_bound(last_lane_);
      for (size_t visited = 0;
           visited < lanes_.size() && inflight_ < options_.num_executors;
           ++visited, ++it) {
        if (it == lanes_.end()) it = lanes_.begin();
        Lane& lane = it->second;
        if (lane.queue.empty() ||
            lane.queue.front().global_seq >= barrier_seq) {
          continue;
        }
        const Clock::time_point window_due =
            lane.queue.front().admitted_at + coalesce;
        const bool ready = lane.queue.size() >= options_.batch_max ||
                           barrier_seq != kNoBarrier || now >= window_due;
        if (ready) {
          DispatchWindow(it->first, lane, barrier_seq);
          last_lane_ = it->first;
          dispatched = true;
        } else if (!have_deadline || window_due < deadline) {
          have_deadline = true;
          deadline = window_due;
        }
      }
    }
    if (dispatched) continue;
    if (have_deadline && inflight_ < options_.num_executors) {
      cv_.WaitUntil(&mutex_, deadline);
    } else {
      cv_.Wait(&mutex_);
    }
  }
}

void Batcher::DispatchWindow(const std::string& name, Lane& lane,
                             uint64_t barrier_seq) {
  std::vector<Item> window;
  window.reserve(std::min(lane.queue.size(), options_.batch_max));
  const Clock::time_point now = Clock::now();
  while (!lane.queue.empty() && window.size() < options_.batch_max &&
         lane.queue.front().global_seq < barrier_seq) {
    if (m_queue_wait_seconds_ != nullptr) {
      m_queue_wait_seconds_->Observe(
          std::chrono::duration<double>(now - lane.queue.front().admitted_at)
              .count());
    }
    window.push_back(std::move(lane.queue.front()));
    lane.queue.pop_front();
  }
  if (lane.depth_gauge != nullptr) {
    lane.depth_gauge->Set(static_cast<double>(lane.queue.size()));
  }
  ++inflight_;
  if (m_inflight_ != nullptr) m_inflight_->Set(static_cast<double>(inflight_));
  executors_->Submit(
      [this, dataset = name, moved = std::move(window)]() mutable {
        RunWindow(std::move(dataset), std::move(moved));
      });
}

void Batcher::RunWindow(std::string dataset, std::vector<Item> window) {
  if (options_.batch_started_hook) {
    options_.batch_started_hook(dataset, window.size());
  }
  std::vector<api::Request> requests;
  requests.reserve(window.size());
  for (const Item& item : window) requests.push_back(item.ticket.request);
  if (m_batch_requests_ != nullptr) {
    m_batch_requests_->Observe(static_cast<double>(requests.size()));
  }
  const std::vector<api::Response> responses = engine_->ExecuteBatch(requests);
  for (size_t i = 0; i < window.size(); ++i) {
    deliver_(window[i].ticket.conn_id, window[i].ticket.seq,
             responses[i].ToJson());
  }
  {
    MutexLock lock(&mutex_);
    --inflight_;
    if (m_inflight_ != nullptr) {
      m_inflight_->Set(static_cast<double>(inflight_));
    }
  }
  cv_.NotifyAll();
}

void Batcher::RunAdmin() {
  Item item = std::move(admin_queue_.front());
  admin_queue_.pop_front();
  if (m_queue_wait_seconds_ != nullptr) {
    m_queue_wait_seconds_->Observe(
        std::chrono::duration<double>(Clock::now() - item.admitted_at)
            .count());
  }
  if (m_admin_barriers_ != nullptr) m_admin_barriers_->Increment();
  // The engine call runs unlocked so admission keeps flowing (everything
  // newly admitted has a higher global_seq and waits its turn); the
  // coordinator itself is single-threaded, so nothing dispatches while an
  // admin runs — exactly the barrier semantics of the stdin batch window.
  mutex_.Unlock();
  const api::Response response = engine_->Execute(item.ticket.request);
  deliver_(item.ticket.conn_id, item.ticket.seq, response.ToJson());
  mutex_.Lock();
}

}  // namespace voteopt::net
