#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/protocol.h"
#include "util/timer.h"

namespace voteopt::net {

namespace {

// epoll user-data ids for the two non-connection descriptors; connection
// ids start above them and are never reused.
constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;
constexpr uint64_t kFirstConnId = 2;

constexpr size_t kReadChunk = 64 * 1024;

std::string ParseErrorLine(const Status& status) {
  // Mirrors the stdin path exactly: a line that never parsed answers with
  // op "?" (it never reached the engine), same rendering, same bytes.
  api::Response response;
  response.op = "?";
  response.ok = false;
  response.error = status.ToString();
  return response.ToJson();
}

}  // namespace

Server::Server(api::Engine* engine, const ServerOptions& options)
    : engine_(engine), options_(options), next_conn_id_(kFirstConnId) {
  mx_ = options_.batch.metrics;
  if (mx_ == nullptr) return;
  m_accepted_ = mx_->GetCounter("net_accepted_total", {},
                                "TCP connections accepted");
  m_accept_rejected_ = mx_->GetCounter(
      "net_accept_rejected_total", {},
      "Connections refused at accept because max_connections was reached");
  m_active_ = mx_->GetGauge("net_connections_active", {},
                            "Currently open TCP connections");
  m_requests_ = mx_->GetCounter(
      "net_requests_total", {},
      "Request lines parsed successfully off sockets (admitted + shed)");
  m_responses_ = mx_->GetCounter(
      "net_responses_total", {},
      "Response lines appended to connection write buffers");
  m_parse_errors_ = mx_->GetCounter(
      "net_parse_errors_total", {},
      "Request lines that failed to parse (answered with op \"?\")");
  m_shed_ = mx_->GetCounter(
      "net_shed_total", {},
      "Requests refused at admission with an Overloaded response");
  m_read_timeouts_ = mx_->GetCounter(
      "net_read_timeouts_total", {},
      "Connections closed because a partial request line outlived the "
      "read timeout (slow-loris defense)");
  m_oversized_ = mx_->GetCounter(
      "net_oversized_lines_total", {},
      "Connections dropped for exceeding max_line_bytes on one request "
      "line");
  m_bytes_read_ = mx_->GetCounter("net_bytes_read_total", {},
                                  "Bytes read off client sockets");
  m_bytes_written_ = mx_->GetCounter("net_bytes_written_total", {},
                                     "Bytes written to client sockets");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host '" + options_.host +
                                   "' (expected an IPv4 address)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Status::IOError(
        "bind " + options_.host + ":" + std::to_string(options_.port) +
        ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status status =
        Status::IOError(std::string("epoll/eventfd: ") +
                        std::strerror(errno));
    Stop();
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  batcher_ = std::make_unique<Batcher>(
      engine_, options_.batch,
      [this](uint64_t conn_id, uint64_t seq, std::string line) {
        Deliver(conn_id, seq, std::move(line));
      });

  started_ = true;
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (started_.exchange(false)) {
    stop_ = true;
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    if (io_thread_.joinable()) io_thread_.join();
    // Executors may still be delivering; depositing into a still-mapped
    // connection is harmless (never flushed), so drain them before the
    // table and descriptors go away.
    if (batcher_ != nullptr) batcher_->Stop();
    {
      MutexLock lock(&conns_mutex_);
      for (auto& [id, conn] : conns_) ::close(conn->fd);
      conns_.clear();
    }
    if (m_active_ != nullptr) m_active_->Set(0);
  }
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

size_t Server::active_connections() const {
  MutexLock lock(&conns_mutex_);
  return conns_.size();
}

void Server::IoLoop() {
  epoll_event events[64];
  while (!stop_) {
    const int timeout_ms = SweepTimeouts();
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n && !stop_; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        AcceptAll();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        std::vector<uint64_t> flush;
        {
          MutexLock lock(&pending_mutex_);
          flush.swap(pending_flush_);
        }
        for (const uint64_t conn_id : flush) {
          std::shared_ptr<Conn> conn;
          {
            MutexLock lock(&conns_mutex_);
            const auto it = conns_.find(conn_id);
            if (it != conns_.end()) conn = it->second;
          }
          if (conn != nullptr) FlushConn(conn);
        }
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        MutexLock lock(&conns_mutex_);
        const auto it = conns_.find(id);
        if (it != conns_.end()) conn = it->second;
      }
      if (conn == nullptr) continue;  // closed earlier in this batch
      if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        HandleReadable(conn);
      }
      if (events[i].events & EPOLLOUT) {
        // The read path may have closed the connection; re-resolve.
        std::shared_ptr<Conn> still_open;
        {
          MutexLock lock(&conns_mutex_);
          const auto it = conns_.find(id);
          if (it != conns_.end()) still_open = it->second;
        }
        if (still_open != nullptr) HandleWritable(still_open);
      }
    }
  }
}

void Server::AcceptAll() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    size_t active;
    {
      MutexLock lock(&conns_mutex_);
      active = conns_.size();
    }
    if (active >= options_.max_connections) {
      // Counted before the close so the increment is visible by the time
      // a client observes the EOF. Best-effort shed line so a
      // well-behaved client learns why; a short write just means the
      // client sees a bare close instead.
      if (m_accept_rejected_ != nullptr) m_accept_rejected_->Increment();
      static const std::string kReject =
          ParseErrorLine(Status::Overloaded("connection limit reached")) +
          "\n";
      (void)::send(fd, kReject.data(), kReject.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(options_.max_line_bytes);
    conn->fd = fd;
    {
      MutexLock lock(&conns_mutex_);
      conn->id = next_conn_id_++;
      conns_.emplace(conn->id, conn);
      if (m_active_ != nullptr) {
        m_active_->Set(static_cast<double>(conns_.size()));
      }
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    if (m_accepted_ != nullptr) m_accepted_->Increment();
  }
}

void Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[kReadChunk];
  bool eof = false;
  while (!conn->close_after_flush) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      if (m_bytes_read_ != nullptr) {
        m_bytes_read_->Increment(static_cast<uint64_t>(n));
      }
      conn->framer.Append(buf, static_cast<size_t>(n));
      DrainLines(conn);
      // Overflow is detected in line order, so everything the client sent
      // before the oversized line was just answered normally.
      if (conn->framer.overflowed()) {
        if (m_oversized_ != nullptr) m_oversized_->Increment();
        const uint64_t seq = conn->next_seq++;
        Deliver(conn->id, seq,
                ParseErrorLine(Status::InvalidArgument(
                    "request line exceeds " +
                    std::to_string(options_.max_line_bytes) +
                    " bytes; closing connection (framing cannot be "
                    "resynchronized)")));
        conn->close_after_flush = true;
        break;
      }
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn->id, "error");
    return;
  }
  // The slow-loris clock starts when a partial request is pending and
  // stops the moment the line completes. A connection already condemned
  // for an oversized line just waits for its error flush.
  if (conn->framer.has_partial() && !conn->close_after_flush) {
    if (conn->partial_since == std::chrono::steady_clock::time_point{}) {
      conn->partial_since = std::chrono::steady_clock::now();
    }
  } else {
    conn->partial_since = {};
  }
  if (eof) {
    conn->read_closed = true;
    FlushConn(conn);  // may close now if nothing is pending
  }
}

void Server::DrainLines(const std::shared_ptr<Conn>& conn) {
  std::string line;
  while (conn->framer.NextLine(&line)) {
    if (line.empty() || line[0] == '#') continue;  // same as the stdin path
    WallTimer parse_timer;
    auto request = serve::ParseRequest(line);
    const double parse_millis = parse_timer.Millis();
    const uint64_t seq = conn->next_seq++;
    if (!request.ok()) {
      if (m_parse_errors_ != nullptr) m_parse_errors_->Increment();
      Deliver(conn->id, seq, ParseErrorLine(request.status()));
      continue;
    }
    if (m_requests_ != nullptr) m_requests_->Increment();
    Batcher::Ticket ticket;
    ticket.conn_id = conn->id;
    ticket.seq = seq;
    ticket.request = *request;  // keep *request intact for the shed path
    ticket.request.parse_millis = parse_millis;
    if (!batcher_->Submit(std::move(ticket))) {
      if (m_shed_ != nullptr) m_shed_->Increment();
      Deliver(conn->id, seq,
              api::Response::Error(
                  *request,
                  Status::Overloaded(
                      "admission queue" +
                      (api::IsAdminOp(request->op)
                           ? std::string(" (admin)")
                           : " for dataset '" + request->dataset + "'") +
                      " is full (depth " +
                      std::to_string(options_.batch.queue_depth) +
                      "); shed, retry later"))
                  .ToJson());
    }
  }
}

void Server::Deliver(uint64_t conn_id, uint64_t seq, std::string line) {
  std::shared_ptr<Conn> conn;
  {
    MutexLock lock(&conns_mutex_);
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;  // client went away mid-request
    conn = it->second;
  }
  {
    MutexLock lock(&conn->mu);
    conn->ready.emplace(seq, std::move(line));
  }
  {
    MutexLock lock(&pending_mutex_);
    pending_flush_.push_back(conn_id);
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::FlushConn(const std::shared_ptr<Conn>& conn) {
  {
    MutexLock lock(&conn->mu);
    auto it = conn->ready.begin();
    while (it != conn->ready.end() && it->first == conn->next_deliver) {
      conn->wbuf += it->second;
      conn->wbuf += '\n';
      it = conn->ready.erase(it);
      ++conn->next_deliver;
      if (m_responses_ != nullptr) m_responses_->Increment();
    }
  }
  while (conn->woff < conn->wbuf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->wbuf.data() + conn->woff,
               conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->woff += static_cast<size_t>(n);
      if (m_bytes_written_ != nullptr) {
        m_bytes_written_->Increment(static_cast<uint64_t>(n));
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        UpdateEpollInterest(*conn);
      }
      break;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn->id, "error");
    return;
  }
  if (conn->woff == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->woff = 0;
    if (conn->want_write) {
      conn->want_write = false;
      UpdateEpollInterest(*conn);
    }
    // Both terminal states wait for every assigned sequence to be
    // answered AND flushed — an in-flight engine answer older than the
    // condemning line must still reach the client first.
    if ((conn->close_after_flush || conn->read_closed) &&
        conn->next_deliver == conn->next_seq) {
      CloseConn(conn->id, conn->close_after_flush ? "oversized" : "eof");
      return;
    }
  } else if (conn->woff > 0 && conn->woff >= conn->wbuf.size() / 2) {
    conn->wbuf.erase(0, conn->woff);
    conn->woff = 0;
  }
  if (conn->wbuf.size() - conn->woff > options_.max_write_buffer_bytes) {
    CloseConn(conn->id, "backpressure");
  }
}

void Server::HandleWritable(const std::shared_ptr<Conn>& conn) {
  FlushConn(conn);
}

void Server::UpdateEpollInterest(Conn& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | (conn.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::CloseConn(uint64_t conn_id, const char* reason) {
  std::shared_ptr<Conn> conn;
  {
    MutexLock lock(&conns_mutex_);
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    conn = it->second;
    conns_.erase(it);
    if (m_active_ != nullptr) {
      m_active_->Set(static_cast<double>(conns_.size()));
    }
  }
  ::close(conn->fd);  // the kernel drops it from the epoll set
  conn->fd = -1;
  if (mx_ != nullptr) {
    mx_->GetCounter("net_disconnects_total", {{"reason", reason}},
                    "Connections closed, by cause (eof / timeout / "
                    "oversized / backpressure / error)")
        ->Increment();
  }
}

int Server::SweepTimeouts() {
  if (options_.read_timeout_ms == 0) return 500;
  const auto now = std::chrono::steady_clock::now();
  const auto timeout = std::chrono::milliseconds(options_.read_timeout_ms);
  std::vector<uint64_t> expired;
  auto next_deadline = now + std::chrono::milliseconds(500);
  {
    MutexLock lock(&conns_mutex_);
    for (const auto& [id, conn] : conns_) {
      if (conn->partial_since == std::chrono::steady_clock::time_point{}) {
        continue;
      }
      const auto deadline = conn->partial_since + timeout;
      if (deadline <= now) {
        expired.push_back(id);
      } else if (deadline < next_deadline) {
        next_deadline = deadline;
      }
    }
  }
  for (const uint64_t id : expired) {
    if (m_read_timeouts_ != nullptr) m_read_timeouts_->Increment();
    CloseConn(id, "timeout");
  }
  const auto wait =
      std::chrono::duration_cast<std::chrono::milliseconds>(next_deadline -
                                                            now)
          .count();
  return static_cast<int>(std::max<int64_t>(1, wait));
}

}  // namespace voteopt::net
