#include "net/framing.h"

#include <algorithm>

namespace voteopt::net {

void LineFramer::Append(const char* data, size_t size) {
  if (overflowed_) return;
  // Compact once the consumed prefix dominates, so a long-lived pipelined
  // connection doesn't grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

bool LineFramer::NextLine(std::string* line) {
  if (overflowed_) return false;
  // The overflow check lives HERE, not in Append, so it fires in line
  // order: valid requests that arrived in the same read as an oversized
  // one are still extracted and answered before the connection is
  // condemned. Memory stays bounded because the caller drains lines after
  // every append — the buffer never holds more than one over-cap partial
  // plus one read chunk.
  const size_t newline = buffer_.find('\n', consumed_);
  if (newline == std::string::npos) {
    if (max_line_bytes_ > 0 &&
        buffer_.size() - consumed_ > max_line_bytes_) {
      overflowed_ = true;
    }
    return false;
  }
  if (max_line_bytes_ > 0 && newline - consumed_ > max_line_bytes_) {
    overflowed_ = true;
    return false;
  }
  size_t end = newline;
  if (end > consumed_ && buffer_[end - 1] == '\r') --end;
  line->assign(buffer_, consumed_, end - consumed_);
  consumed_ = newline + 1;
  return true;
}

}  // namespace voteopt::net
