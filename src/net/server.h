// net::Server — the epoll TCP front end of the serving stack (ROADMAP
// item 1: "heavy traffic from millions of users" needs a socket, not a
// pipe). The wire protocol over a connection is the SAME newline-JSON the
// stdin path speaks (docs/PROTOCOL.md): requests in, one response line
// per request, per-connection responses in request order. Every parsed
// request executes through api::Engine — the single dispatch component —
// so a socket answer, a stdin answer, and an embedded answer are
// bit-identical by construction (determinism ledger entry 9).
//
// Architecture (one server = three thread groups over one Engine):
//
//   epoll I/O thread         net::Batcher coordinator      executor pool
//   ─────────────────        ──────────────────────────    ─────────────
//   nonblocking accept  ──►  per-dataset admission lanes   ExecuteBatch
//   read / line framing      (bounded depth, coalescing    windows, then
//   parse + admission        windows, admin barriers)  ──► render + hand
//   write-back, timeouts ◄─────────────── eventfd wakeup ◄─ lines back
//
// Connection handling is fully decoupled from query execution: the I/O
// thread never blocks on the engine, and executors never touch a socket —
// they deposit rendered response lines into the connection's reorder
// buffer and wake the I/O thread through an eventfd. Responses are
// written back in per-connection request order even though windows
// complete out of order.
//
// Abuse handling (serve_net_fault_test exercises each):
//   * full admission lane      — `Overloaded` response, shed deterministically
//   * oversized request line   — clean error response, connection dropped
//                                (framing cannot resync past the cap)
//   * slow-loris partial line  — read-timeout close
//   * unresponsive reader      — write-buffer cap, connection dropped
//   * mid-request disconnect   — in-flight answers are discarded safely
//
// Everything observable lands in the engine's obs::Registry under net_*
// (docs/OBSERVABILITY.md): connection counts, queue-depth gauges, shed /
// timeout / oversize counters, batch occupancy, queue-wait histograms.
//
// Linux-only by design (epoll, eventfd, accept4), like the rest of the
// serving stack's production path.
#ifndef VOTEOPT_NET_SERVER_H_
#define VOTEOPT_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "net/batcher.h"
#include "net/framing.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace voteopt::net {

struct ServerOptions {
  /// Bind address. The default serves loopback only; production fronts
  /// bind 0.0.0.0 explicitly.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back via
  /// Server::port() — what the tests and the in-process bench do).
  uint16_t port = 0;
  int listen_backlog = 128;

  /// Accepted connections beyond this are closed immediately (after a
  /// best-effort `Overloaded` line).
  size_t max_connections = 1024;

  /// Cap on one request line; longer lines get a clean error and the
  /// connection is dropped (see net/framing.h).
  size_t max_line_bytes = 1 << 20;

  /// Slow-loris defense: a connection holding a started-but-unterminated
  /// request line longer than this is closed. 0 disables.
  uint32_t read_timeout_ms = 30000;

  /// Slow-reader defense: a connection whose un-flushed response bytes
  /// exceed this cap is dropped (the alternative is buffering without
  /// bound for a client that never reads).
  size_t max_write_buffer_bytes = 8u << 20;

  /// Admission + coalescing knobs (queue depth, batch window, executor
  /// pool); the metrics sink is overridden with the engine's registry.
  BatcherOptions batch;
};

class Server {
 public:
  /// The engine must outlive the server. Instrumentation flows into
  /// options.batch.metrics — pass &engine->metrics() to scrape net_*
  /// families alongside the engine's, or null to disable (answers are
  /// identical either way).
  Server(api::Engine* engine, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the I/O thread + batcher. Fails with a
  /// clean Status (address in use, bad host, ...) without side effects.
  Status Start();

  /// Graceful stop: stop accepting, close connections, drain in-flight
  /// Engine windows. Idempotent; called by the destructor.
  void Stop();

  /// The bound port (the kernel's pick when options.port was 0).
  /// Precondition: Start() succeeded.
  /// Lock-free on purpose: port_ is written once inside Start(), before
  /// the I/O thread is spawned and before Start() returns, so any caller
  /// that can legally observe the precondition sees the final value.
  uint16_t port() const { return port_; }

  /// Live connection count (tests poll this to sync without sleeping).
  size_t active_connections() const;

  /// The batcher, for tests that assert on queue depths / in-flight
  /// windows.
  Batcher& batcher() { return *batcher_; }

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    LineFramer framer;
    std::chrono::steady_clock::time_point partial_since{};

    /// Write-back state. `mu` guards `ready` (executor threads deposit
    /// completed lines); every other field below is I/O-thread-only —
    /// single-thread confinement the analysis cannot express, so they
    /// are deliberately unannotated.
    Mutex mu;
    std::map<uint64_t, std::string> ready GUARDED_BY(mu);
    uint64_t next_seq = 0;      // next request sequence to assign
    uint64_t next_deliver = 0;  // next sequence to append to wbuf
    std::string wbuf;
    size_t woff = 0;
    bool want_write = false;
    /// Peer finished sending (EOF). Keep the connection until every
    /// assigned sequence has been answered and flushed, then close — a
    /// pipelining client may shutdown(SHUT_WR) and read the tail.
    bool read_closed = false;
    /// A terminal error line (oversized frame) is queued: close once the
    /// write buffer drains.
    bool close_after_flush = false;

    explicit Conn(size_t max_line_bytes) : framer(max_line_bytes) {}
  };

  void IoLoop();
  void AcceptAll();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void HandleWritable(const std::shared_ptr<Conn>& conn);
  /// Parses and admits every complete line buffered in the framer.
  void DrainLines(const std::shared_ptr<Conn>& conn);
  /// Completion path shared by executors (via eventfd) and the I/O
  /// thread (parse errors, sheds): deposit line `seq` and, on the I/O
  /// thread, flush.
  void Deliver(uint64_t conn_id, uint64_t seq, std::string line);
  /// Moves in-order completed lines into wbuf and writes what the socket
  /// accepts; arms EPOLLOUT on a short write. I/O thread only.
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void UpdateEpollInterest(Conn& conn);
  void CloseConn(uint64_t conn_id, const char* reason);
  /// Closes connections whose partial request outlived the read timeout;
  /// returns the epoll wait (ms) until the next deadline.
  int SweepTimeouts();

  api::Engine* const engine_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: executors + Stop() wake the I/O thread
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  /// Connection table. The I/O thread inserts/erases; executor threads
  /// resolve ids to deposit responses. Ids are never reused, so a
  /// delivery racing a close simply finds nothing.
  mutable Mutex conns_mutex_;
  std::map<uint64_t, std::shared_ptr<Conn>> conns_ GUARDED_BY(conns_mutex_);
  uint64_t next_conn_id_ GUARDED_BY(conns_mutex_) = 1;

  /// Connections with freshly deposited responses, drained by the I/O
  /// thread on eventfd wakeup.
  Mutex pending_mutex_;
  std::vector<uint64_t> pending_flush_ GUARDED_BY(pending_mutex_);

  std::unique_ptr<Batcher> batcher_;
  std::thread io_thread_;

  // net_* instruments (null when the engine's metrics are disabled).
  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_accept_rejected_ = nullptr;
  obs::Gauge* m_active_ = nullptr;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_responses_ = nullptr;
  obs::Counter* m_parse_errors_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_read_timeouts_ = nullptr;
  obs::Counter* m_oversized_ = nullptr;
  obs::Counter* m_bytes_read_ = nullptr;
  obs::Counter* m_bytes_written_ = nullptr;
  obs::Registry* mx_ = nullptr;
};

}  // namespace voteopt::net

#endif  // VOTEOPT_NET_SERVER_H_
