// net::LineFramer — incremental newline framing for the TCP front end.
// The wire protocol over a socket is the SAME newline-delimited JSON the
// stdin path reads (docs/PROTOCOL.md): one request object per '\n'; the
// framer's only jobs are reassembling lines from arbitrarily split reads
// (a request may arrive one byte at a time) and bounding the memory one
// connection can pin (an unterminated line longer than `max_line_bytes`
// is an OVERFLOW — the connection cannot be resynchronized, because the
// byte that would end the oversized line is indistinguishable from the
// byte that starts the next request, so the server answers with a clean
// error and drops the connection).
//
// Not thread-safe: one framer belongs to one connection, owned by the
// I/O thread.
#ifndef VOTEOPT_NET_FRAMING_H_
#define VOTEOPT_NET_FRAMING_H_

#include <cstddef>
#include <string>

namespace voteopt::net {

class LineFramer {
 public:
  /// `max_line_bytes` caps one request line (terminator excluded);
  /// 0 means unlimited.
  explicit LineFramer(size_t max_line_bytes = 0)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends freshly read bytes. Safe to call with any split of the
  /// stream, including one byte at a time. No-op once overflowed.
  void Append(const char* data, size_t size);

  /// Extracts the next complete line (terminator stripped; a trailing
  /// '\r' before the '\n' is stripped too, so `printf '...\r\n'` clients
  /// work). Returns false when no complete line is buffered — or when the
  /// next line (complete or still partial) exceeds max_line_bytes, which
  /// sets overflowed(). The check runs in line order: lines buffered
  /// ahead of an oversized one are still returned first.
  bool NextLine(std::string* line);

  /// True once a line exceeded max_line_bytes. Terminal: the caller must
  /// drop the connection (the framer discards further input). Check after
  /// every NextLine drain.
  bool overflowed() const { return overflowed_; }

  /// Bytes buffered toward a not-yet-terminated line.
  size_t partial_bytes() const { return buffer_.size() - consumed_; }

  /// True when a started-but-unterminated request is pending — what the
  /// read timeout (slow-loris defense) is measured against.
  bool has_partial() const { return partial_bytes() > 0; }

 private:
  const size_t max_line_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ already returned as lines
  bool overflowed_ = false;
};

}  // namespace voteopt::net

#endif  // VOTEOPT_NET_FRAMING_H_
