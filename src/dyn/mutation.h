// Dynamic-graph mutations (ROADMAP item 2): the typed edit vocabulary the
// streaming verbs (edge_add / edge_del / set_opinion) feed, the per-dataset
// MutationLog that orders them, and ApplyMutations — the one canonical
// patch function that turns (immutable instance, mutation sequence) into
// the next immutable instance.
//
// Semantics, chosen so the patched graph stays exactly what the rest of
// the system requires (a column-stochastic influence matrix over a fixed
// node universe):
//
//  * edge_add(u, v, w): inserts u -> v with relative weight w against the
//    row's current total, then renormalizes v's in-row to sum 1. On a
//    previously empty row the new edge gets weight 1. Fails when the edge
//    already exists (delete first to re-weight).
//  * edge_del(u, v): removes u -> v and renormalizes the surviving in-row.
//    Deleting the last in-edge leaves the row empty — walks reaching v
//    then stop there, exactly like any other source node.
//  * set_opinion(candidate, node, value): sets the candidate's initial
//    opinion b0[node]. Touches no edge and no stubbornness, so the frozen
//    sketch is untouched by construction (walk trajectories depend only on
//    the graph and stubbornness).
//
// Mutations are applied IN ORDER, one renormalization per edge edit, so a
// mutation sequence has exactly one patched instance — the determinism
// anchor for ledger entry 10 (repair == rebuild, see dyn/repair.h).
//
// ApplyMutations emits a builder-canonical graph: in-rows keep their
// stored order (insertions land at the sorted-by-source position
// GraphBuilder would have produced) and the out-CSR is re-derived from the
// in-CSR by the same stable counting pass GraphBuilder runs. A node whose
// in-row was not mutated keeps byte-identical sources and weights — which
// is what lets the sketch repairer reuse that node's alias row and every
// walk that avoids mutated nodes.
#ifndef VOTEOPT_DYN_MUTATION_H_
#define VOTEOPT_DYN_MUTATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "opinion/opinion_state.h"
#include "util/status.h"

namespace voteopt::dyn {

/// One streaming edit. For the edge kinds `u -> v` is the directed edge
/// and `value` the relative weight (edge_add only); for kSetOpinion `u` is
/// the candidate, `v` the node, and `value` the new initial opinion.
struct Mutation {
  enum class Kind : uint32_t {
    kEdgeAdd = 1,
    kEdgeDel = 2,
    kSetOpinion = 3,
  };

  Kind kind = Kind::kEdgeAdd;
  uint32_t u = 0;
  uint32_t v = 0;
  double value = 0.0;

  static Mutation EdgeAdd(uint32_t u, uint32_t v, double weight) {
    return {Kind::kEdgeAdd, u, v, weight};
  }
  static Mutation EdgeDel(uint32_t u, uint32_t v) {
    return {Kind::kEdgeDel, u, v, 0.0};
  }
  static Mutation SetOpinion(uint32_t candidate, uint32_t node, double value) {
    return {Kind::kSetOpinion, candidate, node, value};
  }
};

/// Wire/journal spelling of a mutation kind ("edge_add" / "edge_del" /
/// "set_opinion"); "?" for an invalid enum value.
const char* MutationKindName(Mutation::Kind kind);

/// The ordered, committed mutation history of one hosted dataset — what
/// the journal (dyn/journal.h) persists and a restarted process replays.
/// Entries are append-only; the log itself is a plain value (copied onto
/// each repaired DatasetEntry, which stays immutable once published).
class MutationLog {
 public:
  void Append(const Mutation& mutation) { mutations_.push_back(mutation); }
  void Append(std::span<const Mutation> mutations) {
    mutations_.insert(mutations_.end(), mutations.begin(), mutations.end());
  }

  std::span<const Mutation> mutations() const { return mutations_; }
  size_t size() const { return mutations_.size(); }
  bool empty() const { return mutations_.empty(); }

 private:
  std::vector<Mutation> mutations_;
};

/// The next immutable instance after a mutation batch.
struct PatchResult {
  graph::Graph graph;
  opinion::MultiCampaignState state;
  /// Nodes whose in-row changed (edge mutation targets), ascending and
  /// unique. Empty for opinion-only batches — the signal that no walk
  /// needs regeneration.
  std::vector<graph::NodeId> dirty_nodes;
  uint64_t edges_added = 0;
  uint64_t edges_deleted = 0;
  uint64_t opinions_set = 0;
};

/// Applies `mutations` in order to (graph, state) and returns the patched
/// instance plus its dirty-node set. Pure: inputs are untouched, and the
/// result is a deterministic function of the arguments. Fails with a clean
/// Status on the first invalid mutation (out-of-range ids, self loop,
/// non-positive/non-finite weight, duplicate add, missing delete,
/// out-of-[0,1] opinion) without partial effects.
Result<PatchResult> ApplyMutations(const graph::Graph& graph,
                                   const opinion::MultiCampaignState& state,
                                   std::span<const Mutation> mutations);

}  // namespace voteopt::dyn

#endif  // VOTEOPT_DYN_MUTATION_H_
