// Durable mutation journal: the store-format file (<bundle>.dynlog,
// FileKind::kMutationLog) that makes committed mutations survive a restart.
//
// Crash-consistency discipline mirrors the sketch store: the journal is
// rewritten in full on every commit via write-temp + atomic rename, so at
// any instant the path holds either the previous committed log or the new
// one — never a torn file. A crash mid-repair therefore loses at most the
// uncommitted batch; reload replays the journal on top of the immutable
// base bundle and deterministically reconstructs the exact pre-crash state
// (ledger entry 10 makes the replayed sketch bit-identical to the one that
// was live).
//
// The "meta" section pins the base bundle's fingerprint: a journal replayed
// against a different or modified bundle fails with FailedPrecondition
// instead of silently producing a wrong graph. Truncated or corrupted
// files yield a clean Status via the format layer's checksum validation.
#ifndef VOTEOPT_DYN_JOURNAL_H_
#define VOTEOPT_DYN_JOURNAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dyn/mutation.h"
#include "util/status.h"

namespace voteopt::dyn {

/// Suffix appended to a dataset's bundle prefix to name its journal.
inline constexpr char kMutationLogSuffix[] = ".dynlog";

/// On-disk record, one per mutation ("mutations" section). Fixed 24-byte
/// little-endian layout; `pad` is written as zero so identical logs are
/// byte-identical files.
struct MutationRecord {
  uint32_t kind = 0;
  uint32_t u = 0;
  uint32_t v = 0;
  uint32_t pad = 0;
  double value = 0.0;
};
static_assert(sizeof(MutationRecord) == 24);

/// "meta" section payload.
struct MutationLogMeta {
  /// BundleFingerprint of the base bundle the log applies to.
  uint64_t base_fingerprint = 0;
  /// Number of records; cross-checked against the section length.
  uint64_t count = 0;
};
static_assert(sizeof(MutationLogMeta) == 16);

/// A loaded journal: the base it applies to plus the ordered mutations.
struct MutationJournal {
  uint64_t base_fingerprint = 0;
  std::vector<Mutation> mutations;
};

/// Writes the complete journal to `path` via temp-file + rename. Purely a
/// function of (base_fingerprint, mutations): identical inputs produce
/// identical bytes.
Status SaveMutationLog(const std::string& path, uint64_t base_fingerprint,
                       std::span<const Mutation> mutations);

/// Reads and validates a journal. Corruption/truncation/unknown mutation
/// kinds yield a clean error Status.
Result<MutationJournal> LoadMutationLog(const std::string& path);

}  // namespace voteopt::dyn

#endif  // VOTEOPT_DYN_JOURNAL_H_
