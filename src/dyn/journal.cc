#include "dyn/journal.h"

#include <atomic>
#include <cstdio>
#include <span>
#include <utility>

#include "store/format.h"

namespace voteopt::dyn {

Status SaveMutationLog(const std::string& path, uint64_t base_fingerprint,
                       std::span<const Mutation> mutations) {
  MutationLogMeta meta;
  meta.base_fingerprint = base_fingerprint;
  meta.count = mutations.size();

  std::vector<MutationRecord> records;
  records.reserve(mutations.size());
  for (const Mutation& m : mutations) {
    MutationRecord rec;
    rec.kind = static_cast<uint32_t>(m.kind);
    rec.u = m.u;
    rec.v = m.v;
    rec.value = m.value;
    records.push_back(rec);
  }

  std::vector<store::SectionRef> sections;
  sections.push_back(store::MakeSection<MutationLogMeta>(
      "meta", std::span<const MutationLogMeta>(&meta, 1)));
  sections.push_back(store::MakeSection<MutationRecord>(
      "mutations", std::span<const MutationRecord>(records)));

  // Write-temp + rename: the committed path never holds a torn file. The
  // counter keeps concurrent commits (different datasets sharing a prefix
  // directory) from clobbering each other's temp files.
  static std::atomic<uint64_t> temp_counter{0};
  const std::string temp =
      path + ".tmp" + std::to_string(temp_counter.fetch_add(1));
  Status written =
      store::WriteSectionFile(temp, store::FileKind::kMutationLog, sections);
  if (!written.ok()) return written;
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::IOError("rename failed for mutation log " + path);
  }
  return Status::OK();
}

Result<MutationJournal> LoadMutationLog(const std::string& path) {
  auto file = store::MappedFile::Open(path, store::MappedFile::Mode::kCopy);
  if (!file.ok()) return file.status();
  auto reader =
      store::SectionReader::Parse(*file, store::FileKind::kMutationLog);
  if (!reader.ok()) return reader.status();

  auto meta = reader->Typed<MutationLogMeta>("meta");
  if (!meta.ok()) return meta.status();
  if (meta->size() != 1) {
    return Status::Corruption("mutation log meta section malformed");
  }
  auto records = reader->Typed<MutationRecord>("mutations");
  if (!records.ok()) return records.status();
  if ((*meta)[0].count != records->size()) {
    return Status::Corruption("mutation log record count mismatch");
  }

  MutationJournal journal;
  journal.base_fingerprint = (*meta)[0].base_fingerprint;
  journal.mutations.reserve(records->size());
  for (const MutationRecord& rec : *records) {
    if (rec.kind < static_cast<uint32_t>(Mutation::Kind::kEdgeAdd) ||
        rec.kind > static_cast<uint32_t>(Mutation::Kind::kSetOpinion)) {
      return Status::Corruption("mutation log holds unknown mutation kind " +
                                std::to_string(rec.kind));
    }
    Mutation m;
    m.kind = static_cast<Mutation::Kind>(rec.kind);
    m.u = rec.u;
    m.v = rec.v;
    m.value = rec.value;
    journal.mutations.push_back(m);
  }
  return journal;
}

}  // namespace voteopt::dyn
