#include "dyn/repair.h"

#include <algorithm>
#include <future>
#include <utility>
#include <vector>

#include "core/sketch.h"
#include "core/walk_engine.h"
#include "sketch_ooc/block_store.h"
#include "sketch_ooc/ooc_builder.h"
#include "sketch_ooc/partition.h"
#include "util/thread_pool.h"

namespace voteopt::dyn {
namespace {

/// Regenerates the listed walks against the patched in-memory graph,
/// appending to `out` in list order. Chunk-parallel; each walk is its own
/// RNG block (GenerateSeeded), so chunking never changes the bytes.
void RegenerateWalksInMemory(const graph::Graph& patched,
                             const opinion::Campaign& campaign,
                             const graph::AliasSampler& alias,
                             uint32_t horizon, uint64_t master_seed,
                             std::span<const uint64_t> walk_indices,
                             uint32_t num_threads, core::WalkBuffer* out) {
  core::WalkEngine engine(patched, campaign, alias);
  uint32_t threads =
      num_threads == 0 ? ThreadPool::DefaultThreadCount() : num_threads;
  threads = std::max<uint32_t>(threads, 1);
  const size_t chunk_size =
      threads > 1
          ? std::max<size_t>(64, walk_indices.size() / (threads * 4) + 1)
          : walk_indices.size();
  const size_t num_chunks =
      walk_indices.empty() ? 0 : (walk_indices.size() + chunk_size - 1) / chunk_size;

  std::vector<core::WalkBuffer> buffers(num_chunks);
  auto run_chunk = [&](size_t c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(walk_indices.size(), begin + chunk_size);
    for (size_t i = begin; i < end; ++i) {
      engine.GenerateSeeded(walk_indices[i], 1, horizon, master_seed,
                            &buffers[c]);
    }
  };
  if (threads > 1 && num_chunks > 1) {
    ThreadPool pool(threads);
    std::vector<std::future<void>> done;
    done.reserve(num_chunks);
    for (size_t c = 0; c < num_chunks; ++c) {
      done.push_back(pool.Submit([&run_chunk, c] { run_chunk(c); }));
    }
    for (auto& f : done) f.get();
  } else {
    for (size_t c = 0; c < num_chunks; ++c) run_chunk(c);
  }
  // Merge in chunk order = walk-list order.
  for (core::WalkBuffer& buf : buffers) {
    out->nodes.insert(out->nodes.end(), buf.nodes.begin(), buf.nodes.end());
    out->lengths.insert(out->lengths.end(), buf.lengths.begin(),
                        buf.lengths.end());
  }
}

}  // namespace

Result<RepairOutcome> SketchRepairer::Repair(
    const core::WalkSet& base, const graph::Graph& patched,
    const opinion::Campaign& campaign, const store::SketchMeta& meta,
    std::span<const graph::NodeId> dirty_nodes,
    const graph::AliasSampler* base_alias, const RepairOptions& options) {
  const uint32_t n = patched.num_nodes();
  if (base.num_nodes() != n) {
    return Status::InvalidArgument(
        "repair: sketch and patched graph disagree on node count");
  }
  if (meta.master_seed == 0) {
    return Status::FailedPrecondition(
        "repair: sketch has no master seed (serial or unknown provenance); "
        "its walks cannot be replayed per-index");
  }
  if (meta.theta != base.num_walks()) {
    return Status::InvalidArgument("repair: meta.theta != sketch walk count");
  }
  VOTEOPT_RETURN_IF_ERROR(campaign.Validate(n));
  for (graph::NodeId v : dirty_nodes) {
    if (v >= n) return Status::InvalidArgument("repair: dirty node out of range");
  }

  // Dirty-walk set: the inverted index maps each dirty node to every walk
  // whose trajectory contains it. Flags (not a set) keep the sweep O(theta)
  // and the resulting index list ascending — the deterministic order the
  // regeneration and reassembly below both use.
  const uint64_t theta = base.num_walks();
  std::vector<uint8_t> dirty_walk(theta, 0);
  for (graph::NodeId v : dirty_nodes) {
    for (const core::WalkSet::Posting& p : base.PostingsOf(v)) {
      dirty_walk[p.walk] = 1;
    }
  }
  std::vector<uint64_t> dirty_indices;
  for (uint64_t j = 0; j < theta; ++j) {
    if (dirty_walk[j]) dirty_indices.push_back(j);
  }

  RepairOutcome outcome;
  outcome.stats.walks_total = theta;
  outcome.stats.walks_repaired = dirty_indices.size();
  outcome.stats.dirty_nodes = dirty_nodes.size();

  // Regenerate exactly the dirty walks from their seeded streams.
  core::WalkBuffer regen;
  if (!dirty_indices.empty()) {
    if (options.block_budget_bytes > 0) {
      // Block-aware path: cut the patched graph into blocks and replay the
      // dirty walks through the OOC scheduler (same machinery, same bytes).
      if (options.ooc_scratch_prefix.empty()) {
        return Status::InvalidArgument(
            "repair: block_budget_bytes set but no ooc_scratch_prefix");
      }
      auto plan = sketch_ooc::PlanByBudget(patched, options.block_budget_bytes);
      if (!plan.ok()) return plan.status();
      const uint32_t num_blocks = plan->num_blocks();
      if (Status st = sketch_ooc::WriteBlocks(patched, *plan,
                                              options.ooc_scratch_prefix);
          !st.ok()) {
        sketch_ooc::RemoveBlocks(options.ooc_scratch_prefix, num_blocks);
        return st;
      }
      auto blocks = sketch_ooc::BlockSet::Open(options.ooc_scratch_prefix);
      if (!blocks.ok()) {
        sketch_ooc::RemoveBlocks(options.ooc_scratch_prefix, num_blocks);
        return blocks.status();
      }
      sketch_ooc::OocBuildOptions ooc_options;
      ooc_options.num_threads = options.num_threads;
      Status regenerated = sketch_ooc::RegenerateWalksOoc(
          *blocks, campaign, meta.horizon, meta.master_seed, dirty_indices,
          ooc_options, &regen);
      sketch_ooc::RemoveBlocks(options.ooc_scratch_prefix, num_blocks);
      if (!regenerated.ok()) return regenerated;
    } else {
      // In-memory path: alias tables over the patched graph, rebuilt at row
      // granularity when the pre-mutation tables are available.
      std::shared_ptr<const graph::AliasSampler> alias =
          base_alias != nullptr
              ? std::make_shared<const graph::AliasSampler>(patched, *base_alias,
                                                            dirty_nodes)
              : std::make_shared<const graph::AliasSampler>(patched);
      RegenerateWalksInMemory(patched, campaign, *alias, meta.horizon,
                              meta.master_seed, dirty_indices,
                              options.num_threads, &regen);
      outcome.alias = std::move(alias);
    }
  } else if (options.block_budget_bytes == 0 && base_alias != nullptr) {
    // No dirty walks (rare: mutated nodes unvisited by every walk) — the
    // tables still must track the patched rows for the NEXT repair.
    outcome.alias = std::make_shared<const graph::AliasSampler>(
        patched, *base_alias, dirty_nodes);
  }

  // Reassemble the full sketch in walk-index order: clean walks splice
  // their bytes from the base's frozen layer, dirty walks take the next
  // regenerated row. One AddWalks + Finalize + ApplySketchWeights — the
  // exact construction sequence of both from-scratch builders, which is
  // what makes bit-identity hold by construction rather than by audit.
  const core::WalkSet::Frozen& frozen = base.frozen();
  std::vector<uint64_t> regen_offsets(regen.lengths.size() + 1, 0);
  for (size_t i = 0; i < regen.lengths.size(); ++i) {
    regen_offsets[i + 1] = regen_offsets[i] + regen.lengths[i];
  }

  core::WalkBuffer assembled;
  assembled.lengths.reserve(theta);
  uint64_t clean_nodes = 0;
  for (uint64_t j = 0; j < theta; ++j) {
    if (!dirty_walk[j]) clean_nodes += frozen.offsets[j + 1] - frozen.offsets[j];
  }
  assembled.nodes.reserve(clean_nodes + regen.nodes.size());
  size_t next_regen = 0;
  for (uint64_t j = 0; j < theta; ++j) {
    if (dirty_walk[j]) {
      const uint64_t begin = regen_offsets[next_regen];
      const uint64_t len = regen.lengths[next_regen];
      assembled.nodes.insert(assembled.nodes.end(),
                             regen.nodes.begin() + begin,
                             regen.nodes.begin() + begin + len);
      assembled.lengths.push_back(static_cast<uint32_t>(len));
      ++next_regen;
    } else {
      const uint64_t begin = frozen.offsets[j];
      const uint64_t len = frozen.offsets[j + 1] - begin;
      assembled.nodes.insert(assembled.nodes.end(),
                             frozen.nodes.begin() + begin,
                             frozen.nodes.begin() + begin + len);
      assembled.lengths.push_back(static_cast<uint32_t>(len));
    }
  }

  auto repaired = std::make_unique<core::WalkSet>(n);
  repaired->AddWalks(assembled);
  repaired->Finalize(campaign.initial_opinions);
  core::ApplySketchWeights(repaired.get(), n, theta);
  outcome.sketch = std::move(repaired);
  return outcome;
}

}  // namespace voteopt::dyn
