// Incremental sketch repair (determinism ledger entry 10).
//
// Why repair is possible, and why it is exact: walk j of a sketch keyed by
// `master_seed` draws its start and every transition from its own stream
// core::SketchWalkRng(master_seed, j) (PR 6's per-walk streams). An edge
// mutation u -> v changes only node v's in-row — the walks sample
// IN-neighbors, and the node count never changes, so a walk whose
// trajectory avoids every mutated node consumes exactly the same draws
// against the patched graph and reproduces exactly the same bytes. The
// walks that must be regenerated are precisely those whose trajectories
// visit a dirty node, and the WalkSet's inverted index (node -> walks
// containing it) IS the walk -> visited-nodes index read backwards: the
// dirty-walk set is the union of PostingsOf(v) over dirty v. Regenerating
// those walks from their seeded streams against the patched CSR — with a
// row-level alias rebuild for mutated rows only — and reassembling in
// walk-index order therefore yields a WalkSet BIT-IDENTICAL to a
// from-scratch rebuild over the mutated graph, for any mutation schedule,
// thread count, and both the in-memory and out-of-core build paths.
//
// Opinion mutations never dirty a node: trajectories depend only on the
// graph and stubbornness, so set_opinion costs zero walk regenerations
// (the registry re-derives the dynamic state from the new opinions).
#ifndef VOTEOPT_DYN_REPAIR_H_
#define VOTEOPT_DYN_REPAIR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/walk_set.h"
#include "graph/alias_table.h"
#include "graph/graph.h"
#include "opinion/opinion_state.h"
#include "store/sketch_store.h"
#include "util/status.h"

namespace voteopt::dyn {

struct RepairOptions {
  /// Worker threads for walk regeneration: 0 = one per hardware thread,
  /// 1 = inline. Never changes the output.
  uint32_t num_threads = 0;
  /// > 0 routes regeneration through the out-of-core block engine with
  /// this per-block byte budget (the path OOC-hosted datasets use); 0 uses
  /// the in-memory alias tables.
  uint64_t block_budget_bytes = 0;
  /// Scratch prefix for the OOC path's block files (required when
  /// block_budget_bytes > 0).
  std::string ooc_scratch_prefix;
};

struct RepairStats {
  uint64_t walks_total = 0;
  uint64_t walks_repaired = 0;
  uint64_t dirty_nodes = 0;
};

struct RepairOutcome {
  /// Finalized, weighted — byte-for-byte what a from-scratch build over
  /// the patched graph produces.
  std::unique_ptr<core::WalkSet> sketch;
  /// Alias tables over the patched graph, for the next repair's row-level
  /// reuse. Null on the OOC path (blocks compile their own slices).
  std::shared_ptr<const graph::AliasSampler> alias;
  RepairStats stats;
};

class SketchRepairer {
 public:
  /// Repairs `base` (the sketch built over the pre-mutation graph) into
  /// the sketch of `patched`. `campaign` is the PATCHED target campaign;
  /// `dirty_nodes` (ascending, unique) are the nodes whose in-rows
  /// changed; `base_alias` — alias tables over the PRE-mutation graph —
  /// enables the row-level incremental alias rebuild and may be null
  /// (full rebuild of the tables, walks still repaired incrementally).
  ///
  /// Fails with FailedPrecondition when meta.master_seed == 0 (a serial /
  /// unknown-provenance sketch has no per-walk streams to replay).
  static Result<RepairOutcome> Repair(const core::WalkSet& base,
                                      const graph::Graph& patched,
                                      const opinion::Campaign& campaign,
                                      const store::SketchMeta& meta,
                                      std::span<const graph::NodeId> dirty_nodes,
                                      const graph::AliasSampler* base_alias,
                                      const RepairOptions& options);
};

}  // namespace voteopt::dyn

#endif  // VOTEOPT_DYN_REPAIR_H_
