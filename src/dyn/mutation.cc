#include "dyn/mutation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

namespace voteopt::dyn {
namespace {

/// A materialized copy of one in-row, kept sorted by source the way
/// GraphBuilder stores rows. Weights always sum to 1 after every edit
/// (or the row is empty).
struct Row {
  std::vector<graph::NodeId> sources;
  std::vector<double> weights;
};

void Renormalize(Row* row) {
  double sum = 0.0;
  for (double w : row->weights) sum += w;
  if (sum <= 0.0) return;
  for (double& w : row->weights) w /= sum;
}

}  // namespace

const char* MutationKindName(Mutation::Kind kind) {
  switch (kind) {
    case Mutation::Kind::kEdgeAdd:
      return "edge_add";
    case Mutation::Kind::kEdgeDel:
      return "edge_del";
    case Mutation::Kind::kSetOpinion:
      return "set_opinion";
  }
  return "?";
}

Result<PatchResult> ApplyMutations(const graph::Graph& graph,
                                   const opinion::MultiCampaignState& state,
                                   std::span<const Mutation> mutations) {
  const uint32_t n = graph.num_nodes();
  const uint32_t r = state.num_candidates();

  PatchResult result;
  result.state = state;

  // In-rows are copied out of the CSR lazily, only for mutated targets;
  // std::map keeps the eventual dirty-node sweep in ascending node order.
  std::map<graph::NodeId, Row> rows;
  auto row_of = [&](graph::NodeId v) -> Row& {
    auto it = rows.find(v);
    if (it == rows.end()) {
      Row row;
      auto sources = graph.InNeighbors(v);
      auto weights = graph.InWeights(v);
      row.sources.assign(sources.begin(), sources.end());
      row.weights.assign(weights.begin(), weights.end());
      it = rows.emplace(v, std::move(row)).first;
    }
    return it->second;
  };

  for (size_t i = 0; i < mutations.size(); ++i) {
    const Mutation& m = mutations[i];
    const std::string at = " (mutation " + std::to_string(i) + ")";
    switch (m.kind) {
      case Mutation::Kind::kEdgeAdd: {
        if (m.u >= n || m.v >= n) {
          return Status::InvalidArgument("edge_add: node id out of range" + at);
        }
        if (m.u == m.v) {
          return Status::InvalidArgument("edge_add: self loop " +
                                         std::to_string(m.u) + at);
        }
        if (!std::isfinite(m.value) || m.value <= 0.0) {
          return Status::InvalidArgument("edge_add: weight must be positive" +
                                         at);
        }
        Row& row = row_of(m.v);
        auto pos = std::lower_bound(row.sources.begin(), row.sources.end(),
                                    m.u);
        if (pos != row.sources.end() && *pos == m.u) {
          return Status::FailedPrecondition(
              "edge_add: edge " + std::to_string(m.u) + " -> " +
              std::to_string(m.v) + " already exists" + at);
        }
        size_t idx = static_cast<size_t>(pos - row.sources.begin());
        row.sources.insert(pos, m.u);
        row.weights.insert(row.weights.begin() + idx, m.value);
        Renormalize(&row);
        ++result.edges_added;
        break;
      }
      case Mutation::Kind::kEdgeDel: {
        if (m.u >= n || m.v >= n) {
          return Status::InvalidArgument("edge_del: node id out of range" + at);
        }
        Row& row = row_of(m.v);
        auto pos = std::lower_bound(row.sources.begin(), row.sources.end(),
                                    m.u);
        if (pos == row.sources.end() || *pos != m.u) {
          return Status::NotFound("edge_del: edge " + std::to_string(m.u) +
                                  " -> " + std::to_string(m.v) +
                                  " does not exist" + at);
        }
        size_t idx = static_cast<size_t>(pos - row.sources.begin());
        row.sources.erase(pos);
        row.weights.erase(row.weights.begin() + idx);
        Renormalize(&row);
        ++result.edges_deleted;
        break;
      }
      case Mutation::Kind::kSetOpinion: {
        if (m.u >= r) {
          return Status::InvalidArgument(
              "set_opinion: candidate out of range" + at);
        }
        if (m.v >= n) {
          return Status::InvalidArgument("set_opinion: node out of range" + at);
        }
        if (!std::isfinite(m.value) || m.value < 0.0 || m.value > 1.0) {
          return Status::InvalidArgument(
              "set_opinion: value must be in [0, 1]" + at);
        }
        result.state.campaigns[m.u].initial_opinions[m.v] = m.value;
        ++result.opinions_set;
        break;
      }
      default:
        return Status::InvalidArgument("unknown mutation kind" + at);
    }
  }

  if (rows.empty()) {
    // Opinion-only batch: the graph is structurally untouched; hand back a
    // byte-identical copy so callers can still treat the result uniformly.
    auto copy = graph::Graph::FromCsr(
        n, {graph.OutOffsets().begin(), graph.OutOffsets().end()},
        {graph.OutTargets().begin(), graph.OutTargets().end()},
        {graph.OutWeightsRaw().begin(), graph.OutWeightsRaw().end()},
        {graph.InOffsets().begin(), graph.InOffsets().end()},
        {graph.InSources().begin(), graph.InSources().end()},
        {graph.InWeightsRaw().begin(), graph.InWeightsRaw().end()});
    if (!copy.ok()) return copy.status();
    result.graph = std::move(copy).value();
    return result;
  }

  // Assemble the patched in-CSR: untouched rows are copied verbatim (byte
  // identity is what lets the repairer keep their alias rows and walks),
  // mutated rows come from the patched copies above.
  std::vector<uint64_t> in_offsets(n + 1, 0);
  std::vector<graph::NodeId> in_sources;
  std::vector<double> in_weights;
  {
    uint64_t total = 0;
    auto it = rows.begin();
    for (graph::NodeId v = 0; v < n; ++v) {
      if (it != rows.end() && it->first == v) {
        total += it->second.sources.size();
        ++it;
      } else {
        total += graph.InDegree(v);
      }
    }
    in_sources.reserve(total);
    in_weights.reserve(total);
  }
  {
    auto it = rows.begin();
    for (graph::NodeId v = 0; v < n; ++v) {
      if (it != rows.end() && it->first == v) {
        in_sources.insert(in_sources.end(), it->second.sources.begin(),
                          it->second.sources.end());
        in_weights.insert(in_weights.end(), it->second.weights.begin(),
                          it->second.weights.end());
        ++it;
      } else {
        auto sources = graph.InNeighbors(v);
        auto weights = graph.InWeights(v);
        in_sources.insert(in_sources.end(), sources.begin(), sources.end());
        in_weights.insert(in_weights.end(), weights.begin(), weights.end());
      }
      in_offsets[v + 1] = in_sources.size();
    }
  }

  // Derive the out-CSR from the in-CSR with the same stable counting pass
  // GraphBuilder::Build runs, so the whole graph stays builder-canonical.
  const uint64_t m_total = in_sources.size();
  std::vector<uint64_t> out_offsets(n + 1, 0);
  for (graph::NodeId u : in_sources) ++out_offsets[u + 1];
  for (uint32_t v = 0; v < n; ++v) out_offsets[v + 1] += out_offsets[v];
  std::vector<graph::NodeId> out_targets(m_total);
  std::vector<double> out_weights(m_total);
  {
    std::vector<uint64_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
    for (graph::NodeId v = 0; v < n; ++v) {
      for (uint64_t e = in_offsets[v]; e < in_offsets[v + 1]; ++e) {
        const graph::NodeId u = in_sources[e];
        out_targets[cursor[u]] = v;
        out_weights[cursor[u]] = in_weights[e];
        ++cursor[u];
      }
    }
  }

  auto patched = graph::Graph::FromCsr(
      n, std::move(out_offsets), std::move(out_targets),
      std::move(out_weights), std::move(in_offsets), std::move(in_sources),
      std::move(in_weights));
  if (!patched.ok()) return patched.status();
  result.graph = std::move(patched).value();

  result.dirty_nodes.reserve(rows.size());
  for (const auto& [v, row] : rows) result.dirty_nodes.push_back(v);
  return result;
}

}  // namespace voteopt::dyn
