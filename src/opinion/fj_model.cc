#include "opinion/fj_model.h"

#include <cassert>

namespace voteopt::opinion {

void FJModel::Step(const std::vector<double>& current,
                   const std::vector<double>& initial,
                   const std::vector<double>& stubbornness,
                   std::vector<double>* out) const {
  const uint32_t n = graph_->num_nodes();
  assert(current.size() == n);
  assert(initial.size() == n);
  assert(stubbornness.size() == n);
  out->resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto sources = graph_->InNeighbors(v);
    if (sources.empty()) {
      // No social signal: the user holds her previous opinion.
      (*out)[v] = current[v];
      continue;
    }
    const auto weights = graph_->InWeights(v);
    double aggregated = 0.0;
    for (size_t i = 0; i < sources.size(); ++i) {
      aggregated += weights[i] * current[sources[i]];
    }
    const double d = stubbornness[v];
    (*out)[v] = (1.0 - d) * aggregated + d * initial[v];
  }
}

std::vector<double> FJModel::Propagate(const Campaign& campaign,
                                       uint32_t horizon) const {
  std::vector<double> current = campaign.initial_opinions;
  std::vector<double> next(current.size());
  for (uint32_t step = 0; step < horizon; ++step) {
    Step(current, campaign.initial_opinions, campaign.stubbornness, &next);
    std::swap(current, next);
  }
  return current;
}

std::vector<double> FJModel::PropagateWithSeeds(
    const Campaign& campaign, const std::vector<graph::NodeId>& seeds,
    uint32_t horizon) const {
  return Propagate(ApplySeeds(campaign, seeds), horizon);
}

std::vector<std::vector<double>> FJModel::Trajectory(const Campaign& campaign,
                                                     uint32_t horizon) const {
  std::vector<std::vector<double>> trajectory;
  trajectory.reserve(horizon + 1);
  trajectory.push_back(campaign.initial_opinions);
  std::vector<double> next;
  for (uint32_t step = 0; step < horizon; ++step) {
    Step(trajectory.back(), campaign.initial_opinions, campaign.stubbornness,
         &next);
    trajectory.push_back(next);
  }
  return trajectory;
}

}  // namespace voteopt::opinion
