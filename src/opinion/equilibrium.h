// FJ equilibrium opinions (paper Appendix A/B context).
//
// The FJ recursion B(t+1) = B(t) W (I - D) + B(0) D converges, when the
// oblivious subgraph is regular or empty (§ II-A), to the fixed point
//
//   B* = B(0) D (I - W (I - D))^{-1}
//
// [25] (GED) selects seeds against this equilibrium; the paper's problem
// uses a finite horizon instead and shows the two objectives pick different
// seeds (App. B: only 42-61% overlap). This module computes B* by damped
// fixed-point iteration so the repository can reproduce that comparison and
// host the original equilibrium-objective GED baseline.
#ifndef VOTEOPT_OPINION_EQUILIBRIUM_H_
#define VOTEOPT_OPINION_EQUILIBRIUM_H_

#include <vector>

#include "opinion/fj_model.h"
#include "util/status.h"

namespace voteopt::opinion {

struct EquilibriumOptions {
  /// Stop when no opinion moves more than this between iterations.
  double tolerance = 1e-10;
  /// Iteration cap; FJ contracts geometrically when some stubbornness is
  /// positive along every cycle, so this is rarely reached.
  uint32_t max_iterations = 100000;
};

struct EquilibriumResult {
  std::vector<double> opinions;
  /// Iterations actually used.
  uint32_t iterations = 0;
  /// False when max_iterations was hit before reaching tolerance (e.g. a
  /// purely oblivious cycle oscillates and has no unique equilibrium).
  bool converged = false;
};

/// Fixed-point iteration of the FJ update until convergence.
EquilibriumResult EquilibriumOpinions(
    const FJModel& model, const Campaign& campaign,
    const EquilibriumOptions& options = EquilibriumOptions());

/// Equilibrium with a seed set applied (b0, d raised to 1).
EquilibriumResult EquilibriumWithSeeds(
    const FJModel& model, const Campaign& campaign,
    const std::vector<graph::NodeId>& seeds,
    const EquilibriumOptions& options = EquilibriumOptions());

}  // namespace voteopt::opinion

#endif  // VOTEOPT_OPINION_EQUILIBRIUM_H_
