#include "opinion/equilibrium.h"

#include <cmath>

namespace voteopt::opinion {

EquilibriumResult EquilibriumOpinions(const FJModel& model,
                                      const Campaign& campaign,
                                      const EquilibriumOptions& options) {
  EquilibriumResult result;
  std::vector<double> current = campaign.initial_opinions;
  std::vector<double> next(current.size());
  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    model.Step(current, campaign.initial_opinions, campaign.stubbornness,
               &next);
    double max_delta = 0.0;
    for (size_t v = 0; v < current.size(); ++v) {
      max_delta = std::max(max_delta, std::fabs(next[v] - current[v]));
    }
    std::swap(current, next);
    result.iterations = iter + 1;
    if (max_delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.opinions = std::move(current);
  return result;
}

EquilibriumResult EquilibriumWithSeeds(const FJModel& model,
                                       const Campaign& campaign,
                                       const std::vector<graph::NodeId>& seeds,
                                       const EquilibriumOptions& options) {
  return EquilibriumOpinions(model, ApplySeeds(campaign, seeds), options);
}

}  // namespace voteopt::opinion
