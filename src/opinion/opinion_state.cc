#include "opinion/opinion_state.h"

#include <string>

namespace voteopt::opinion {

namespace {

Status ValidateUnitVector(const std::vector<double>& values, uint32_t n,
                          const char* what) {
  if (values.size() != n) {
    return Status::InvalidArgument(
        std::string(what) + " has size " + std::to_string(values.size()) +
        ", expected " + std::to_string(n));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!(values[i] >= 0.0 && values[i] <= 1.0)) {
      return Status::OutOfRange(std::string(what) + "[" + std::to_string(i) +
                                "] = " + std::to_string(values[i]) +
                                " outside [0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace

Status Campaign::Validate(uint32_t num_nodes) const {
  VOTEOPT_RETURN_IF_ERROR(
      ValidateUnitVector(initial_opinions, num_nodes, "initial_opinions"));
  VOTEOPT_RETURN_IF_ERROR(
      ValidateUnitVector(stubbornness, num_nodes, "stubbornness"));
  return Status::OK();
}

Status MultiCampaignState::Validate(uint32_t num_nodes) const {
  if (campaigns.size() < 2) {
    return Status::InvalidArgument(
        "need at least 2 competing candidates, got " +
        std::to_string(campaigns.size()));
  }
  for (size_t q = 0; q < campaigns.size(); ++q) {
    Status st = campaigns[q].Validate(num_nodes);
    if (!st.ok()) {
      return Status::InvalidArgument("campaign " + std::to_string(q) + ": " +
                                     st.ToString());
    }
  }
  return Status::OK();
}

Campaign ApplySeeds(const Campaign& campaign,
                    const std::vector<graph::NodeId>& seeds) {
  Campaign out = campaign;
  for (graph::NodeId s : seeds) {
    out.initial_opinions[s] = 1.0;
    out.stubbornness[s] = 1.0;
  }
  return out;
}

}  // namespace voteopt::opinion
