// Opinion state for multi-campaign diffusion (paper § II).
//
// Each of the r candidates has, per user: an initial opinion b0 in [0,1] and
// a stubbornness d in [0,1]. The full opinion matrix B is r x n; opinions for
// different candidates diffuse independently and concurrently.
#ifndef VOTEOPT_OPINION_OPINION_STATE_H_
#define VOTEOPT_OPINION_OPINION_STATE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace voteopt::opinion {

using CandidateId = uint32_t;

/// One candidate's initial configuration: B_q(0) and D_q.
struct Campaign {
  /// b0[v]: initial opinion of user v about this candidate, in [0, 1].
  std::vector<double> initial_opinions;
  /// d[v]: stubbornness of user v towards this candidate, in [0, 1].
  /// d = 0 everywhere recovers the DeGroot model.
  std::vector<double> stubbornness;

  /// Validates sizes and [0,1] ranges against an n-node graph.
  Status Validate(uint32_t num_nodes) const;
};

/// All campaigns in the election. Index q is the candidate id.
struct MultiCampaignState {
  std::vector<Campaign> campaigns;

  uint32_t num_candidates() const {
    return static_cast<uint32_t>(campaigns.size());
  }

  /// Requires r >= 2 candidates (the problem is competitive) and per-
  /// campaign validity.
  Status Validate(uint32_t num_nodes) const;
};

/// Applies a seed set for candidate q: for each seed s, b0[s] and d[s] are
/// raised to 1 (paper § II-C). Returns modified copies, leaving `campaign`
/// untouched.
Campaign ApplySeeds(const Campaign& campaign,
                    const std::vector<graph::NodeId>& seeds);

}  // namespace voteopt::opinion

#endif  // VOTEOPT_OPINION_OPINION_STATE_H_
