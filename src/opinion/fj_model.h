// Friedkin-Johnsen opinion propagation (paper Eq. 2):
//
//   B_q(t+1) = B_q(t) W_q (I - D_q) + B_q(0) D_q
//
// evaluated per node as
//
//   b(t+1)[v] = (1 - d[v]) * sum_{u in In(v)} w_uv * b(t)[u] + d[v] * b0[v]
//
// over the in-CSR (one sparse mat-vec per timestamp, O(m)). DeGroot is the
// special case D = 0. Nodes without in-edges retain their previous opinion
// (paper § II-A). This exact propagation is the "DM" method of the paper's
// experiments and the ground truth the RW / RS estimators are tested against.
#ifndef VOTEOPT_OPINION_FJ_MODEL_H_
#define VOTEOPT_OPINION_FJ_MODEL_H_

#include <vector>

#include "graph/graph.h"
#include "opinion/opinion_state.h"

namespace voteopt::opinion {

/// Exact FJ/DeGroot propagation engine bound to one influence graph.
/// The graph must be column-stochastic for opinions to stay inside [0, 1].
class FJModel {
 public:
  explicit FJModel(const graph::Graph& graph) : graph_(&graph) {}

  /// One synchronous FJ step: fills `out` (resized to n) from `current`.
  /// `initial` and `stubbornness` are B_q(0) and diag(D_q).
  void Step(const std::vector<double>& current,
            const std::vector<double>& initial,
            const std::vector<double>& stubbornness,
            std::vector<double>* out) const;

  /// Opinions at time horizon t, i.e. t applications of Step starting from
  /// campaign.initial_opinions.
  std::vector<double> Propagate(const Campaign& campaign, uint32_t horizon) const;

  /// Propagate with a seed set applied to the campaign (b0, d raised to 1).
  std::vector<double> PropagateWithSeeds(
      const Campaign& campaign, const std::vector<graph::NodeId>& seeds,
      uint32_t horizon) const;

  /// Full trajectory: result[s] is the opinion vector at time s, for
  /// s = 0..horizon. Used by the drift experiment (paper Fig. 18).
  std::vector<std::vector<double>> Trajectory(const Campaign& campaign,
                                              uint32_t horizon) const;

  const graph::Graph& graph() const { return *graph_; }

 private:
  const graph::Graph* graph_;
};

}  // namespace voteopt::opinion

#endif  // VOTEOPT_OPINION_FJ_MODEL_H_
