// Convergence diagnostics for FJ diffusion (paper § II-A and Fig. 18).
#ifndef VOTEOPT_OPINION_CONVERGENCE_H_
#define VOTEOPT_OPINION_CONVERGENCE_H_

#include <vector>

#include "graph/graph.h"
#include "opinion/opinion_state.h"

namespace voteopt::opinion {

/// Fraction of nodes whose opinion changed by more than `tolerance_percent`
/// percent relative to the previous value (the Fig. 18 drift metric):
/// counted when |b_t[v] - b_{t-1}[v]| > (tolerance_percent/100) * b_{t-1}[v].
double FractionChanged(const std::vector<double>& previous,
                       const std::vector<double>& current,
                       double tolerance_percent);

/// True when no opinion moved by more than `absolute_tol` in the last step.
bool HasConverged(const std::vector<double>& previous,
                  const std::vector<double>& current, double absolute_tol);

/// Oblivious nodes (paper § II-A): non-stubborn (d = 0) and not reachable
/// from any node with d > 0. The FJ model converges iff the oblivious
/// subgraph is regular or empty; this utility lets callers check the
/// precondition.
std::vector<graph::NodeId> FindObliviousNodes(const graph::Graph& graph,
                                              const Campaign& campaign);

}  // namespace voteopt::opinion

#endif  // VOTEOPT_OPINION_CONVERGENCE_H_
