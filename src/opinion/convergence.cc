#include "opinion/convergence.h"

#include <cassert>
#include <cmath>

#include "graph/traversal.h"

namespace voteopt::opinion {

double FractionChanged(const std::vector<double>& previous,
                       const std::vector<double>& current,
                       double tolerance_percent) {
  assert(previous.size() == current.size());
  if (previous.empty()) return 0.0;
  size_t changed = 0;
  const double rel = tolerance_percent / 100.0;
  for (size_t v = 0; v < previous.size(); ++v) {
    if (std::fabs(current[v] - previous[v]) > rel * previous[v]) ++changed;
  }
  return static_cast<double>(changed) / static_cast<double>(previous.size());
}

bool HasConverged(const std::vector<double>& previous,
                  const std::vector<double>& current, double absolute_tol) {
  assert(previous.size() == current.size());
  for (size_t v = 0; v < previous.size(); ++v) {
    if (std::fabs(current[v] - previous[v]) > absolute_tol) return false;
  }
  return true;
}

std::vector<graph::NodeId> FindObliviousNodes(const graph::Graph& graph,
                                              const Campaign& campaign) {
  // Forward-reach from every stubborn node (d > 0); whatever non-stubborn
  // node is never reached is oblivious.
  std::vector<graph::NodeId> stubborn;
  for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (campaign.stubbornness[v] > 0.0) stubborn.push_back(v);
  }
  std::vector<bool> reached(graph.num_nodes(), false);
  graph::HopLimitedBfs bfs(graph, graph::Direction::kForward);
  bfs.Run(stubborn, graph.num_nodes(),
          [&](graph::NodeId v, uint32_t) { reached[v] = true; });

  std::vector<graph::NodeId> oblivious;
  for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (campaign.stubbornness[v] == 0.0 && !reached[v]) oblivious.push_back(v);
  }
  return oblivious;
}

}  // namespace voteopt::opinion
