#include "baselines/imm.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <queue>
#include <tuple>

#include "core/accuracy.h"

namespace voteopt::baselines {

double MaxCoverage(const std::vector<std::vector<graph::NodeId>>& rr_sets,
                   uint32_t num_nodes, uint32_t k,
                   std::vector<graph::NodeId>* seeds) {
  seeds->clear();
  if (rr_sets.empty()) return 0.0;

  // Inverted index node -> RR sets containing it.
  std::vector<std::vector<uint32_t>> sets_of(num_nodes);
  for (uint32_t s = 0; s < rr_sets.size(); ++s) {
    for (graph::NodeId v : rr_sets[s]) sets_of[v].push_back(s);
  }
  std::vector<bool> covered(rr_sets.size(), false);
  std::vector<uint64_t> degree(num_nodes);
  for (uint32_t v = 0; v < num_nodes; ++v) degree[v] = sets_of[v].size();

  // Lazy greedy (coverage is submodular).
  using Entry = std::tuple<uint64_t, graph::NodeId, uint32_t>;
  auto cmp = [](const Entry& a, const Entry& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) > std::get<1>(b);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);
  for (uint32_t v = 0; v < num_nodes; ++v) queue.emplace(degree[v], v, 0);

  uint64_t covered_count = 0;
  uint32_t round = 0;
  std::vector<bool> chosen(num_nodes, false);
  while (seeds->size() < k && !queue.empty()) {
    auto [gain, v, at] = queue.top();
    queue.pop();
    if (chosen[v]) continue;
    if (at == round) {
      chosen[v] = true;
      seeds->push_back(v);
      for (uint32_t s : sets_of[v]) {
        if (!covered[s]) {
          covered[s] = true;
          ++covered_count;
        }
      }
      ++round;
    } else {
      uint64_t fresh = 0;
      for (uint32_t s : sets_of[v]) {
        if (!covered[s]) ++fresh;
      }
      queue.emplace(fresh, v, round);
    }
  }
  return static_cast<double>(covered_count) /
         static_cast<double>(rr_sets.size());
}

IMMResult IMMSelect(const graph::Graph& graph, uint32_t k, CascadeModel model,
                    const IMMOptions& options, Rng* rng) {
  const uint32_t n = graph.num_nodes();
  const double nd = static_cast<double>(n);
  const double epsilon = options.epsilon;
  const double l =
      options.l + std::log(2.0) / std::log(nd);  // union-bound correction
  const double log_binom = core::LogBinomial(n, k);
  const double one_minus_inv_e = 1.0 - 1.0 / std::numbers::e;

  IMMResult result;
  std::vector<std::vector<graph::NodeId>> rr_sets;
  std::vector<graph::NodeId> scratch;
  auto extend_to = [&](uint64_t count) {
    count = std::min(count, options.max_rr_sets);
    while (rr_sets.size() < count) {
      SampleRRSet(graph, model, rng, &scratch);
      rr_sets.push_back(scratch);
    }
  };

  // Phase 1: estimate a lower bound LB on OPT (IMM Alg. 2).
  const double eps_prime = epsilon * std::numbers::sqrt2;
  const double lambda_prime =
      (2.0 + 2.0 / 3.0 * eps_prime) *
      (log_binom + l * std::log(nd) + std::log(std::log2(nd))) * nd /
      (eps_prime * eps_prime);
  double lb = 1.0;
  const int max_iter = std::max(1, static_cast<int>(std::log2(nd)) - 1);
  for (int i = 1; i <= max_iter; ++i) {
    const double x = nd / std::pow(2.0, i);
    extend_to(static_cast<uint64_t>(std::ceil(lambda_prime / x)));
    std::vector<graph::NodeId> greedy_seeds;
    const double frac = MaxCoverage(rr_sets, n, k, &greedy_seeds);
    if (nd * frac >= (1.0 + eps_prime) * x) {
      lb = nd * frac / (1.0 + eps_prime);
      break;
    }
  }

  // Phase 2: theta = lambda* / LB RR sets.
  const double alpha = std::sqrt(l * std::log(nd) + std::log(2.0));
  const double beta = std::sqrt(one_minus_inv_e *
                                (log_binom + l * std::log(nd) + std::log(2.0)));
  const double lambda_star = 2.0 * nd *
                             (one_minus_inv_e * alpha + beta) *
                             (one_minus_inv_e * alpha + beta) /
                             (epsilon * epsilon);
  extend_to(static_cast<uint64_t>(std::ceil(lambda_star / lb)));

  // Phase 3: node selection.
  const double frac = MaxCoverage(rr_sets, n, k, &result.seeds);
  result.estimated_spread = nd * frac;
  result.rr_sets_used = rr_sets.size();
  return result;
}

}  // namespace voteopt::baselines
