#include "baselines/selector_factory.h"

#include <cctype>

#include "baselines/degree.h"
#include "baselines/ged_t.h"
#include "baselines/imm.h"
#include "baselines/pagerank.h"
#include "baselines/rwr.h"
#include "core/greedy_dm.h"
#include "core/sandwich.h"
#include "util/timer.h"

namespace voteopt::baselines {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kDM:
      return "DM";
    case Method::kRW:
      return "RW";
    case Method::kRS:
      return "RS";
    case Method::kIC:
      return "IC";
    case Method::kLT:
      return "LT";
    case Method::kGedT:
      return "GED-T";
    case Method::kPageRank:
      return "PR";
    case Method::kRWR:
      return "RWR";
    case Method::kDegree:
      return "DC";
  }
  return "?";
}

Result<Method> ParseMethod(const std::string& name) {
  auto lowered = [](const std::string& s) {
    std::string out = s;
    for (char& c : out) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
  };
  const std::string wanted = lowered(name);
  for (Method m : AllMethods()) {
    if (wanted == lowered(MethodName(m))) return m;
  }
  return Status::InvalidArgument("unknown method '" + name +
                                 "' (valid: " + ValidMethodNames() + ")");
}

std::string ValidMethodNames() {
  std::string names;
  for (Method m : AllMethods()) {
    if (!names.empty()) names += ", ";
    names += MethodName(m);
  }
  return names;
}

std::vector<Method> AllMethods() {
  return {Method::kDM,   Method::kRW,  Method::kRS,
          Method::kIC,   Method::kLT,  Method::kGedT,
          Method::kPageRank, Method::kRWR, Method::kDegree};
}

namespace {

core::SelectionResult FromScores(const core::ScoreEvaluator& evaluator,
                                 uint32_t k, const std::vector<double>& scores,
                                 double seconds_so_far) {
  WallTimer timer;
  core::SelectionResult result;
  result.seeds = TopK(scores, k);
  result.score = evaluator.EvaluateSeeds(result.seeds);
  result.seconds = seconds_so_far + timer.Seconds();
  return result;
}

}  // namespace

core::SelectionResult SelectWithMethod(Method method,
                                       const core::ScoreEvaluator& evaluator,
                                       uint32_t k,
                                       const MethodOptions& options) {
  const graph::Graph& g = evaluator.model().graph();
  switch (method) {
    case Method::kDM: {
      // Exact greedy; sandwich approximation supplies the guarantee (and
      // sometimes a better set) for the non-submodular scores.
      if (evaluator.spec().kind == voting::ScoreKind::kCumulative) {
        return core::GreedyDMSelect(evaluator, k);
      }
      return core::SandwichSelect(evaluator, k);
    }
    case Method::kRW:
      return core::RWGreedySelect(evaluator, k, options.rw);
    case Method::kRS:
      return core::RSGreedySelect(evaluator, k, options.rs);
    case Method::kIC:
    case Method::kLT: {
      WallTimer timer;
      Rng rng(options.rng_seed);
      const CascadeModel model = method == Method::kIC
                                     ? CascadeModel::kIndependentCascade
                                     : CascadeModel::kLinearThreshold;
      IMMResult imm = IMMSelect(
          g, k, model, {.epsilon = options.imm_epsilon, .l = options.imm_l},
          &rng);
      core::SelectionResult result;
      result.seeds = std::move(imm.seeds);
      result.score = evaluator.EvaluateSeeds(result.seeds);
      result.seconds = timer.Seconds();
      result.diagnostics["rr_sets"] = static_cast<double>(imm.rr_sets_used);
      result.diagnostics["estimated_spread"] = imm.estimated_spread;
      return result;
    }
    case Method::kGedT:
      return GedTSelect(evaluator, k);
    case Method::kPageRank: {
      WallTimer timer;
      const std::vector<double> scores =
          PageRankScores(g, {.damping = options.pagerank_damping});
      return FromScores(evaluator, k, scores, timer.Seconds());
    }
    case Method::kRWR: {
      WallTimer timer;
      // Restart mass biased toward users already sympathetic to the target
      // (their initial opinions), per the discussion in rwr.h.
      const std::vector<double> scores =
          RWRScores(g, evaluator.target_campaign().initial_opinions,
                    {.restart_prob = options.rwr_restart});
      return FromScores(evaluator, k, scores, timer.Seconds());
    }
    case Method::kDegree: {
      WallTimer timer;
      return FromScores(evaluator, k, WeightedOutDegree(g), timer.Seconds());
    }
  }
  return {};
}

core::SeedSelector MakeSelector(Method method, const MethodOptions& options) {
  return [method, options](const core::ScoreEvaluator& evaluator,
                           uint32_t k) {
    return SelectWithMethod(method, evaluator, k, options);
  };
}

}  // namespace voteopt::baselines
