#include "baselines/rwr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace voteopt::baselines {

std::vector<double> RWRScores(const graph::Graph& graph,
                              const std::vector<double>& restart_distribution,
                              const RWROptions& options) {
  const uint32_t n = graph.num_nodes();
  std::vector<double> restart(n, 1.0 / n);
  if (!restart_distribution.empty()) {
    assert(restart_distribution.size() == n);
    const double sum = std::accumulate(restart_distribution.begin(),
                                       restart_distribution.end(), 0.0);
    if (sum > 0.0) {
      for (uint32_t v = 0; v < n; ++v) restart[v] = restart_distribution[v] / sum;
    }
  }

  std::vector<double> score = restart;
  std::vector<double> next(n);
  const double c = options.restart_prob;
  std::vector<double> out_mass(n);
  for (graph::NodeId u = 0; u < n; ++u) out_mass[u] = graph.OutWeightSum(u);

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    for (graph::NodeId v = 0; v < n; ++v) next[v] = c * restart[v];
    double dangling = 0.0;
    for (graph::NodeId u = 0; u < n; ++u) {
      if (out_mass[u] <= 0.0) {
        dangling += score[u];
        continue;
      }
      const double push = (1.0 - c) * score[u] / out_mass[u];
      const auto targets = graph.OutNeighbors(u);
      const auto weights = graph.OutWeights(u);
      for (size_t i = 0; i < targets.size(); ++i) {
        next[targets[i]] += push * weights[i];
      }
    }
    // Dangling walkers restart.
    for (graph::NodeId v = 0; v < n; ++v) {
      next[v] += (1.0 - c) * dangling * restart[v];
    }
    double diff = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) diff += std::fabs(next[v] - score[v]);
    std::swap(score, next);
    if (diff < options.tolerance) break;
  }
  return score;
}

}  // namespace voteopt::baselines
