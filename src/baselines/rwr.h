// Random Walk with Restart seed selection (paper baseline RWR, after [25]):
// a surfer walks the influence graph forward (following who-influences-whom)
// and restarts with probability `restart_prob`; nodes visited often are
// considered influential. Differs from the PR baseline in orientation and
// in the restart distribution, which can be biased by the target's initial
// opinions (users already sympathetic restart more often, approximating
// campaign exposure).
#ifndef VOTEOPT_BASELINES_RWR_H_
#define VOTEOPT_BASELINES_RWR_H_

#include <vector>

#include "graph/graph.h"

namespace voteopt::baselines {

struct RWROptions {
  double restart_prob = 0.2;
  uint32_t max_iterations = 100;
  double tolerance = 1e-9;
};

/// Stationary visiting probabilities; `restart_distribution` may be empty
/// (uniform) or a non-negative vector of size n (normalized internally).
std::vector<double> RWRScores(const graph::Graph& graph,
                              const std::vector<double>& restart_distribution,
                              const RWROptions& options);

}  // namespace voteopt::baselines

#endif  // VOTEOPT_BASELINES_RWR_H_
