// GED-T: the greedy opinion-maximization algorithm of Gionis, Terzi,
// Tsaparas [25], adapted to a finite time horizon (paper § VIII-A).
//
// [25] selects seeds maximizing the SUM of expressed opinions (at the Nash
// equilibrium there; at the horizon t here) — i.e. it always optimizes the
// cumulative objective for the single target campaign, regardless of which
// voting score the experiment evaluates. This is why GED-T matches DM on
// the cumulative score and trails on the rank-based scores (Figs. 6-8).
#ifndef VOTEOPT_BASELINES_GED_T_H_
#define VOTEOPT_BASELINES_GED_T_H_

#include "core/problem.h"

namespace voteopt::baselines {

/// Greedy cumulative-objective selection at the horizon; the returned
/// result's `score` is evaluated under the evaluator's own (possibly
/// different) score spec.
core::SelectionResult GedTSelect(const core::ScoreEvaluator& evaluator,
                                 uint32_t k);

/// The ORIGINAL [25] objective: greedy maximization of the sum of expressed
/// opinions at the Nash equilibrium (not at a finite horizon). Useful for
/// reproducing the paper's App. B comparison between equilibrium-optimal
/// and horizon-optimal seed sets. CELF-accelerated ([25] proves the
/// equilibrium objective is monotone submodular). The returned score is
/// still evaluated under the evaluator's spec at the evaluator's horizon.
core::SelectionResult GedEquilibriumSelect(
    const core::ScoreEvaluator& evaluator, uint32_t k);

}  // namespace voteopt::baselines

#endif  // VOTEOPT_BASELINES_GED_T_H_
