#include "baselines/degree.h"

namespace voteopt::baselines {

std::vector<double> WeightedOutDegree(const graph::Graph& graph) {
  std::vector<double> degree(graph.num_nodes());
  for (graph::NodeId u = 0; u < graph.num_nodes(); ++u) {
    degree[u] = graph.OutWeightSum(u);
  }
  return degree;
}

std::vector<double> OutDegree(const graph::Graph& graph) {
  std::vector<double> degree(graph.num_nodes());
  for (graph::NodeId u = 0; u < graph.num_nodes(); ++u) {
    degree[u] = static_cast<double>(graph.OutDegree(u));
  }
  return degree;
}

}  // namespace voteopt::baselines
