#include "baselines/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace voteopt::baselines {

std::vector<double> PageRankScores(const graph::Graph& graph,
                                   const PageRankOptions& options) {
  const uint32_t n = graph.num_nodes();
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n);

  // Out-weight mass per node in the walking direction, for normalizing the
  // surfer's transition probabilities.
  std::vector<double> out_mass(n, 0.0);
  for (graph::NodeId u = 0; u < n; ++u) {
    out_mass[u] =
        options.on_transpose ? graph.InWeightSum(u) : graph.OutWeightSum(u);
  }

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    // Dangling mass (nodes with no outgoing transition) is redistributed
    // uniformly, as in the standard formulation.
    double dangling = 0.0;
    for (graph::NodeId u = 0; u < n; ++u) {
      if (out_mass[u] <= 0.0) dangling += rank[u];
    }
    const double base = (1.0 - options.damping) / n +
                        options.damping * dangling / n;
    std::fill(next.begin(), next.end(), base);
    for (graph::NodeId u = 0; u < n; ++u) {
      if (out_mass[u] <= 0.0) continue;
      const double push = options.damping * rank[u] / out_mass[u];
      const auto targets =
          options.on_transpose ? graph.InNeighbors(u) : graph.OutNeighbors(u);
      const auto weights =
          options.on_transpose ? graph.InWeights(u) : graph.OutWeights(u);
      for (size_t i = 0; i < targets.size(); ++i) {
        next[targets[i]] += push * weights[i];
      }
    }
    double diff = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) diff += std::fabs(next[v] - rank[v]);
    std::swap(rank, next);
    if (diff < options.tolerance) break;
  }
  return rank;
}

std::vector<graph::NodeId> TopK(const std::vector<double>& scores,
                                uint32_t k) {
  std::vector<graph::NodeId> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min<uint32_t>(k, static_cast<uint32_t>(order.size()));
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](graph::NodeId a, graph::NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

}  // namespace voteopt::baselines
