// IMM: Influence Maximization via Martingales (Tang, Shi, Xiao; SIGMOD'15)
// — the RR-set-based seed selector used for the paper's IC / LT baselines
// and the EIS comparison (Fig. 11).
//
// Phase 1 (Sampling) estimates a lower bound LB on OPT by testing
// x = n/2, n/4, ... with theta_i = lambda' / x_i RR sets each; Phase 2
// generates theta = lambda* / LB RR sets; Phase 3 (NodeSelection) runs
// lazy-greedy maximum coverage over the RR sets.
#ifndef VOTEOPT_BASELINES_IMM_H_
#define VOTEOPT_BASELINES_IMM_H_

#include <vector>

#include "baselines/cascade_models.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace voteopt::baselines {

struct IMMOptions {
  double epsilon = 0.1;
  double l = 1.0;
  /// Safety cap on the number of RR sets.
  uint64_t max_rr_sets = 1u << 24;
};

struct IMMResult {
  std::vector<graph::NodeId> seeds;
  /// Estimated expected spread of the returned seeds.
  double estimated_spread = 0.0;
  uint64_t rr_sets_used = 0;
};

/// Returns k seeds approximately maximizing expected spread under `model`,
/// with the standard (1 - 1/e - epsilon) guarantee w.p. >= 1 - n^-l.
IMMResult IMMSelect(const graph::Graph& graph, uint32_t k, CascadeModel model,
                    const IMMOptions& options, Rng* rng);

/// Lazy-greedy max coverage over RR sets (exposed for tests): picks k nodes
/// covering the most sets; returns covered fraction.
double MaxCoverage(const std::vector<std::vector<graph::NodeId>>& rr_sets,
                   uint32_t num_nodes, uint32_t k,
                   std::vector<graph::NodeId>* seeds);

}  // namespace voteopt::baselines

#endif  // VOTEOPT_BASELINES_IMM_H_
