// Classic influence-diffusion substrate: Independent Cascade (IC) and
// Linear Threshold (LT) models [9] with Monte-Carlo spread estimation.
//
// These power two parts of the evaluation:
//  * the IC / LT baselines of Figs. 6-8 (IMM-selected seeds, judged under
//    the voting scores), and
//  * the Expected Influence Spread comparison of Fig. 11 (voting-selected
//    seeds, judged under IC / LT spread).
//
// Edge weights are interpreted as activation probabilities (IC) resp.
// influence weights (LT). The paper's influence graphs are column-
// stochastic, which matches LT's requirement that incoming weights sum
// to <= 1.
#ifndef VOTEOPT_BASELINES_CASCADE_MODELS_H_
#define VOTEOPT_BASELINES_CASCADE_MODELS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace voteopt::baselines {

enum class CascadeModel { kIndependentCascade, kLinearThreshold };

/// One Monte-Carlo diffusion from `seeds`; returns the number of activated
/// nodes (seeds included).
uint64_t SimulateSpreadOnce(const graph::Graph& graph,
                            const std::vector<graph::NodeId>& seeds,
                            CascadeModel model, Rng* rng);

/// Mean spread over `runs` simulations — the EIS measure of Fig. 11.
double EstimateSpread(const graph::Graph& graph,
                      const std::vector<graph::NodeId>& seeds,
                      CascadeModel model, uint32_t runs, Rng* rng);

/// Samples one Reverse-Reachable (RR) set from a uniformly random root
/// (used by IMM): under IC a randomized reverse BFS keeping each in-edge
/// with its probability; under LT a reverse chain picking exactly one
/// in-neighbor per step (incoming weights sum to 1). Appends node ids to
/// `out` (cleared first).
void SampleRRSet(const graph::Graph& graph, CascadeModel model, Rng* rng,
                 std::vector<graph::NodeId>* out);

}  // namespace voteopt::baselines

#endif  // VOTEOPT_BASELINES_CASCADE_MODELS_H_
