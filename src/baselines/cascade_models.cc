#include "baselines/cascade_models.h"

#include <deque>

namespace voteopt::baselines {

uint64_t SimulateSpreadOnce(const graph::Graph& graph,
                            const std::vector<graph::NodeId>& seeds,
                            CascadeModel model, Rng* rng) {
  const uint32_t n = graph.num_nodes();
  std::vector<bool> active(n, false);
  std::deque<graph::NodeId> frontier;
  uint64_t activated = 0;
  for (graph::NodeId s : seeds) {
    if (!active[s]) {
      active[s] = true;
      ++activated;
      frontier.push_back(s);
    }
  }

  if (model == CascadeModel::kIndependentCascade) {
    while (!frontier.empty()) {
      const graph::NodeId u = frontier.front();
      frontier.pop_front();
      const auto targets = graph.OutNeighbors(u);
      const auto weights = graph.OutWeights(u);
      for (size_t i = 0; i < targets.size(); ++i) {
        const graph::NodeId v = targets[i];
        if (active[v]) continue;
        if (rng->Bernoulli(weights[i])) {
          active[v] = true;
          ++activated;
          frontier.push_back(v);
        }
      }
    }
    return activated;
  }

  // Linear Threshold: thresholds are sampled lazily; a node activates when
  // the cumulative weight of its active in-neighbors crosses its threshold.
  std::vector<double> threshold(n, -1.0);
  std::vector<double> pressure(n, 0.0);
  while (!frontier.empty()) {
    const graph::NodeId u = frontier.front();
    frontier.pop_front();
    const auto targets = graph.OutNeighbors(u);
    const auto weights = graph.OutWeights(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      const graph::NodeId v = targets[i];
      if (active[v]) continue;
      if (threshold[v] < 0.0) threshold[v] = rng->Uniform();
      pressure[v] += weights[i];
      if (pressure[v] >= threshold[v]) {
        active[v] = true;
        ++activated;
        frontier.push_back(v);
      }
    }
  }
  return activated;
}

double EstimateSpread(const graph::Graph& graph,
                      const std::vector<graph::NodeId>& seeds,
                      CascadeModel model, uint32_t runs, Rng* rng) {
  double total = 0.0;
  for (uint32_t i = 0; i < runs; ++i) {
    total +=
        static_cast<double>(SimulateSpreadOnce(graph, seeds, model, rng));
  }
  return total / static_cast<double>(runs);
}

void SampleRRSet(const graph::Graph& graph, CascadeModel model, Rng* rng,
                 std::vector<graph::NodeId>* out) {
  out->clear();
  const uint32_t n = graph.num_nodes();
  const graph::NodeId root = static_cast<graph::NodeId>(rng->UniformInt(n));

  if (model == CascadeModel::kIndependentCascade) {
    // Randomized reverse BFS: each in-edge is live with its probability.
    std::vector<bool> visited(n, false);
    std::deque<graph::NodeId> queue{root};
    visited[root] = true;
    out->push_back(root);
    while (!queue.empty()) {
      const graph::NodeId v = queue.front();
      queue.pop_front();
      const auto sources = graph.InNeighbors(v);
      const auto weights = graph.InWeights(v);
      for (size_t i = 0; i < sources.size(); ++i) {
        const graph::NodeId u = sources[i];
        if (visited[u]) continue;
        if (rng->Bernoulli(weights[i])) {
          visited[u] = true;
          out->push_back(u);
          queue.push_back(u);
        }
      }
    }
    return;
  }

  // LT: reverse chain choosing exactly one in-neighbor proportional to the
  // edge weights (they sum to 1); stops on revisit or dead end.
  std::vector<bool> visited(n, false);
  graph::NodeId current = root;
  visited[current] = true;
  out->push_back(current);
  while (true) {
    const auto sources = graph.InNeighbors(current);
    const auto weights = graph.InWeights(current);
    if (sources.empty()) break;
    // Inverse-CDF sample of one in-edge (weights sum to ~1).
    double u = rng->Uniform();
    size_t pick = sources.size() - 1;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (u < weights[i]) {
        pick = i;
        break;
      }
      u -= weights[i];
    }
    const graph::NodeId next = sources[pick];
    if (visited[next]) break;
    visited[next] = true;
    out->push_back(next);
    current = next;
  }
}

}  // namespace voteopt::baselines
