// PageRank and weighted degree centrality seed-selection heuristics
// (paper § VIII-A baselines PR and DC).
#ifndef VOTEOPT_BASELINES_PAGERANK_H_
#define VOTEOPT_BASELINES_PAGERANK_H_

#include <vector>

#include "graph/graph.h"

namespace voteopt::baselines {

struct PageRankOptions {
  double damping = 0.85;
  uint32_t max_iterations = 100;
  double tolerance = 1e-9;
  /// Rank on the transpose graph, so users whose influence reaches many
  /// others (rather than users influenced by many) score high — the right
  /// orientation for seed selection.
  bool on_transpose = true;
};

/// Power-iteration PageRank scores (sum to 1).
std::vector<double> PageRankScores(const graph::Graph& graph,
                                   const PageRankOptions& options);

/// Indices of the k largest entries of `scores` (ties toward smaller id).
std::vector<graph::NodeId> TopK(const std::vector<double>& scores, uint32_t k);

}  // namespace voteopt::baselines

#endif  // VOTEOPT_BASELINES_PAGERANK_H_
