#include "baselines/ged_t.h"

#include <numeric>
#include <queue>
#include <tuple>

#include "core/greedy_dm.h"
#include "opinion/equilibrium.h"
#include "util/timer.h"

namespace voteopt::baselines {

core::SelectionResult GedTSelect(const core::ScoreEvaluator& evaluator,
                                 uint32_t k) {
  WallTimer timer;
  const uint32_t n = evaluator.num_users();
  k = std::min<uint32_t>(k, n);

  // Cumulative marginal gains via exact delta propagation, independent of
  // the evaluator's score spec. CELF is sound here: the cumulative
  // objective is submodular (Thm. 3; [25] Thm. 4.2 at equilibrium).
  core::DeltaPropagator propagator(evaluator);
  std::vector<graph::NodeId> touched;
  auto cumulative_gain = [&](graph::NodeId w) {
    const auto& delta = propagator.ComputeDelta(w, &touched);
    double gain = 0.0;
    for (graph::NodeId v : touched) gain += delta[v];
    return gain;
  };

  using Entry = std::tuple<double, graph::NodeId, uint32_t>;
  auto cmp = [](const Entry& a, const Entry& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) > std::get<1>(b);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);
  for (graph::NodeId v = 0; v < n; ++v) queue.emplace(cumulative_gain(v), v, 0);

  std::vector<graph::NodeId> seeds;
  std::vector<bool> chosen(n, false);
  while (seeds.size() < k && !queue.empty()) {
    auto [gain, v, at] = queue.top();
    queue.pop();
    if (chosen[v]) continue;
    if (at == seeds.size()) {
      chosen[v] = true;
      seeds.push_back(v);
      propagator.SetSeeds(seeds);
    } else {
      queue.emplace(cumulative_gain(v), v,
                    static_cast<uint32_t>(seeds.size()));
    }
  }

  core::SelectionResult result;
  result.seeds = std::move(seeds);
  result.score = evaluator.ScoreFromTargetOpinions(propagator.base_horizon());
  result.seconds = timer.Seconds();
  return result;
}

core::SelectionResult GedEquilibriumSelect(
    const core::ScoreEvaluator& evaluator, uint32_t k) {
  WallTimer timer;
  const uint32_t n = evaluator.num_users();
  k = std::min<uint32_t>(k, n);
  const opinion::FJModel& model = evaluator.model();
  const opinion::Campaign& campaign = evaluator.target_campaign();

  // Equilibrium iteration tolerance is loose-ish: the greedy only needs
  // stable orderings of cumulative sums.
  const opinion::EquilibriumOptions eq_options{.tolerance = 1e-8,
                                               .max_iterations = 20000};
  std::vector<graph::NodeId> seeds;
  auto equilibrium_sum = [&](const std::vector<graph::NodeId>& with) {
    const auto eq = opinion::EquilibriumWithSeeds(model, campaign, with,
                                                  eq_options);
    return std::accumulate(eq.opinions.begin(), eq.opinions.end(), 0.0);
  };

  double base_sum = equilibrium_sum({});
  auto gain_of = [&](graph::NodeId w) {
    auto with = seeds;
    with.push_back(w);
    return equilibrium_sum(with) - base_sum;
  };

  // CELF over the equilibrium objective ([25] Thm. 4.2: submodular).
  using Entry = std::tuple<double, graph::NodeId, uint32_t>;
  auto cmp = [](const Entry& a, const Entry& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) > std::get<1>(b);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);
  for (graph::NodeId v = 0; v < n; ++v) queue.emplace(gain_of(v), v, 0);

  std::vector<bool> chosen(n, false);
  while (seeds.size() < k && !queue.empty()) {
    auto [gain, v, at] = queue.top();
    queue.pop();
    if (chosen[v]) continue;
    if (at == seeds.size()) {
      chosen[v] = true;
      seeds.push_back(v);
      base_sum = equilibrium_sum(seeds);
    } else {
      queue.emplace(gain_of(v), v, static_cast<uint32_t>(seeds.size()));
    }
  }

  core::SelectionResult result;
  result.seeds = std::move(seeds);
  result.score = evaluator.EvaluateSeeds(result.seeds);
  result.seconds = timer.Seconds();
  result.diagnostics["equilibrium_sum"] = base_sum;
  return result;
}

}  // namespace voteopt::baselines
