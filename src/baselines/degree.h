// Weighted degree-centrality seed selection (paper baseline DC).
#ifndef VOTEOPT_BASELINES_DEGREE_H_
#define VOTEOPT_BASELINES_DEGREE_H_

#include <vector>

#include "graph/graph.h"

namespace voteopt::baselines {

/// Sum of outgoing influence weights per node (how much opinion mass the
/// node injects into its followers each step).
std::vector<double> WeightedOutDegree(const graph::Graph& graph);

/// Plain out-degree (edge counts), for tests / ablation.
std::vector<double> OutDegree(const graph::Graph& graph);

}  // namespace voteopt::baselines

#endif  // VOTEOPT_BASELINES_DEGREE_H_
