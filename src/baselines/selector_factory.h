// Uniform access to all nine seed-selection methods of the paper's
// evaluation (§ VIII-A): DM, RW, RS (ours) and IC, LT, GED-T, PR, RWR, DC
// (baselines). All methods differ ONLY in how seeds are selected; every
// returned result is scored by the same evaluator under the same diffusion
// model and voting score.
#ifndef VOTEOPT_BASELINES_SELECTOR_FACTORY_H_
#define VOTEOPT_BASELINES_SELECTOR_FACTORY_H_

#include <string>
#include <vector>

#include "core/problem.h"
#include "core/rs_greedy.h"
#include "core/rw_greedy.h"
#include "util/status.h"

namespace voteopt::baselines {

enum class Method {
  kDM,        // exact greedy (+ sandwich for non-submodular scores)
  kRW,        // random-walk estimated greedy (§ V)
  kRS,        // sketch estimated greedy (§ VI) — the paper's recommendation
  kIC,        // IMM under Independent Cascade
  kLT,        // IMM under Linear Threshold
  kGedT,      // [25] adapted to finite horizon
  kPageRank,  // PR heuristic
  kRWR,       // random walk with restart heuristic
  kDegree,    // weighted degree centrality
};

const char* MethodName(Method method);
/// Parses a method name, case-insensitively ("rs", "RS", "ged-t", "GED-T"
/// all resolve). Unknown names fail with an InvalidArgument enumerating
/// the valid spellings (mirrors the protocol's `rule` field behavior).
Result<Method> ParseMethod(const std::string& name);
/// "DM, RW, RS, IC, LT, GED-T, PR, RWR, DC" — for usage strings.
std::string ValidMethodNames();
/// The full method roster in the paper's plotting order.
std::vector<Method> AllMethods();

struct MethodOptions {
  core::RWOptions rw;
  core::RSOptions rs;
  double imm_epsilon = 0.1;
  double imm_l = 1.0;
  double rwr_restart = 0.2;
  double pagerank_damping = 0.85;
  uint64_t rng_seed = 42;
};

/// Runs the requested method and evaluates its seeds exactly.
core::SelectionResult SelectWithMethod(Method method,
                                       const core::ScoreEvaluator& evaluator,
                                       uint32_t k,
                                       const MethodOptions& options = {});

/// Adapts a method into the generic SeedSelector interface (e.g. for the
/// Algorithm-2 binary search).
core::SeedSelector MakeSelector(Method method,
                                const MethodOptions& options = {});

}  // namespace voteopt::baselines

#endif  // VOTEOPT_BASELINES_SELECTOR_FACTORY_H_
