#include "sketch_ooc/block_store.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace voteopt::sketch_ooc {

namespace {

struct BlockMetaDisk {
  uint32_t block_index;
  uint32_t reserved;
  uint64_t lo;
  uint64_t hi;
  uint64_t num_edges;
  uint64_t graph_fingerprint;
};
static_assert(sizeof(BlockMetaDisk) == 40);

struct ManifestMetaDisk {
  uint32_t num_nodes;
  uint32_t num_blocks;
  uint64_t num_edges;
  uint64_t graph_fingerprint;
};
static_assert(sizeof(ManifestMetaDisk) == 24);

// Writes a section file atomically: temp sibling + rename, so a crash
// mid-write never leaves a half-written file at the final path.
Status WriteSectionFileAtomic(const std::string& path, store::FileKind kind,
                              const std::vector<store::SectionRef>& sections) {
  const std::string tmp = path + ".tmp";
  if (Status st = store::WriteSectionFile(tmp, kind, sections); !st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace

uint64_t InCsrFingerprint(const graph::Graph& graph) {
  const auto offsets = graph.InOffsets();
  const auto sources = graph.InSources();
  const auto weights = graph.InWeightsRaw();
  uint64_t h[3] = {
      store::Fnv1a64(offsets.data(), offsets.size_bytes()),
      store::Fnv1a64(sources.data(), sources.size_bytes()),
      store::Fnv1a64(weights.data(), weights.size_bytes()),
  };
  return store::Fnv1a64(h, sizeof(h));
}

std::string BlockPath(const std::string& prefix, uint32_t block) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".blk%05u", block);
  return prefix + suffix;
}

std::string ManifestPath(const std::string& prefix) {
  return prefix + ".blkmanifest";
}

Status WriteBlocks(const graph::Graph& graph, const PartitionPlan& plan,
                   const std::string& prefix) {
  VOTEOPT_RETURN_IF_ERROR(plan.Validate(graph.num_nodes()));
  const uint64_t fingerprint = InCsrFingerprint(graph);
  const auto global_offsets = graph.InOffsets();
  const auto sources = graph.InSources();
  const auto weights = graph.InWeightsRaw();

  std::vector<uint64_t> block_edges(plan.num_blocks());
  std::vector<uint64_t> local_offsets;
  for (uint32_t b = 0; b < plan.num_blocks(); ++b) {
    const graph::NodeId lo = plan.bounds[b], hi = plan.bounds[b + 1];
    const uint64_t edge_begin = global_offsets[lo];
    const uint64_t edge_end = global_offsets[hi];
    block_edges[b] = edge_end - edge_begin;

    // Rebase the range's offsets to the block-local edge space.
    local_offsets.resize(hi - lo + 1);
    for (uint64_t i = 0; i <= hi - lo; ++i) {
      local_offsets[i] = global_offsets[lo + i] - edge_begin;
    }

    const BlockMetaDisk meta{b, 0, lo, hi, block_edges[b], fingerprint};
    std::vector<store::SectionRef> sections;
    sections.push_back({"blockmeta", &meta, sizeof(meta)});
    sections.push_back(store::MakeSection(
        "in_offsets", std::span<const uint64_t>(local_offsets)));
    sections.push_back(store::MakeSection(
        "in_sources", sources.subspan(edge_begin, block_edges[b])));
    sections.push_back(store::MakeSection(
        "in_weights", weights.subspan(edge_begin, block_edges[b])));
    VOTEOPT_RETURN_IF_ERROR(WriteSectionFileAtomic(
        BlockPath(prefix, b), store::FileKind::kGraphBlock, sections));
  }

  // The manifest goes last: its presence certifies every block above
  // reached its final path.
  const ManifestMetaDisk meta{graph.num_nodes(), plan.num_blocks(),
                              graph.num_edges(), fingerprint};
  std::vector<store::SectionRef> sections;
  sections.push_back({"meta", &meta, sizeof(meta)});
  sections.push_back(store::MakeSection(
      "bounds", std::span<const graph::NodeId>(plan.bounds)));
  sections.push_back(store::MakeSection(
      "block_edges", std::span<const uint64_t>(block_edges)));
  return WriteSectionFileAtomic(ManifestPath(prefix),
                                store::FileKind::kBlockManifest, sections);
}

void RemoveBlocks(const std::string& prefix, uint32_t num_blocks) {
  std::remove(ManifestPath(prefix).c_str());
  for (uint32_t b = 0; b < num_blocks; ++b) {
    std::remove(BlockPath(prefix, b).c_str());
  }
}

Result<BlockSet> BlockSet::Open(const std::string& prefix) {
  auto file = store::MappedFile::Open(ManifestPath(prefix));
  if (!file.ok()) return file.status();
  auto reader =
      store::SectionReader::Parse(*file, store::FileKind::kBlockManifest);
  if (!reader.ok()) return reader.status();

  auto meta_raw = reader->Raw("meta");
  if (!meta_raw.ok()) return meta_raw.status();
  if (meta_raw->size() != sizeof(ManifestMetaDisk)) {
    return Status::Corruption(prefix + ": bad block manifest meta size");
  }
  ManifestMetaDisk meta;
  std::memcpy(&meta, meta_raw->data(), sizeof(meta));

  auto bounds = reader->Typed<graph::NodeId>("bounds");
  if (!bounds.ok()) return bounds.status();
  auto block_edges = reader->Typed<uint64_t>("block_edges");
  if (!block_edges.ok()) return block_edges.status();

  BlockSet set;
  set.prefix_ = prefix;
  set.plan_.bounds.assign(bounds->begin(), bounds->end());
  set.block_edges_.assign(block_edges->begin(), block_edges->end());
  set.num_edges_ = meta.num_edges;
  set.fingerprint_ = meta.graph_fingerprint;
  if (set.plan_.bounds.size() != meta.num_blocks + 1ull ||
      set.block_edges_.size() != meta.num_blocks) {
    return Status::Corruption(prefix +
                              ": block manifest sections disagree with meta");
  }
  VOTEOPT_RETURN_IF_ERROR(set.plan_.Validate(meta.num_nodes));
  uint64_t total_edges = 0;
  for (uint64_t e : set.block_edges_) total_edges += e;
  if (total_edges != meta.num_edges) {
    return Status::Corruption(prefix +
                              ": block edge counts disagree with manifest");
  }
  return set;
}

Result<GraphBlock> BlockSet::LoadBlock(uint32_t block) const {
  if (block >= num_blocks()) {
    return Status::OutOfRange("block index out of range");
  }
  const std::string path = BlockPath(prefix_, block);
  auto file = store::MappedFile::Open(path);
  if (!file.ok()) return file.status();
  auto reader =
      store::SectionReader::Parse(*file, store::FileKind::kGraphBlock);
  if (!reader.ok()) return reader.status();

  auto meta_raw = reader->Raw("blockmeta");
  if (!meta_raw.ok()) return meta_raw.status();
  if (meta_raw->size() != sizeof(BlockMetaDisk)) {
    return Status::Corruption(path + ": bad block meta size");
  }
  BlockMetaDisk meta;
  std::memcpy(&meta, meta_raw->data(), sizeof(meta));

  const graph::NodeId lo = plan_.bounds[block];
  const graph::NodeId hi = plan_.bounds[block + 1];
  if (meta.block_index != block || meta.lo != lo || meta.hi != hi ||
      meta.num_edges != block_edges_[block] ||
      meta.graph_fingerprint != fingerprint_) {
    return Status::Corruption(path + ": block disagrees with its manifest");
  }

  auto offsets = reader->Typed<uint64_t>("in_offsets");
  if (!offsets.ok()) return offsets.status();
  auto sources = reader->Typed<graph::NodeId>("in_sources");
  if (!sources.ok()) return sources.status();
  auto weights = reader->Typed<double>("in_weights");
  if (!weights.ok()) return weights.status();

  if (offsets->size() != static_cast<uint64_t>(hi - lo) + 1 ||
      offsets->front() != 0 || offsets->back() != meta.num_edges ||
      sources->size() != meta.num_edges ||
      weights->size() != meta.num_edges) {
    return Status::Corruption(path + ": block CSR sections are inconsistent");
  }
  for (uint64_t i = 1; i < offsets->size(); ++i) {
    if ((*offsets)[i] < (*offsets)[i - 1]) {
      return Status::Corruption(path + ": block offsets must be monotone");
    }
  }
  for (graph::NodeId u : *sources) {
    if (u >= num_nodes()) {
      return Status::Corruption(path + ": block edge source out of range");
    }
  }
  // Alias construction divides by each row's weight sum, so guard exactly
  // what it needs: non-negative finite weights, positive row sums.
  for (uint64_t row = 0; row + 1 < offsets->size(); ++row) {
    double sum = 0.0;
    for (uint64_t i = (*offsets)[row]; i < (*offsets)[row + 1]; ++i) {
      const double w = (*weights)[i];
      if (!(w >= 0.0) || !std::isfinite(w)) {
        return Status::Corruption(path + ": block edge weight is invalid");
      }
      sum += w;
    }
    if ((*offsets)[row] != (*offsets)[row + 1] && !(sum > 0.0)) {
      return Status::Corruption(path + ": block row weights sum to zero");
    }
  }

  GraphBlock out;
  out.lo = lo;
  out.hi = hi;
  out.in_offsets = *offsets;
  out.in_sources = *sources;
  out.in_weights = *weights;
  out.alias = std::make_unique<graph::AliasSlice>(out.in_offsets,
                                                  out.in_sources,
                                                  out.in_weights);
  out.keep_alive = reader->file();
  return out;
}

}  // namespace voteopt::sketch_ooc
