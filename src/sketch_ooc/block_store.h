// Persistence of partitioned graph blocks via the store:: section format.
//
// A block set is P files `<prefix>.blk00000 .. .blk<P-1>` (FileKind
// kGraphBlock) plus one manifest `<prefix>.blkmanifest` (kBlockManifest).
// Each block file holds the rebased in-CSR slice of its node range
// [lo, hi): local offsets (hi - lo + 1 entries, offsets[0] == 0), the
// concatenated in-edge sources (GLOBAL node ids) and weights, and a meta
// section naming the range and the in-CSR fingerprint of the source graph.
//
// Crash consistency: every file is written temp + rename, and the manifest
// is written LAST — its presence certifies that all block files were
// complete at write time. Open() validates the manifest, and LoadBlock()
// re-validates every block against it (kind, checksums via the store
// format, range, edge count, fingerprint), so a truncated or corrupted
// block yields a clean Status and no partial data is ever served.
#ifndef VOTEOPT_SKETCH_OOC_BLOCK_STORE_H_
#define VOTEOPT_SKETCH_OOC_BLOCK_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/alias_table.h"
#include "graph/graph.h"
#include "sketch_ooc/partition.h"
#include "store/format.h"
#include "util/status.h"

namespace voteopt::sketch_ooc {

/// FNV-1a fingerprint of a graph's in-CSR arrays: ties block files to the
/// exact graph they were cut from, so a stale block set is rejected rather
/// than silently mixed with a regenerated sibling.
uint64_t InCsrFingerprint(const graph::Graph& graph);

/// Path of block b / the manifest under `prefix` (exposed so tests can
/// truncate or corrupt individual files).
std::string BlockPath(const std::string& prefix, uint32_t block);
std::string ManifestPath(const std::string& prefix);

/// Writes the full block set for `plan` (which must Validate against
/// `graph`), blocks first, manifest last, every file temp + rename.
Status WriteBlocks(const graph::Graph& graph, const PartitionPlan& plan,
                   const std::string& prefix);

/// Removes the manifest and block files of a block set (best effort; used
/// to clean scratch block sets after an OOC build).
void RemoveBlocks(const std::string& prefix, uint32_t num_blocks);

/// One resident block: span views into the mapped file (pinned by
/// keep_alive) plus the block-local alias tables. Row r of the local CSR
/// is global node lo + r; sampled sources are global ids.
struct GraphBlock {
  graph::NodeId lo = 0;
  graph::NodeId hi = 0;
  std::span<const uint64_t> in_offsets;  // local; hi - lo + 1 entries
  std::span<const graph::NodeId> in_sources;
  std::span<const double> in_weights;
  std::unique_ptr<graph::AliasSlice> alias;
  std::shared_ptr<const store::MappedFile> keep_alive;
};

/// A validated, openable block set. Open() reads only the manifest; block
/// files are mapped on demand by LoadBlock, one at a time by the OOC
/// scheduler — that is the out-of-core contract.
class BlockSet {
 public:
  static Result<BlockSet> Open(const std::string& prefix);

  const PartitionPlan& plan() const { return plan_; }
  uint32_t num_blocks() const { return plan_.num_blocks(); }
  graph::NodeId num_nodes() const { return plan_.num_nodes(); }
  uint64_t num_edges() const { return num_edges_; }
  uint64_t fingerprint() const { return fingerprint_; }
  const std::string& prefix() const { return prefix_; }

  /// Maps, validates, and compiles block b (alias tables included).
  Result<GraphBlock> LoadBlock(uint32_t block) const;

 private:
  std::string prefix_;
  PartitionPlan plan_;
  std::vector<uint64_t> block_edges_;
  uint64_t num_edges_ = 0;
  uint64_t fingerprint_ = 0;
};

}  // namespace voteopt::sketch_ooc

#endif  // VOTEOPT_SKETCH_OOC_BLOCK_STORE_H_
