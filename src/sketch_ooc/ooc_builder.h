// The out-of-core sketch builder (ROADMAP item 1): generates the theta
// reverse walks of a sketch over a partitioned graph whose blocks are
// loaded one at a time, and produces a WalkSet BIT-IDENTICAL to the
// in-memory core::BuildSketchSet for the same (master_seed, theta) —
// determinism ledger entry #7 in docs/ARCHITECTURE.md.
//
// Why bit-identity holds: walk j draws its start and every transition from
// its own stream core::SketchWalkRng(master_seed, j) (walk_engine.h), and
// the block-local AliasSlice tables consume that stream exactly as the
// full-graph AliasSampler does. A walk's trajectory is therefore a pure
// function of (master_seed, j) — the scheduler may suspend a walk at a
// partition boundary, park it on the destination block's queue, and resume
// it whenever that block is resident, in any order, on any thread, without
// changing a single byte of the result. Walks are reassembled in walk-index
// order, which is the in-memory builder's order.
//
// Scheduling: walks are seeded in waves (bounding resident trajectory
// memory), each wave's walks are parked on the block owning their current
// node, and rounds sweep the blocks in the fixed order 0 .. P-1, advancing
// every parked walk until it terminates or crosses into another block.
// Campaign arrays (stubbornness, initial opinions) are n-sized and stay in
// core; the graph's in-CSR + alias tables — the scale-dominant state — page
// in per block.
#ifndef VOTEOPT_SKETCH_OOC_OOC_BUILDER_H_
#define VOTEOPT_SKETCH_OOC_OOC_BUILDER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/walk_set.h"
#include "opinion/opinion_state.h"
#include "sketch_ooc/block_store.h"
#include "sketch_ooc/partition.h"
#include "util/status.h"

namespace voteopt::sketch_ooc {

struct OocBuildOptions {
  /// Worker threads for within-block advancement: 0 = one per hardware
  /// thread, 1 = run inline. Never changes the output.
  uint32_t num_threads = 0;
  /// Walks seeded per wave. Resident walk state is
  /// wave_walks * (horizon + 2) node ids plus O(wave_walks) task records,
  /// independent of theta. A pure scheduling knob.
  uint64_t wave_walks = 1 << 16;
};

/// Diagnostics of one OOC build (scheduling-dependent; the WalkSet is not).
struct OocBuildStats {
  uint32_t num_blocks = 0;
  uint64_t waves = 0;
  uint64_t rounds = 0;         // block sweeps across all waves
  uint64_t block_loads = 0;    // block file map + validate + alias compile
  uint64_t boundary_hops = 0;  // walk suspensions at partition boundaries
};

/// Builds the sketch over an opened block set. `campaign` must match the
/// graph the blocks were cut from (n nodes). The returned WalkSet has been
/// finalized and carries the Eq. 35/42/47 start weights — byte-for-byte
/// what core::BuildSketchSet(evaluator, theta, master_seed, options)
/// produces for any thread count or block size.
Result<std::unique_ptr<core::WalkSet>> BuildSketchSetOoc(
    const BlockSet& blocks, const opinion::Campaign& campaign,
    uint32_t horizon, uint64_t theta, uint64_t master_seed,
    const OocBuildOptions& options, OocBuildStats* stats = nullptr);

/// One-call convenience for callers holding an in-memory graph (the
/// registry's `block_budget_bytes` path): plans a budget-driven partition,
/// writes the block files under `scratch_prefix`, builds, and removes the
/// scratch files (kept on failure for post-mortems only when writing
/// succeeded but the build failed).
Result<std::unique_ptr<core::WalkSet>> BuildSketchSetOocFromGraph(
    const graph::Graph& graph, const opinion::Campaign& campaign,
    uint32_t horizon, uint64_t theta, uint64_t master_seed,
    uint64_t block_budget_bytes, const std::string& scratch_prefix,
    const OocBuildOptions& options, OocBuildStats* stats = nullptr);

/// Regenerates exactly the walks listed in `walk_indices` (global sketch
/// walk indices) against the opened block set, appending their node
/// sequences to `out` in list order. Because walk j is a pure function of
/// (master_seed, j, horizon) and the graph, each regenerated walk is
/// byte-identical to what a full (in-memory or OOC) build over the same
/// graph would produce for that index — the block-aware half of the
/// incremental sketch repairer (dyn/repair.h). Scheduling knobs in
/// `options` never change the output.
Status RegenerateWalksOoc(const BlockSet& blocks,
                          const opinion::Campaign& campaign, uint32_t horizon,
                          uint64_t master_seed,
                          std::span<const uint64_t> walk_indices,
                          const OocBuildOptions& options,
                          core::WalkBuffer* out, OocBuildStats* stats = nullptr);

}  // namespace voteopt::sketch_ooc

#endif  // VOTEOPT_SKETCH_OOC_OOC_BUILDER_H_
