#include "sketch_ooc/partition.h"

#include <algorithm>

namespace voteopt::sketch_ooc {

uint32_t PartitionPlan::BlockOf(graph::NodeId v) const {
  // First bound strictly greater than v, minus one, is v's range.
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
  return static_cast<uint32_t>(it - bounds.begin()) - 1;
}

Status PartitionPlan::Validate(uint32_t expected_num_nodes) const {
  if (bounds.size() < 2) {
    return Status::InvalidArgument("partition plan needs >= 1 block");
  }
  if (bounds.front() != 0) {
    return Status::InvalidArgument("partition bounds must start at 0");
  }
  if (bounds.back() != expected_num_nodes) {
    return Status::InvalidArgument("partition bounds must end at num_nodes");
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      return Status::InvalidArgument("partition bounds must strictly increase");
    }
  }
  return Status::OK();
}

uint64_t NodeResidentBytes(const graph::Graph& graph, graph::NodeId v) {
  const uint64_t deg = graph.InNeighbors(v).size();
  return sizeof(uint64_t) +
         deg * (sizeof(graph::NodeId) + sizeof(double) +  // CSR slice
                sizeof(double) + sizeof(uint32_t));       // alias rows
}

Result<PartitionPlan> PlanByBudget(const graph::Graph& graph,
                                   uint64_t block_budget_bytes) {
  const uint32_t n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("cannot partition an empty graph");
  if (block_budget_bytes == 0) {
    return Status::InvalidArgument("block_budget_bytes must be > 0");
  }
  PartitionPlan plan;
  plan.bounds.push_back(0);
  uint64_t used = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    const uint64_t bytes = NodeResidentBytes(graph, v);
    if (used > 0 && used + bytes > block_budget_bytes) {
      plan.bounds.push_back(v);
      used = 0;
    }
    used += bytes;
  }
  plan.bounds.push_back(n);
  return plan;
}

Result<PartitionPlan> PlanByCount(const graph::Graph& graph,
                                  uint32_t num_blocks) {
  const uint32_t n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("cannot partition an empty graph");
  const uint32_t p = std::clamp<uint32_t>(num_blocks, 1, n);
  PartitionPlan plan;
  plan.bounds.reserve(p + 1);
  for (uint32_t b = 0; b < p; ++b) {
    // Even split with the remainder spread over the first n % p blocks.
    plan.bounds.push_back(static_cast<graph::NodeId>(
        (static_cast<uint64_t>(n) * b) / p));
  }
  plan.bounds.push_back(n);
  return plan;
}

}  // namespace voteopt::sketch_ooc
