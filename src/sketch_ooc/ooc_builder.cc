#include "sketch_ooc/ooc_builder.h"

#include <algorithm>
#include <future>
#include <utility>
#include <vector>

#include "core/sketch.h"
#include "core/walk_engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace voteopt::sketch_ooc {

namespace {

/// A suspended walk parked on a block queue. Carrying the Rng (4x uint64 +
/// a cached normal; trivially copyable) is what lets a walk resume on any
/// block, thread, and round with its stream intact.
struct WalkTask {
  uint64_t local;          // walk index within the wave
  graph::NodeId current;   // walk head; already recorded in the slab
  uint32_t steps_left;     // transitions the walk may still take
  Rng rng;
};

/// Where an advanced walk went: terminated, or parked on another block.
struct Moved {
  uint32_t dest_block;
  WalkTask task;
};

/// Advances one walk inside `block` until it terminates (absorbed, no
/// in-edges, or horizon exhausted) or its head leaves the block's node
/// range with steps remaining. Replicates core::WalkEngine::Extend's RNG
/// consumption exactly: per step, the stubbornness draw (skipped when
/// d >= 1), then AliasSlice sampling — one UniformInt + one Uniform when
/// the row has in-edges, nothing when it does not.
/// Returns true when the walk crossed (out->dest_block / out->task set).
bool AdvanceInBlock(WalkTask task, const GraphBlock& block,
                    const opinion::Campaign& campaign,
                    const PartitionPlan& plan, graph::NodeId* slab_row,
                    uint32_t* length, Moved* out) {
  while (task.steps_left > 0) {
    const double d = campaign.stubbornness[task.current];
    if (d >= 1.0 || (d > 0.0 && task.rng.Uniform() < d)) return false;
    const graph::NodeId next =
        block.alias->SampleInNeighbor(task.current - block.lo, &task.rng);
    if (next == graph::AliasSlice::kNoNeighbor) return false;
    slab_row[(*length)++] = next;
    --task.steps_left;
    task.current = next;
    if ((next < block.lo || next >= block.hi) && task.steps_left > 0) {
      out->dest_block = plan.BlockOf(next);
      out->task = task;
      return true;
    }
    if (next < block.lo || next >= block.hi) return false;  // done anyway
  }
  return false;
}

/// The shared wave/round scheduler: generates `count` walks whose global
/// sketch indices are `global_index(0) .. global_index(count - 1)`, calling
/// `emit(assembled)` once per wave with the wave's walks in list order.
/// BuildSketchSetOoc instantiates it with the identity mapping over
/// 0..theta-1; RegenerateWalksOoc with a dirty-walk index list. Both
/// produce per-walk bytes identical to the in-memory builder's, because
/// each walk's entire trajectory comes from its own SketchWalkRng stream.
template <typename IndexFn, typename EmitFn>
Status RunWalkWaves(const BlockSet& blocks, const opinion::Campaign& campaign,
                    uint32_t horizon, uint64_t master_seed, uint64_t count,
                    const OocBuildOptions& options, OocBuildStats* local_stats,
                    IndexFn global_index, EmitFn emit) {
  const uint32_t n = blocks.num_nodes();
  const PartitionPlan& plan = blocks.plan();
  const uint32_t num_blocks = plan.num_blocks();
  local_stats->num_blocks = num_blocks;

  uint32_t threads = options.num_threads == 0
                         ? ThreadPool::DefaultThreadCount()
                         : options.num_threads;
  threads = std::max<uint32_t>(threads, 1);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  const uint64_t wave_walks = std::max<uint64_t>(options.wave_walks, 1);
  const uint64_t stride = static_cast<uint64_t>(horizon) + 1;

  std::vector<graph::NodeId> slab;
  std::vector<uint32_t> lengths;
  std::vector<std::vector<WalkTask>> queues(num_blocks);
  core::WalkBuffer assembled;

  for (uint64_t wave_begin = 0; wave_begin < count; wave_begin += wave_walks) {
    const uint64_t wave_count = std::min(wave_walks, count - wave_begin);
    ++local_stats->waves;
    slab.resize(wave_count * stride);
    lengths.assign(wave_count, 0);

    // Seed: walk j opens its own stream, draws its start, and parks on the
    // block owning that node.
    uint64_t remaining = wave_count;
    for (uint64_t local = 0; local < wave_count; ++local) {
      Rng rng =
          core::SketchWalkRng(master_seed, global_index(wave_begin + local));
      const auto start = static_cast<graph::NodeId>(rng.UniformInt(n));
      slab[local * stride] = start;
      lengths[local] = 1;
      if (horizon == 0) {
        --remaining;
        continue;
      }
      queues[plan.BlockOf(start)].push_back({local, start, horizon, rng});
    }

    // Rounds: sweep blocks in the fixed order 0..P-1, draining each queue
    // with at most one block resident at a time. Any processing order
    // yields the same slab bytes (per-walk streams), so the order is
    // chosen purely for locality: a walk crossing forward continues within
    // the same sweep.
    std::vector<WalkTask> active;
    while (remaining > 0) {
      ++local_stats->rounds;
      for (uint32_t b = 0; b < num_blocks; ++b) {
        if (queues[b].empty()) continue;
        auto block = blocks.LoadBlock(b);
        if (!block.ok()) return block.status();
        ++local_stats->block_loads;

        active.swap(queues[b]);
        queues[b].clear();
        // Walks crossing back into b during this drain start a fresh batch
        // in queues[b]; they are picked up next sweep (self-loops within
        // the range continue inline and never enqueue).
        const size_t chunk_size =
            pool ? std::max<size_t>(256, active.size() / (threads * 4) + 1)
                 : active.size();
        const size_t num_chunks =
            (active.size() + chunk_size - 1) / chunk_size;
        std::vector<std::vector<Moved>> moved(num_chunks);
        std::vector<uint64_t> terminated(num_chunks, 0);
        auto run_chunk = [&](size_t c) {
          const size_t begin = c * chunk_size;
          const size_t end = std::min(active.size(), begin + chunk_size);
          for (size_t i = begin; i < end; ++i) {
            const WalkTask& task = active[i];
            Moved out;
            if (AdvanceInBlock(task, *block, campaign, plan,
                               slab.data() + task.local * stride,
                               &lengths[task.local], &out)) {
              moved[c].push_back(out);
            } else {
              ++terminated[c];
            }
          }
        };
        if (pool && num_chunks > 1) {
          std::vector<std::future<void>> done;
          done.reserve(num_chunks);
          for (size_t c = 0; c < num_chunks; ++c) {
            done.push_back(pool->Submit([&run_chunk, c] { run_chunk(c); }));
          }
          for (auto& f : done) f.get();
        } else {
          for (size_t c = 0; c < num_chunks; ++c) run_chunk(c);
        }
        // Merge in chunk order (determinism of the stats and of queue
        // order; the walk bytes never depended on it).
        for (size_t c = 0; c < num_chunks; ++c) {
          for (const Moved& m : moved[c]) {
            queues[m.dest_block].push_back(m.task);
            ++local_stats->boundary_hops;
          }
          remaining -= terminated[c];
        }
        active.clear();
      }
    }

    // Reassemble the wave in walk-index order — the in-memory builder's
    // append order, hence bit-identity of the WalkSet.
    assembled.nodes.clear();
    assembled.lengths.clear();
    uint64_t total = 0;
    for (uint64_t local = 0; local < wave_count; ++local) total += lengths[local];
    assembled.nodes.reserve(total);
    assembled.lengths.reserve(wave_count);
    for (uint64_t local = 0; local < wave_count; ++local) {
      const graph::NodeId* row = slab.data() + local * stride;
      assembled.nodes.insert(assembled.nodes.end(), row, row + lengths[local]);
      assembled.lengths.push_back(lengths[local]);
    }
    emit(assembled);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<core::WalkSet>> BuildSketchSetOoc(
    const BlockSet& blocks, const opinion::Campaign& campaign,
    uint32_t horizon, uint64_t theta, uint64_t master_seed,
    const OocBuildOptions& options, OocBuildStats* stats) {
  const uint32_t n = blocks.num_nodes();
  VOTEOPT_RETURN_IF_ERROR(campaign.Validate(n));

  OocBuildStats local_stats;
  auto walks = std::make_unique<core::WalkSet>(n);
  VOTEOPT_RETURN_IF_ERROR(RunWalkWaves(
      blocks, campaign, horizon, master_seed, theta, options, &local_stats,
      [](uint64_t i) { return i; },
      [&walks](const core::WalkBuffer& wave) { walks->AddWalks(wave); }));

  walks->Finalize(campaign.initial_opinions);
  core::ApplySketchWeights(walks.get(), n, theta);
  if (stats) *stats = local_stats;
  return walks;
}

Status RegenerateWalksOoc(const BlockSet& blocks,
                          const opinion::Campaign& campaign, uint32_t horizon,
                          uint64_t master_seed,
                          std::span<const uint64_t> walk_indices,
                          const OocBuildOptions& options,
                          core::WalkBuffer* out, OocBuildStats* stats) {
  VOTEOPT_RETURN_IF_ERROR(campaign.Validate(blocks.num_nodes()));
  OocBuildStats local_stats;
  VOTEOPT_RETURN_IF_ERROR(RunWalkWaves(
      blocks, campaign, horizon, master_seed, walk_indices.size(), options,
      &local_stats, [walk_indices](uint64_t i) { return walk_indices[i]; },
      [out](const core::WalkBuffer& wave) {
        out->nodes.insert(out->nodes.end(), wave.nodes.begin(),
                          wave.nodes.end());
        out->lengths.insert(out->lengths.end(), wave.lengths.begin(),
                            wave.lengths.end());
      }));
  if (stats) *stats = local_stats;
  return Status::OK();
}

Result<std::unique_ptr<core::WalkSet>> BuildSketchSetOocFromGraph(
    const graph::Graph& graph, const opinion::Campaign& campaign,
    uint32_t horizon, uint64_t theta, uint64_t master_seed,
    uint64_t block_budget_bytes, const std::string& scratch_prefix,
    const OocBuildOptions& options, OocBuildStats* stats) {
  auto plan = PlanByBudget(graph, block_budget_bytes);
  if (!plan.ok()) return plan.status();
  const uint32_t num_blocks = plan->num_blocks();
  if (Status st = WriteBlocks(graph, *plan, scratch_prefix); !st.ok()) {
    RemoveBlocks(scratch_prefix, num_blocks);
    return st;
  }
  auto blocks = BlockSet::Open(scratch_prefix);
  if (!blocks.ok()) {
    RemoveBlocks(scratch_prefix, num_blocks);
    return blocks.status();
  }
  auto result = BuildSketchSetOoc(*blocks, campaign, horizon, theta,
                                  master_seed, options, stats);
  RemoveBlocks(scratch_prefix, num_blocks);
  return result;
}

}  // namespace voteopt::sketch_ooc
