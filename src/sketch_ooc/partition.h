// Node-range partitioning of a graph's in-CSR for the out-of-core sketch
// engine (ROADMAP item 1; GraphWalker-style block sharding).
//
// A partition plan cuts the node id space [0, n) into P contiguous ranges
// [bounds[b], bounds[b+1]). Each range's in-adjacency slice — rebased
// offsets, sources, weights, plus its alias tables — forms one block, the
// unit that block_store persists and the OOC walk scheduler keeps resident
// one at a time. Contiguous ranges keep BlockOf(v) a binary search and let
// block files be cut from the graph's in-CSR arrays with no reshuffling.
#ifndef VOTEOPT_SKETCH_OOC_PARTITION_H_
#define VOTEOPT_SKETCH_OOC_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace voteopt::sketch_ooc {

/// A contiguous node-range partition: bounds has num_blocks + 1 entries,
/// bounds.front() == 0, bounds.back() == n, strictly increasing.
struct PartitionPlan {
  std::vector<graph::NodeId> bounds;

  uint32_t num_blocks() const {
    return static_cast<uint32_t>(bounds.size()) - 1;
  }
  graph::NodeId num_nodes() const { return bounds.back(); }

  /// The block containing node v (v < num_nodes()). O(log P).
  uint32_t BlockOf(graph::NodeId v) const;

  /// Structural validation: monotone bounds covering [0, n).
  Status Validate(uint32_t expected_num_nodes) const;
};

/// Estimated resident bytes of node v's block share: its rebased in-CSR
/// slice (one uint64 offset + NodeId source + double weight per edge) plus
/// its alias-table rows (double prob + uint32 alias per edge). This is the
/// currency PlanByBudget cuts against.
uint64_t NodeResidentBytes(const graph::Graph& graph, graph::NodeId v);

/// Greedy budget-driven plan: nodes are appended to the current block until
/// its estimated resident bytes would exceed `block_budget_bytes`, then a
/// new block starts. Every block holds at least one node, so a single node
/// heavier than the budget still gets a (over-budget) block of its own.
/// InvalidArgument when the graph is empty or the budget is 0.
Result<PartitionPlan> PlanByBudget(const graph::Graph& graph,
                                   uint64_t block_budget_bytes);

/// Fixed-count plan: n nodes split into `num_blocks` near-equal contiguous
/// ranges (for tests and benchmarks that pin a block count directly —
/// including the pathological n-blocks-of-1). num_blocks is clamped to
/// [1, n]. InvalidArgument when the graph is empty.
Result<PartitionPlan> PlanByCount(const graph::Graph& graph,
                                  uint32_t num_blocks);

}  // namespace voteopt::sketch_ooc

#endif  // VOTEOPT_SKETCH_OOC_PARTITION_H_
