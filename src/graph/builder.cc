#include "graph/builder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

namespace voteopt::graph {

GraphBuilder::GraphBuilder(uint32_t num_nodes) : num_nodes_(num_nodes) {}

void GraphBuilder::AddEdge(NodeId u, NodeId v, double w) {
  sources_.push_back(u);
  targets_.push_back(v);
  weights_.push_back(w);
}

void GraphBuilder::AddUndirectedEdge(NodeId u, NodeId v, double w) {
  AddEdge(u, v, w);
  AddEdge(v, u, w);
}

Result<Graph> GraphBuilder::Build(const BuildOptions& options) const {
  // Validate endpoints and weights.
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i] >= num_nodes_ || targets_[i] >= num_nodes_) {
      return Status::InvalidArgument(
          "edge (" + std::to_string(sources_[i]) + " -> " +
          std::to_string(targets_[i]) + ") has endpoint outside [0, " +
          std::to_string(num_nodes_) + ")");
    }
    if (!(weights_[i] > 0.0) || !std::isfinite(weights_[i])) {
      return Status::InvalidArgument(
          "edge (" + std::to_string(sources_[i]) + " -> " +
          std::to_string(targets_[i]) + ") has non-positive weight");
    }
    if (!options.allow_self_loops && sources_[i] == targets_[i]) {
      return Status::InvalidArgument("self loop at node " +
                                     std::to_string(sources_[i]));
    }
  }

  // Order edges by (target, source) to build the in-CSR; merging parallel
  // edges happens on this sorted order.
  std::vector<uint64_t> order(sources_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    if (targets_[a] != targets_[b]) return targets_[a] < targets_[b];
    return sources_[a] < sources_[b];
  });

  std::vector<NodeId> in_sources;
  std::vector<NodeId> in_targets;
  std::vector<double> in_weights;
  in_sources.reserve(sources_.size());
  in_targets.reserve(sources_.size());
  in_weights.reserve(sources_.size());
  for (uint64_t idx : order) {
    if (options.merge_parallel_edges && !in_sources.empty() &&
        in_sources.back() == sources_[idx] &&
        in_targets.back() == targets_[idx]) {
      in_weights.back() += weights_[idx];
      continue;
    }
    in_sources.push_back(sources_[idx]);
    in_targets.push_back(targets_[idx]);
    in_weights.push_back(weights_[idx]);
  }

  Graph g;
  g.num_nodes_ = num_nodes_;
  g.num_edges_ = in_sources.size();

  // In-CSR.
  g.in_offsets_.assign(num_nodes_ + 1, 0);
  for (NodeId v : in_targets) ++g.in_offsets_[v + 1];
  for (uint32_t v = 0; v < num_nodes_; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_sources_ = std::move(in_sources);
  g.in_weights_ = std::move(in_weights);

  if (options.normalize_incoming) {
    for (NodeId v = 0; v < num_nodes_; ++v) {
      const uint64_t begin = g.in_offsets_[v], end = g.in_offsets_[v + 1];
      double sum = 0.0;
      for (uint64_t e = begin; e < end; ++e) sum += g.in_weights_[e];
      if (sum <= 0.0) continue;
      for (uint64_t e = begin; e < end; ++e) g.in_weights_[e] /= sum;
    }
  }

  // Out-CSR derived from the (possibly normalized) in-edges so both views
  // agree on weights.
  g.out_offsets_.assign(num_nodes_ + 1, 0);
  for (NodeId u : g.in_sources_) ++g.out_offsets_[u + 1];
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    g.out_offsets_[u + 1] += g.out_offsets_[u];
  }
  g.out_targets_.resize(g.num_edges_);
  g.out_weights_.resize(g.num_edges_);
  std::vector<uint64_t> cursor(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (uint64_t e = g.in_offsets_[v]; e < g.in_offsets_[v + 1]; ++e) {
      const NodeId u = g.in_sources_[e];
      g.out_targets_[cursor[u]] = v;
      g.out_weights_[cursor[u]] = g.in_weights_[e];
      ++cursor[u];
    }
  }
  return g;
}

}  // namespace voteopt::graph
