#include "graph/io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "graph/builder.h"

namespace voteopt::graph {

Result<Graph> LoadEdgeList(const std::string& path,
                           const LoadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  struct RawEdge {
    uint64_t u, v;
    double w;
  };
  std::vector<RawEdge> edges;
  uint64_t max_id = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint64_t u = 0, v = 0;
    double w = 1.0;
    if (!(ls >> u >> v)) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": expected '<src> <dst> [weight]'");
    }
    ls >> w;  // optional third column
    if (!(w > 0.0)) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": non-positive weight");
    }
    edges.push_back({u, v, w});
    max_id = std::max(max_id, std::max(u, v));
  }
  if (edges.empty()) return Status::InvalidArgument(path + ": no edges");

  uint32_t num_nodes = 0;
  std::unordered_map<uint64_t, NodeId> remap;
  if (options.compact_ids) {
    for (const auto& e : edges) {
      remap.emplace(e.u, static_cast<NodeId>(remap.size()));
      remap.emplace(e.v, static_cast<NodeId>(remap.size()));
    }
    num_nodes = static_cast<uint32_t>(remap.size());
  } else {
    if (max_id >= static_cast<uint64_t>(UINT32_MAX)) {
      return Status::OutOfRange(path + ": node id exceeds uint32 range");
    }
    num_nodes = static_cast<uint32_t>(max_id + 1);
  }

  GraphBuilder builder(num_nodes);
  for (const auto& e : edges) {
    const NodeId u =
        options.compact_ids ? remap[e.u] : static_cast<NodeId>(e.u);
    const NodeId v =
        options.compact_ids ? remap[e.v] : static_cast<NodeId>(e.v);
    if (u == v) continue;  // drop self loops silently, like SNAP loaders
    if (options.undirected) {
      builder.AddUndirectedEdge(u, v, e.w);
    } else {
      builder.AddEdge(u, v, e.w);
    }
  }
  return builder.Build({.merge_parallel_edges = true,
                        .normalize_incoming = options.normalize_incoming});
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.precision(17);  // lossless double round-trip
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto targets = graph.OutNeighbors(u);
    const auto weights = graph.OutWeights(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      out << u << ' ' << targets[i] << ' ' << weights[i] << '\n';
    }
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace voteopt::graph
