// Directed weighted graph stored as immutable dual CSR (out- and in-
// adjacency). This is the substrate every other module builds on:
//
//  * The FJ / DeGroot update for node j aggregates the opinions of j's
//    in-neighbors weighted by w_ij, so propagation iterates the in-CSR.
//  * Reverse random walks (paper § V) move from a node to one of its
//    in-neighbors with probability w_ij; the in-CSR rows are the walk
//    transition tables (see AliasSampler).
//  * The coverage bounds (paper § IV) and the IC/LT baselines traverse the
//    out-CSR.
//
// The paper's influence matrix W is column-stochastic: for every node j the
// incoming weights sum to 1 (sum_i w_ij = 1). `GraphBuilder` can enforce this
// by normalization; `Graph::IsColumnStochastic` verifies it.
#ifndef VOTEOPT_GRAPH_GRAPH_H_
#define VOTEOPT_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace voteopt::graph {

using NodeId = uint32_t;
using EdgeId = uint64_t;

/// Immutable directed weighted graph with both adjacency directions
/// materialized. Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  uint32_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }

  /// Targets of edges leaving `u`.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }
  /// Weights parallel to OutNeighbors(u): w(u -> v).
  std::span<const double> OutWeights(NodeId u) const {
    return {out_weights_.data() + out_offsets_[u],
            out_weights_.data() + out_offsets_[u + 1]};
  }

  /// Sources of edges entering `v`.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }
  /// Weights parallel to InNeighbors(v): w(u -> v).
  std::span<const double> InWeights(NodeId v) const {
    return {in_weights_.data() + in_offsets_[v],
            in_weights_.data() + in_offsets_[v + 1]};
  }

  uint64_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  uint64_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Sum of weights entering v (1.0 for column-stochastic graphs, 0.0 for
  /// nodes without in-edges).
  double InWeightSum(NodeId v) const;

  /// Sum of weights leaving u.
  double OutWeightSum(NodeId u) const;

  /// True if every node with at least one in-edge has incoming weights
  /// summing to 1 within `tol`.
  bool IsColumnStochastic(double tol = 1e-9) const;

  /// Offset of the first in-edge of v inside the global in-edge arrays;
  /// exposed so AliasSampler can address per-node slices.
  uint64_t InEdgeBegin(NodeId v) const { return in_offsets_[v]; }

  // Bulk CSR views over the whole arrays (serialization path, store/).
  std::span<const uint64_t> OutOffsets() const { return out_offsets_; }
  std::span<const NodeId> OutTargets() const { return out_targets_; }
  std::span<const double> OutWeightsRaw() const { return out_weights_; }
  std::span<const uint64_t> InOffsets() const { return in_offsets_; }
  std::span<const NodeId> InSources() const { return in_sources_; }
  std::span<const double> InWeightsRaw() const { return in_weights_; }

  /// Constructs a Graph directly from its dual-CSR arrays (the store/
  /// deserialization path). Validates the shape — offset arrays are sized
  /// n+1, monotone, and end at the edge count; node ids are in range; both
  /// directions agree on the edge count — but trusts the weights.
  static Result<Graph> FromCsr(uint32_t num_nodes,
                               std::vector<uint64_t> out_offsets,
                               std::vector<NodeId> out_targets,
                               std::vector<double> out_weights,
                               std::vector<uint64_t> in_offsets,
                               std::vector<NodeId> in_sources,
                               std::vector<double> in_weights);

  /// Returns a copy whose incoming weights are scaled to sum to 1 per node
  /// (nodes without in-edges are left empty). Out-weights mirror the change.
  Graph NormalizedIncoming() const;

  /// Returns the transpose (every edge u->v becomes v->u, weights kept).
  Graph Transposed() const;

  /// Returns the subgraph induced by `nodes` (ids are remapped to
  /// 0..nodes.size()-1 in the given order). Used by the scalability
  /// experiment (paper Fig. 17).
  Graph InducedSubgraph(const std::vector<NodeId>& nodes) const;

 private:
  friend class GraphBuilder;

  uint32_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  std::vector<uint64_t> out_offsets_;  // size n+1
  std::vector<NodeId> out_targets_;    // size m
  std::vector<double> out_weights_;    // size m
  std::vector<uint64_t> in_offsets_;   // size n+1
  std::vector<NodeId> in_sources_;     // size m
  std::vector<double> in_weights_;     // size m
};

}  // namespace voteopt::graph

#endif  // VOTEOPT_GRAPH_GRAPH_H_
