#include "graph/alias_table.h"

#include <cassert>
#include <numeric>

namespace voteopt::graph {

AliasSampler::AliasSampler(const Graph& graph) : graph_(&graph) {
  const uint64_t m = graph.num_edges();
  prob_.assign(m, 1.0);
  alias_.assign(m, 0);

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  std::vector<double> scaled;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const auto weights = graph.InWeights(v);
    const size_t deg = weights.size();
    if (deg == 0) continue;
    const uint64_t base = graph.InEdgeBegin(v);
    const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
    assert(sum > 0.0);

    // Vose's algorithm on the node's slice.
    scaled.assign(deg, 0.0);
    small.clear();
    large.clear();
    for (size_t i = 0; i < deg; ++i) {
      scaled[i] = weights[i] / sum * static_cast<double>(deg);
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const uint32_t s = small.back();
      small.pop_back();
      const uint32_t l = large.back();
      prob_[base + s] = scaled[s];
      alias_[base + s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    // Residual buckets saturate to probability 1 (they alias to themselves).
    for (uint32_t l : large) {
      prob_[base + l] = 1.0;
      alias_[base + l] = l;
    }
    for (uint32_t s : small) {
      prob_[base + s] = 1.0;
      alias_[base + s] = s;
    }
  }
}

NodeId AliasSampler::SampleInNeighbor(NodeId v, Rng* rng) const {
  const auto neighbors = graph_->InNeighbors(v);
  if (neighbors.empty()) return kNoNeighbor;
  const uint64_t base = graph_->InEdgeBegin(v);
  const size_t slot = static_cast<size_t>(rng->UniformInt(neighbors.size()));
  if (rng->Uniform() < prob_[base + slot]) return neighbors[slot];
  return neighbors[alias_[base + slot]];
}

double AliasSampler::Probability(NodeId v, size_t slot) const {
  // Reconstructs the sampling probability of slice position `slot`:
  // p = (prob[slot] + sum of (1 - prob[j]) over j aliasing to slot) / deg.
  const auto neighbors = graph_->InNeighbors(v);
  assert(slot < neighbors.size());
  const uint64_t base = graph_->InEdgeBegin(v);
  double p = prob_[base + slot];
  for (size_t j = 0; j < neighbors.size(); ++j) {
    if (j != slot && alias_[base + j] == slot) p += 1.0 - prob_[base + j];
  }
  return p / static_cast<double>(neighbors.size());
}

}  // namespace voteopt::graph
