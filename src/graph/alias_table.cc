#include "graph/alias_table.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace voteopt::graph {

namespace internal {

void BuildAliasRow(std::span<const double> weights, double* prob,
                   uint32_t* alias, std::vector<double>* scaled,
                   std::vector<uint32_t>* small,
                   std::vector<uint32_t>* large) {
  const size_t deg = weights.size();
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(sum > 0.0);

  // Vose's algorithm on the node's slice.
  scaled->assign(deg, 0.0);
  small->clear();
  large->clear();
  for (size_t i = 0; i < deg; ++i) {
    (*scaled)[i] = weights[i] / sum * static_cast<double>(deg);
    ((*scaled)[i] < 1.0 ? *small : *large).push_back(static_cast<uint32_t>(i));
  }
  while (!small->empty() && !large->empty()) {
    const uint32_t s = small->back();
    small->pop_back();
    const uint32_t l = large->back();
    prob[s] = (*scaled)[s];
    alias[s] = l;
    (*scaled)[l] = ((*scaled)[l] + (*scaled)[s]) - 1.0;
    if ((*scaled)[l] < 1.0) {
      large->pop_back();
      small->push_back(l);
    }
  }
  // Residual buckets saturate to probability 1 (they alias to themselves).
  for (uint32_t l : *large) {
    prob[l] = 1.0;
    alias[l] = l;
  }
  for (uint32_t s : *small) {
    prob[s] = 1.0;
    alias[s] = s;
  }
}

}  // namespace internal

AliasSampler::AliasSampler(const Graph& graph) : graph_(&graph) {
  const uint64_t m = graph.num_edges();
  prob_.assign(m, 1.0);
  alias_.assign(m, 0);
  offsets_.resize(graph.num_nodes() + 1);
  offsets_[graph.num_nodes()] = m;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  std::vector<double> scaled;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    offsets_[v] = graph.InEdgeBegin(v);
    const auto weights = graph.InWeights(v);
    if (weights.empty()) continue;
    internal::BuildAliasRow(weights, prob_.data() + offsets_[v],
                            alias_.data() + offsets_[v], &scaled, &small,
                            &large);
  }
}

AliasSampler::AliasSampler(const Graph& graph, const AliasSampler& base,
                           std::span<const NodeId> dirty_rows)
    : graph_(&graph) {
  const uint64_t m = graph.num_edges();
  prob_.assign(m, 1.0);
  alias_.assign(m, 0);
  offsets_.resize(graph.num_nodes() + 1);
  offsets_[graph.num_nodes()] = m;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  std::vector<double> scaled;
  size_t next_dirty = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const bool dirty =
        next_dirty < dirty_rows.size() && dirty_rows[next_dirty] == v;
    if (dirty) ++next_dirty;
    offsets_[v] = graph.InEdgeBegin(v);
    const auto weights = graph.InWeights(v);
    if (weights.empty()) continue;
    const uint64_t dst = offsets_[v];
    if (!dirty) {
      // Clean rows locate their base slice through base's OWN offsets
      // snapshot — base.graph_ may already be freed (a sampler can be
      // shared across dataset generations whose graphs it outlives).
      const uint64_t src = base.offsets_[v];
      assert(base.offsets_[v + 1] - src == weights.size());
      std::copy_n(base.prob_.begin() + src, weights.size(),
                  prob_.begin() + dst);
      std::copy_n(base.alias_.begin() + src, weights.size(),
                  alias_.begin() + dst);
      continue;
    }
    internal::BuildAliasRow(weights, prob_.data() + dst, alias_.data() + dst,
                            &scaled, &small, &large);
  }
  assert(next_dirty == dirty_rows.size());
}

AliasSlice::AliasSlice(std::span<const uint64_t> offsets,
                       std::span<const NodeId> sources,
                       std::span<const double> weights)
    : offsets_(offsets), sources_(sources) {
  assert(!offsets.empty());
  assert(sources.size() == weights.size());
  assert(offsets.back() == weights.size());
  prob_.assign(weights.size(), 1.0);
  alias_.assign(weights.size(), 0);

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  std::vector<double> scaled;
  for (uint64_t row = 0; row + 1 < offsets.size(); ++row) {
    const uint64_t begin = offsets[row], end = offsets[row + 1];
    if (begin == end) continue;
    internal::BuildAliasRow(weights.subspan(begin, end - begin),
                            prob_.data() + begin, alias_.data() + begin,
                            &scaled, &small, &large);
  }
}

NodeId AliasSampler::SampleInNeighbor(NodeId v, Rng* rng) const {
  const auto neighbors = graph_->InNeighbors(v);
  if (neighbors.empty()) return kNoNeighbor;
  const uint64_t base = graph_->InEdgeBegin(v);
  const size_t slot = static_cast<size_t>(rng->UniformInt(neighbors.size()));
  if (rng->Uniform() < prob_[base + slot]) return neighbors[slot];
  return neighbors[alias_[base + slot]];
}

double AliasSampler::Probability(NodeId v, size_t slot) const {
  // Reconstructs the sampling probability of slice position `slot`:
  // p = (prob[slot] + sum of (1 - prob[j]) over j aliasing to slot) / deg.
  const auto neighbors = graph_->InNeighbors(v);
  assert(slot < neighbors.size());
  const uint64_t base = graph_->InEdgeBegin(v);
  double p = prob_[base + slot];
  for (size_t j = 0; j < neighbors.size(); ++j) {
    if (j != slot && alias_[base + j] == slot) p += 1.0 - prob_[base + j];
  }
  return p / static_cast<double>(neighbors.size());
}

}  // namespace voteopt::graph
