// Streaming two-pass edge-list -> CSR parser for real datasets (SNAP and
// friends), the front half of tools/voteopt_convert.
//
// Unlike graph::LoadEdgeList (io.h), which buffers an edge vector and
// rebuilds through GraphBuilder, this parser streams the file twice —
// pass 1 counts degrees, pass 2 fills the CSR arrays in place — so peak
// memory is the output CSR plus O(n) counters, never O(file). It is also
// deliberately forgiving about real-world files: arbitrary whitespace,
// '#'/'%' comment lines, blank lines, duplicate edges (kept as parallel
// edges), self-loops (dropped by default), and out-of-order ids all parse;
// anything else — malformed numbers, ids beyond the configured cap, bad
// weights — fails with a clean Status naming the line, never a crash.
// The output is a pure function of (file bytes, options).
#ifndef VOTEOPT_GRAPH_EDGE_STREAM_H_
#define VOTEOPT_GRAPH_EDGE_STREAM_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace voteopt::graph {

struct EdgeStreamOptions {
  /// Emit both directions for every input line.
  bool undirected = false;
  /// Drop u -> u edges (random-walk transitions to self carry no
  /// information; SNAP crawls contain plenty).
  bool drop_self_loops = true;
  /// Relabel the ids that actually occur to [0, n), in ascending id order
  /// (deterministic). When false the node universe is [0, max_id].
  bool compact_ids = false;
  /// Column-stochastic normalization: scale every edge weight so each
  /// node's INCOMING weights sum to 1 (paper § II semantics).
  bool normalize_incoming = false;
  /// Reject ids above this cap before sizing any per-node array — a guard
  /// against a corrupt line conjuring a multi-terabyte allocation.
  uint64_t max_node_id = (uint64_t{1} << 28) - 1;
};

struct EdgeStreamStats {
  uint64_t lines = 0;              // physical lines read
  uint64_t comment_lines = 0;      // '#'/'%' and blank lines
  uint64_t edge_records = 0;       // edge lines kept from the input
  uint64_t self_loops_dropped = 0;
  uint64_t duplicate_edges = 0;    // parallel (u, v) repeats in the CSR
  uint64_t num_edges = 0;          // directed edges in the output graph
  uint32_t num_nodes = 0;
};

/// Parses `path` into a Graph (both CSR directions). InvalidArgument with
/// the offending line number on malformed input; InvalidArgument when the
/// file holds no nodes at all.
Result<Graph> StreamEdgeList(const std::string& path,
                             const EdgeStreamOptions& options = {},
                             EdgeStreamStats* stats = nullptr);

}  // namespace voteopt::graph

#endif  // VOTEOPT_GRAPH_EDGE_STREAM_H_
