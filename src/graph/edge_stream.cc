#include "graph/edge_stream.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <vector>

namespace voteopt::graph {

namespace {

struct ParsedEdge {
  uint64_t src = 0;
  uint64_t dst = 0;
  double weight = 1.0;
  bool is_edge = false;  // false: blank or comment line
};

const char* SkipSpace(const char* p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

/// One line of a SNAP-style file: blank / '#' / '%' lines are skipped;
/// otherwise "<src> <dst> [weight]" with any horizontal whitespace.
Status ParseLine(const char* begin, const char* end, ParsedEdge* out) {
  const char* p = SkipSpace(begin, end);
  if (p == end || *p == '#' || *p == '%') {
    out->is_edge = false;
    return Status::OK();
  }
  auto src = std::from_chars(p, end, out->src);
  if (src.ec != std::errc()) {
    return Status::InvalidArgument("bad source id");
  }
  p = SkipSpace(src.ptr, end);
  auto dst = std::from_chars(p, end, out->dst);
  if (dst.ec != std::errc()) {
    return Status::InvalidArgument("bad destination id");
  }
  p = SkipSpace(dst.ptr, end);
  out->weight = 1.0;
  if (p != end) {
    auto weight = std::from_chars(p, end, out->weight);
    if (weight.ec != std::errc()) {
      return Status::InvalidArgument("bad edge weight");
    }
    if (!std::isfinite(out->weight) || out->weight <= 0.0) {
      return Status::InvalidArgument("edge weight must be finite and > 0");
    }
    p = SkipSpace(weight.ptr, end);
    if (p != end) {
      return Status::InvalidArgument("trailing tokens after edge");
    }
  }
  out->is_edge = true;
  return Status::OK();
}

/// Growth with explicit geometric capacity: repeated resize-to-max-id would
/// otherwise reallocate linearly per new high id.
template <typename T>
void GrowTo(std::vector<T>& vec, size_t size) {
  if (size <= vec.size()) return;
  if (size > vec.capacity()) {
    vec.reserve(std::max(size, vec.capacity() * 2));
  }
  vec.resize(size, T{});
}

Status LineError(const std::string& path, uint64_t line, const Status& st) {
  return Status::InvalidArgument(path + ":" + std::to_string(line) + ": " +
                                 st.message());
}

}  // namespace

Result<Graph> StreamEdgeList(const std::string& path,
                             const EdgeStreamOptions& options,
                             EdgeStreamStats* stats) {
  EdgeStreamStats local;

  // --- pass 1: degrees and the id universe --------------------------------
  std::vector<uint32_t> out_deg;
  std::vector<uint32_t> in_deg;
  uint64_t max_id = 0;
  bool any_node = false;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open " + path);
    std::string line;
    uint64_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      ++local.lines;
      ParsedEdge edge;
      if (Status st =
              ParseLine(line.data(), line.data() + line.size(), &edge);
          !st.ok()) {
        return LineError(path, line_number, st);
      }
      if (!edge.is_edge) {
        ++local.comment_lines;
        continue;
      }
      if (edge.src > options.max_node_id || edge.dst > options.max_node_id) {
        return LineError(path, line_number,
                         Status::InvalidArgument(
                             "node id exceeds max_node_id cap of " +
                             std::to_string(options.max_node_id)));
      }
      max_id = std::max({max_id, edge.src, edge.dst});
      any_node = true;
      if (edge.src == edge.dst && options.drop_self_loops) {
        ++local.self_loops_dropped;
        continue;
      }
      ++local.edge_records;
      GrowTo(out_deg, max_id + 1);
      GrowTo(in_deg, max_id + 1);
      ++out_deg[edge.src];
      ++in_deg[edge.dst];
      if (options.undirected && edge.src != edge.dst) {
        ++out_deg[edge.dst];
        ++in_deg[edge.src];
      }
    }
  }
  if (!any_node) {
    return Status::InvalidArgument(path + ": contains no edges or nodes");
  }
  GrowTo(out_deg, max_id + 1);
  GrowTo(in_deg, max_id + 1);

  // Optional compaction: present ids -> [0, n) in ascending id order.
  const size_t universe = max_id + 1;
  std::vector<NodeId> remap;
  uint32_t n = 0;
  if (options.compact_ids) {
    remap.assign(universe, 0);
    for (size_t id = 0; id < universe; ++id) {
      if (out_deg[id] > 0 || in_deg[id] > 0) remap[id] = n++;
    }
    if (n == 0) {
      // Only self-loops, all dropped: the surviving universe is empty.
      return Status::InvalidArgument(path + ": contains no edges or nodes");
    }
  } else {
    if (universe > static_cast<size_t>(UINT32_MAX)) {
      return Status::InvalidArgument(path + ": node universe exceeds 2^32");
    }
    n = static_cast<uint32_t>(universe);
  }
  auto node_of = [&](uint64_t id) -> NodeId {
    return options.compact_ids ? remap[id] : static_cast<NodeId>(id);
  };

  // Out-CSR skeleton from the degree counts.
  std::vector<uint64_t> out_offsets(n + 1, 0);
  for (size_t id = 0; id < universe; ++id) {
    if (out_deg[id] > 0) out_offsets[node_of(id) + 1] = out_deg[id];
  }
  for (uint32_t v = 0; v < n; ++v) out_offsets[v + 1] += out_offsets[v];
  const uint64_t m = out_offsets[n];
  local.num_edges = m;
  local.num_nodes = n;

  std::vector<NodeId> out_targets(m);
  std::vector<double> out_weights(m);

  // --- pass 2: fill the out-CSR in file order -----------------------------
  {
    std::vector<uint64_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot reopen " + path);
    std::string line;
    uint64_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      ParsedEdge edge;
      if (Status st =
              ParseLine(line.data(), line.data() + line.size(), &edge);
          !st.ok()) {
        // The file changed between passes — treat it as corruption, the
        // counts above no longer describe it.
        return Status::Corruption(path + ":" + std::to_string(line_number) +
                                  ": file changed mid-conversion");
      }
      if (!edge.is_edge) continue;
      if (edge.src == edge.dst && options.drop_self_loops) continue;
      if (edge.src > max_id || edge.dst > max_id) {
        return Status::Corruption(path + ": file changed mid-conversion");
      }
      const NodeId u = node_of(edge.src);
      const NodeId v = node_of(edge.dst);
      out_targets[cursor[u]] = v;
      out_weights[cursor[u]] = edge.weight;
      ++cursor[u];
      if (options.undirected && u != v) {
        out_targets[cursor[v]] = u;
        out_weights[cursor[v]] = edge.weight;
        ++cursor[v];
      }
    }
    for (uint32_t v = 0; v < n; ++v) {
      if (cursor[v] != out_offsets[v + 1]) {
        return Status::Corruption(path + ": file changed mid-conversion");
      }
    }
  }

  // --- derive the in-CSR by counting sort over the out-CSR ----------------
  std::vector<uint64_t> in_offsets(n + 1, 0);
  for (uint64_t i = 0; i < m; ++i) ++in_offsets[out_targets[i] + 1];
  for (uint32_t v = 0; v < n; ++v) in_offsets[v + 1] += in_offsets[v];
  std::vector<NodeId> in_sources(m);
  std::vector<double> in_weights(m);
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (uint32_t u = 0; u < n; ++u) {
      for (uint64_t i = out_offsets[u]; i < out_offsets[u + 1]; ++i) {
        const NodeId v = out_targets[i];
        in_sources[cursor[v]] = u;
        in_weights[cursor[v]] = out_weights[i];
        ++cursor[v];
      }
    }
  }

  // Duplicate (parallel) edge census for the stats: in-rows are grouped by
  // destination and ordered by source, so repeats sit adjacent after a
  // per-row sort of a scratch copy.
  {
    std::vector<NodeId> row;
    for (uint32_t v = 0; v < n; ++v) {
      const uint64_t begin = in_offsets[v], end = in_offsets[v + 1];
      if (end - begin < 2) continue;
      row.assign(in_sources.begin() + begin, in_sources.begin() + end);
      std::sort(row.begin(), row.end());
      for (size_t i = 1; i < row.size(); ++i) {
        if (row[i] == row[i - 1]) ++local.duplicate_edges;
      }
    }
  }

  if (options.normalize_incoming) {
    std::vector<double> in_sum(n, 0.0);
    for (uint32_t v = 0; v < n; ++v) {
      for (uint64_t i = in_offsets[v]; i < in_offsets[v + 1]; ++i) {
        in_sum[v] += in_weights[i];
      }
    }
    for (uint32_t v = 0; v < n; ++v) {
      for (uint64_t i = in_offsets[v]; i < in_offsets[v + 1]; ++i) {
        in_weights[i] /= in_sum[v];
      }
    }
    for (uint64_t i = 0; i < m; ++i) {
      out_weights[i] /= in_sum[out_targets[i]];
    }
  }

  auto built = Graph::FromCsr(n, std::move(out_offsets),
                              std::move(out_targets), std::move(out_weights),
                              std::move(in_offsets), std::move(in_sources),
                              std::move(in_weights));
  if (!built.ok()) return built.status();
  if (stats) *stats = local;
  return std::move(built).value();
}

}  // namespace voteopt::graph
