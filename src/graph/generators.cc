#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "graph/builder.h"

namespace voteopt::graph {

double InteractionCounts::Draw(Rng* rng) const {
  switch (kind) {
    case Kind::kConstant:
      return mean;
    case Kind::kPoisson:
      // Shift by one so counts are never zero (an observed edge implies at
      // least one interaction).
      return static_cast<double>(1 + rng->Poisson(mean > 1.0 ? mean - 1.0
                                                             : mean));
    case Kind::kZipf:
      return static_cast<double>(rng->Zipf(zipf_max, zipf_exponent));
  }
  return 1.0;
}

Graph ErdosRenyiDigraph(uint32_t num_nodes, uint64_t num_edges,
                        const InteractionCounts& counts, Rng* rng) {
  assert(num_nodes >= 2);
  GraphBuilder builder(num_nodes);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  uint64_t added = 0;
  const uint64_t max_possible =
      static_cast<uint64_t>(num_nodes) * (num_nodes - 1);
  num_edges = std::min(num_edges, max_possible);
  while (added < num_edges) {
    const NodeId u = static_cast<NodeId>(rng->UniformInt(num_nodes));
    const NodeId v = static_cast<NodeId>(rng->UniformInt(num_nodes));
    if (u == v) continue;
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    builder.AddEdge(u, v, counts.Draw(rng));
    ++added;
  }
  auto result = builder.Build();
  assert(result.ok());
  return std::move(result).value();
}

Graph BarabasiAlbert(uint32_t num_nodes, uint32_t edges_per_node,
                     const InteractionCounts& counts, Rng* rng) {
  assert(num_nodes >= 2);
  edges_per_node = std::max<uint32_t>(1, edges_per_node);
  GraphBuilder builder(num_nodes);
  // Repeated-endpoints list implements preferential attachment in O(1) per
  // draw.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(num_nodes) * edges_per_node * 2);

  const uint32_t seed_size = std::min(num_nodes, edges_per_node + 1);
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      builder.AddUndirectedEdge(u, v, counts.Draw(rng));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId u = seed_size; u < num_nodes; ++u) {
    std::unordered_set<NodeId> chosen;
    while (chosen.size() < edges_per_node && chosen.size() < u) {
      const NodeId v = endpoints[rng->UniformInt(endpoints.size())];
      if (v == u) continue;
      chosen.insert(v);
    }
    for (NodeId v : chosen) {
      builder.AddUndirectedEdge(u, v, counts.Draw(rng));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  auto result = builder.Build();
  assert(result.ok());
  return std::move(result).value();
}

Graph WattsStrogatz(uint32_t num_nodes, uint32_t ring_degree,
                    double rewire_prob, const InteractionCounts& counts,
                    Rng* rng) {
  assert(num_nodes >= 4);
  const uint32_t half = std::max<uint32_t>(1, ring_degree / 2);
  // Collect undirected edges as canonical (min, max) pairs.
  std::unordered_set<uint64_t> edges;
  auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (uint32_t h = 1; h <= half; ++h) {
      edges.insert(key(u, (u + h) % num_nodes));
    }
  }
  // Rewire each edge's far endpoint with probability rewire_prob.
  std::vector<uint64_t> edge_list(edges.begin(), edges.end());
  for (uint64_t& e : edge_list) {
    if (!rng->Bernoulli(rewire_prob)) continue;
    const NodeId a = static_cast<NodeId>(e >> 32);
    NodeId b = static_cast<NodeId>(rng->UniformInt(num_nodes));
    int attempts = 0;
    while ((b == a || edges.count(key(a, b))) && attempts++ < 16) {
      b = static_cast<NodeId>(rng->UniformInt(num_nodes));
    }
    if (b == a || edges.count(key(a, b))) continue;
    edges.erase(e);
    e = key(a, b);
    edges.insert(e);
  }
  GraphBuilder builder(num_nodes);
  for (uint64_t e : edge_list) {
    builder.AddUndirectedEdge(static_cast<NodeId>(e >> 32),
                              static_cast<NodeId>(e & 0xFFFFFFFFu),
                              counts.Draw(rng));
  }
  auto result = builder.Build();
  assert(result.ok());
  return std::move(result).value();
}

Graph PowerLawDigraph(uint32_t num_nodes, double avg_out_degree,
                      double popularity_exponent,
                      const InteractionCounts& counts, Rng* rng) {
  assert(num_nodes >= 2);
  GraphBuilder builder(num_nodes);
  // Node popularity via a random permutation of Zipf ranks: target of an
  // edge is Zipf-rank-mapped, giving a heavy-tailed in-degree profile like
  // retweet graphs.
  std::vector<NodeId> rank_to_node(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) rank_to_node[v] = v;
  rng->Shuffle(&rank_to_node);

  std::unordered_set<uint64_t> seen;
  for (NodeId u = 0; u < num_nodes; ++u) {
    const uint64_t degree = 1 + rng->Poisson(std::max(0.0, avg_out_degree - 1));
    for (uint64_t i = 0; i < degree; ++i) {
      const uint64_t rank = rng->Zipf(num_nodes, popularity_exponent);
      const NodeId v = rank_to_node[rank - 1];
      if (v == u) continue;
      const uint64_t k = (static_cast<uint64_t>(u) << 32) | v;
      if (!seen.insert(k).second) continue;
      builder.AddEdge(u, v, counts.Draw(rng));
    }
  }
  auto result = builder.Build();
  assert(result.ok());
  return std::move(result).value();
}

}  // namespace voteopt::graph
