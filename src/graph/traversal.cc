#include "graph/traversal.h"

namespace voteopt::graph {

HopLimitedBfs::HopLimitedBfs(const Graph& graph, Direction direction)
    : graph_(&graph), direction_(direction), mark_(graph.num_nodes(), 0) {}

void HopLimitedBfs::Run(const std::vector<NodeId>& sources, uint32_t max_hops,
                        const std::function<void(NodeId, uint32_t)>& visit) {
  ++epoch_;
  if (epoch_ == 0) {  // stamp wrap-around: reset marks once per 2^32 runs
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }
  frontier_.clear();
  for (NodeId s : sources) {
    if (mark_[s] == epoch_) continue;
    mark_[s] = epoch_;
    frontier_.push_back(s);
    visit(s, 0);
  }
  for (uint32_t hop = 1; hop <= max_hops && !frontier_.empty(); ++hop) {
    next_.clear();
    for (NodeId u : frontier_) {
      const auto neighbors = direction_ == Direction::kForward
                                 ? graph_->OutNeighbors(u)
                                 : graph_->InNeighbors(u);
      for (NodeId v : neighbors) {
        if (mark_[v] == epoch_) continue;
        mark_[v] = epoch_;
        next_.push_back(v);
        visit(v, hop);
      }
    }
    std::swap(frontier_, next_);
  }
}

std::vector<NodeId> HopLimitedBfs::ReachableWithin(
    const std::vector<NodeId>& sources, uint32_t max_hops) {
  std::vector<NodeId> out;
  Run(sources, max_hops, [&](NodeId v, uint32_t) { out.push_back(v); });
  return out;
}

}  // namespace voteopt::graph
