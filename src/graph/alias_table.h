// O(1) weighted sampling of in-neighbors via Walker/Vose alias tables.
//
// The reverse random walks of paper § V move from a node v to an in-neighbor
// u with probability w_uv (incoming weights sum to 1). Walk generation is the
// dominant cost of the RW and RS methods, so each node's categorical
// distribution is precompiled into an alias table: one uniform integer and
// one uniform real per step, independent of degree.
#ifndef VOTEOPT_GRAPH_ALIAS_TABLE_H_
#define VOTEOPT_GRAPH_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace voteopt::graph {

/// Per-node alias tables over the in-adjacency of a graph.
///
/// If a node's incoming weights sum to s < 1 they are sampled
/// proportionally (the table normalizes internally); the caller is expected
/// to pass column-stochastic graphs for exact paper semantics.
class AliasSampler {
 public:
  /// Sentinel returned by SampleInNeighbor for nodes without in-edges.
  static constexpr NodeId kNoNeighbor = static_cast<NodeId>(-1);

  explicit AliasSampler(const Graph& graph);

  /// Draws an in-neighbor of v with probability proportional to the edge
  /// weight, or kNoNeighbor when v has no in-edges. O(1).
  NodeId SampleInNeighbor(NodeId v, Rng* rng) const;

  /// Exact sampling probability of the in-edge at slice position `slot`
  /// of node v (for tests).
  double Probability(NodeId v, size_t slot) const;

  size_t memory_bytes() const {
    return prob_.size() * sizeof(double) + alias_.size() * sizeof(uint32_t);
  }

 private:
  const Graph* graph_;
  // Parallel to the graph's in-edge arrays: acceptance probability and
  // within-slice alias index.
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace voteopt::graph

#endif  // VOTEOPT_GRAPH_ALIAS_TABLE_H_
