// O(1) weighted sampling of in-neighbors via Walker/Vose alias tables.
//
// The reverse random walks of paper § V move from a node v to an in-neighbor
// u with probability w_uv (incoming weights sum to 1). Walk generation is the
// dominant cost of the RW and RS methods, so each node's categorical
// distribution is precompiled into an alias table: one uniform integer and
// one uniform real per step, independent of degree.
#ifndef VOTEOPT_GRAPH_ALIAS_TABLE_H_
#define VOTEOPT_GRAPH_ALIAS_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace voteopt::graph {

namespace internal {
/// Vose's algorithm on one node's in-edge weight slice: fills
/// prob[0..deg) with acceptance probabilities and alias[0..deg) with
/// within-slice alias indices. `scaled`, `small`, `large` are caller-owned
/// scratch (cleared here) so tight loops don't reallocate. Deterministic:
/// the tables are a pure function of the weight slice, so any two samplers
/// built over the same slice — full-graph or block-local — hold identical
/// entries and consume an Rng identically.
void BuildAliasRow(std::span<const double> weights, double* prob,
                   uint32_t* alias, std::vector<double>* scaled,
                   std::vector<uint32_t>* small, std::vector<uint32_t>* large);
}  // namespace internal

/// Per-node alias tables over the in-adjacency of a graph.
///
/// If a node's incoming weights sum to s < 1 they are sampled
/// proportionally (the table normalizes internally); the caller is expected
/// to pass column-stochastic graphs for exact paper semantics.
class AliasSampler {
 public:
  /// Sentinel returned by SampleInNeighbor for nodes without in-edges.
  static constexpr NodeId kNoNeighbor = static_cast<NodeId>(-1);

  explicit AliasSampler(const Graph& graph);

  /// Incremental rebuild for dynamic graphs (src/dyn): tables over `graph`
  /// where only the rows in `dirty_rows` (ascending, unique) differ from
  /// `base`'s graph. Clean rows copy base's prob/alias entries verbatim —
  /// row tables are pure functions of the row's weight slice, so the copy
  /// is exact even though global offsets shift — and Vose runs only on the
  /// dirty rows. Equivalent to AliasSampler(graph), at O(dirty) build cost.
  /// Reads only `base`'s owned arrays (tables + offsets snapshot), never
  /// the graph `base` was built over, so `base` may outlive its graph.
  /// Precondition: every row NOT listed dirty has an identical weight slice
  /// in both graphs.
  AliasSampler(const Graph& graph, const AliasSampler& base,
               std::span<const NodeId> dirty_rows);

  /// Draws an in-neighbor of v with probability proportional to the edge
  /// weight, or kNoNeighbor when v has no in-edges. O(1).
  NodeId SampleInNeighbor(NodeId v, Rng* rng) const;

  /// Exact sampling probability of the in-edge at slice position `slot`
  /// of node v (for tests).
  double Probability(NodeId v, size_t slot) const;

  size_t memory_bytes() const {
    return prob_.size() * sizeof(double) + alias_.size() * sizeof(uint32_t) +
           offsets_.size() * sizeof(uint64_t);
  }

 private:
  // The graph sampled from. Must stay alive for Sample/Probability calls;
  // the incremental constructor above deliberately does NOT read it (a
  // sampler may be used as a copy base after its graph is gone).
  const Graph* graph_;
  // Parallel to the graph's in-edge arrays: acceptance probability and
  // within-slice alias index.
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  // Snapshot of the graph's in-edge CSR offsets (num_nodes + 1 entries).
  // Owned so clean-row copies in the incremental constructor can locate
  // base rows without touching base's — possibly freed — graph.
  std::vector<uint64_t> offsets_;
};

/// Per-row alias tables over a rebased local CSR slice — the in-adjacency
/// of a node range [lo, hi) of a partitioned graph, with row r standing for
/// global node lo + r. Vose construction is per-node, depending only on
/// that node's weight slice, so an AliasSlice holds exactly the same
/// prob/alias entries as the full-graph AliasSampler over those rows, and
/// SampleInNeighbor consumes the Rng identically (one UniformInt, one
/// Uniform). This is the keystone of the out-of-core engine's bit-identity
/// with the in-memory builder (determinism ledger entry #7).
class AliasSlice {
 public:
  static constexpr NodeId kNoNeighbor = AliasSampler::kNoNeighbor;

  /// `offsets` has num_rows + 1 entries with offsets[0] == 0 (local,
  /// rebased); `sources` / `weights` are the concatenated local in-edge
  /// arrays, offsets.back() long. The spans must outlive the slice (the
  /// tables are owned, the CSR arrays are not).
  AliasSlice(std::span<const uint64_t> offsets, std::span<const NodeId> sources,
             std::span<const double> weights);

  /// Draws an in-neighbor (a GLOBAL node id) of local row `row`, or
  /// kNoNeighbor when the row has no in-edges. O(1).
  NodeId SampleInNeighbor(uint64_t row, Rng* rng) const {
    const uint64_t begin = offsets_[row], end = offsets_[row + 1];
    if (begin == end) return kNoNeighbor;
    const uint64_t slot = rng->UniformInt(end - begin);
    if (rng->Uniform() < prob_[begin + slot]) return sources_[begin + slot];
    return sources_[begin + alias_[begin + slot]];
  }

  uint64_t num_rows() const { return offsets_.size() - 1; }

  size_t memory_bytes() const {
    return prob_.size() * sizeof(double) + alias_.size() * sizeof(uint32_t);
  }

 private:
  std::span<const uint64_t> offsets_;
  std::span<const NodeId> sources_;
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace voteopt::graph

#endif  // VOTEOPT_GRAPH_ALIAS_TABLE_H_
