// SNAP-style edge-list I/O:
//   # comment lines start with '#'
//   <src> <dst> [weight]
// Missing weights default to 1.0.
#ifndef VOTEOPT_GRAPH_IO_H_
#define VOTEOPT_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace voteopt::graph {

struct LoadOptions {
  /// Node ids in the file may be sparse; when true they are compacted to
  /// [0, n). When false the node universe is [0, max_id].
  bool compact_ids = false;
  /// Column-stochastic normalization after load.
  bool normalize_incoming = true;
  /// Treat each line as an undirected edge (emit both directions).
  bool undirected = false;
};

/// Parses an edge list file into a Graph.
Result<Graph> LoadEdgeList(const std::string& path,
                           const LoadOptions& options = LoadOptions());

/// Writes "src dst weight" lines (no comments).
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace voteopt::graph

#endif  // VOTEOPT_GRAPH_IO_H_
