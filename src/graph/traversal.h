// Hop-limited BFS with epoch-stamped visited marks (no O(n) clearing
// between calls). Used for:
//  * the reachable-users set N_S^(t) of paper Def. 2 (forward, <= t hops),
//  * the coverage-based upper bounds of § IV (lazy greedy re-evaluations),
//  * connectivity sanity checks in tests.
#ifndef VOTEOPT_GRAPH_TRAVERSAL_H_
#define VOTEOPT_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"

namespace voteopt::graph {

enum class Direction { kForward, kReverse };

/// Reusable BFS scratch space bound to one graph.
class HopLimitedBfs {
 public:
  explicit HopLimitedBfs(const Graph& graph, Direction direction);

  /// Visits every node within `max_hops` edges of any node in `sources`
  /// (sources themselves are at hop 0) and invokes `visit(node, hop)` once
  /// per node in nondecreasing hop order. Each call starts fresh.
  void Run(const std::vector<NodeId>& sources, uint32_t max_hops,
           const std::function<void(NodeId, uint32_t)>& visit);

  /// Convenience: the set of nodes within `max_hops` of `sources`.
  std::vector<NodeId> ReachableWithin(const std::vector<NodeId>& sources,
                                      uint32_t max_hops);

 private:
  const Graph* graph_;
  Direction direction_;
  std::vector<uint32_t> mark_;     // epoch stamp per node
  uint32_t epoch_ = 0;
  std::vector<NodeId> frontier_;   // scratch
  std::vector<NodeId> next_;       // scratch
};

}  // namespace voteopt::graph

#endif  // VOTEOPT_GRAPH_TRAVERSAL_H_
