#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "graph/builder.h"

namespace voteopt::graph {

double Graph::InWeightSum(NodeId v) const {
  const auto w = InWeights(v);
  return std::accumulate(w.begin(), w.end(), 0.0);
}

double Graph::OutWeightSum(NodeId u) const {
  const auto w = OutWeights(u);
  return std::accumulate(w.begin(), w.end(), 0.0);
}

bool Graph::IsColumnStochastic(double tol) const {
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (InDegree(v) == 0) continue;
    if (std::fabs(InWeightSum(v) - 1.0) > tol) return false;
  }
  return true;
}

Graph Graph::NormalizedIncoming() const {
  GraphBuilder builder(num_nodes_);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const double sum = InWeightSum(v);
    if (sum <= 0.0) continue;
    const auto sources = InNeighbors(v);
    const auto weights = InWeights(v);
    for (size_t i = 0; i < sources.size(); ++i) {
      builder.AddEdge(sources[i], v, weights[i] / sum);
    }
  }
  auto result = builder.Build({.merge_parallel_edges = false});
  assert(result.ok());
  return std::move(result).value();
}

Graph Graph::Transposed() const {
  GraphBuilder builder(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const auto targets = OutNeighbors(u);
    const auto weights = OutWeights(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      builder.AddEdge(targets[i], u, weights[i]);
    }
  }
  auto result = builder.Build({.merge_parallel_edges = false});
  assert(result.ok());
  return std::move(result).value();
}

Graph Graph::InducedSubgraph(const std::vector<NodeId>& nodes) const {
  constexpr NodeId kAbsent = static_cast<NodeId>(-1);
  std::vector<NodeId> remap(num_nodes_, kAbsent);
  for (size_t i = 0; i < nodes.size(); ++i) {
    assert(nodes[i] < num_nodes_);
    remap[nodes[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder builder(static_cast<uint32_t>(nodes.size()));
  for (NodeId u : nodes) {
    const NodeId new_u = remap[u];
    const auto targets = OutNeighbors(u);
    const auto weights = OutWeights(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      const NodeId new_v = remap[targets[i]];
      if (new_v != kAbsent) builder.AddEdge(new_u, new_v, weights[i]);
    }
  }
  auto result = builder.Build({.merge_parallel_edges = false});
  assert(result.ok());
  return std::move(result).value();
}

}  // namespace voteopt::graph
