#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "graph/builder.h"

namespace voteopt::graph {

Result<Graph> Graph::FromCsr(uint32_t num_nodes,
                             std::vector<uint64_t> out_offsets,
                             std::vector<NodeId> out_targets,
                             std::vector<double> out_weights,
                             std::vector<uint64_t> in_offsets,
                             std::vector<NodeId> in_sources,
                             std::vector<double> in_weights) {
  const uint64_t num_edges = out_targets.size();
  auto check_direction = [&](const std::vector<uint64_t>& offsets,
                             const std::vector<NodeId>& endpoints,
                             const std::vector<double>& weights,
                             const char* which) -> Status {
    if (offsets.size() != num_nodes + size_t{1}) {
      return Status::InvalidArgument(std::string(which) +
                                     "-offsets size is not n+1");
    }
    if (offsets.front() != 0 || offsets.back() != num_edges) {
      return Status::InvalidArgument(std::string(which) +
                                     "-offsets do not span the edge arrays");
    }
    for (size_t v = 0; v + 1 < offsets.size(); ++v) {
      if (offsets[v] > offsets[v + 1]) {
        return Status::InvalidArgument(std::string(which) +
                                       "-offsets are not monotone");
      }
    }
    if (endpoints.size() != num_edges || weights.size() != num_edges) {
      return Status::InvalidArgument(
          std::string(which) + "-edge arrays disagree on the edge count");
    }
    for (const NodeId id : endpoints) {
      if (id >= num_nodes) {
        return Status::InvalidArgument(std::string(which) +
                                       "-edge endpoint out of range");
      }
    }
    return Status::OK();
  };
  VOTEOPT_RETURN_IF_ERROR(
      check_direction(out_offsets, out_targets, out_weights, "out"));
  VOTEOPT_RETURN_IF_ERROR(
      check_direction(in_offsets, in_sources, in_weights, "in"));

  Graph graph;
  graph.num_nodes_ = num_nodes;
  graph.num_edges_ = num_edges;
  graph.out_offsets_ = std::move(out_offsets);
  graph.out_targets_ = std::move(out_targets);
  graph.out_weights_ = std::move(out_weights);
  graph.in_offsets_ = std::move(in_offsets);
  graph.in_sources_ = std::move(in_sources);
  graph.in_weights_ = std::move(in_weights);
  return graph;
}

double Graph::InWeightSum(NodeId v) const {
  const auto w = InWeights(v);
  return std::accumulate(w.begin(), w.end(), 0.0);
}

double Graph::OutWeightSum(NodeId u) const {
  const auto w = OutWeights(u);
  return std::accumulate(w.begin(), w.end(), 0.0);
}

bool Graph::IsColumnStochastic(double tol) const {
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (InDegree(v) == 0) continue;
    if (std::fabs(InWeightSum(v) - 1.0) > tol) return false;
  }
  return true;
}

Graph Graph::NormalizedIncoming() const {
  GraphBuilder builder(num_nodes_);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const double sum = InWeightSum(v);
    if (sum <= 0.0) continue;
    const auto sources = InNeighbors(v);
    const auto weights = InWeights(v);
    for (size_t i = 0; i < sources.size(); ++i) {
      builder.AddEdge(sources[i], v, weights[i] / sum);
    }
  }
  auto result = builder.Build({.merge_parallel_edges = false});
  assert(result.ok());
  return std::move(result).value();
}

Graph Graph::Transposed() const {
  GraphBuilder builder(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const auto targets = OutNeighbors(u);
    const auto weights = OutWeights(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      builder.AddEdge(targets[i], u, weights[i]);
    }
  }
  auto result = builder.Build({.merge_parallel_edges = false});
  assert(result.ok());
  return std::move(result).value();
}

Graph Graph::InducedSubgraph(const std::vector<NodeId>& nodes) const {
  constexpr NodeId kAbsent = static_cast<NodeId>(-1);
  std::vector<NodeId> remap(num_nodes_, kAbsent);
  for (size_t i = 0; i < nodes.size(); ++i) {
    assert(nodes[i] < num_nodes_);
    remap[nodes[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder builder(static_cast<uint32_t>(nodes.size()));
  for (NodeId u : nodes) {
    const NodeId new_u = remap[u];
    const auto targets = OutNeighbors(u);
    const auto weights = OutWeights(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      const NodeId new_v = remap[targets[i]];
      if (new_v != kAbsent) builder.AddEdge(new_u, new_v, weights[i]);
    }
  }
  auto result = builder.Build({.merge_parallel_edges = false});
  assert(result.ok());
  return std::move(result).value();
}

}  // namespace voteopt::graph
