// Mutable edge accumulator that validates and freezes into an immutable
// Graph.
#ifndef VOTEOPT_GRAPH_BUILDER_H_
#define VOTEOPT_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace voteopt::graph {

/// Accumulates edges and produces a Graph.
///
/// Usage:
///   GraphBuilder b(4);
///   b.AddEdge(0, 2, 1.0);
///   ...
///   Result<Graph> g = b.Build({.normalize_incoming = true});
class GraphBuilder {
 public:
  struct BuildOptions {
    /// Merge parallel edges by summing their weights.
    bool merge_parallel_edges = true;
    /// Scale every node's incoming weights to sum to 1 (the paper's
    /// column-stochastic requirement).
    bool normalize_incoming = false;
    /// Reject self loops instead of keeping them. The FJ model expresses
    /// self-reinforcement through stubbornness, not self loops.
    bool allow_self_loops = false;
  };

  /// `num_nodes` fixes the node-id universe [0, num_nodes).
  explicit GraphBuilder(uint32_t num_nodes);

  /// Appends a directed edge u -> v with weight w (> 0).
  /// Out-of-range endpoints or non-positive weights fail at Build() time
  /// with InvalidArgument (recorded, so callers may batch AddEdge freely).
  void AddEdge(NodeId u, NodeId v, double w);

  /// Convenience for symmetric relations (friendship / co-authorship):
  /// adds both u->v and v->u.
  void AddUndirectedEdge(NodeId u, NodeId v, double w);

  uint32_t num_nodes() const { return num_nodes_; }
  size_t num_pending_edges() const { return sources_.size(); }

  /// Validates and freezes. The builder may be reused afterwards (its edge
  /// buffer is left untouched).
  Result<Graph> Build(const BuildOptions& options) const;
  Result<Graph> Build() const { return Build(BuildOptions{}); }

 private:
  uint32_t num_nodes_;
  std::vector<NodeId> sources_;
  std::vector<NodeId> targets_;
  std::vector<double> weights_;
};

}  // namespace voteopt::graph

#endif  // VOTEOPT_GRAPH_BUILDER_H_
