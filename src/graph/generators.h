// Synthetic graph topologies. The dataset module (src/datasets) composes
// these with the paper's edge-weight recipe to build analogs of the five
// evaluation datasets; tests use them as property-test fixtures.
//
// All generators assign each edge a positive "interaction count" weight
// (co-author count / common visits / retweet count analog) drawn from the
// given distribution; downstream code converts counts to influence weights
// with w = 1 - exp(-a / mu) and normalizes (paper § VIII-A, Appendix D).
#ifndef VOTEOPT_GRAPH_GENERATORS_H_
#define VOTEOPT_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace voteopt::graph {

/// Distribution of per-edge interaction counts.
struct InteractionCounts {
  enum class Kind { kConstant, kPoisson, kZipf };
  Kind kind = Kind::kPoisson;
  double mean = 5.0;      // Poisson mean / constant value
  uint64_t zipf_max = 50; // Zipf support [1, zipf_max]
  double zipf_exponent = 1.5;

  double Draw(Rng* rng) const;
};

/// G(n, m)-style directed Erdős–Rényi graph with ~`num_edges` edges.
Graph ErdosRenyiDigraph(uint32_t num_nodes, uint64_t num_edges,
                        const InteractionCounts& counts, Rng* rng);

/// Barabási–Albert preferential attachment; every undirected edge is
/// emitted in both directions (collaboration / friendship networks:
/// DBLP- and Yelp-like).
Graph BarabasiAlbert(uint32_t num_nodes, uint32_t edges_per_node,
                     const InteractionCounts& counts, Rng* rng);

/// Watts–Strogatz small world (undirected ring lattice, rewired), emitted
/// bidirected. Used as a test fixture with controllable clustering.
Graph WattsStrogatz(uint32_t num_nodes, uint32_t ring_degree,
                    double rewire_prob, const InteractionCounts& counts,
                    Rng* rng);

/// Power-law "retweet" digraph (Twitter-like): each node u emits
/// Poisson(avg_out_degree) edges whose targets are drawn with probability
/// proportional to a Zipf popularity; edges point u -> target
/// ("u influences target" after orientation towards the retweeter).
Graph PowerLawDigraph(uint32_t num_nodes, double avg_out_degree,
                      double popularity_exponent,
                      const InteractionCounts& counts, Rng* rng);

}  // namespace voteopt::graph

#endif  // VOTEOPT_GRAPH_GENERATORS_H_
