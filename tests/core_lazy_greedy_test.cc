// The lazy (CELF) cumulative path and the parallel rank-sensitive gain
// scan are pure evaluation-order optimizations: their selected seeds, the
// estimated score, and the exact score must be bit-identical to the
// exhaustive serial scan — including under heavy gain ties, where only the
// deterministic (gain, node id) ordering keeps the paths aligned.
#include <gtest/gtest.h>

#include "core/estimated_greedy.h"
#include "core/sketch.h"
#include "core/walk_engine.h"
#include "core/walk_set.h"
#include "graph/alias_table.h"
#include "test_fixtures.h"

namespace voteopt::core {
namespace {

using test::MakeRandomInstance;

WalkSet MakeWalks(const ScoreEvaluator& ev, uint32_t lambda, uint64_t seed) {
  const graph::Graph& g = ev.model().graph();
  graph::AliasSampler alias(g);
  WalkEngine engine(g, ev.target_campaign(), alias);
  Rng rng(seed);
  WalkSet walks(g.num_nodes());
  std::vector<graph::NodeId> scratch;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (uint32_t j = 0; j < lambda; ++j) {
      engine.Generate(v, ev.horizon(), &rng, &scratch);
      walks.AddWalk(scratch);
    }
  }
  walks.Finalize(ev.target_campaign().initial_opinions);
  return walks;
}

voting::ScoreSpec SpecFor(voting::ScoreKind kind) {
  voting::ScoreSpec spec;
  spec.kind = kind;
  if (kind == voting::ScoreKind::kPApproval) spec.p = 2;
  if (kind == voting::ScoreKind::kPositionalPApproval) {
    spec = voting::ScoreSpec::PositionalPApproval({1.0, 0.4});
  }
  return spec;
}

SelectionResult Select(const ScoreEvaluator& ev, uint32_t k,
                       const WalkSet& initial, bool lazy,
                       uint32_t num_threads) {
  WalkSet walks = initial;
  EstimatedGreedyOptions options;
  options.evaluate_exact = false;
  options.lazy = lazy;
  options.num_threads = num_threads;
  return EstimatedGreedySelect(ev, k, &walks, options);
}

class LazyGreedyEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<voting::ScoreKind, uint64_t>> {
};

TEST_P(LazyGreedyEquivalenceTest, LazyAndParallelMatchExhaustiveSerial) {
  const auto [kind, seed] = GetParam();
  auto inst = MakeRandomInstance(40, 220, 3, seed, /*max_stubbornness=*/0.7);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, SpecFor(kind));
  const WalkSet initial = MakeWalks(ev, /*lambda=*/5, seed * 5 + 3);

  const SelectionResult baseline =
      Select(ev, 8, initial, /*lazy=*/false, /*num_threads=*/1);
  const SelectionResult lazy =
      Select(ev, 8, initial, /*lazy=*/true, /*num_threads=*/1);
  const SelectionResult parallel =
      Select(ev, 8, initial, /*lazy=*/true, /*num_threads=*/4);

  EXPECT_EQ(lazy.seeds, baseline.seeds) << voting::ScoreKindName(kind);
  EXPECT_EQ(parallel.seeds, baseline.seeds) << voting::ScoreKindName(kind);
  EXPECT_DOUBLE_EQ(lazy.score, baseline.score);
  EXPECT_DOUBLE_EQ(parallel.score, baseline.score);
  EXPECT_DOUBLE_EQ(lazy.diagnostics.at("estimated_score"),
                   baseline.diagnostics.at("estimated_score"));
  // The optimization must never do MORE gain work than the full scan.
  EXPECT_LE(lazy.diagnostics.at("gain_evaluations"),
            baseline.diagnostics.at("gain_evaluations"));
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, LazyGreedyEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(voting::ScoreKind::kCumulative,
                          voting::ScoreKind::kPlurality,
                          voting::ScoreKind::kPApproval,
                          voting::ScoreKind::kPositionalPApproval,
                          voting::ScoreKind::kCopeland),
        ::testing::Values(301u, 302u, 303u)));

TEST(LazyGreedyTest, TieHeavyInputKeepsDeterministicOrder) {
  // Every user starts at the same opinion with the same stubbornness on a
  // near-regular graph: marginal gains collide constantly, so any deviation
  // from the exhaustive (gain, node id) tie-break shows up as a different
  // seed sequence.
  for (uint64_t seed : {401u, 402u, 403u}) {
    auto inst = MakeRandomInstance(36, 200, 2, seed);
    for (auto& campaign : inst.state.campaigns) {
      for (uint32_t v = 0; v < 36; ++v) {
        campaign.initial_opinions[v] = 0.25;
        campaign.stubbornness[v] = 0.5;
      }
    }
    opinion::FJModel model(inst.graph);
    ScoreEvaluator ev(model, inst.state, 0, 3,
                      voting::ScoreSpec::Cumulative());
    const WalkSet initial = MakeWalks(ev, /*lambda=*/4, seed + 7);
    const SelectionResult exhaustive =
        Select(ev, 10, initial, /*lazy=*/false, 1);
    const SelectionResult lazy = Select(ev, 10, initial, /*lazy=*/true, 1);
    EXPECT_EQ(lazy.seeds, exhaustive.seeds) << "instance seed " << seed;
  }
}

TEST(LazyGreedyTest, TieBreakPicksLowestNodeId) {
  // Two disconnected two-node chains with identical walks and weights: the
  // candidate gains of nodes 0 and 2 are exactly equal, so both paths must
  // pick the lower id first.
  graph::GraphBuilder builder(4);
  builder.AddEdge(1, 0, 1.0);
  builder.AddEdge(3, 2, 1.0);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  opinion::MultiCampaignState state;
  state.campaigns.resize(2);
  state.campaigns[0].initial_opinions = {0.0, 0.0, 0.0, 0.0};
  state.campaigns[0].stubbornness = {0.0, 0.0, 0.0, 0.0};
  state.campaigns[1].initial_opinions = {0.5, 0.5, 0.5, 0.5};
  state.campaigns[1].stubbornness = {1.0, 1.0, 1.0, 1.0};
  opinion::FJModel model(*g);
  ScoreEvaluator ev(model, state, 0, 2, voting::ScoreSpec::Cumulative());

  for (const bool lazy : {false, true}) {
    WalkSet walks(4);
    walks.AddWalk({1, 0});  // start 1 reaches influencer 0
    walks.AddWalk({3, 2});  // start 3 reaches influencer 2 — same gain
    walks.Finalize(state.campaigns[0].initial_opinions);
    EstimatedGreedyOptions options;
    options.evaluate_exact = false;
    options.lazy = lazy;
    const auto result = EstimatedGreedySelect(ev, 2, &walks, options);
    EXPECT_EQ(result.seeds, (std::vector<graph::NodeId>{0, 2}))
        << (lazy ? "lazy" : "exhaustive");
  }
}

TEST(LazyGreedyTest, MatchesOnRSSketchWeights) {
  // Sketch-built walk sets carry non-uniform start weights; the lazy path
  // must agree with the exhaustive one there too.
  auto inst = MakeRandomInstance(48, 260, 2, 17);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 5, voting::ScoreSpec::Cumulative());
  SketchBuildOptions build;
  build.num_threads = 2;
  build.block_size = 256;
  const auto sketch = BuildSketchSet(ev, 4000, /*master_seed=*/9, build);
  const SelectionResult exhaustive = Select(ev, 12, *sketch, false, 1);
  const SelectionResult lazy = Select(ev, 12, *sketch, true, 1);
  EXPECT_EQ(lazy.seeds, exhaustive.seeds);
  EXPECT_DOUBLE_EQ(lazy.diagnostics.at("estimated_score"),
                   exhaustive.diagnostics.at("estimated_score"));
  EXPECT_LT(lazy.diagnostics.at("gain_evaluations"),
            exhaustive.diagnostics.at("gain_evaluations"));
}

TEST(LazyGreedyTest, OnPrefixStopsSelectionEarly) {
  auto inst = MakeRandomInstance(30, 160, 2, 53);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Cumulative());
  const WalkSet initial = MakeWalks(ev, 4, 99);

  const SelectionResult full = Select(ev, 6, initial, true, 1);
  ASSERT_GE(full.seeds.size(), 4u);

  for (const bool lazy : {false, true}) {
    WalkSet walks = initial;
    EstimatedGreedyOptions options;
    options.evaluate_exact = false;
    options.lazy = lazy;
    std::vector<std::vector<graph::NodeId>> prefixes;
    options.on_prefix = [&](uint32_t len,
                            const std::vector<graph::NodeId>& prefix,
                            const WalkSet&) {
      EXPECT_EQ(prefix.size(), len);
      prefixes.push_back(prefix);
      return len >= 3;  // accept the length-3 prefix
    };
    const auto result = EstimatedGreedySelect(ev, 6, &walks, options);
    ASSERT_EQ(result.seeds.size(), 3u);
    // The early-stopped run walks the same greedy path as the full run.
    EXPECT_EQ(result.seeds,
              std::vector<graph::NodeId>(full.seeds.begin(),
                                         full.seeds.begin() + 3));
    ASSERT_EQ(prefixes.size(), 3u);
    EXPECT_EQ(prefixes.back(), result.seeds);
  }
}

}  // namespace
}  // namespace voteopt::core
