// Shared fixtures: the paper's running example (Fig. 1 / Table I) and
// small random problem instances for property tests.
//
// Running example (paper user i = node i-1):
//   edges:  1 -> 3 (w = 1/2),  2 -> 3 (w = 1/2),  3 -> 4 (w = 1)
//   c1: b0 = (0.40, 0.80, 0.60, 0.90), d = (1, 1, 0.5, 0.5)
//   c2: fully stubborn at (0.35, 0.75, 0.78, 0.90)  [the caption's t=1
//       values; c2 receives no seeds anywhere in the paper's example]
//
// This reproduces every Table I row exactly at t = 1:
//   {}      (0.40 0.80 0.60 0.75)  cum 2.55  plu 2  cope 0
//   {1}     (1.00 0.80 0.75 0.75)  cum 3.30  plu 2  cope 0
//   {2}     (0.40 1.00 0.65 0.75)  cum 2.80  plu 2  cope 0
//   {3}     (0.40 0.80 1.00 0.95)  cum 3.15  plu 4  cope 1
//   {4}     (0.40 0.80 0.60 1.00)  cum 2.80  plu 3  cope 1
//   {1,2}   (1.00 1.00 0.80 0.75)  cum 3.55  plu 3  cope 1
#ifndef VOTEOPT_TESTS_TEST_FIXTURES_H_
#define VOTEOPT_TESTS_TEST_FIXTURES_H_

#include <cassert>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "opinion/fj_model.h"
#include "opinion/opinion_state.h"
#include "util/rng.h"

namespace voteopt::test {

struct PaperExample {
  graph::Graph graph;
  opinion::MultiCampaignState state;  // campaign 0 = c1 (target), 1 = c2
};

inline PaperExample MakePaperExample() {
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 2, 0.5);
  builder.AddEdge(1, 2, 0.5);
  builder.AddEdge(2, 3, 1.0);
  auto built = builder.Build();
  assert(built.ok());

  PaperExample ex;
  ex.graph = std::move(built).value();
  ex.state.campaigns.resize(2);
  ex.state.campaigns[0].initial_opinions = {0.40, 0.80, 0.60, 0.90};
  ex.state.campaigns[0].stubbornness = {1.0, 1.0, 0.5, 0.5};
  ex.state.campaigns[1].initial_opinions = {0.35, 0.75, 0.78, 0.90};
  ex.state.campaigns[1].stubbornness = {1.0, 1.0, 1.0, 1.0};
  return ex;
}

/// A random, column-stochastic multi-campaign instance for property tests.
struct RandomInstance {
  graph::Graph graph;
  opinion::MultiCampaignState state;
};

inline RandomInstance MakeRandomInstance(uint32_t num_nodes,
                                         uint64_t num_edges,
                                         uint32_t num_candidates,
                                         uint64_t seed,
                                         double max_stubbornness = 1.0) {
  Rng rng(seed);
  graph::InteractionCounts counts;
  counts.kind = graph::InteractionCounts::Kind::kPoisson;
  counts.mean = 4.0;
  graph::Graph raw = graph::ErdosRenyiDigraph(num_nodes, num_edges, counts,
                                              &rng);
  RandomInstance inst;
  inst.graph = raw.NormalizedIncoming();

  inst.state.campaigns.resize(num_candidates);
  for (auto& campaign : inst.state.campaigns) {
    campaign.initial_opinions.resize(num_nodes);
    campaign.stubbornness.resize(num_nodes);
    for (uint32_t v = 0; v < num_nodes; ++v) {
      campaign.initial_opinions[v] = rng.Uniform();
      campaign.stubbornness[v] = rng.Uniform() * max_stubbornness;
    }
  }
  return inst;
}

}  // namespace voteopt::test

#endif  // VOTEOPT_TESTS_TEST_FIXTURES_H_
