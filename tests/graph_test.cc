#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace voteopt::graph {
namespace {

Graph Diamond() {
  // 0 -> 1 (0.3), 0 -> 2 (0.7), 1 -> 3 (0.4), 2 -> 3 (0.6)
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.3);
  b.AddEdge(0, 2, 0.7);
  b.AddEdge(1, 3, 0.4);
  b.AddEdge(2, 3, 0.6);
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(GraphBuilderTest, BasicShape) {
  Graph g = Diamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(3), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.OutDegree(3), 0u);
}

TEST(GraphBuilderTest, DualCsrConsistency) {
  Graph g = Diamond();
  // Every out-edge appears as an in-edge with the same weight.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto targets = g.OutNeighbors(u);
    const auto weights = g.OutWeights(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      const auto sources = g.InNeighbors(targets[i]);
      const auto in_weights = g.InWeights(targets[i]);
      bool found = false;
      for (size_t j = 0; j < sources.size(); ++j) {
        if (sources[j] == u && in_weights[j] == weights[i]) found = true;
      }
      EXPECT_TRUE(found) << "edge " << u << "->" << targets[i];
    }
  }
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(3);
  b.AddEdge(0, 5, 1.0);
  auto result = b.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsNonPositiveWeight) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.0);
  EXPECT_FALSE(b.Build().ok());
  GraphBuilder b2(3);
  b2.AddEdge(0, 1, -1.0);
  EXPECT_FALSE(b2.Build().ok());
}

TEST(GraphBuilderTest, RejectsSelfLoopByDefault) {
  GraphBuilder b(3);
  b.AddEdge(1, 1, 1.0);
  EXPECT_FALSE(b.Build().ok());
  EXPECT_TRUE(b.Build({.allow_self_loops = true}).ok());
}

TEST(GraphBuilderTest, MergesParallelEdges) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.25);
  b.AddEdge(0, 1, 0.5);
  auto g = b.Build({.merge_parallel_edges = true});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g->OutWeights(0)[0], 0.75);
}

TEST(GraphBuilderTest, NormalizeIncomingMakesColumnStochastic) {
  GraphBuilder b(3);
  b.AddEdge(0, 2, 2.0);
  b.AddEdge(1, 2, 6.0);
  auto g = b.Build({.normalize_incoming = true});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->IsColumnStochastic());
  EXPECT_DOUBLE_EQ(g->InWeightSum(2), 1.0);
  // Ratios preserved: 2:6 -> 0.25 : 0.75.
  EXPECT_DOUBLE_EQ(g->InWeights(2)[0], 0.25);
  EXPECT_DOUBLE_EQ(g->InWeights(2)[1], 0.75);
}

TEST(GraphBuilderTest, UndirectedEdgeAddsBothDirections) {
  GraphBuilder b(2);
  b.AddUndirectedEdge(0, 1, 3.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_EQ(g->OutDegree(0), 1u);
  EXPECT_EQ(g->OutDegree(1), 1u);
}

TEST(GraphBuilderTest, EmptyGraphIsValid) {
  GraphBuilder b(5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 5u);
  EXPECT_EQ(g->num_edges(), 0u);
  EXPECT_TRUE(g->IsColumnStochastic());  // vacuously
}

TEST(GraphTest, WeightSums) {
  Graph g = Diamond();
  EXPECT_DOUBLE_EQ(g.OutWeightSum(0), 1.0);
  EXPECT_DOUBLE_EQ(g.InWeightSum(3), 1.0);
  EXPECT_DOUBLE_EQ(g.InWeightSum(0), 0.0);
}

TEST(GraphTest, IsColumnStochasticDetectsViolation) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->IsColumnStochastic());
}

TEST(GraphTest, NormalizedIncomingIdempotent) {
  Graph g = Diamond().NormalizedIncoming();
  EXPECT_TRUE(g.IsColumnStochastic());
  Graph g2 = g.NormalizedIncoming();
  EXPECT_TRUE(g2.IsColumnStochastic());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
}

TEST(GraphTest, TransposeReversesEdges) {
  Graph g = Diamond();
  Graph t = g.Transposed();
  EXPECT_EQ(t.num_edges(), g.num_edges());
  EXPECT_EQ(t.OutDegree(3), 2u);
  EXPECT_EQ(t.InDegree(0), 2u);  // 0 had out-degree 2
  EXPECT_EQ(t.OutDegree(0), 0u);  // 0 had in-degree 0
  EXPECT_EQ(t.InDegree(1), 1u);
  // Double transpose restores shape.
  Graph tt = t.Transposed();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(tt.OutDegree(v), g.OutDegree(v));
    EXPECT_EQ(tt.InDegree(v), g.InDegree(v));
  }
}

TEST(GraphTest, InducedSubgraphRemapsIds) {
  Graph g = Diamond();
  // Keep nodes {0, 2, 3} -> new ids {0, 1, 2}; surviving edges:
  // 0->2 (0.7) and 2->3 (0.6).
  Graph sub = g.InducedSubgraph({0, 2, 3});
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);
  ASSERT_EQ(sub.OutDegree(0), 1u);
  EXPECT_EQ(sub.OutNeighbors(0)[0], 1u);
  EXPECT_DOUBLE_EQ(sub.OutWeights(0)[0], 0.7);
  ASSERT_EQ(sub.OutDegree(1), 1u);
  EXPECT_EQ(sub.OutNeighbors(1)[0], 2u);
}

TEST(GraphTest, InducedSubgraphEmptySelection) {
  Graph g = Diamond();
  Graph sub = g.InducedSubgraph({});
  EXPECT_EQ(sub.num_nodes(), 0u);
  EXPECT_EQ(sub.num_edges(), 0u);
}

}  // namespace
}  // namespace voteopt::graph
