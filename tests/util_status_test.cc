#include "util/status.h"

#include <gtest/gtest.h>

namespace voteopt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad k").code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_FALSE(Status::InvalidArgument("bad k").ok());
  EXPECT_EQ(Status::InvalidArgument("bad k").message(), "bad k");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("k exceeds n").ToString(),
            "InvalidArgument: k exceeds n");
  EXPECT_EQ(Status::IOError("").ToString(), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = [] { return Status::Corruption("boom"); };
  auto wrapper = [&]() -> Status {
    VOTEOPT_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), Status::Code::kCorruption);
}

TEST(ReturnIfErrorTest, PassesThroughOk) {
  auto succeeds = [] { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    VOTEOPT_RETURN_IF_ERROR(succeeds());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(wrapper().code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace voteopt
