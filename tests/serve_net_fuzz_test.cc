// Property-style fuzz sweep over a LIVE socket, extending the
// graph_edge_stream_test pattern to the TCP front end: 300 seeded rounds
// of random garbage — printable junk, bogus JSON, raw binary (newlines
// and NULs included), oversized lines, partial frames — interleaved with
// valid canary requests. Invariants:
//   - the server never crashes (the suite runs under ASan+UBSan in CI);
//   - every byte the server emits parses as a protocol response line;
//   - valid requests embedded in the chaos get their exact engine answer,
//     in request order, no matter what surrounds them;
//   - an oversized line closes only ITS connection; the next connection
//     is served normally.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "serve/protocol.h"
#include "util/rng.h"

namespace voteopt::net {
namespace {

using api::Request;

constexpr size_t kMaxLineBytes = 2048;

struct FuzzItem {
  std::string bytes;           // exactly what goes on the wire
  bool valid = false;          // a well-formed request line
  std::string expected;        // stable answer when valid
  bool accountable = true;     // false: may add/consume response lines
  bool condemns = false;       // oversized: the connection will close
};

class ServeNetFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/serve_net_fuzz";
    ASSERT_TRUE(datasets::SaveDatasetBundle(
                    datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                                          0.05, /*seed=*/7),
                    prefix_)
                    .ok());
    api::EngineOptions options;
    options.load.bundle_prefix = prefix_;
    options.load.build_theta = 10000;
    options.load.build_horizon = 8;
    options.load.save_built_sketch = true;
    options.load.build_threads = 2;
    options.num_worker_threads = 2;
    auto engine = api::Engine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);

    ServerOptions server_options;
    server_options.max_line_bytes = kMaxLineBytes;
    server_options.batch.metrics = &engine_->metrics();
    server_ = std::make_unique<Server>(engine_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());

    // The valid-request pool and its reference answers, straight from the
    // engine (the thing every socket answer must be byte-identical to).
    auto add = [&](Request request) {
      valid_pool_.push_back(serve::RequestToJson(request));
      expected_pool_.push_back(engine_->Execute(request).ToStableJson());
    };
    Request request;
    request.op = Request::Op::kTopK;
    request.k = 3;
    add(request);
    request = {};
    request.op = Request::Op::kTopK;
    request.k = 2;
    request.rule = "plurality";
    add(request);
    request = {};
    request.op = Request::Op::kEvaluate;
    request.seeds = {1, 2};
    add(request);
    request = {};
    request.op = Request::Op::kList;
    add(request);
  }

  void TearDown() override {
    server_.reset();
    engine_.reset();
    for (const char* suffix : {".influence.edges", ".counts.edges",
                               ".campaigns.tsv", ".meta", ".sketch"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  FuzzItem MakeItem(Rng* rng) {
    FuzzItem item;
    const uint64_t kind = rng->UniformInt(10);
    if (kind < 4) {
      // A valid request from the pool, possibly split later.
      const size_t at = rng->UniformInt(valid_pool_.size());
      item.bytes = valid_pool_[at] + "\n";
      item.valid = true;
      item.expected = expected_pool_[at];
    } else if (kind < 6) {
      // Printable junk on its own line: one parse-error response.
      static const char* kJunk[] = {
          "hello there", "GET / HTTP/1.1", "\"just a string\"",
          "{\"op\": \"bogus\"}", "{\"op\": \"topk\", \"k\": }",
          "{\"op\": \"topk\"", "[1, 2, 3]", "{}", "null", "42",
          "{\"op\": 7}", "{\"op\": \"topk\", \"k\": \"three\"}"};
      item.bytes = std::string(kJunk[rng->UniformInt(12)]) + "\n";
    } else if (kind < 8) {
      // Comment / blank chaos: skipped by the server, zero responses.
      item.bytes = rng->Bernoulli(0.5) ? "\n" : "# noise\n";
    } else if (kind == 8) {
      // Raw binary, newline-terminated. May contain '\n' (extra line
      // splits), '\r', '#', '\0' — response accounting is off, but the
      // server must still answer everything else correctly around it.
      const size_t len = 1 + rng->UniformInt(256);
      item.bytes.reserve(len + 1);
      for (size_t i = 0; i < len; ++i) {
        item.bytes.push_back(static_cast<char>(rng->UniformInt(256)));
      }
      item.bytes.push_back('\n');
      item.accountable = false;
    } else {
      // Oversized line: error response, then the connection closes.
      item.bytes = std::string(kMaxLineBytes + 64, 'x') + "\n";
      item.condemns = true;
      item.accountable = false;
    }
    return item;
  }

  std::string prefix_;
  std::unique_ptr<api::Engine> engine_;
  std::unique_ptr<Server> server_;
  std::vector<std::string> valid_pool_;
  std::vector<std::string> expected_pool_;
};

TEST_F(ServeNetFuzzTest, RandomGarbageOverLiveSocketNeverCrashes) {
  Rng rng(20230841);
  int condemned_rounds = 0, binary_rounds = 0, valid_sent = 0;
  for (int round = 0; round < 300; ++round) {
    BlockingClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok())
        << "round " << round;

    const int num_items = 1 + static_cast<int>(rng.UniformInt(8));
    std::vector<std::string> expected_in_order;
    bool condemned = false;
    for (int i = 0; i < num_items && !condemned; ++i) {
      FuzzItem item = MakeItem(&rng);
      if (item.valid && rng.Bernoulli(0.3)) {
        // Split the valid line at a random byte boundary: the framer must
        // reassemble it exactly.
        const size_t split = 1 + rng.UniformInt(item.bytes.size() - 1);
        ASSERT_TRUE(client.SendBytes(item.bytes.substr(0, split)).ok());
        ASSERT_TRUE(client.SendBytes(item.bytes.substr(split)).ok());
      } else {
        ASSERT_TRUE(client.SendBytes(item.bytes).ok());
      }
      if (item.valid) {
        expected_in_order.push_back(item.expected);
        ++valid_sent;
      }
      if (!item.accountable && !item.condemns) ++binary_rounds;
      if (item.condemns) {
        condemned = true;
        ++condemned_rounds;
      }
    }

    // The canary: terminate any partial garbage, then one known-good
    // request the server MUST answer — unless this round's oversized line
    // already condemned the connection.
    if (!condemned) {
      ASSERT_TRUE(client.SendBytes("\n").ok());
      ASSERT_TRUE(client.SendBytes(valid_pool_[0] + "\n").ok());
      expected_in_order.push_back(expected_pool_[0]);
      client.ShutdownWrite();
    }

    // Read everything until the server closes (half-close drain or the
    // oversize drop). EVERY line must parse as a protocol response, and
    // the valid requests' answers must appear in order, exactly.
    std::vector<std::string> stable_answers;
    std::string line;
    int guard = 0;
    while (client.ReadLine(&line).ok()) {
      ASSERT_LT(++guard, 300) << "round " << round << ": response flood";
      auto response = serve::ParseResponse(line);
      ASSERT_TRUE(response.ok())
          << "round " << round << " emitted junk: " << line;
      stable_answers.push_back(response->ToStableJson());
    }
    // Subsequence match: garbage may interleave parse-error responses,
    // but every valid answer arrives, in order, byte-identical.
    size_t matched = 0;
    for (const std::string& answer : stable_answers) {
      if (matched < expected_in_order.size() &&
          answer == expected_in_order[matched]) {
        ++matched;
      }
    }
    std::string received;
    for (const std::string& answer : stable_answers) {
      received += "  " + answer + "\n";
    }
    EXPECT_EQ(matched, expected_in_order.size())
        << "round " << round << ": " << matched << "/"
        << expected_in_order.size() << " valid answers surfaced; got:\n"
        << received;
  }
  // The generator must actually exercise every regime.
  EXPECT_GT(condemned_rounds, 20);
  EXPECT_GT(binary_rounds, 20);
  EXPECT_GT(valid_sent, 200);

  // After 300 rounds of abuse the server still answers a fresh client
  // with the exact engine answer.
  BlockingClient survivor;
  ASSERT_TRUE(survivor.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(survivor.SendLine(valid_pool_[0]).ok());
  std::string answer;
  ASSERT_TRUE(survivor.ReadLine(&answer).ok());
  auto parsed = serve::ParseResponse(answer);
  ASSERT_TRUE(parsed.ok()) << answer;
  EXPECT_EQ(parsed->ToStableJson(), expected_pool_[0]);
}

TEST_F(ServeNetFuzzTest, ByteAtATimeDribbleReassemblesEverything) {
  // The slowest possible well-behaved client: an entire mixed batch
  // dribbled one byte per send. Every answer must still be exact.
  Rng rng(777);
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  std::string wire;
  std::vector<std::string> expected;
  for (int i = 0; i < 12; ++i) {
    const size_t at = rng.UniformInt(valid_pool_.size());
    wire += valid_pool_[at] + "\n";
    expected.push_back(expected_pool_[at]);
  }
  for (const char byte : wire) {
    ASSERT_TRUE(client.SendBytes(std::string(1, byte)).ok());
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    std::string answer;
    ASSERT_TRUE(client.ReadLine(&answer).ok()) << "answer " << i;
    auto parsed = serve::ParseResponse(answer);
    ASSERT_TRUE(parsed.ok()) << answer;
    EXPECT_EQ(parsed->ToStableJson(), expected[i]) << "answer " << i;
  }
}

}  // namespace
}  // namespace voteopt::net
