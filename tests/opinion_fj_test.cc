#include "opinion/fj_model.h"

#include <gtest/gtest.h>

#include "opinion/convergence.h"
#include "test_fixtures.h"

namespace voteopt::opinion {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

// ---------------------------------------------------------------------------
// The paper's running example (Fig. 1 / Table I): every opinion digit.
// ---------------------------------------------------------------------------

TEST(FJPaperExampleTest, NoSeedsHorizonOne) {
  auto ex = MakePaperExample();
  FJModel model(ex.graph);
  const auto b1 = model.Propagate(ex.state.campaigns[0], 1);
  EXPECT_NEAR(b1[0], 0.40, 1e-12);
  EXPECT_NEAR(b1[1], 0.80, 1e-12);
  EXPECT_NEAR(b1[2], 0.60, 1e-12);
  EXPECT_NEAR(b1[3], 0.75, 1e-12);
}

struct SeedCase {
  std::vector<graph::NodeId> seeds;
  std::array<double, 4> expected;  // Table I row
};

class FJTableITest : public ::testing::TestWithParam<SeedCase> {};

TEST_P(FJTableITest, MatchesTableIRow) {
  auto ex = MakePaperExample();
  FJModel model(ex.graph);
  const auto b1 =
      model.PropagateWithSeeds(ex.state.campaigns[0], GetParam().seeds, 1);
  for (int v = 0; v < 4; ++v) {
    EXPECT_NEAR(b1[v], GetParam().expected[v], 1e-12) << "user " << v + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSeedSets, FJTableITest,
    ::testing::Values(
        SeedCase{{}, {0.40, 0.80, 0.60, 0.75}},
        SeedCase{{0}, {1.00, 0.80, 0.75, 0.75}},
        SeedCase{{1}, {0.40, 1.00, 0.65, 0.75}},
        SeedCase{{2}, {0.40, 0.80, 1.00, 0.95}},
        SeedCase{{3}, {0.40, 0.80, 0.60, 1.00}},
        SeedCase{{0, 1}, {1.00, 1.00, 0.80, 0.75}}));

TEST(FJPaperExampleTest, CompetitorFullyStubbornKeepsCaptionValues) {
  auto ex = MakePaperExample();
  FJModel model(ex.graph);
  const auto c2 = model.Propagate(ex.state.campaigns[1], 1);
  EXPECT_NEAR(c2[0], 0.35, 1e-12);
  EXPECT_NEAR(c2[1], 0.75, 1e-12);
  EXPECT_NEAR(c2[2], 0.78, 1e-12);
  EXPECT_NEAR(c2[3], 0.90, 1e-12);
}

// ---------------------------------------------------------------------------
// Model semantics.
// ---------------------------------------------------------------------------

TEST(FJModelTest, HorizonZeroIsInitialOpinions) {
  auto ex = MakePaperExample();
  FJModel model(ex.graph);
  EXPECT_EQ(model.Propagate(ex.state.campaigns[0], 0),
            ex.state.campaigns[0].initial_opinions);
}

TEST(FJModelTest, NodesWithoutInEdgesRetainInitialOpinion) {
  auto ex = MakePaperExample();
  FJModel model(ex.graph);
  for (uint32_t t : {1u, 5u, 20u}) {
    const auto b = model.Propagate(ex.state.campaigns[0], t);
    EXPECT_DOUBLE_EQ(b[0], 0.40);
    EXPECT_DOUBLE_EQ(b[1], 0.80);
  }
}

TEST(FJModelTest, FullyStubbornUserNeverMoves) {
  auto inst = MakeRandomInstance(30, 120, 2, 11);
  inst.state.campaigns[0].stubbornness[5] = 1.0;
  FJModel model(inst.graph);
  const auto b = model.Propagate(inst.state.campaigns[0], 15);
  EXPECT_DOUBLE_EQ(b[5], inst.state.campaigns[0].initial_opinions[5]);
}

TEST(FJModelTest, OpinionsStayInUnitInterval) {
  auto inst = MakeRandomInstance(100, 600, 2, 13);
  FJModel model(inst.graph);
  for (uint32_t t : {1u, 3u, 10u, 30u}) {
    const auto b = model.Propagate(inst.state.campaigns[0], t);
    for (double x : b) {
      ASSERT_GE(x, 0.0);
      ASSERT_LE(x, 1.0);
    }
  }
}

TEST(FJModelTest, DeGrootIsSpecialCaseWithZeroStubbornness) {
  // A 2-node cycle with d = 0 oscillates: pure DeGroot averaging.
  graph::GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 0, 1.0);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  Campaign campaign;
  campaign.initial_opinions = {0.0, 1.0};
  campaign.stubbornness = {0.0, 0.0};
  FJModel model(*g);
  const auto b1 = model.Propagate(campaign, 1);
  EXPECT_DOUBLE_EQ(b1[0], 1.0);  // swapped
  EXPECT_DOUBLE_EQ(b1[1], 0.0);
  const auto b2 = model.Propagate(campaign, 2);
  EXPECT_DOUBLE_EQ(b2[0], 0.0);  // swapped back
  EXPECT_DOUBLE_EQ(b2[1], 1.0);
}

TEST(FJModelTest, StepMatchesPropagate) {
  auto inst = MakeRandomInstance(40, 200, 2, 17);
  FJModel model(inst.graph);
  const auto& campaign = inst.state.campaigns[0];
  std::vector<double> current = campaign.initial_opinions;
  std::vector<double> next;
  for (int t = 1; t <= 4; ++t) {
    model.Step(current, campaign.initial_opinions, campaign.stubbornness,
               &next);
    std::swap(current, next);
    EXPECT_EQ(current, model.Propagate(campaign, t)) << "t=" << t;
  }
}

TEST(FJModelTest, TrajectoryHasHorizonPlusOneSnapshots) {
  auto ex = MakePaperExample();
  FJModel model(ex.graph);
  const auto trajectory = model.Trajectory(ex.state.campaigns[0], 7);
  ASSERT_EQ(trajectory.size(), 8u);
  EXPECT_EQ(trajectory[0], ex.state.campaigns[0].initial_opinions);
  EXPECT_EQ(trajectory[3], model.Propagate(ex.state.campaigns[0], 3));
  EXPECT_EQ(trajectory[7], model.Propagate(ex.state.campaigns[0], 7));
}

TEST(FJModelTest, SeedsAreMonotone) {
  // Adding a seed never lowers any user's opinion (basis of Thm. 3).
  auto inst = MakeRandomInstance(50, 300, 2, 19);
  FJModel model(inst.graph);
  const auto& campaign = inst.state.campaigns[0];
  const auto base = model.PropagateWithSeeds(campaign, {3}, 10);
  const auto more = model.PropagateWithSeeds(campaign, {3, 7}, 10);
  for (size_t v = 0; v < base.size(); ++v) {
    EXPECT_GE(more[v], base[v] - 1e-12);
  }
}

TEST(ApplySeedsTest, RaisesOpinionAndStubbornnessToOne) {
  auto ex = MakePaperExample();
  const Campaign seeded = ApplySeeds(ex.state.campaigns[0], {2});
  EXPECT_DOUBLE_EQ(seeded.initial_opinions[2], 1.0);
  EXPECT_DOUBLE_EQ(seeded.stubbornness[2], 1.0);
  // Original untouched.
  EXPECT_DOUBLE_EQ(ex.state.campaigns[0].initial_opinions[2], 0.60);
  // Other entries untouched.
  EXPECT_DOUBLE_EQ(seeded.initial_opinions[0], 0.40);
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

TEST(CampaignValidationTest, RejectsWrongSize) {
  Campaign c;
  c.initial_opinions = {0.5};
  c.stubbornness = {0.5};
  EXPECT_FALSE(c.Validate(2).ok());
}

TEST(CampaignValidationTest, RejectsOutOfRangeValues) {
  Campaign c;
  c.initial_opinions = {0.5, 1.5};
  c.stubbornness = {0.5, 0.5};
  EXPECT_EQ(c.Validate(2).code(), Status::Code::kOutOfRange);
  c.initial_opinions = {0.5, 0.5};
  c.stubbornness = {-0.1, 0.5};
  EXPECT_EQ(c.Validate(2).code(), Status::Code::kOutOfRange);
}

TEST(StateValidationTest, RequiresAtLeastTwoCandidates) {
  MultiCampaignState state;
  state.campaigns.resize(1);
  state.campaigns[0].initial_opinions = {0.5};
  state.campaigns[0].stubbornness = {0.5};
  EXPECT_FALSE(state.Validate(1).ok());
}

TEST(StateValidationTest, PaperExampleValidates) {
  auto ex = MakePaperExample();
  EXPECT_TRUE(ex.state.Validate(4).ok());
}

// ---------------------------------------------------------------------------
// Convergence utilities.
// ---------------------------------------------------------------------------

TEST(ConvergenceTest, FractionChangedRespectsTolerance) {
  std::vector<double> prev = {0.5, 0.5, 0.5, 0.5};
  std::vector<double> curr = {0.5, 0.505, 0.6, 0.5};
  // 2% tolerance: |0.005| <= 0.01 stays; |0.1| > 0.01 counts.
  EXPECT_DOUBLE_EQ(FractionChanged(prev, curr, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(FractionChanged(prev, curr, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(FractionChanged(prev, prev, 0.0), 0.0);
}

TEST(ConvergenceTest, HasConverged) {
  std::vector<double> a = {0.2, 0.3};
  std::vector<double> b = {0.2 + 1e-7, 0.3};
  EXPECT_TRUE(HasConverged(a, b, 1e-6));
  EXPECT_FALSE(HasConverged(a, {0.3, 0.3}, 1e-6));
}

TEST(ConvergenceTest, StubbornCampaignConvergesOnPaperExample) {
  auto ex = MakePaperExample();
  FJModel model(ex.graph);
  const auto t30 = model.Propagate(ex.state.campaigns[0], 30);
  const auto t31 = model.Propagate(ex.state.campaigns[0], 31);
  EXPECT_TRUE(HasConverged(t30, t31, 1e-9));
}

TEST(ObliviousNodesTest, DetectsUnreachableNonStubborn) {
  // 0 -> 1; node 2 isolated and non-stubborn; node 0 stubborn.
  graph::GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1.0);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  Campaign campaign;
  campaign.initial_opinions = {0.5, 0.5, 0.5};
  campaign.stubbornness = {0.8, 0.0, 0.0};
  const auto oblivious = FindObliviousNodes(*g, campaign);
  EXPECT_EQ(oblivious, std::vector<graph::NodeId>{2});
}

TEST(ObliviousNodesTest, NoObliviousWhenAllStubborn) {
  auto ex = MakePaperExample();
  EXPECT_TRUE(FindObliviousNodes(ex.graph, ex.state.campaigns[0]).empty());
}

}  // namespace
}  // namespace voteopt::opinion
