// Oracle tests for the estimated-greedy marginal-gain machinery: the seeds
// chosen by EstimatedGreedySelect must coincide, iteration by iteration,
// with a brute-force greedy that clones the walk set, truncates, and
// recomputes the estimated score from scratch (Eq. 35 / 42 / 47).
#include <gtest/gtest.h>

#include "core/estimated_greedy.h"
#include "core/walk_engine.h"
#include "core/walk_set.h"
#include "graph/alias_table.h"
#include "test_fixtures.h"

namespace voteopt::core {
namespace {

using test::MakeRandomInstance;

/// Recomputes the estimated score of a WalkSet state from first principles.
double BruteEstimatedScore(const ScoreEvaluator& ev, const WalkSet& walks) {
  const auto kind = ev.spec().kind;
  if (kind == voting::ScoreKind::kCopeland) {
    double score = 0.0;
    for (opinion::CandidateId x = 0; x < ev.num_candidates(); ++x) {
      if (x == ev.target()) continue;
      double wins = 0.0, losses = 0.0;
      for (graph::NodeId v = 0; v < walks.num_nodes(); ++v) {
        if (walks.Lambda(v) == 0) continue;
        const double bhat = walks.EstimatedOpinion(v);
        const double other = ev.HorizonOpinions(x)[v];
        if (bhat > other) {
          wins += walks.StartWeight(v);
        } else if (bhat < other) {
          losses += walks.StartWeight(v);
        }
      }
      if (wins > losses) score += 1.0;
    }
    return score;
  }
  double score = 0.0;
  for (graph::NodeId v = 0; v < walks.num_nodes(); ++v) {
    if (walks.Lambda(v) == 0) continue;
    const double bhat = walks.EstimatedOpinion(v);
    score += walks.StartWeight(v) *
             (kind == voting::ScoreKind::kCumulative
                  ? bhat
                  : ev.UserRankWeight(v, bhat));
  }
  return score;
}

/// Brute-force greedy: evaluates every candidate by clone-truncate-rescore.
std::vector<graph::NodeId> BruteGreedy(const ScoreEvaluator& ev,
                                       const WalkSet& initial, uint32_t k) {
  WalkSet current = initial;
  std::vector<graph::NodeId> seeds;
  std::vector<bool> is_seed(initial.num_nodes(), false);
  for (uint32_t round = 0; round < k; ++round) {
    const double base = BruteEstimatedScore(ev, current);
    double best_gain = -std::numeric_limits<double>::infinity();
    graph::NodeId best = 0;
    for (graph::NodeId w = 0; w < initial.num_nodes(); ++w) {
      if (is_seed[w]) continue;
      WalkSet probe = current;
      probe.Truncate(w, [](uint32_t, double) {});
      const double gain = BruteEstimatedScore(ev, probe) - base;
      if (gain > best_gain) {
        best_gain = gain;
        best = w;
      }
    }
    seeds.push_back(best);
    is_seed[best] = true;
    current.Truncate(best, [](uint32_t, double) {});
  }
  return seeds;
}

WalkSet MakeWalks(const ScoreEvaluator& ev, uint32_t lambda, uint64_t seed) {
  const graph::Graph& g = ev.model().graph();
  graph::AliasSampler alias(g);
  WalkEngine engine(g, ev.target_campaign(), alias);
  Rng rng(seed);
  WalkSet walks(g.num_nodes());
  std::vector<graph::NodeId> scratch;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (uint32_t j = 0; j < lambda; ++j) {
      engine.Generate(v, ev.horizon(), &rng, &scratch);
      walks.AddWalk(scratch);
    }
  }
  walks.Finalize(ev.target_campaign().initial_opinions);
  return walks;
}

class EstimatedGreedyOracleTest
    : public ::testing::TestWithParam<std::tuple<voting::ScoreKind, uint64_t>> {
};

TEST_P(EstimatedGreedyOracleTest, MatchesBruteForceGreedy) {
  const auto [kind, seed] = GetParam();
  auto inst = MakeRandomInstance(24, 130, 3, seed, /*max_stubbornness=*/0.7);
  opinion::FJModel model(inst.graph);
  voting::ScoreSpec spec;
  spec.kind = kind;
  if (kind == voting::ScoreKind::kPApproval) spec.p = 2;
  if (kind == voting::ScoreKind::kPositionalPApproval) {
    spec = voting::ScoreSpec::PositionalPApproval({1.0, 0.4});
  }
  ScoreEvaluator ev(model, inst.state, 0, 4, spec);

  const WalkSet initial = MakeWalks(ev, /*lambda=*/6, seed * 3 + 1);
  const auto brute = BruteGreedy(ev, initial, 3);

  WalkSet fast = initial;
  EstimatedGreedyOptions options;
  options.evaluate_exact = false;
  const auto result = EstimatedGreedySelect(ev, 3, &fast, options);
  EXPECT_EQ(result.seeds, brute) << voting::ScoreKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, EstimatedGreedyOracleTest,
    ::testing::Combine(
        ::testing::Values(voting::ScoreKind::kCumulative,
                          voting::ScoreKind::kPlurality,
                          voting::ScoreKind::kPApproval,
                          voting::ScoreKind::kPositionalPApproval,
                          voting::ScoreKind::kCopeland),
        ::testing::Values(201u, 202u, 203u)));

TEST(EstimatedGreedyOracleTest, SketchWeightsRespectedInGains) {
  // Non-uniform start weights (RS-style) must flow into the gains: give one
  // start a huge weight and verify the chosen seed serves that start.
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 3, 1.0);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  opinion::MultiCampaignState state;
  state.campaigns.resize(2);
  state.campaigns[0].initial_opinions = {0.0, 0.0, 0.0, 0.0};
  state.campaigns[0].stubbornness = {0.0, 0.0, 0.0, 0.0};
  state.campaigns[1].initial_opinions = {0.5, 0.5, 0.5, 0.5};
  state.campaigns[1].stubbornness = {1.0, 1.0, 1.0, 1.0};
  opinion::FJModel model(*g);
  ScoreEvaluator ev(model, state, 0, 2, voting::ScoreSpec::Cumulative());

  WalkSet walks(4);
  walks.AddWalk({1, 0});  // start 1, walks back to its influencer 0
  walks.AddWalk({3, 2});  // start 3, influencer 2
  walks.Finalize(state.campaigns[0].initial_opinions);
  walks.SetStartWeight(1, 1.0);
  walks.SetStartWeight(3, 100.0);  // start 3 represents many users

  EstimatedGreedyOptions options;
  options.evaluate_exact = false;
  const auto result = EstimatedGreedySelect(ev, 1, &walks, options);
  // Seeding node 2 raises heavy start 3's estimate: gain 100 vs gain 1.
  EXPECT_EQ(result.seeds, std::vector<graph::NodeId>{2});
}

}  // namespace
}  // namespace voteopt::core
