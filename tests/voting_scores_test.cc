#include "voting/scores.h"

#include <gtest/gtest.h>

#include "opinion/fj_model.h"
#include "test_fixtures.h"

namespace voteopt::voting {
namespace {

using test::MakePaperExample;

/// Opinion matrix of the paper example at t=1 for a given c1 seed set.
OpinionMatrix PaperMatrixAt1(const std::vector<graph::NodeId>& seeds) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  OpinionMatrix m(2);
  m[0] = model.PropagateWithSeeds(ex.state.campaigns[0], seeds, 1);
  m[1] = model.Propagate(ex.state.campaigns[1], 1);
  return m;
}

// ---------------------------------------------------------------------------
// Table I scores.
// ---------------------------------------------------------------------------

struct TableIRow {
  std::vector<graph::NodeId> seeds;
  double cumulative;
  double plurality;
  double copeland;
};

class TableIScoresTest : public ::testing::TestWithParam<TableIRow> {};

TEST_P(TableIScoresTest, AllThreeScoresMatch) {
  const auto& row = GetParam();
  const OpinionMatrix m = PaperMatrixAt1(row.seeds);
  EXPECT_NEAR(Score(m, 0, ScoreSpec::Cumulative()), row.cumulative, 1e-9);
  EXPECT_DOUBLE_EQ(Score(m, 0, ScoreSpec::Plurality()), row.plurality);
  EXPECT_DOUBLE_EQ(Score(m, 0, ScoreSpec::Copeland()), row.copeland);
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, TableIScoresTest,
    ::testing::Values(TableIRow{{}, 2.55, 2, 0},
                      TableIRow{{0}, 3.30, 2, 0},
                      TableIRow{{1}, 2.80, 2, 0},
                      TableIRow{{2}, 3.15, 4, 1},
                      TableIRow{{3}, 2.80, 3, 1},
                      TableIRow{{0, 1}, 3.55, 3, 1}));

// ---------------------------------------------------------------------------
// Rank semantics (beta includes the candidate itself; ties push ranks up).
// ---------------------------------------------------------------------------

TEST(RankTest, StrictLeaderHasRankOne) {
  OpinionMatrix m = {{0.9}, {0.5}, {0.1}};
  EXPECT_EQ(Rank(m, 0, 0), 1u);
  EXPECT_EQ(Rank(m, 1, 0), 2u);
  EXPECT_EQ(Rank(m, 2, 0), 3u);
}

TEST(RankTest, TiesShareThePushedRank) {
  OpinionMatrix m = {{0.7}, {0.7}, {0.1}};
  // Both tied candidates have rank 2 (two candidates have value >= 0.7).
  EXPECT_EQ(Rank(m, 0, 0), 2u);
  EXPECT_EQ(Rank(m, 1, 0), 2u);
}

TEST(PluralityTest, TieMeansNobodyGetsTheVote) {
  OpinionMatrix m = {{0.7, 0.2}, {0.7, 0.1}};
  // User 0 ties -> no plurality point for either; user 1 prefers c0.
  EXPECT_DOUBLE_EQ(Score(m, 0, ScoreSpec::Plurality()), 1.0);
  EXPECT_DOUBLE_EQ(Score(m, 1, ScoreSpec::Plurality()), 0.0);
}

// ---------------------------------------------------------------------------
// p-approval and positional-p-approval.
// ---------------------------------------------------------------------------

TEST(PApprovalTest, CountsTopPMembership) {
  // 3 candidates, 2 users. User 0 ranks: c0 > c1 > c2; user 1: c2 > c1 > c0.
  OpinionMatrix m = {{0.9, 0.1}, {0.5, 0.5}, {0.2, 0.8}};
  EXPECT_DOUBLE_EQ(Score(m, 1, ScoreSpec::PApproval(1)), 0.0);
  EXPECT_DOUBLE_EQ(Score(m, 1, ScoreSpec::PApproval(2)), 2.0);
  EXPECT_DOUBLE_EQ(Score(m, 0, ScoreSpec::PApproval(2)), 1.0);
  EXPECT_DOUBLE_EQ(Score(m, 0, ScoreSpec::PApproval(3)), 2.0);
}

TEST(PApprovalTest, PEqualsOneIsPlurality) {
  const OpinionMatrix m = PaperMatrixAt1({2});
  EXPECT_DOUBLE_EQ(Score(m, 0, ScoreSpec::PApproval(1)),
                   Score(m, 0, ScoreSpec::Plurality()));
}

TEST(PositionalTest, WeightsRanks) {
  OpinionMatrix m = {{0.9, 0.1}, {0.5, 0.5}, {0.2, 0.8}};
  // omega = (1.0, 0.4): rank1 worth 1, rank2 worth 0.4.
  const ScoreSpec spec = ScoreSpec::PositionalPApproval({1.0, 0.4});
  // c1 is rank 2 for both users -> 0.8.
  EXPECT_DOUBLE_EQ(Score(m, 1, spec), 0.8);
  // c0: rank 1 for user 0 (1.0), rank 3 for user 1 (0) -> 1.0.
  EXPECT_DOUBLE_EQ(Score(m, 0, spec), 1.0);
}

TEST(PositionalTest, OmegaPEqualOneIsPApproval) {
  const OpinionMatrix m = PaperMatrixAt1({});
  EXPECT_DOUBLE_EQ(
      Score(m, 0, ScoreSpec::PositionalPApproval({1.0, 1.0})),
      Score(m, 0, ScoreSpec::PApproval(2)));
}

TEST(PositionalTest, OmegaPEqualZeroIsPMinusOneApproval) {
  // Paper § VIII-C: positional-p with omega[p] = 0 collapses to (p-1)-
  // approval.
  OpinionMatrix m = {{0.9, 0.1, 0.6}, {0.5, 0.5, 0.7}, {0.2, 0.8, 0.3}};
  EXPECT_DOUBLE_EQ(Score(m, 1, ScoreSpec::PositionalPApproval({1.0, 0.0})),
                   Score(m, 1, ScoreSpec::PApproval(1)));
}

// ---------------------------------------------------------------------------
// Copeland and Condorcet.
// ---------------------------------------------------------------------------

TEST(CopelandTest, CountsPairwiseWins) {
  // 3 candidates, 3 users; c0 beats both (2 wins), c1 beats c2.
  OpinionMatrix m = {{0.9, 0.9, 0.1}, {0.5, 0.5, 0.5}, {0.2, 0.2, 0.9}};
  EXPECT_DOUBLE_EQ(Score(m, 0, ScoreSpec::Copeland()), 2.0);
  EXPECT_DOUBLE_EQ(Score(m, 1, ScoreSpec::Copeland()), 1.0);
  EXPECT_DOUBLE_EQ(Score(m, 2, ScoreSpec::Copeland()), 0.0);
}

TEST(CopelandTest, ExactTieIsNotAWin) {
  OpinionMatrix m = {{0.9, 0.1}, {0.1, 0.9}};
  EXPECT_DOUBLE_EQ(Score(m, 0, ScoreSpec::Copeland()), 0.0);
  EXPECT_DOUBLE_EQ(Score(m, 1, ScoreSpec::Copeland()), 0.0);
}

TEST(CondorcetTest, WinnerExists) {
  OpinionMatrix m = {{0.9, 0.9, 0.1}, {0.5, 0.5, 0.5}, {0.2, 0.2, 0.9}};
  auto winner = CondorcetWinner(m);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(*winner, 0u);
}

TEST(CondorcetTest, NoWinnerInRockPaperScissors) {
  // Cyclic preferences: c0 > c1 > c2 > c0.
  OpinionMatrix m = {{0.9, 0.1, 0.5}, {0.5, 0.9, 0.1}, {0.1, 0.5, 0.9}};
  EXPECT_FALSE(CondorcetWinner(m).has_value());
}

TEST(CondorcetTest, PaperExampleSeedThreeMakesCondorcetWinner) {
  // Example 2: with seed user 3 (node 2), c1 becomes the Condorcet winner.
  const OpinionMatrix m = PaperMatrixAt1({2});
  auto winner = CondorcetWinner(m);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(*winner, 0u);
}

// ---------------------------------------------------------------------------
// Winner and AllScores.
// ---------------------------------------------------------------------------

TEST(WinnerTest, MaxScoreWinsWithLowIdTieBreak) {
  OpinionMatrix m = {{0.5, 0.5}, {0.5, 0.5}};
  EXPECT_EQ(Winner(m, ScoreSpec::Cumulative()), 0u);  // tie -> lower id
  OpinionMatrix m2 = {{0.2, 0.2}, {0.9, 0.9}};
  EXPECT_EQ(Winner(m2, ScoreSpec::Cumulative()), 1u);
}

TEST(AllScoresTest, MatchesIndividualScores) {
  const OpinionMatrix m = PaperMatrixAt1({3});
  const auto all = AllScores(m, ScoreSpec::Plurality());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0], Score(m, 0, ScoreSpec::Plurality()));
  EXPECT_DOUBLE_EQ(all[1], Score(m, 1, ScoreSpec::Plurality()));
  EXPECT_DOUBLE_EQ(all[0] + all[1], 4.0);  // every user votes (no ties here)
}

// ---------------------------------------------------------------------------
// Spec validation.
// ---------------------------------------------------------------------------

TEST(ScoreSpecTest, ValidatesApprovalDepth) {
  EXPECT_TRUE(ScoreSpec::PApproval(2).Validate(3).ok());
  EXPECT_FALSE(ScoreSpec::PApproval(0).Validate(3).ok());
  EXPECT_FALSE(ScoreSpec::PApproval(4).Validate(3).ok());
  EXPECT_TRUE(ScoreSpec::Cumulative().Validate(2).ok());
  EXPECT_TRUE(ScoreSpec::Copeland().Validate(2).ok());
}

TEST(ScoreSpecTest, ValidatesOmega) {
  EXPECT_TRUE(ScoreSpec::PositionalPApproval({1.0, 0.5}).Validate(3).ok());
  // Increasing weights rejected.
  EXPECT_FALSE(ScoreSpec::PositionalPApproval({0.5, 1.0}).Validate(3).ok());
  // Out of range rejected.
  EXPECT_FALSE(ScoreSpec::PositionalPApproval({1.5, 0.5}).Validate(3).ok());
  // p exceeding r rejected.
  EXPECT_FALSE(
      ScoreSpec::PositionalPApproval({1.0, 1.0, 1.0, 1.0}).Validate(3).ok());
}

TEST(ScoreSpecTest, RankWeightBeyondPIsZero) {
  const ScoreSpec spec = ScoreSpec::PositionalPApproval({1.0, 0.3});
  EXPECT_DOUBLE_EQ(spec.RankWeight(1), 1.0);
  EXPECT_DOUBLE_EQ(spec.RankWeight(2), 0.3);
  EXPECT_DOUBLE_EQ(spec.RankWeight(3), 0.0);
  EXPECT_DOUBLE_EQ(ScoreSpec::PApproval(2).RankWeight(2), 1.0);
  EXPECT_DOUBLE_EQ(ScoreSpec::PApproval(2).RankWeight(3), 0.0);
}

TEST(ScoreKindNameTest, AllNamed) {
  EXPECT_EQ(ScoreKindName(ScoreKind::kCumulative), "cumulative");
  EXPECT_EQ(ScoreKindName(ScoreKind::kPlurality), "plurality");
  EXPECT_EQ(ScoreKindName(ScoreKind::kPApproval), "p-approval");
  EXPECT_EQ(ScoreKindName(ScoreKind::kPositionalPApproval),
            "positional-p-approval");
  EXPECT_EQ(ScoreKindName(ScoreKind::kCopeland), "copeland");
}

}  // namespace
}  // namespace voteopt::voting
