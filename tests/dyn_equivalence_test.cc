// Determinism ledger entry #10: incremental sketch repair
// (dyn::SketchRepairer) produces a WalkSet BIT-IDENTICAL to a from-scratch
// rebuild of the mutated instance — for every mutation schedule (edge
// additions, deletions, mixed batches, opinion-only batches), every thread
// count, both the in-memory and the out-of-core regeneration paths, and
// with seed selections agreeing under all five voting rules. A sketch of
// unknown provenance (master_seed = 0) refuses repair with a clean Status.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/estimated_greedy.h"
#include "core/sketch.h"
#include "dyn/mutation.h"
#include "dyn/repair.h"
#include "graph/alias_table.h"
#include "opinion/fj_model.h"
#include "store/sketch_store.h"
#include "test_fixtures.h"
#include "voting/evaluator.h"

namespace voteopt::dyn {
namespace {

using test::MakeRandomInstance;
using test::RandomInstance;

constexpr uint32_t kHorizon = 6;
constexpr uint64_t kTheta = 4000;
constexpr uint64_t kSeed = 99;

// Byte-for-byte equality of the full frozen layer plus the dynamic values
// (the same obligation sketch_ooc_equivalence_test states for ledger #7).
void ExpectBitIdentical(const core::WalkSet& a, const core::WalkSet& b) {
  const auto& fa = a.frozen();
  const auto& fb = b.frozen();
  ASSERT_EQ(fa.nodes.size(), fb.nodes.size());
  for (size_t i = 0; i < fa.nodes.size(); ++i) {
    ASSERT_EQ(fa.nodes[i], fb.nodes[i]) << "node slab byte " << i;
  }
  ASSERT_EQ(fa.offsets.size(), fb.offsets.size());
  for (size_t i = 0; i < fa.offsets.size(); ++i) {
    ASSERT_EQ(fa.offsets[i], fb.offsets[i]) << "offset " << i;
  }
  ASSERT_EQ(fa.starts.size(), fb.starts.size());
  for (size_t i = 0; i < fa.starts.size(); ++i) {
    ASSERT_EQ(fa.starts[i], fb.starts[i]) << "start " << i;
  }
  ASSERT_EQ(fa.lambda.size(), fb.lambda.size());
  for (size_t i = 0; i < fa.lambda.size(); ++i) {
    ASSERT_EQ(fa.lambda[i], fb.lambda[i]) << "lambda " << i;
    ASSERT_EQ(fa.start_weight[i], fb.start_weight[i]) << "weight " << i;
  }
  ASSERT_EQ(fa.index_offsets.size(), fb.index_offsets.size());
  for (size_t i = 0; i < fa.index_offsets.size(); ++i) {
    ASSERT_EQ(fa.index_offsets[i], fb.index_offsets[i]);
  }
  ASSERT_EQ(fa.index_entries.size(), fb.index_entries.size());
  for (size_t i = 0; i < fa.index_entries.size(); ++i) {
    ASSERT_EQ(fa.index_entries[i].walk, fb.index_entries[i].walk);
    ASSERT_EQ(fa.index_entries[i].pos, fb.index_entries[i].pos);
  }
  ASSERT_EQ(a.num_walks(), b.num_walks());
  for (uint32_t w = 0; w < a.num_walks(); ++w) {
    ASSERT_EQ(a.Value(w), b.Value(w)) << "value of walk " << w;
    ASSERT_EQ(a.EffectiveLen(w), b.EffectiveLen(w)) << "len of walk " << w;
  }
}

std::unique_ptr<core::WalkSet> BuildFromScratch(
    const graph::Graph& graph, const opinion::MultiCampaignState& state,
    uint64_t theta = kTheta, uint64_t seed = kSeed) {
  opinion::FJModel model(graph);
  voting::ScoreEvaluator ev(model, state, /*target=*/0, kHorizon,
                            voting::ScoreSpec::Cumulative());
  core::SketchBuildOptions options;
  options.num_threads = 2;
  return core::BuildSketchSet(ev, theta, seed, options);
}

store::SketchMeta MetaFor(uint64_t theta = kTheta, uint64_t seed = kSeed) {
  store::SketchMeta meta;
  meta.theta = theta;
  meta.horizon = kHorizon;
  meta.target = 0;
  meta.master_seed = seed;
  return meta;
}

/// A deterministic (u -> v) pair NOT currently in the graph (edge_add
/// rejects duplicates).
std::pair<graph::NodeId, graph::NodeId> AbsentEdge(const graph::Graph& graph,
                                                   uint32_t salt) {
  const uint32_t n = graph.num_nodes();
  for (uint32_t step = 0;; ++step) {
    const graph::NodeId u = (salt + step * 7) % n;
    const graph::NodeId v = (salt * 3 + step * 11 + 1) % n;
    if (u == v) continue;
    const auto in = graph.InNeighbors(v);
    if (std::find(in.begin(), in.end(), u) == in.end()) return {u, v};
  }
}

/// An existing edge (u -> v) of the graph, by flat in-CSR position.
std::pair<graph::NodeId, graph::NodeId> EdgeAt(const graph::Graph& graph,
                                               size_t flat_index) {
  const auto offsets = graph.InOffsets();
  const auto sources = graph.InSources();
  flat_index %= sources.size();
  graph::NodeId v = 0;
  while (offsets[v + 1] <= flat_index) ++v;
  return {sources[flat_index], v};
}

/// Three representative schedules against `inst`: pure additions, a
/// mixed add/delete batch, and edits + opinion flips interleaved.
std::vector<std::vector<Mutation>> Schedules(const RandomInstance& inst) {
  const uint32_t n = inst.graph.num_nodes();
  const auto [au1, av1] = AbsentEdge(inst.graph, 13);
  const auto [au2, av2] = AbsentEdge(inst.graph, 29);
  const auto [au3, av3] = AbsentEdge(inst.graph, 57);
  const auto [du1, dv1] = EdgeAt(inst.graph, 7);
  const auto [du2, dv2] = EdgeAt(inst.graph, 131);
  std::vector<std::vector<Mutation>> schedules;
  schedules.push_back({Mutation::EdgeAdd(au1, av1, 2.0)});
  schedules.push_back({Mutation::EdgeAdd(au2, av2, 1.0),
                       Mutation::EdgeDel(du1, dv1),
                       Mutation::EdgeAdd(au3, av3, 0.25)});
  schedules.push_back({Mutation::EdgeDel(du2, dv2),
                       Mutation::SetOpinion(0, 5, 0.9),
                       Mutation::EdgeAdd(du2, dv2, 3.0),
                       Mutation::SetOpinion(1, n - 3, 0.1)});
  return schedules;
}

TEST(DynEquivalenceTest, RepairMatchesRebuildAcrossSchedulesAndThreads) {
  auto inst = MakeRandomInstance(120, 700, 2, 41);
  const auto base = BuildFromScratch(inst.graph, inst.state);
  const store::SketchMeta meta = MetaFor();

  for (size_t s = 0; s < Schedules(inst).size(); ++s) {
    const auto schedule = Schedules(inst)[s];
    auto patched = ApplyMutations(inst.graph, inst.state, schedule);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    ASSERT_FALSE(patched->dirty_nodes.empty());
    const auto rebuilt = BuildFromScratch(patched->graph, patched->state);

    for (const uint32_t threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("schedule=" + std::to_string(s) +
                   " threads=" + std::to_string(threads));
      RepairOptions options;
      options.num_threads = threads;
      auto outcome = SketchRepairer::Repair(
          *base, patched->graph, patched->state.campaigns[0], meta,
          patched->dirty_nodes, /*base_alias=*/nullptr, options);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      ExpectBitIdentical(*rebuilt, *outcome->sketch);
      EXPECT_EQ(outcome->stats.walks_total, kTheta);
      EXPECT_EQ(outcome->stats.dirty_nodes, patched->dirty_nodes.size());
      EXPECT_GT(outcome->stats.walks_repaired, 0u);
      EXPECT_LE(outcome->stats.walks_repaired, kTheta);
      ASSERT_NE(outcome->alias, nullptr);
    }
  }
}

TEST(DynEquivalenceTest, SequentialBatchesChainRowLevelAliasRebuilds) {
  auto inst = MakeRandomInstance(90, 500, 2, 17);
  const auto base = BuildFromScratch(inst.graph, inst.state);
  const store::SketchMeta meta = MetaFor();
  const auto base_alias =
      std::make_shared<const graph::AliasSampler>(inst.graph);

  // Batch 1 repairs against the full base tables; batch 2 must produce the
  // same bytes whether its tables come from batch 1's row-level rebuild or
  // from a full construction over the intermediate graph.
  const auto [du, dv] = EdgeAt(inst.graph, 42);
  auto patched1 = ApplyMutations(inst.graph, inst.state,
                                 std::vector<Mutation>{
                                     Mutation::EdgeAdd(1, 88, 1.5),
                                     Mutation::EdgeDel(du, dv)});
  ASSERT_TRUE(patched1.ok()) << patched1.status().ToString();
  RepairOptions options;
  options.num_threads = 2;
  auto outcome1 = SketchRepairer::Repair(
      *base, patched1->graph, patched1->state.campaigns[0], meta,
      patched1->dirty_nodes, base_alias.get(), options);
  ASSERT_TRUE(outcome1.ok()) << outcome1.status().ToString();
  ExpectBitIdentical(*BuildFromScratch(patched1->graph, patched1->state),
                     *outcome1->sketch);

  auto patched2 = ApplyMutations(patched1->graph, patched1->state,
                                 std::vector<Mutation>{
                                     Mutation::EdgeAdd(88, 1, 1.0),
                                     Mutation::EdgeAdd(2, 3, 0.5)});
  ASSERT_TRUE(patched2.ok()) << patched2.status().ToString();
  auto outcome2 = SketchRepairer::Repair(
      *outcome1->sketch, patched2->graph, patched2->state.campaigns[0], meta,
      patched2->dirty_nodes, outcome1->alias.get(), options);
  ASSERT_TRUE(outcome2.ok()) << outcome2.status().ToString();
  ExpectBitIdentical(*BuildFromScratch(patched2->graph, patched2->state),
                     *outcome2->sketch);
}

TEST(DynEquivalenceTest, OocRepairPathMatchesInMemoryAndRebuild) {
  auto inst = MakeRandomInstance(100, 600, 2, 61);
  const auto base = BuildFromScratch(inst.graph, inst.state);
  const store::SketchMeta meta = MetaFor();

  const auto [du, dv] = EdgeAt(inst.graph, 250);
  const std::vector<Mutation> schedule = {Mutation::EdgeDel(du, dv),
                                          Mutation::EdgeAdd(7, 70, 2.0)};
  auto patched = ApplyMutations(inst.graph, inst.state, schedule);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  const auto rebuilt = BuildFromScratch(patched->graph, patched->state);

  for (const uint32_t threads : {1u, 2u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RepairOptions options;
    options.num_threads = threads;
    // A tight budget forces several blocks, so dirty walks cross block
    // boundaries mid-trajectory.
    options.block_budget_bytes = 2048;
    options.ooc_scratch_prefix =
        ::testing::TempDir() + "/dyn_repair_t" + std::to_string(threads);
    auto outcome = SketchRepairer::Repair(
        *base, patched->graph, patched->state.campaigns[0], meta,
        patched->dirty_nodes, /*base_alias=*/nullptr, options);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ExpectBitIdentical(*rebuilt, *outcome->sketch);
    EXPECT_EQ(outcome->alias, nullptr);  // OOC path builds no tables
  }
}

TEST(DynEquivalenceTest, OpinionOnlyBatchKeepsGraphAndTrajectories) {
  auto inst = MakeRandomInstance(60, 300, 2, 71);
  const auto base = BuildFromScratch(inst.graph, inst.state);
  const store::SketchMeta meta = MetaFor();

  auto patched = ApplyMutations(inst.graph, inst.state,
                                std::vector<Mutation>{
                                    Mutation::SetOpinion(0, 10, 0.25),
                                    Mutation::SetOpinion(0, 11, 0.75)});
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  EXPECT_TRUE(patched->dirty_nodes.empty());
  EXPECT_EQ(patched->opinions_set, 2u);
  // The graph is a byte-identical copy.
  ASSERT_EQ(patched->graph.num_edges(), inst.graph.num_edges());
  const auto a = patched->graph.InWeightsRaw();
  const auto b = inst.graph.InWeightsRaw();
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);

  // Repair with zero dirty nodes re-finalizes under the new opinions and
  // still matches the rebuild (trajectory layer untouched, value layer
  // re-derived).
  auto outcome = SketchRepairer::Repair(
      *base, patched->graph, patched->state.campaigns[0], meta,
      patched->dirty_nodes, /*base_alias=*/nullptr, RepairOptions{});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->stats.walks_repaired, 0u);
  ExpectBitIdentical(*BuildFromScratch(patched->graph, patched->state),
                     *outcome->sketch);
}

TEST(DynEquivalenceTest, SeedSelectionMatchesForAllFiveRules) {
  auto inst = MakeRandomInstance(80, 450, 3, 53);
  const auto base = BuildFromScratch(inst.graph, inst.state, /*theta=*/6000);
  const store::SketchMeta meta = MetaFor(/*theta=*/6000);

  const auto [du, dv] = EdgeAt(inst.graph, 99);
  auto patched = ApplyMutations(inst.graph, inst.state,
                                std::vector<Mutation>{
                                    Mutation::EdgeAdd(4, 40, 1.0),
                                    Mutation::EdgeDel(du, dv)});
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();

  opinion::FJModel model(patched->graph);
  const voting::ScoreSpec specs[] = {
      voting::ScoreSpec::Cumulative(), voting::ScoreSpec::Plurality(),
      voting::ScoreSpec::PApproval(2),
      voting::ScoreSpec::PositionalPApproval({1.0, 0.6, 0.2}),
      voting::ScoreSpec::Copeland()};
  for (const auto& spec : specs) {
    SCOPED_TRACE(voting::ScoreKindName(spec.kind));
    voting::ScoreEvaluator ev(model, patched->state, 0, kHorizon, spec);
    // Fresh sketches per rule: greedy selection rewrites the dynamic
    // values layer in place.
    auto repaired = SketchRepairer::Repair(
        *base, patched->graph, patched->state.campaigns[0], meta,
        patched->dirty_nodes, /*base_alias=*/nullptr, RepairOptions{});
    ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
    const auto rebuilt =
        BuildFromScratch(patched->graph, patched->state, /*theta=*/6000);

    core::EstimatedGreedyOptions greedy;
    greedy.evaluate_exact = false;
    const auto from_repair =
        core::EstimatedGreedySelect(ev, 5, repaired->sketch.get(), greedy);
    const auto from_rebuild =
        core::EstimatedGreedySelect(ev, 5, rebuilt.get(), greedy);
    EXPECT_EQ(from_repair.seeds, from_rebuild.seeds);
    EXPECT_DOUBLE_EQ(from_repair.score, from_rebuild.score);
  }
}

TEST(DynEquivalenceTest, UnknownProvenanceSketchRefusesRepair) {
  auto inst = MakeRandomInstance(40, 200, 2, 5);
  const auto base = BuildFromScratch(inst.graph, inst.state);
  store::SketchMeta meta = MetaFor();
  meta.master_seed = 0;  // serial / unknown provenance

  auto patched = ApplyMutations(inst.graph, inst.state,
                                std::vector<Mutation>{
                                    Mutation::EdgeAdd(0, 1, 1.0)});
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  auto outcome = SketchRepairer::Repair(
      *base, patched->graph, patched->state.campaigns[0], meta,
      patched->dirty_nodes, nullptr, RepairOptions{});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), Status::Code::kFailedPrecondition);
}

TEST(DynEquivalenceTest, MutationValidationFailsClean) {
  auto inst = MakeRandomInstance(30, 150, 2, 9);
  const auto [du, dv] = EdgeAt(inst.graph, 0);

  // Duplicate edge: (du, dv) already exists.
  auto dup = ApplyMutations(inst.graph, inst.state,
                            std::vector<Mutation>{
                                Mutation::EdgeAdd(du, dv, 1.0)});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), Status::Code::kFailedPrecondition);

  // Deleting an absent edge: self-loops never exist post-normalization.
  auto missing = ApplyMutations(inst.graph, inst.state,
                                std::vector<Mutation>{
                                    Mutation::EdgeDel(dv, dv)});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);

  // Out-of-range endpoints and opinion values.
  EXPECT_EQ(ApplyMutations(inst.graph, inst.state,
                           std::vector<Mutation>{
                               Mutation::EdgeAdd(0, 999, 1.0)})
                .status()
                .code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ApplyMutations(inst.graph, inst.state,
                           std::vector<Mutation>{
                               Mutation::SetOpinion(0, 3, 1.5)})
                .status()
                .code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ApplyMutations(inst.graph, inst.state,
                           std::vector<Mutation>{
                               Mutation::SetOpinion(9, 3, 0.5)})
                .status()
                .code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace voteopt::dyn
