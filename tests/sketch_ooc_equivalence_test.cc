// Determinism ledger entry #7: the out-of-core block-sharded sketch builder
// produces a WalkSet BIT-IDENTICAL to the in-memory core::BuildSketchSet
// for the same (master_seed, theta) — across block counts (including one
// block per node), thread counts, and all five voting rules — and a
// truncated or corrupted block set yields a clean Status, never a partial
// sketch.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/estimated_greedy.h"
#include "core/sketch.h"
#include "opinion/fj_model.h"
#include "sketch_ooc/block_store.h"
#include "sketch_ooc/ooc_builder.h"
#include "sketch_ooc/partition.h"
#include "test_fixtures.h"

namespace voteopt::sketch_ooc {
namespace {

using test::MakeRandomInstance;

// Byte-for-byte equality of the full frozen layer plus the dynamic values.
void ExpectBitIdentical(const core::WalkSet& a, const core::WalkSet& b) {
  const auto& fa = a.frozen();
  const auto& fb = b.frozen();
  ASSERT_EQ(fa.nodes.size(), fb.nodes.size());
  for (size_t i = 0; i < fa.nodes.size(); ++i) {
    ASSERT_EQ(fa.nodes[i], fb.nodes[i]) << "node slab byte " << i;
  }
  ASSERT_EQ(fa.offsets.size(), fb.offsets.size());
  for (size_t i = 0; i < fa.offsets.size(); ++i) {
    ASSERT_EQ(fa.offsets[i], fb.offsets[i]) << "offset " << i;
  }
  ASSERT_EQ(fa.starts.size(), fb.starts.size());
  for (size_t i = 0; i < fa.starts.size(); ++i) {
    ASSERT_EQ(fa.starts[i], fb.starts[i]) << "start " << i;
  }
  ASSERT_EQ(fa.lambda.size(), fb.lambda.size());
  for (size_t i = 0; i < fa.lambda.size(); ++i) {
    ASSERT_EQ(fa.lambda[i], fb.lambda[i]) << "lambda " << i;
    ASSERT_EQ(fa.start_weight[i], fb.start_weight[i]) << "weight " << i;
  }
  ASSERT_EQ(fa.index_offsets.size(), fb.index_offsets.size());
  for (size_t i = 0; i < fa.index_offsets.size(); ++i) {
    ASSERT_EQ(fa.index_offsets[i], fb.index_offsets[i]);
  }
  ASSERT_EQ(fa.index_entries.size(), fb.index_entries.size());
  for (size_t i = 0; i < fa.index_entries.size(); ++i) {
    ASSERT_EQ(fa.index_entries[i].walk, fb.index_entries[i].walk);
    ASSERT_EQ(fa.index_entries[i].pos, fb.index_entries[i].pos);
  }
  ASSERT_EQ(a.num_walks(), b.num_walks());
  for (uint32_t w = 0; w < a.num_walks(); ++w) {
    ASSERT_EQ(a.Value(w), b.Value(w)) << "value of walk " << w;
    ASSERT_EQ(a.EffectiveLen(w), b.EffectiveLen(w)) << "len of walk " << w;
  }
}

class SketchOocEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/ooc_equivalence";
  }
  void TearDown() override { RemoveBlocks(prefix_, 256); }
  std::string prefix_;
};

TEST_F(SketchOocEquivalenceTest, BitIdenticalAcrossBlockAndThreadCounts) {
  constexpr uint32_t kNodes = 120;
  constexpr uint32_t kHorizon = 6;
  constexpr uint64_t kTheta = 4000;
  constexpr uint64_t kSeed = 99;
  auto inst = MakeRandomInstance(kNodes, 700, 2, 41);
  opinion::FJModel model(inst.graph);
  voting::ScoreEvaluator ev(model, inst.state, 0, kHorizon,
                            voting::ScoreSpec::Cumulative());

  core::SketchBuildOptions mem_options;
  mem_options.num_threads = 2;
  const auto reference = core::BuildSketchSet(ev, kTheta, kSeed, mem_options);

  // Block counts: whole-graph, 2, 16, and the pathological one-node-per-
  // block plan (every transition is a boundary crossing).
  for (const uint32_t num_blocks : {1u, 2u, 16u, kNodes}) {
    auto plan = PlanByCount(inst.graph, num_blocks);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_EQ(plan->num_blocks(), num_blocks);
    ASSERT_TRUE(WriteBlocks(inst.graph, *plan, prefix_).ok());
    auto blocks = BlockSet::Open(prefix_);
    ASSERT_TRUE(blocks.ok()) << blocks.status().ToString();

    for (const uint32_t threads : {1u, 2u, 4u}) {
      OocBuildOptions options;
      options.num_threads = threads;
      options.wave_walks = 1024;  // several waves per build
      OocBuildStats stats;
      auto ooc = BuildSketchSetOoc(*blocks, inst.state.campaigns[0], kHorizon,
                                   kTheta, kSeed, options, &stats);
      ASSERT_TRUE(ooc.ok()) << ooc.status().ToString();
      SCOPED_TRACE("blocks=" + std::to_string(num_blocks) +
                   " threads=" + std::to_string(threads));
      ExpectBitIdentical(*reference, **ooc);
      EXPECT_EQ(stats.num_blocks, num_blocks);
      if (num_blocks > 1) EXPECT_GT(stats.boundary_hops, 0u);
    }
    RemoveBlocks(prefix_, num_blocks);
  }
}

TEST_F(SketchOocEquivalenceTest, SeedSelectionMatchesForAllFiveRules) {
  constexpr uint32_t kHorizon = 5;
  constexpr uint64_t kTheta = 6000;
  constexpr uint64_t kSeed = 7;
  auto inst = MakeRandomInstance(80, 450, 3, 53);
  opinion::FJModel model(inst.graph);

  auto plan = PlanByCount(inst.graph, 8);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(WriteBlocks(inst.graph, *plan, prefix_).ok());
  auto blocks = BlockSet::Open(prefix_);
  ASSERT_TRUE(blocks.ok()) << blocks.status().ToString();

  OocBuildOptions options;
  options.num_threads = 2;
  options.wave_walks = 2048;

  core::SketchBuildOptions mem_options;
  mem_options.num_threads = 4;

  const voting::ScoreSpec specs[] = {
      voting::ScoreSpec::Cumulative(), voting::ScoreSpec::Plurality(),
      voting::ScoreSpec::PApproval(2),
      voting::ScoreSpec::PositionalPApproval({1.0, 0.4}),
      voting::ScoreSpec::Copeland()};
  for (const auto& spec : specs) {
    SCOPED_TRACE(voting::ScoreKindName(spec.kind));
    voting::ScoreEvaluator ev(model, inst.state, 0, kHorizon, spec);
    // Fresh builds per rule: greedy selection rewrites the dynamic values
    // layer in place, so each comparison starts from pristine sketches.
    auto ooc = BuildSketchSetOoc(*blocks, inst.state.campaigns[0], kHorizon,
                                 kTheta, kSeed, options);
    ASSERT_TRUE(ooc.ok()) << ooc.status().ToString();
    const auto mem = core::BuildSketchSet(ev, kTheta, kSeed, mem_options);
    ExpectBitIdentical(*mem, **ooc);

    // The stated proof obligation: identical sketches must yield identical
    // greedy seed sets under every rule.
    core::EstimatedGreedyOptions greedy;
    greedy.evaluate_exact = false;
    const auto mem_pick = core::EstimatedGreedySelect(ev, 5, mem.get(), greedy);
    const auto ooc_pick =
        core::EstimatedGreedySelect(ev, 5, ooc->get(), greedy);
    EXPECT_EQ(mem_pick.seeds, ooc_pick.seeds);
    EXPECT_DOUBLE_EQ(mem_pick.score, ooc_pick.score);
  }
}

TEST_F(SketchOocEquivalenceTest, BudgetDrivenConvenienceMatchesInMemory) {
  constexpr uint32_t kHorizon = 4;
  constexpr uint64_t kTheta = 2000;
  auto inst = MakeRandomInstance(100, 600, 2, 61);
  opinion::FJModel model(inst.graph);
  voting::ScoreEvaluator ev(model, inst.state, 0, kHorizon,
                            voting::ScoreSpec::Cumulative());

  core::SketchBuildOptions mem_options;
  mem_options.num_threads = 1;
  const auto mem = core::BuildSketchSet(ev, kTheta, /*master_seed=*/5,
                                        mem_options);

  // A tight budget forces several blocks; the scratch files must be gone
  // afterwards.
  OocBuildOptions options;
  options.num_threads = 2;
  OocBuildStats stats;
  auto ooc = BuildSketchSetOocFromGraph(inst.graph, inst.state.campaigns[0],
                                        kHorizon, kTheta, /*master_seed=*/5,
                                        /*block_budget_bytes=*/2048, prefix_,
                                        options, &stats);
  ASSERT_TRUE(ooc.ok()) << ooc.status().ToString();
  EXPECT_GE(stats.num_blocks, 4u);
  ExpectBitIdentical(*mem, **ooc);
  std::ifstream manifest(ManifestPath(prefix_));
  EXPECT_FALSE(manifest.good()) << "scratch blocks must be cleaned up";
}

// ---- crash consistency -------------------------------------------------

class SketchOocCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/ooc_crash";
    inst_ = std::make_unique<test::RandomInstance>(
        MakeRandomInstance(60, 300, 2, 71));
    auto plan = PlanByCount(inst_->graph, 6);
    ASSERT_TRUE(plan.ok());
    plan_ = *plan;
    ASSERT_TRUE(WriteBlocks(inst_->graph, plan_, prefix_).ok());
  }
  void TearDown() override { RemoveBlocks(prefix_, plan_.num_blocks()); }

  // The build over the (possibly damaged) block set.
  Status TryBuild() {
    auto blocks = BlockSet::Open(prefix_);
    if (!blocks.ok()) return blocks.status();
    OocBuildOptions options;
    options.num_threads = 1;
    auto walks = BuildSketchSetOoc(*blocks, inst_->state.campaigns[0],
                                   /*horizon=*/5, /*theta=*/500,
                                   /*master_seed=*/3, options);
    return walks.status();
  }

  void Truncate(const std::string& path, size_t keep_bytes) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::vector<char> bytes(keep_bytes);
    in.read(bytes.data(), static_cast<std::streamsize>(keep_bytes));
    ASSERT_EQ(static_cast<size_t>(in.gcount()), keep_bytes);
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep_bytes));
  }

  void FlipByte(const std::string& path, size_t offset) {
    std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(io.good());
    io.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    io.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    io.seekp(static_cast<std::streamoff>(offset));
    io.write(&byte, 1);
  }

  std::string prefix_;
  std::unique_ptr<test::RandomInstance> inst_;
  PartitionPlan plan_;
};

TEST_F(SketchOocCrashTest, IntactBlocksBuildFine) {
  EXPECT_TRUE(TryBuild().ok());
}

TEST_F(SketchOocCrashTest, TruncatedBlockFileIsRejected) {
  Truncate(BlockPath(prefix_, 2), 64);
  const Status st = TryBuild();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
}

TEST_F(SketchOocCrashTest, CorruptedBlockPayloadIsRejected) {
  // Flip a byte deep in the payload region: the section checksum catches
  // it even though the header still parses.
  FlipByte(BlockPath(prefix_, 1), 300);
  const Status st = TryBuild();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
}

TEST_F(SketchOocCrashTest, MissingBlockFileIsRejected) {
  std::remove(BlockPath(prefix_, 3).c_str());
  EXPECT_FALSE(TryBuild().ok());
}

TEST_F(SketchOocCrashTest, MissingManifestIsRejected) {
  // The crash-consistency contract: blocks without a manifest are an
  // incomplete write and must never be opened.
  std::remove(ManifestPath(prefix_).c_str());
  EXPECT_FALSE(BlockSet::Open(prefix_).ok());
}

TEST_F(SketchOocCrashTest, TruncatedManifestIsRejected) {
  Truncate(ManifestPath(prefix_), 40);
  EXPECT_FALSE(BlockSet::Open(prefix_).ok());
}

TEST_F(SketchOocCrashTest, StaleBlockFromAnotherGraphIsRejected) {
  // Rewrite block 0 from a DIFFERENT graph (same node range, different
  // edges): the in-CSR fingerprint in the block meta must not match the
  // manifest's.
  auto other = MakeRandomInstance(60, 300, 2, 72);
  const std::string other_prefix = ::testing::TempDir() + "/ooc_crash_other";
  ASSERT_TRUE(WriteBlocks(other.graph, plan_, other_prefix).ok());
  std::remove(BlockPath(prefix_, 0).c_str());
  ASSERT_EQ(std::rename(BlockPath(other_prefix, 0).c_str(),
                        BlockPath(prefix_, 0).c_str()),
            0);
  RemoveBlocks(other_prefix, plan_.num_blocks());
  const Status st = TryBuild();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kCorruption) << st.ToString();
}

TEST_F(SketchOocCrashTest, SketchFileIsNotABlockSet) {
  // Kind confusion: a graph file at a block path parses as the wrong
  // FileKind and is rejected up front.
  const std::string graph_path = BlockPath(prefix_, 4);
  std::remove(graph_path.c_str());
  ASSERT_TRUE(store::WriteSectionFile(graph_path, store::FileKind::kGraph, {})
                  .ok());
  EXPECT_FALSE(TryBuild().ok());
}

}  // namespace
}  // namespace voteopt::sketch_ooc
