#include <gtest/gtest.h>

#include <cmath>

#include "core/accuracy.h"
#include "core/estimated_greedy.h"
#include "core/greedy_dm.h"
#include "core/rw_greedy.h"
#include "core/walk_engine.h"
#include "core/walk_set.h"
#include "graph/alias_table.h"
#include "test_fixtures.h"
#include "util/stats.h"

namespace voteopt::core {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

// ---------------------------------------------------------------------------
// WalkSet storage and truncation semantics.
// ---------------------------------------------------------------------------

TEST(WalkSetTest, PostingsRecordFirstOccurrenceOnly) {
  WalkSet walks(5);
  walks.AddWalk({0, 1, 2, 1, 3});  // node 1 appears twice
  walks.Finalize({0.1, 0.2, 0.3, 0.4, 0.5});
  const auto postings = walks.PostingsOf(1);
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].walk, 0u);
  EXPECT_EQ(postings[0].pos, 1u);
}

TEST(WalkSetTest, ValueIsInitialOpinionOfEndNode) {
  WalkSet walks(4);
  walks.AddWalk({0, 2, 3});
  walks.AddWalk({1});
  walks.Finalize({0.9, 0.8, 0.7, 0.25});
  EXPECT_DOUBLE_EQ(walks.Value(0), 0.25);  // ends at node 3
  EXPECT_DOUBLE_EQ(walks.Value(1), 0.8);   // single-node walk
  EXPECT_DOUBLE_EQ(walks.EstimatedOpinion(0), 0.25);
  EXPECT_DOUBLE_EQ(walks.EstimatedOpinion(1), 0.8);
}

TEST(WalkSetTest, LambdaCountsWalksPerStart) {
  WalkSet walks(3);
  walks.AddWalk({0, 1});
  walks.AddWalk({0, 2});
  walks.AddWalk({1});
  walks.Finalize({0.0, 0.5, 1.0});
  EXPECT_EQ(walks.Lambda(0), 2u);
  EXPECT_EQ(walks.Lambda(1), 1u);
  EXPECT_EQ(walks.Lambda(2), 0u);
  EXPECT_DOUBLE_EQ(walks.EstimatedOpinion(0), 0.75);  // (0.5 + 1.0)/2
  EXPECT_DOUBLE_EQ(walks.EstimatedOpinion(2, 0.123), 0.123);  // fallback
}

TEST(WalkSetTest, ShareFrozenClonesDynamicStateIndependently) {
  auto owner = std::make_shared<WalkSet>(4);
  owner->AddWalk({0, 2, 3});
  owner->AddWalk({1, 2});
  owner->AddWalk({0, 1});
  const std::vector<double> opinions{0.9, 0.8, 0.7, 0.25};
  owner->Finalize(opinions);

  // The clone aliases the frozen arrays (zero-copy) ...
  auto clone = owner->ShareFrozen(owner);
  EXPECT_TRUE(clone->adopted());
  EXPECT_EQ(clone->frozen().nodes.data(), owner->frozen().nodes.data());
  EXPECT_EQ(clone->num_walks(), owner->num_walks());

  // ... but owns its dynamic state: truncating in the clone must leave the
  // owner's values untouched (the concurrent-serving contract).
  clone->ResetValues(opinions);
  clone->Truncate(2, [](uint32_t, double) {});
  EXPECT_DOUBLE_EQ(clone->Value(0), 1.0);
  EXPECT_DOUBLE_EQ(clone->Value(1), 1.0);
  EXPECT_DOUBLE_EQ(owner->Value(0), 0.25);
  EXPECT_DOUBLE_EQ(owner->Value(1), 0.7);  // {1, 2} ends at node 2
  EXPECT_DOUBLE_EQ(owner->EstimatedOpinion(0), (0.25 + 0.8) / 2);

  // A second clone resets from the pristine frozen data, unaffected by the
  // first clone's truncations.
  auto other = owner->ShareFrozen(owner);
  other->ResetValues(opinions);
  EXPECT_DOUBLE_EQ(other->Value(0), 0.25);

  // The keep-alive pins the owner: clones outlive the caller's handle.
  owner.reset();
  EXPECT_DOUBLE_EQ(other->Value(0), 0.25);
  other->Truncate(0, [](uint32_t, double) {});
  EXPECT_DOUBLE_EQ(other->Value(0), 1.0);
}

TEST(WalkSetTest, TruncationSetsValueToOneAndShortens) {
  WalkSet walks(4);
  walks.AddWalk({0, 1, 2, 3});
  walks.Finalize({0.1, 0.2, 0.3, 0.4});
  int changed = 0;
  walks.Truncate(2, [&](uint32_t walk, double old_value) {
    ++changed;
    EXPECT_EQ(walk, 0u);
    EXPECT_DOUBLE_EQ(old_value, 0.4);
  });
  EXPECT_EQ(changed, 1);
  EXPECT_DOUBLE_EQ(walks.Value(0), 1.0);
  EXPECT_EQ(walks.EffectiveLen(0), 3u);
  EXPECT_DOUBLE_EQ(walks.EstimatedOpinion(0), 1.0);
}

TEST(WalkSetTest, TruncationAtFirstSeedOccurrenceWins) {
  WalkSet walks(5);
  walks.AddWalk({0, 1, 2, 3, 4});
  walks.Finalize({0.1, 0.2, 0.3, 0.4, 0.5});
  walks.Truncate(3, [](uint32_t, double) {});
  EXPECT_EQ(walks.EffectiveLen(0), 4u);
  // Truncating at an earlier node shortens further...
  walks.Truncate(1, [](uint32_t, double) {});
  EXPECT_EQ(walks.EffectiveLen(0), 2u);
  // ...but a later node is now beyond the effective end: no change.
  int changed = 0;
  walks.Truncate(2, [&](uint32_t, double) { ++changed; });
  EXPECT_EQ(changed, 0);
  EXPECT_EQ(walks.EffectiveLen(0), 2u);
}

TEST(WalkSetTest, TruncationAtStartPosition) {
  WalkSet walks(3);
  walks.AddWalk({1, 2});
  walks.Finalize({0.0, 0.5, 0.25});
  walks.Truncate(1, [](uint32_t, double) {});
  EXPECT_EQ(walks.EffectiveLen(0), 1u);
  EXPECT_DOUBLE_EQ(walks.Value(0), 1.0);  // seeding the start itself
}

// ---------------------------------------------------------------------------
// Walk engine: unbiasedness (Thms. 8 and 9).
// ---------------------------------------------------------------------------

TEST(WalkEngineTest, WalkLengthBoundedByHorizon) {
  auto inst = MakeRandomInstance(30, 150, 2, 5);
  graph::AliasSampler alias(inst.graph);
  WalkEngine engine(inst.graph, inst.state.campaigns[0], alias);
  Rng rng(6);
  std::vector<graph::NodeId> walk;
  for (uint32_t t : {0u, 1u, 5u}) {
    for (int i = 0; i < 50; ++i) {
      engine.Generate(static_cast<graph::NodeId>(i % 30), t, &rng, &walk);
      EXPECT_GE(walk.size(), 1u);
      EXPECT_LE(walk.size(), t + 1);
    }
  }
}

TEST(WalkEngineTest, FullyStubbornStartNeverMoves) {
  auto inst = MakeRandomInstance(20, 100, 2, 7);
  inst.state.campaigns[0].stubbornness[4] = 1.0;
  graph::AliasSampler alias(inst.graph);
  WalkEngine engine(inst.graph, inst.state.campaigns[0], alias);
  Rng rng(8);
  std::vector<graph::NodeId> walk;
  for (int i = 0; i < 20; ++i) {
    engine.Generate(4, 10, &rng, &walk);
    EXPECT_EQ(walk, std::vector<graph::NodeId>{4});
  }
}

// Thm. 8/9 on the paper example, where exact opinions are known in closed
// form: the mean estimate over many walks must approach the exact opinion.
TEST(WalkEngineTest, EstimateIsUnbiasedOnPaperExample) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  graph::AliasSampler alias(ex.graph);
  WalkEngine engine(ex.graph, ex.state.campaigns[0], alias);
  Rng rng(9);
  const uint32_t t = 3;
  const auto exact = model.Propagate(ex.state.campaigns[0], t);
  std::vector<graph::NodeId> walk;
  for (graph::NodeId start = 0; start < 4; ++start) {
    RunningStat stat;
    for (int i = 0; i < 60000; ++i) {
      engine.Generate(start, t, &rng, &walk);
      stat.Add(ex.state.campaigns[0].initial_opinions[walk.back()]);
    }
    EXPECT_NEAR(stat.mean(), exact[start], 0.01) << "start " << start;
  }
}

TEST(WalkEngineTest, PostGenerationTruncationMatchesDirectGeneration) {
  // Thm. 9: E[Y[S]] = b[S] = E[X[S]] (Thm. 8). Compare both estimators
  // against the exact seeded opinion.
  auto inst = MakeRandomInstance(25, 140, 2, 11, /*max_stubbornness=*/0.6);
  opinion::FJModel model(inst.graph);
  graph::AliasSampler alias(inst.graph);
  WalkEngine engine(inst.graph, inst.state.campaigns[0], alias);
  const std::vector<graph::NodeId> seeds = {2, 7};
  std::vector<bool> is_seed(25, false);
  for (auto s : seeds) is_seed[s] = true;
  const uint32_t t = 4;
  const auto exact = model.PropagateWithSeeds(inst.state.campaigns[0], seeds, t);

  Rng rng(13);
  std::vector<graph::NodeId> walk;
  for (graph::NodeId start : {0u, 5u, 12u, 24u}) {
    RunningStat direct, truncated;
    for (int i = 0; i < 40000; ++i) {
      direct.Add(engine.GenerateWithSeeds(start, t, is_seed, &rng));
      engine.Generate(start, t, &rng, &walk);
      // Post-generation truncation at the first seed occurrence.
      double value = inst.state.campaigns[0].initial_opinions[walk.back()];
      for (graph::NodeId v : walk) {
        if (is_seed[v]) {
          value = 1.0;
          break;
        }
      }
      truncated.Add(value);
    }
    EXPECT_NEAR(direct.mean(), exact[start], 0.015) << "start " << start;
    EXPECT_NEAR(truncated.mean(), exact[start], 0.015) << "start " << start;
  }
}

// ---------------------------------------------------------------------------
// Per-walk RNG streams (GenerateSeeded): the walk definition both the
// in-memory sharded builder and the out-of-core block engine reproduce.
// These pins are load-bearing for determinism-ledger entry #7 — a change
// here silently breaks OOC == in-memory bit-identity.
// ---------------------------------------------------------------------------

TEST(WalkEngineTest, GenerateSeededMatchesManualPerWalkStreams) {
  auto inst = MakeRandomInstance(40, 200, 2, 3);
  graph::AliasSampler alias(inst.graph);
  WalkEngine engine(inst.graph, inst.state.campaigns[0], alias);
  const uint32_t horizon = 5;
  const uint64_t master_seed = 77;
  const uint64_t count = 500;

  WalkBuffer batch;
  engine.GenerateSeeded(0, count, horizon, master_seed, &batch);
  ASSERT_EQ(batch.lengths.size(), count);

  // Walk j must equal: draw start from SketchWalkRng(seed, j), then the
  // single-walk Generate() on the SAME stream.
  size_t cursor = 0;
  std::vector<graph::NodeId> walk;
  for (uint64_t j = 0; j < count; ++j) {
    Rng rng = SketchWalkRng(master_seed, j);
    const auto start =
        static_cast<graph::NodeId>(rng.UniformInt(inst.graph.num_nodes()));
    engine.Generate(start, horizon, &rng, &walk);
    ASSERT_EQ(batch.lengths[j], walk.size()) << "walk " << j;
    for (size_t i = 0; i < walk.size(); ++i) {
      ASSERT_EQ(batch.nodes[cursor + i], walk[i]) << "walk " << j;
    }
    cursor += walk.size();
  }
  EXPECT_EQ(cursor, batch.nodes.size());
}

TEST(WalkEngineTest, GenerateSeededIsBatchSplitInvariant) {
  // Splitting the walk range across calls (any scheduling) concatenates to
  // the same bytes: the property that lets sketch shards and OOC waves
  // carve up walks arbitrarily.
  auto inst = MakeRandomInstance(30, 160, 2, 13);
  graph::AliasSampler alias(inst.graph);
  WalkEngine engine(inst.graph, inst.state.campaigns[0], alias);
  const uint64_t master_seed = 4242;

  WalkBuffer whole;
  engine.GenerateSeeded(0, 300, 6, master_seed, &whole);

  WalkBuffer pieces;
  for (const auto& [first, n] :
       std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 1}, {1, 99}, {100, 150}, {250, 50}}) {
    engine.GenerateSeeded(first, n, 6, master_seed, &pieces);
  }
  EXPECT_EQ(pieces.nodes, whole.nodes);
  EXPECT_EQ(pieces.lengths, whole.lengths);
}

TEST(WalkEngineTest, GenerateSeededPinnedTrajectories) {
  // Golden pin on the paper example: exact trajectories for a fixed
  // (master_seed, horizon). If this changes, every persisted sketch and
  // the OOC equivalence guarantee changed with it — do not re-pin without
  // bumping the sketch store's compatibility story.
  auto ex = MakePaperExample();
  graph::AliasSampler alias(ex.graph);
  WalkEngine engine(ex.graph, ex.state.campaigns[0], alias);
  WalkBuffer out;
  engine.GenerateSeeded(0, 6, 4, /*master_seed=*/1, &out);
  const std::vector<uint32_t> kGoldenLengths = {2, 2, 1, 1, 2, 1};
  const std::vector<graph::NodeId> kGoldenNodes = {3, 2, 2, 0, 3, 1, 2, 1, 3};
  EXPECT_EQ(out.lengths, kGoldenLengths);
  EXPECT_EQ(out.nodes, kGoldenNodes);
}

// ---------------------------------------------------------------------------
// Accuracy bounds (Thms. 10-12).
// ---------------------------------------------------------------------------

TEST(AccuracyTest, LambdaFormulasMatchPaper) {
  // Thm. 10 with delta = 0.1, rho = 0.9: ln(20)/(2*0.01) ~ 149.8 -> 150.
  EXPECT_EQ(LambdaForCumulative(0.1, 0.9), 150u);
  // Plurality (two-sided) needs more walks than Copeland (one-sided).
  EXPECT_GT(LambdaFromGamma(0.1, 0.9, false),
            LambdaFromGamma(0.1, 0.9, true));
  // Smaller margins need more walks.
  EXPECT_GT(LambdaFromGamma(0.05, 0.9, false),
            LambdaFromGamma(0.1, 0.9, false));
  // Higher confidence needs more walks.
  EXPECT_GT(LambdaForCumulative(0.1, 0.95), LambdaForCumulative(0.1, 0.75));
}

TEST(AccuracyTest, LogBinomial) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-9);
  EXPECT_EQ(LogBinomial(3, 5), -std::numeric_limits<double>::infinity());
}

TEST(AccuracyTest, GammaStarRespectsFloorAndShrinks) {
  auto inst = MakeRandomInstance(30, 150, 3, 17);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Plurality());
  GammaOptions options;
  options.gamma_floor = 0.05;
  const auto gamma = EstimateGammaStar(ev, 3, options);
  ASSERT_EQ(gamma.size(), 30u);
  for (uint32_t v = 0; v < 30; ++v) {
    EXPECT_GE(gamma[v], 0.05);
    EXPECT_LE(gamma[v], 1.0);
  }
}

TEST(AccuracyTest, LambdasFromGammaClamped) {
  const std::vector<double> gamma = {0.001, 0.5, 1.0};
  const auto lambdas = LambdasFromGammaStar(gamma, 0.9, false, 100);
  EXPECT_EQ(lambdas[0], 100u);  // capped
  EXPECT_GE(lambdas[1], 1u);
  EXPECT_LE(lambdas[2], 100u);
}

// ---------------------------------------------------------------------------
// Estimated greedy (Algorithm 4 loop).
// ---------------------------------------------------------------------------

TEST(EstimatedGreedyTest, PaperExampleCumulativePicksNodeZero) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Cumulative());

  // Exact walks: enough per node that the estimates are sharp.
  graph::AliasSampler alias(ex.graph);
  WalkEngine engine(ex.graph, ex.state.campaigns[0], alias);
  Rng rng(19);
  WalkSet walks(4);
  std::vector<graph::NodeId> scratch;
  for (graph::NodeId v = 0; v < 4; ++v) {
    for (int j = 0; j < 4000; ++j) {
      engine.Generate(v, 1, &rng, &scratch);
      walks.AddWalk(scratch);
    }
  }
  walks.Finalize(ex.state.campaigns[0].initial_opinions);
  const auto result = EstimatedGreedySelect(ev, 1, &walks);
  EXPECT_EQ(result.seeds, std::vector<graph::NodeId>{0});
  EXPECT_NEAR(result.score, 3.30, 1e-9);  // exact score of chosen set
  EXPECT_NEAR(result.diagnostics.at("estimated_score"), 3.30, 0.05);
}

TEST(RWGreedyTest, CumulativeCloseToExactGreedy) {
  auto inst = MakeRandomInstance(60, 300, 2, 23, /*max_stubbornness=*/0.8);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 5, voting::ScoreSpec::Cumulative());
  const auto exact = GreedyDMSelect(ev, 4);
  RWOptions options;
  options.rho = 0.9;
  options.delta = 0.05;
  const auto rw = RWGreedySelect(ev, 4, options);
  EXPECT_EQ(rw.seeds.size(), 4u);
  // The RW greedy achieves at least 90% of exact greedy on this instance.
  EXPECT_GE(rw.score, 0.9 * exact.score);
  EXPECT_GT(rw.diagnostics.at("walks"), 0.0);
}

TEST(RWGreedyTest, PluralityAndCopelandProduceValidResults) {
  auto inst = MakeRandomInstance(40, 220, 3, 29, /*max_stubbornness=*/0.8);
  opinion::FJModel model(inst.graph);
  for (auto spec :
       {voting::ScoreSpec::Plurality(), voting::ScoreSpec::Copeland()}) {
    ScoreEvaluator ev(model, inst.state, 0, 4, spec);
    RWOptions options;
    options.lambda_cap = 64;  // keep the test fast
    const auto result = RWGreedySelect(ev, 3, options);
    EXPECT_EQ(result.seeds.size(), 3u);
    EXPECT_GE(result.score, ev.EvaluateSeeds({}));
  }
}

TEST(RWGreedyTest, LambdaOverrideControlsWalkCount) {
  auto inst = MakeRandomInstance(20, 100, 2, 31);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Cumulative());
  RWOptions options;
  options.lambda_override = 7;
  const auto result = RWGreedySelect(ev, 2, options);
  EXPECT_DOUBLE_EQ(result.diagnostics.at("walks"), 140.0);  // 20 * 7
  EXPECT_DOUBLE_EQ(result.diagnostics.at("lambda_mean"), 7.0);
}

TEST(EstimatedGreedyTest, MoreSeedsNeverLowerEstimatedCumulative) {
  auto inst = MakeRandomInstance(30, 160, 2, 37);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Cumulative());
  RWOptions options;
  options.lambda_override = 32;
  double previous = -1.0;
  for (uint32_t k : {1u, 3u, 6u}) {
    RWOptions o = options;
    const auto result = RWGreedySelect(ev, k, o);
    EXPECT_GE(result.score, previous - 1e-9);
    previous = result.score;
  }
}

}  // namespace
}  // namespace voteopt::core
