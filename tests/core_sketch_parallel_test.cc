// Sharded BuildSketchSet: determinism across runs and thread counts, and
// statistical agreement of its score estimates with the serial builder.
#include <gtest/gtest.h>

#include <memory>

#include "core/estimated_greedy.h"
#include "core/rs_greedy.h"
#include "core/sketch.h"
#include "opinion/fj_model.h"
#include "test_fixtures.h"

namespace voteopt::core {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

// Exhaustive structural equality of two finalized walk sets.
void ExpectIdenticalWalkSets(const WalkSet& a, const WalkSet& b) {
  ASSERT_EQ(a.num_walks(), b.num_walks());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (uint32_t w = 0; w < a.num_walks(); ++w) {
    EXPECT_EQ(a.StartOf(w), b.StartOf(w)) << "walk " << w;
    EXPECT_EQ(a.EffectiveLen(w), b.EffectiveLen(w)) << "walk " << w;
    EXPECT_EQ(a.Value(w), b.Value(w)) << "walk " << w;
  }
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.Lambda(v), b.Lambda(v)) << "node " << v;
    EXPECT_EQ(a.StartWeight(v), b.StartWeight(v)) << "node " << v;
    EXPECT_EQ(a.PostingsOf(v).size(), b.PostingsOf(v).size()) << "node " << v;
  }
}

TEST(ParallelSketchTest, BitIdenticalAcrossRuns) {
  auto inst = MakeRandomInstance(50, 250, 2, 23);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 6, voting::ScoreSpec::Cumulative());
  SketchBuildOptions options;
  options.num_threads = 4;
  options.block_size = 128;
  const auto first = BuildSketchSet(ev, 5000, /*master_seed=*/99, options);
  const auto second = BuildSketchSet(ev, 5000, /*master_seed=*/99, options);
  ExpectIdenticalWalkSets(*first, *second);
}

TEST(ParallelSketchTest, OutputIndependentOfThreadCount) {
  auto inst = MakeRandomInstance(50, 250, 2, 29);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 6, voting::ScoreSpec::Cumulative());
  SketchBuildOptions serial_options;
  serial_options.num_threads = 1;
  serial_options.block_size = 128;
  SketchBuildOptions parallel_options;
  parallel_options.num_threads = 3;
  parallel_options.block_size = 128;
  const auto inline_build = BuildSketchSet(ev, 3000, 7, serial_options);
  const auto pooled_build = BuildSketchSet(ev, 3000, 7, parallel_options);
  ExpectIdenticalWalkSets(*inline_build, *pooled_build);
}

TEST(ParallelSketchTest, DifferentSeedsDiffer) {
  auto inst = MakeRandomInstance(50, 250, 2, 31);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 6, voting::ScoreSpec::Cumulative());
  SketchBuildOptions options;
  options.num_threads = 2;
  const auto a = BuildSketchSet(ev, 2000, 1, options);
  const auto b = BuildSketchSet(ev, 2000, 2, options);
  // Start nodes are resampled per seed; a collision of all 2000 is
  // practically impossible.
  bool any_difference = false;
  for (uint32_t w = 0; w < a->num_walks() && !any_difference; ++w) {
    any_difference = a->StartOf(w) != b->StartOf(w);
  }
  EXPECT_TRUE(any_difference);
}

TEST(ParallelSketchTest, WeightsMatchSerialConvention) {
  // Same n * lambda_v / theta weighting as the serial builder.
  auto inst = MakeRandomInstance(30, 150, 2, 3);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Cumulative());
  SketchBuildOptions options;
  options.num_threads = 2;
  options.block_size = 64;
  const auto walks = BuildSketchSet(ev, 500, 5, options);
  EXPECT_EQ(walks->num_walks(), 500u);
  double total = 0.0;
  for (graph::NodeId v = 0; v < 30; ++v) {
    total += walks->StartWeight(v);
    EXPECT_NEAR(walks->StartWeight(v), 30.0 * walks->Lambda(v) / 500.0,
                1e-12);
  }
  EXPECT_NEAR(total, 30.0, 1e-9);
}

TEST(ParallelSketchTest, GreedyEstimateMatchesSerialWithinEpsilon) {
  // Thm. 13-style agreement on the paper's running example: with a healthy
  // theta, the estimated greedy score from the sharded builder must agree
  // with the serial builder's estimate within epsilon * OPT, and both with
  // the exact best single-seed score (Table I row {1}: 3.30 at t = 1).
  constexpr double kEpsilon = 0.1;
  constexpr double kExactBest = 3.30;
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Cumulative());
  const uint64_t theta = 20000;

  Rng serial_rng(123);
  auto serial_walks = BuildSketchSet(ev, theta, &serial_rng);
  SketchBuildOptions options;
  options.num_threads = 4;
  options.block_size = 1024;
  auto parallel_walks = BuildSketchSet(ev, theta, /*master_seed=*/123,
                                       options);

  EstimatedGreedyOptions greedy_options;
  greedy_options.evaluate_exact = false;
  const SelectionResult serial =
      EstimatedGreedySelect(ev, 1, serial_walks.get(), greedy_options);
  const SelectionResult parallel =
      EstimatedGreedySelect(ev, 1, parallel_walks.get(), greedy_options);

  const double bound = kEpsilon * kExactBest;
  EXPECT_NEAR(serial.score, kExactBest, bound);
  EXPECT_NEAR(parallel.score, kExactBest, bound);
  EXPECT_NEAR(parallel.score, serial.score, bound);
  EXPECT_EQ(parallel.seeds, serial.seeds);  // both must pick user 1 (node 0)
}

TEST(ParallelSketchTest, RSGreedySeedsInvariantAcrossThreadCounts) {
  // Regression: RSGreedySelect used to take a legacy serial-stream builder
  // when num_threads == 1 and the sharded fixed-block builder otherwise, so
  // --threads=1 and --threads=N answered from DIFFERENT sketches and could
  // return different seed sets. Every thread count (including the
  // hardware-default 0) must now produce identical seeds and scores.
  auto inst = MakeRandomInstance(60, 320, 2, 37);
  opinion::FJModel model(inst.graph);
  for (const auto kind :
       {voting::ScoreKind::kCumulative, voting::ScoreKind::kPlurality,
        voting::ScoreKind::kCopeland}) {
    voting::ScoreSpec spec;
    spec.kind = kind;
    ScoreEvaluator ev(model, inst.state, 0, 5, spec);

    RSOptions base;
    base.theta_override = 4096;
    base.rng_seed = 77;
    base.num_threads = 1;
    const SelectionResult reference = RSGreedySelect(ev, 6, base);
    ASSERT_EQ(reference.seeds.size(), 6u) << voting::ScoreKindName(kind);

    for (const uint32_t threads : {2u, 4u, 0u}) {
      RSOptions options = base;
      options.num_threads = threads;
      const SelectionResult result = RSGreedySelect(ev, 6, options);
      EXPECT_EQ(result.seeds, reference.seeds)
          << voting::ScoreKindName(kind) << " threads=" << threads;
      EXPECT_DOUBLE_EQ(result.score, reference.score)
          << voting::ScoreKindName(kind) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace voteopt::core
