// Round-trip coverage for the graph and sketch stores, including the
// acceptance criteria of the persistence subsystem: save -> load -> save is
// byte-stable for both file kinds, loaded sketches answer queries exactly
// like freshly built ones, and corrupted/truncated files fail with a clean
// Status.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/estimated_greedy.h"
#include "core/sketch.h"
#include "datasets/synthetic.h"
#include "opinion/fj_model.h"
#include "store/graph_store.h"
#include "store/sketch_store.h"
#include "voting/evaluator.h"

namespace voteopt {
namespace {

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

class StoreRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/roundtrip_test.bin";
    dataset_ = datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                                     0.05, /*seed=*/11);
    model_ = std::make_unique<opinion::FJModel>(dataset_.influence);
    evaluator_ = std::make_unique<voting::ScoreEvaluator>(
        *model_, dataset_.state, dataset_.default_target, /*horizon=*/12,
        voting::ScoreSpec::Cumulative());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<core::WalkSet> BuildWalks(uint64_t theta) const {
    core::SketchBuildOptions options;
    options.num_threads = 2;
    return core::BuildSketchSet(*evaluator_, theta, /*master_seed=*/99,
                                options);
  }

  std::string path_;
  datasets::Dataset dataset_;
  std::unique_ptr<opinion::FJModel> model_;
  std::unique_ptr<voting::ScoreEvaluator> evaluator_;
};

TEST_F(StoreRoundTripTest, GraphRoundTripsExactly) {
  const graph::Graph& original = dataset_.influence;
  ASSERT_TRUE(store::SaveGraph(original, path_).ok());
  auto loaded = store::LoadGraph(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded->num_edges(), original.num_edges());
  for (graph::NodeId v = 0; v < original.num_nodes(); ++v) {
    const auto expected_out = original.OutNeighbors(v);
    const auto actual_out = loaded->OutNeighbors(v);
    ASSERT_EQ(std::vector<graph::NodeId>(actual_out.begin(),
                                         actual_out.end()),
              std::vector<graph::NodeId>(expected_out.begin(),
                                         expected_out.end()));
    const auto expected_w = original.InWeights(v);
    const auto actual_w = loaded->InWeights(v);
    // Binary round trip: weights must be bit-exact, not just close.
    ASSERT_EQ(std::vector<double>(actual_w.begin(), actual_w.end()),
              std::vector<double>(expected_w.begin(), expected_w.end()));
  }
}

TEST_F(StoreRoundTripTest, GraphSaveLoadSaveIsByteStable) {
  ASSERT_TRUE(store::SaveGraph(dataset_.influence, path_).ok());
  const auto first = ReadAll(path_);
  auto loaded = store::LoadGraph(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(store::SaveGraph(*loaded, path_).ok());
  EXPECT_EQ(ReadAll(path_), first);
}

TEST_F(StoreRoundTripTest, SketchSaveLoadSaveIsByteStable) {
  auto walks = BuildWalks(/*theta=*/4096);
  const store::SketchMeta meta{4096, 12, dataset_.default_target, 99};
  ASSERT_TRUE(store::SaveSketch(*walks, meta, path_).ok());
  const auto first = ReadAll(path_);

  for (const store::SketchLoadMode mode :
       {store::SketchLoadMode::kMmap, store::SketchLoadMode::kCopy}) {
    auto loaded = store::LoadSketch(path_, mode);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->meta.theta, meta.theta);
    EXPECT_EQ(loaded->meta.horizon, meta.horizon);
    EXPECT_EQ(loaded->meta.target, meta.target);
    EXPECT_EQ(loaded->meta.master_seed, meta.master_seed);
    const std::string again = path_ + ".resave";
    ASSERT_TRUE(store::SaveSketch(*loaded->walks, loaded->meta, again).ok());
    EXPECT_EQ(ReadAll(again), first);
    std::remove(again.c_str());
  }
}

TEST_F(StoreRoundTripTest, SketchTruncationStateIsNotPersisted) {
  // Saving must be a pure function of the frozen walks: truncations from a
  // served query never leak into the file.
  auto walks = BuildWalks(/*theta=*/2048);
  const store::SketchMeta meta{2048, 12, dataset_.default_target, 99};
  ASSERT_TRUE(store::SaveSketch(*walks, meta, path_).ok());
  const auto clean = ReadAll(path_);
  walks->Truncate(walks->StartOf(0), [](uint32_t, double) {});
  ASSERT_TRUE(store::SaveSketch(*walks, meta, path_).ok());
  EXPECT_EQ(ReadAll(path_), clean);
}

TEST_F(StoreRoundTripTest, LoadedSketchAnswersQueriesLikeFreshOne) {
  const uint64_t theta = 8192;
  auto fresh = BuildWalks(theta);
  const store::SketchMeta meta{theta, 12, dataset_.default_target, 99};
  ASSERT_TRUE(store::SaveSketch(*fresh, meta, path_).ok());

  const auto& opinions =
      dataset_.state.campaigns[dataset_.default_target].initial_opinions;
  const core::SelectionResult expected =
      core::EstimatedGreedySelect(*evaluator_, /*k=*/8, fresh.get());

  for (const store::SketchLoadMode mode :
       {store::SketchLoadMode::kMmap, store::SketchLoadMode::kCopy}) {
    auto loaded = store::LoadSketch(path_, mode);
    ASSERT_TRUE(loaded.ok());
    loaded->walks->ResetValues(opinions);
    const core::SelectionResult actual =
        core::EstimatedGreedySelect(*evaluator_, /*k=*/8,
                                    loaded->walks.get());
    EXPECT_EQ(actual.seeds, expected.seeds);
    EXPECT_DOUBLE_EQ(actual.score, expected.score);

    // Reset + requery on the SAME loaded sketch must be deterministic —
    // this is the reuse path the campaign service exercises per query.
    loaded->walks->ResetValues(opinions);
    const core::SelectionResult again =
        core::EstimatedGreedySelect(*evaluator_, /*k=*/8,
                                    loaded->walks.get());
    EXPECT_EQ(again.seeds, expected.seeds);
  }
}

TEST_F(StoreRoundTripTest, WalkSetCopyOutlivesItsSource) {
  // The frozen views of a copy must point at the copy's own storage (owned
  // sets) or shared pinned storage (adopted sets) — never at the source.
  // Under the ASan CI job a regression here is a use-after-free.
  const auto& opinions =
      dataset_.state.campaigns[dataset_.default_target].initial_opinions;
  std::unique_ptr<core::WalkSet> owned_copy;
  std::vector<graph::NodeId> expected_seeds;
  {
    auto source = BuildWalks(/*theta=*/2048);
    expected_seeds =
        core::EstimatedGreedySelect(*evaluator_, 4, source.get()).seeds;
    source->ResetValues(opinions);
    owned_copy = std::make_unique<core::WalkSet>(*source);
  }  // source destroyed
  EXPECT_EQ(core::EstimatedGreedySelect(*evaluator_, 4, owned_copy.get())
                .seeds,
            expected_seeds);

  auto walks = BuildWalks(/*theta=*/2048);
  ASSERT_TRUE(
      store::SaveSketch(*walks, {2048, 12, dataset_.default_target, 99},
                        path_)
          .ok());
  std::unique_ptr<core::WalkSet> adopted_copy;
  {
    auto loaded = store::LoadSketch(path_, store::SketchLoadMode::kMmap);
    ASSERT_TRUE(loaded.ok());
    loaded->walks->ResetValues(opinions);
    adopted_copy = std::make_unique<core::WalkSet>(*loaded->walks);
  }  // loaded WalkSet destroyed; the mapping stays pinned by the copy
  EXPECT_EQ(core::EstimatedGreedySelect(*evaluator_, 4, adopted_copy.get())
                .seeds,
            expected_seeds);
}

TEST_F(StoreRoundTripTest, SketchFileRejectsGraphLoader) {
  auto walks = BuildWalks(/*theta=*/512);
  ASSERT_TRUE(store::SaveSketch(*walks, {512, 12, 0, 99}, path_).ok());
  auto loaded = store::LoadGraph(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(StoreRoundTripTest, TruncatedSketchFileRejected) {
  auto walks = BuildWalks(/*theta=*/512);
  ASSERT_TRUE(store::SaveSketch(*walks, {512, 12, 0, 99}, path_).ok());
  auto bytes = ReadAll(path_);
  bytes.resize(bytes.size() / 2);
  std::ofstream(path_, std::ios::binary | std::ios::trunc)
      .write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  auto loaded = store::LoadSketch(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(StoreRoundTripTest, MissingSketchFileIsIOError) {
  auto loaded = store::LoadSketch(path_ + ".missing");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace voteopt
