// Crash consistency of the dynamic-graph journal (dyn/journal.h): the
// mutation log round-trips through the store container, writes via temp +
// rename (no torn files), rejects truncated / corrupted / wrong-base logs
// with a clean Status, and — the recovery contract — a process that dies
// after committing mutations is reconstructed bit-identically by the next
// DatasetRegistry::Load replaying the journal over the base bundle.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "core/sketch.h"
#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "dyn/journal.h"
#include "dyn/mutation.h"
#include "graph/alias_table.h"
#include "opinion/fj_model.h"
#include "voting/evaluator.h"

namespace voteopt::dyn {
namespace {

void ExpectSameFrozenBytes(const core::WalkSet& a, const core::WalkSet& b) {
  const auto& fa = a.frozen();
  const auto& fb = b.frozen();
  ASSERT_EQ(fa.nodes.size(), fb.nodes.size());
  for (size_t i = 0; i < fa.nodes.size(); ++i) {
    ASSERT_EQ(fa.nodes[i], fb.nodes[i]) << "node slab byte " << i;
  }
  ASSERT_EQ(fa.offsets.size(), fb.offsets.size());
  for (size_t i = 0; i < fa.offsets.size(); ++i) {
    ASSERT_EQ(fa.offsets[i], fb.offsets[i]) << "offset " << i;
  }
  ASSERT_EQ(a.num_walks(), b.num_walks());
  for (uint32_t w = 0; w < a.num_walks(); ++w) {
    ASSERT_EQ(a.Value(w), b.Value(w)) << "value of walk " << w;
  }
}

std::vector<Mutation> SampleMutations() {
  return {Mutation::EdgeAdd(3, 9, 1.5), Mutation::EdgeDel(2, 7),
          Mutation::SetOpinion(1, 4, 0.625), Mutation::EdgeAdd(0, 1, 0.25)};
}

class DynJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/dyn_journal.dynlog";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void Truncate(size_t keep_bytes) {
    std::ifstream in(path_, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::vector<char> bytes(keep_bytes);
    in.read(bytes.data(), static_cast<std::streamsize>(keep_bytes));
    ASSERT_EQ(static_cast<size_t>(in.gcount()), keep_bytes);
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep_bytes));
  }

  void FlipByte(size_t offset) {
    std::fstream io(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(io.good());
    io.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    io.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    io.seekp(static_cast<std::streamoff>(offset));
    io.write(&byte, 1);
  }

  std::string path_;
};

TEST_F(DynJournalTest, RoundTripsAllMutationKinds) {
  const auto mutations = SampleMutations();
  ASSERT_TRUE(SaveMutationLog(path_, /*base_fingerprint=*/0xFEEDu, mutations)
                  .ok());
  auto journal = LoadMutationLog(path_);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(journal->base_fingerprint, 0xFEEDu);
  ASSERT_EQ(journal->mutations.size(), mutations.size());
  for (size_t i = 0; i < mutations.size(); ++i) {
    EXPECT_EQ(journal->mutations[i].kind, mutations[i].kind) << i;
    EXPECT_EQ(journal->mutations[i].u, mutations[i].u) << i;
    EXPECT_EQ(journal->mutations[i].v, mutations[i].v) << i;
    EXPECT_EQ(journal->mutations[i].value, mutations[i].value) << i;
  }
}

TEST_F(DynJournalTest, EmptyLogRoundTrips) {
  ASSERT_TRUE(SaveMutationLog(path_, 1, {}).ok());
  auto journal = LoadMutationLog(path_);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_TRUE(journal->mutations.empty());
}

TEST_F(DynJournalTest, SaveLeavesNoTempFilesBehind) {
  ASSERT_TRUE(SaveMutationLog(path_, 2, SampleMutations()).ok());
  // temp + rename: the directory must hold exactly the final artifact, no
  // ".tmp*" sibling a crashed writer could leave half-written.
  const std::filesystem::path dir =
      std::filesystem::path(path_).parent_path();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(path_ + ".tmp"), std::string::npos)
        << "leftover temp file: " << entry.path();
  }
}

TEST_F(DynJournalTest, OverwriteReplacesAtomically) {
  ASSERT_TRUE(SaveMutationLog(path_, 3, SampleMutations()).ok());
  const std::vector<Mutation> shorter = {Mutation::EdgeDel(5, 6)};
  ASSERT_TRUE(SaveMutationLog(path_, 3, shorter).ok());
  auto journal = LoadMutationLog(path_);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_EQ(journal->mutations.size(), 1u);
  EXPECT_EQ(journal->mutations[0].kind, Mutation::Kind::kEdgeDel);
}

TEST_F(DynJournalTest, TruncatedLogIsRejected) {
  ASSERT_TRUE(SaveMutationLog(path_, 4, SampleMutations()).ok());
  Truncate(40);
  auto journal = LoadMutationLog(path_);
  ASSERT_FALSE(journal.ok());
  EXPECT_TRUE(journal.status().code() == Status::Code::kCorruption ||
              journal.status().code() == Status::Code::kIOError)
      << journal.status().ToString();
}

TEST_F(DynJournalTest, CorruptedPayloadIsRejected) {
  ASSERT_TRUE(SaveMutationLog(path_, 5, SampleMutations()).ok());
  FlipByte(80);  // deep in the payload: the section checksum must catch it
  auto journal = LoadMutationLog(path_);
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), Status::Code::kCorruption)
      << journal.status().ToString();
}

TEST_F(DynJournalTest, MissingFileIsAnIOError) {
  auto journal = LoadMutationLog(path_);
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), Status::Code::kIOError)
      << journal.status().ToString();
}

// ---- crash recovery through the registry -------------------------------

class DynCrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/dyn_crash_bundle";
    dataset_ = datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                                     0.04, /*seed=*/11);
    ASSERT_TRUE(datasets::SaveDatasetBundle(dataset_, prefix_).ok());
  }
  void TearDown() override {
    for (const char* suffix :
         {".influence.edges", ".counts.edges", ".campaigns.tsv", ".meta",
          ".sketch", kMutationLogSuffix}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  api::EngineOptions Options() const {
    api::EngineOptions options;
    options.load.bundle_prefix = prefix_;
    options.load.build_theta = 6000;
    options.load.build_horizon = 8;
    options.load.save_built_sketch = true;
    options.load.build_threads = 2;
    return options;
  }

  std::string prefix_;
  datasets::Dataset dataset_;
};

TEST_F(DynCrashRecoveryTest, ReplayReconstructsThePreCrashInstance) {
  // Session 1: load, mutate twice (journal grows to 3 entries), "crash"
  // (drop the engine without unloading).
  std::vector<double> live_values;
  uint64_t live_fingerprint = 0;
  {
    auto engine = api::Engine::Open(Options());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    api::Response r1 =
        (*engine)->Execute(api::Request::EdgeAdd(0, 33, 2.0));
    ASSERT_TRUE(r1.ok) << r1.error;
    EXPECT_EQ(r1.applied, 1u);
    EXPECT_GT(r1.walks_total, 0u);
    std::vector<Mutation> batch = {
        Mutation::EdgeDel(0, 33),
        Mutation::SetOpinion(0, 12, 0.875)};
    api::Response r2 =
        (*engine)->Execute(api::Request::Mutate(std::move(batch)));
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.applied, 2u);

    const core::WalkSet& walks = (*engine)->walks();
    live_values.reserve(walks.num_walks());
    for (uint32_t w = 0; w < walks.num_walks(); ++w) {
      live_values.push_back(walks.Value(w));
    }
    live_fingerprint = (*engine)->sketch_meta().bundle_fingerprint;
    ASSERT_TRUE(std::filesystem::exists(prefix_ + kMutationLogSuffix));
  }

  // Session 2: a fresh process. Load finds the journal, replays it over
  // the persisted base sketch, and must serve the same instance.
  auto engine = api::Engine::Open(Options());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const core::WalkSet& walks = (*engine)->walks();
  ASSERT_EQ(walks.num_walks(), live_values.size());
  for (uint32_t w = 0; w < walks.num_walks(); ++w) {
    ASSERT_EQ(walks.Value(w), live_values[w]) << "walk " << w;
  }
  EXPECT_EQ((*engine)->sketch_meta().bundle_fingerprint, live_fingerprint);
  // And the replayed instance equals a from-scratch build of the mutated
  // graph — ledger entry #10 end to end.
  const auto& dataset = (*engine)->dataset();
  opinion::FJModel model(dataset.influence);
  voting::ScoreEvaluator ev(model, dataset.state,
                            (*engine)->sketch_meta().target,
                            (*engine)->sketch_meta().horizon,
                            voting::ScoreSpec::Cumulative());
  core::SketchBuildOptions build;
  build.num_threads = 2;
  const auto rebuilt = core::BuildSketchSet(
      ev, (*engine)->sketch_meta().theta,
      (*engine)->sketch_meta().master_seed, build);
  ExpectSameFrozenBytes(*rebuilt, walks);
}

TEST_F(DynCrashRecoveryTest, OpinionOnlyCommitThenEdgeCommitStaysExact) {
  // Regression: an opinion-only commit publishes a successor entry that
  // reuses the predecessor's alias tables. The tables must be rebound to
  // the successor's own graph storage — the predecessor entry (and the
  // graph the shared sampler pointed into) is freed at the registry swap,
  // and the NEXT edge commit's row-level alias rebuild copies clean rows
  // through the base sampler. Before the rebind this schedule read freed
  // memory and commit 4 silently diverged from a from-scratch build.
  auto engine = api::Engine::Open(Options());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const std::vector<api::Request> schedule = {
      api::Request::EdgeAdd(1, 2, 1.5),
      api::Request::EdgeDel(1, 2),
      api::Request::SetOpinion(0, 3, 0.25),  // opinion-only: alias is shared
      api::Request::Mutate({Mutation::EdgeAdd(4, 5, 1.0),
                            Mutation::SetOpinion(0, 6, 0.75)}),
  };
  for (size_t step = 0; step < schedule.size(); ++step) {
    api::Response response = (*engine)->Execute(schedule[step]);
    ASSERT_TRUE(response.ok) << "commit " << step << ": " << response.error;

    // The published alias tables must equal a fresh full Vose build over
    // the current graph, row by row.
    auto entry = (*engine)->registry().Resolve("");
    ASSERT_TRUE(entry.ok());
    const graph::Graph& current = (*entry)->dataset.influence;
    ASSERT_NE((*entry)->alias, nullptr) << "commit " << step;
    const graph::AliasSampler fresh(current);
    for (graph::NodeId v = 0; v < current.num_nodes(); ++v) {
      const size_t deg = current.InNeighbors(v).size();
      for (size_t slot = 0; slot < deg; ++slot) {
        ASSERT_EQ((*entry)->alias->Probability(v, slot),
                  fresh.Probability(v, slot))
            << "commit " << step << " row " << v << " slot " << slot;
      }
    }

    // And the hosted sketch must stay bit-identical to a from-scratch
    // build over the mutated instance (ledger entry #10). After an
    // opinion-only commit only the trajectory layer is invariant — the
    // cached value layer is intentionally stale (queries rebuild it from
    // target_opinions() per selection), so values are compared only when
    // the commit ran a repair.
    const auto& dataset = (*engine)->dataset();
    const auto& meta = (*engine)->sketch_meta();
    opinion::FJModel model(dataset.influence);
    voting::ScoreEvaluator ev(model, dataset.state, meta.target, meta.horizon,
                              voting::ScoreSpec::Cumulative());
    core::SketchBuildOptions build;
    build.num_threads = 2;
    const auto rebuilt =
        core::BuildSketchSet(ev, meta.theta, meta.master_seed, build);
    const auto& fa = rebuilt->frozen();
    const auto& fb = (*engine)->walks().frozen();
    ASSERT_EQ(fa.nodes.size(), fb.nodes.size()) << "commit " << step;
    for (size_t i = 0; i < fa.nodes.size(); ++i) {
      ASSERT_EQ(fa.nodes[i], fb.nodes[i])
          << "commit " << step << " node slab byte " << i;
    }
    ASSERT_EQ(fa.offsets.size(), fb.offsets.size()) << "commit " << step;
    for (size_t i = 0; i < fa.offsets.size(); ++i) {
      ASSERT_EQ(fa.offsets[i], fb.offsets[i])
          << "commit " << step << " offset " << i;
    }
    if (response.dirty_nodes > 0) {
      ExpectSameFrozenBytes(*rebuilt, (*engine)->walks());
    }
  }
}

TEST_F(DynCrashRecoveryTest, WrongBaseJournalIsRejected) {
  // A journal recorded against a DIFFERENT base bundle must fail the load,
  // not silently replay onto the wrong graph.
  const std::vector<Mutation> foreign = {Mutation::EdgeAdd(0, 1, 1.0)};
  ASSERT_TRUE(SaveMutationLog(prefix_ + kMutationLogSuffix,
                              /*base_fingerprint=*/0xDEADBEEFu, foreign)
                  .ok());
  auto engine = api::Engine::Open(Options());
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), Status::Code::kFailedPrecondition)
      << engine.status().ToString();
}

TEST_F(DynCrashRecoveryTest, CorruptJournalFailsTheLoadCleanly) {
  const std::vector<Mutation> one = {Mutation::EdgeAdd(0, 1, 1.0)};
  ASSERT_TRUE(SaveMutationLog(prefix_ + kMutationLogSuffix, 1, one).ok());
  std::fstream io(prefix_ + kMutationLogSuffix,
                  std::ios::binary | std::ios::in | std::ios::out);
  io.seekp(60);
  char byte = 0x5A;
  io.write(&byte, 1);
  io.close();
  auto engine = api::Engine::Open(Options());
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), Status::Code::kCorruption)
      << engine.status().ToString();
}

TEST_F(DynCrashRecoveryTest, InvalidReplayMutationFailsTheLoad) {
  // A journal that no longer applies (node out of range) must fail clean.
  ASSERT_TRUE(datasets::SaveDatasetBundle(dataset_, prefix_).ok());
  auto bundle = datasets::LoadDatasetBundle(prefix_);
  ASSERT_TRUE(bundle.ok());
  datasets::Dataset loaded = std::move(bundle).value();
  const std::vector<Mutation> bad = {Mutation::EdgeAdd(0, 4000000000u, 1.0)};
  ASSERT_TRUE(SaveMutationLog(prefix_ + kMutationLogSuffix,
                              api::BundleFingerprint(loaded), bad)
                  .ok());
  auto engine = api::Engine::Open(Options());
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), Status::Code::kInvalidArgument)
      << engine.status().ToString();
}

}  // namespace
}  // namespace voteopt::dyn
