// lint-fixture-path: src/obs/comment_mentions.cc
// Fixture: rule keywords inside comments and string literals must not
// fire — never use system_clock here, and std::mt19937 would be wrong.
/* Even rand() in a block comment stays silent. */

const char* kDoc = "calling rand() or time() at runtime is banned";

int Nothing() { return 0; }
