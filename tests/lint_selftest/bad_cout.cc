// lint-fixture-path: src/serve/bad_cout.cc
// Fixture: std::cout in library code must fire library-cout exactly
// once.
#include <iostream>

void Announce() { std::cout << "serving\n"; }
