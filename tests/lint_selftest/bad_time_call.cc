// lint-fixture-path: src/serve/bad_time_call.cc
// Fixture: a bare time() call must fire wall-clock exactly once.
#include <ctime>

long StampSeconds() { return static_cast<long>(time(nullptr)); }
