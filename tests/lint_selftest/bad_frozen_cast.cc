// lint-fixture-path: src/api/bad_frozen_cast.cc
// Fixture: casting away a published sketch's constness outside src/dyn
// must fire frozen-mutation exactly once; the read-only reference and
// the prose mention in this comment (const_cast on a WalkSet) must not.
#include "core/walk_set.h"

void Poke(const voteopt::core::WalkSet& sketch) {
  auto* writable = const_cast<voteopt::core::WalkSet*>(&sketch);
  (void)writable;
}
