// lint-fixture-path: src/api/bad_thread.cc
// Fixture: a bare std::thread outside util/net must fire bare-thread
// exactly once; the hardware_concurrency property query must not.
#include <thread>

unsigned SpawnAndCount() {
  std::thread worker([] {});
  worker.join();
  return std::thread::hardware_concurrency();
}
