// lint-fixture-path: src/obs/bad_clock.cc
// Fixture: system_clock outside util/timer.h must fire wall-clock
// exactly once.
#include <chrono>

double NowSeconds() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
