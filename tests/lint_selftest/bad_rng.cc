// lint-fixture-path: src/core/bad_rng.cc
// Fixture: stdlib RNG in an answer-producing layer must fire
// forbidden-rng exactly once.
#include <random>

int Draw() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}
