// lint-fixture-path: src/core/bad_unordered.cc
// Fixture: unannotated iteration over an unordered container in an
// answer-producing layer must fire nondeterministic-iteration exactly
// once.
#include <unordered_map>

std::unordered_map<int, double> scores;

double Sum() {
  double total = 0;
  for (const auto& [node, score] : scores) total += score;
  return total;
}
