// lint-fixture-path: src/dyn/dyn_frozen_cast.cc
// Fixture: the SAME cast under src/dyn/ is the repairer's prerogative
// (it splices frozen bytes into a NEW WalkSet) — zero findings.
#include "core/walk_set.h"

void Splice(const voteopt::core::WalkSet& sketch) {
  auto* writable = const_cast<voteopt::core::WalkSet*>(&sketch);
  (void)writable;
}
