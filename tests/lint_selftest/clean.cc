// lint-fixture-path: src/api/clean.cc
// Fixture: deterministic idioms — ordered iteration, steady_clock —
// produce zero findings.
#include <chrono>
#include <map>

std::map<int, double> ordered;

double Tick() {
  const auto t0 = std::chrono::steady_clock::now();
  double total = 0;
  for (const auto& [key, value] : ordered) total += value;
  return total + std::chrono::duration<double>(t0.time_since_epoch()).count();
}
