// lint-fixture-path: src/api/annotated_unordered.cc
// Fixture: the nondeterministic-ok escape hatch (with a reason) waives
// the iteration rule — zero findings expected.
#include <unordered_map>

std::unordered_map<int, double> cache;

double Total() {
  double total = 0;
  // lint: nondeterministic-ok(sum is order-independent, never ordered output)
  for (const auto& [key, value] : cache) total += value;
  return total;
}
