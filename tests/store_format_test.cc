#include "store/format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace voteopt::store {
namespace {

class StoreFormatTest : public ::testing::Test {
 protected:
  void SetUp() override { path_ = ::testing::TempDir() + "/format_test.bin"; }
  void TearDown() override { std::remove(path_.c_str()); }

  Status WriteSample() {
    payload_a_ = {1, 2, 3, 4, 5};
    payload_b_ = {0.5, -1.25};
    std::vector<SectionRef> sections;
    sections.push_back(
        MakeSection("alpha", std::span<const uint32_t>(payload_a_)));
    sections.push_back(
        MakeSection("beta", std::span<const double>(payload_b_)));
    return WriteSectionFile(path_, FileKind::kGraph, sections);
  }

  std::vector<uint8_t> ReadAll() {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    return bytes;
  }

  void WriteAll(const std::vector<uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
  std::vector<uint32_t> payload_a_;
  std::vector<double> payload_b_;
};

TEST_F(StoreFormatTest, RoundTripsSections) {
  ASSERT_TRUE(WriteSample().ok());
  for (const MappedFile::Mode mode :
       {MappedFile::Mode::kMmap, MappedFile::Mode::kCopy}) {
    auto file = MappedFile::Open(path_, mode);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    auto reader = SectionReader::Parse(*file, FileKind::kGraph);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();

    auto alpha = reader->Typed<uint32_t>("alpha");
    ASSERT_TRUE(alpha.ok());
    EXPECT_EQ(std::vector<uint32_t>(alpha->begin(), alpha->end()),
              payload_a_);
    auto beta = reader->Typed<double>("beta");
    ASSERT_TRUE(beta.ok());
    EXPECT_EQ(std::vector<double>(beta->begin(), beta->end()), payload_b_);
  }
}

TEST_F(StoreFormatTest, WritesAreDeterministic) {
  ASSERT_TRUE(WriteSample().ok());
  const std::vector<uint8_t> first = ReadAll();
  ASSERT_TRUE(WriteSample().ok());
  EXPECT_EQ(ReadAll(), first);
}

TEST_F(StoreFormatTest, MissingFileIsIOError) {
  auto file = MappedFile::Open(path_ + ".does-not-exist");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), Status::Code::kIOError);
}

TEST_F(StoreFormatTest, WrongMagicRejected) {
  ASSERT_TRUE(WriteSample().ok());
  auto bytes = ReadAll();
  bytes[0] = 'X';
  WriteAll(bytes);
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto reader = SectionReader::Parse(*file, FileKind::kGraph);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kCorruption);
}

TEST_F(StoreFormatTest, WrongKindRejected) {
  ASSERT_TRUE(WriteSample().ok());
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto reader = SectionReader::Parse(*file, FileKind::kSketch);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(StoreFormatTest, TruncatedHeaderRejected) {
  ASSERT_TRUE(WriteSample().ok());
  auto bytes = ReadAll();
  bytes.resize(10);
  WriteAll(bytes);
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto reader = SectionReader::Parse(*file, FileKind::kGraph);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kCorruption);
}

TEST_F(StoreFormatTest, TruncatedPayloadRejected) {
  ASSERT_TRUE(WriteSample().ok());
  auto bytes = ReadAll();
  bytes.resize(bytes.size() - 4);
  WriteAll(bytes);
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto reader = SectionReader::Parse(*file, FileKind::kGraph);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kCorruption);
}

TEST_F(StoreFormatTest, NoFlippedByteCorruptsPayloadsSilently) {
  ASSERT_TRUE(WriteSample().ok());
  const auto pristine = ReadAll();
  // Flip each byte in turn. A flip either fails Parse with a clean Status
  // (header/table/payload corruption) or — for don't-care bytes such as
  // alignment padding and the reserved header field — leaves every payload
  // byte-identical. Silently serving corrupted data is never acceptable.
  for (size_t i = 0; i < pristine.size(); ++i) {
    auto bytes = pristine;
    bytes[i] ^= 0xFF;
    WriteAll(bytes);
    auto file = MappedFile::Open(path_);
    ASSERT_TRUE(file.ok());
    auto reader = SectionReader::Parse(*file, FileKind::kGraph);
    if (!reader.ok()) continue;
    auto alpha = reader->Typed<uint32_t>("alpha");
    auto beta = reader->Typed<double>("beta");
    ASSERT_TRUE(alpha.ok() && beta.ok()) << "flip at byte " << i;
    EXPECT_EQ(std::vector<uint32_t>(alpha->begin(), alpha->end()), payload_a_)
        << "silent corruption from flip at byte " << i;
    EXPECT_EQ(std::vector<double>(beta->begin(), beta->end()), payload_b_)
        << "silent corruption from flip at byte " << i;
  }
}

TEST_F(StoreFormatTest, UnknownSectionIsNotFound) {
  ASSERT_TRUE(WriteSample().ok());
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto reader = SectionReader::Parse(*file, FileKind::kGraph);
  ASSERT_TRUE(reader.ok());
  auto missing = reader->Raw("gamma");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);
}

TEST_F(StoreFormatTest, ElementSizeMismatchIsCorruption) {
  ASSERT_TRUE(WriteSample().ok());
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto reader = SectionReader::Parse(*file, FileKind::kGraph);
  ASSERT_TRUE(reader.ok());
  // "alpha" holds 20 bytes; not a multiple of sizeof(double).
  auto typed = reader->Typed<double>("alpha");
  ASSERT_FALSE(typed.ok());
  EXPECT_EQ(typed.status().code(), Status::Code::kCorruption);
}

// --- The out-of-core block kinds (kGraphBlock, kBlockManifest) go through
// the same container validation as every other kind; these pin the
// negative paths the sketch_ooc crash-consistency story relies on. ---

class BlockKindFormatTest : public StoreFormatTest {
 protected:
  Status WriteAs(FileKind kind) {
    payload_ = {10, 20, 30};
    std::vector<SectionRef> sections;
    sections.push_back(
        MakeSection("blockmeta", std::span<const uint64_t>(payload_)));
    return WriteSectionFile(path_, kind, sections);
  }
  std::vector<uint64_t> payload_;
};

TEST_F(BlockKindFormatTest, BlockAndManifestKindsAreNotInterchangeable) {
  ASSERT_TRUE(WriteAs(FileKind::kGraphBlock).ok());
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  // A block file is only a block file: every other expectation fails with
  // InvalidArgument (wrong kind), not Corruption (the file is intact).
  for (const FileKind other :
       {FileKind::kBlockManifest, FileKind::kGraph, FileKind::kSketch}) {
    auto reader = SectionReader::Parse(*file, other);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), Status::Code::kInvalidArgument);
  }
  EXPECT_TRUE(SectionReader::Parse(*file, FileKind::kGraphBlock).ok());
}

TEST_F(BlockKindFormatTest, ManifestKindIsAlsoExclusive) {
  ASSERT_TRUE(WriteAs(FileKind::kBlockManifest).ok());
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto as_block = SectionReader::Parse(*file, FileKind::kGraphBlock);
  ASSERT_FALSE(as_block.ok());
  EXPECT_EQ(as_block.status().code(), Status::Code::kInvalidArgument);
  EXPECT_TRUE(SectionReader::Parse(*file, FileKind::kBlockManifest).ok());
}

TEST_F(BlockKindFormatTest, WrongMagicRejected) {
  ASSERT_TRUE(WriteAs(FileKind::kGraphBlock).ok());
  auto bytes = ReadAll();
  bytes[3] ^= 0xFF;
  WriteAll(bytes);
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto reader = SectionReader::Parse(*file, FileKind::kGraphBlock);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kCorruption);
}

TEST_F(BlockKindFormatTest, VersionSkewRejected) {
  ASSERT_TRUE(WriteAs(FileKind::kBlockManifest).ok());
  auto bytes = ReadAll();
  // The format version is the uint32 at bytes [8, 12) of the header; a
  // future-version file must be rejected, never half-parsed.
  bytes[8] = static_cast<uint8_t>(kFormatVersion + 1);
  WriteAll(bytes);
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto reader = SectionReader::Parse(*file, FileKind::kBlockManifest);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kCorruption);
  EXPECT_NE(reader.status().ToString().find("version"), std::string::npos);
}

TEST_F(BlockKindFormatTest, PayloadChecksumMismatchRejected) {
  ASSERT_TRUE(WriteAs(FileKind::kGraphBlock).ok());
  const auto pristine = ReadAll();
  // Flip the last payload byte (the header and section table sit at the
  // front; the final bytes of the file are always payload).
  auto bytes = pristine;
  bytes[bytes.size() - 1] ^= 0xFF;
  WriteAll(bytes);
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto reader = SectionReader::Parse(*file, FileKind::kGraphBlock);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kCorruption);
}

TEST_F(StoreFormatTest, SectionNameTooLongRejectedOnWrite) {
  std::vector<SectionRef> sections;
  const uint32_t value = 7;
  sections.push_back({"this-name-is-way-too-long", &value, sizeof(value)});
  EXPECT_FALSE(WriteSectionFile(path_, FileKind::kGraph, sections).ok());
}

}  // namespace
}  // namespace voteopt::store
