// Empirical verification of Table II: monotonicity and (non-)submodularity
// of the five voting scores, plus the paper's explicit counterexamples
// (Example 3, § IV-D submodularity-ratio instance).
#include <gtest/gtest.h>

#include "test_fixtures.h"
#include "util/rng.h"
#include "voting/evaluator.h"

namespace voteopt::voting {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

ScoreSpec SpecFor(const std::string& name) {
  if (name == "cumulative") return ScoreSpec::Cumulative();
  if (name == "plurality") return ScoreSpec::Plurality();
  if (name == "p-approval") return ScoreSpec::PApproval(2);
  if (name == "positional") return ScoreSpec::PositionalPApproval({1.0, 0.5});
  return ScoreSpec::Copeland();
}

class ScorePropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

// Table II column "Non-decreasing": F(S) <= F(S u {v}) for every score.
TEST_P(ScorePropertyTest, MonotoneInSeedSet) {
  const auto& [score_name, instance_seed] = GetParam();
  auto inst = MakeRandomInstance(25, 130, 3, instance_seed);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, SpecFor(score_name));

  Rng rng(instance_seed * 13);
  for (int trial = 0; trial < 6; ++trial) {
    const auto base = rng.SampleWithoutReplacement(25, 1 + trial);
    std::vector<graph::NodeId> seeds(base.begin(), base.end());
    const double before = ev.EvaluateSeeds(seeds);
    const graph::NodeId extra = static_cast<graph::NodeId>(
        rng.UniformInt(25));
    auto extended = seeds;
    if (std::find(extended.begin(), extended.end(), extra) != extended.end())
      continue;
    extended.push_back(extra);
    const double after = ev.EvaluateSeeds(extended);
    EXPECT_GE(after, before - 1e-9)
        << score_name << " seed " << instance_seed << " trial " << trial;
  }
}

// Table II column "Non-negative".
TEST_P(ScorePropertyTest, NonNegative) {
  const auto& [score_name, instance_seed] = GetParam();
  auto inst = MakeRandomInstance(20, 100, 3, instance_seed);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 1, 3, SpecFor(score_name));
  EXPECT_GE(ev.EvaluateSeeds({}), 0.0);
  EXPECT_GE(ev.EvaluateSeeds({0, 5}), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllScoresAndInstances, ScorePropertyTest,
    ::testing::Combine(::testing::Values("cumulative", "plurality",
                                         "p-approval", "positional",
                                         "copeland"),
                       ::testing::Values(11u, 22u, 33u)));

// Thm. 3: cumulative marginal gains shrink as the seed set grows.
TEST(SubmodularityTest, CumulativeSubmodularOnRandomInstances) {
  for (uint64_t seed : {5u, 6u, 7u, 8u}) {
    auto inst = MakeRandomInstance(20, 110, 2, seed);
    opinion::FJModel model(inst.graph);
    ScoreEvaluator ev(model, inst.state, 0, 5, ScoreSpec::Cumulative());
    Rng rng(seed * 31);
    for (int trial = 0; trial < 5; ++trial) {
      // X subset of Y, s outside Y.
      const auto y_sample = rng.SampleWithoutReplacement(20, 5);
      std::vector<graph::NodeId> y(y_sample.begin(), y_sample.end());
      std::vector<graph::NodeId> x(y.begin(), y.begin() + 2);
      graph::NodeId s = 0;
      while (std::find(y.begin(), y.end(), s) != y.end()) ++s;

      auto with = [&](std::vector<graph::NodeId> base, graph::NodeId extra) {
        base.push_back(extra);
        return ev.EvaluateSeeds(base);
      };
      const double gain_x = with(x, s) - ev.EvaluateSeeds(x);
      const double gain_y = with(y, s) - ev.EvaluateSeeds(y);
      EXPECT_GE(gain_x, gain_y - 1e-9) << "seed " << seed;
    }
  }
}

// Thm. 3 (per-user form): every user's opinion is individually submodular.
TEST(SubmodularityTest, PerUserOpinionSubmodular) {
  auto inst = MakeRandomInstance(18, 90, 2, 9);
  opinion::FJModel model(inst.graph);
  const auto& campaign = inst.state.campaigns[0];
  const std::vector<graph::NodeId> x = {2};
  const std::vector<graph::NodeId> y = {2, 11, 14};
  const graph::NodeId s = 6;
  const auto bx = model.PropagateWithSeeds(campaign, x, 6);
  const auto by = model.PropagateWithSeeds(campaign, y, 6);
  auto xs = x;
  xs.push_back(s);
  auto ys = y;
  ys.push_back(s);
  const auto bxs = model.PropagateWithSeeds(campaign, xs, 6);
  const auto bys = model.PropagateWithSeeds(campaign, ys, 6);
  for (uint32_t v = 0; v < 18; ++v) {
    EXPECT_GE(bxs[v] - bx[v], bys[v] - by[v] - 1e-12) << "user " << v;
  }
}

// Example 3: plurality and Copeland violate submodularity on the paper's
// running example — inserting node 2 (user 2) into {} gains 0, but into
// {node 0} gains 1.
TEST(NonSubmodularityTest, PaperExampleViolatesForPlurality) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Plurality());
  const double gain_into_empty = ev.EvaluateSeeds({1}) - ev.EvaluateSeeds({});
  const double gain_into_zero =
      ev.EvaluateSeeds({0, 1}) - ev.EvaluateSeeds({0});
  EXPECT_DOUBLE_EQ(gain_into_empty, 0.0);
  EXPECT_DOUBLE_EQ(gain_into_zero, 1.0);
  EXPECT_LT(gain_into_empty, gain_into_zero);  // submodularity violated
}

TEST(NonSubmodularityTest, PaperExampleViolatesForCopeland) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Copeland());
  const double gain_into_empty = ev.EvaluateSeeds({1}) - ev.EvaluateSeeds({});
  const double gain_into_zero =
      ev.EvaluateSeeds({0, 1}) - ev.EvaluateSeeds({0});
  EXPECT_DOUBLE_EQ(gain_into_empty, 0.0);
  EXPECT_DOUBLE_EQ(gain_into_zero, 1.0);
}

// § IV-D: the same instance gives submodularity ratio psi = 0 for
// plurality: F({1}) - F({}) = 0 and F({2}) - F({}) = 0 while
// F({1,2}) - F({}) = 1, so no positive psi satisfies Eq. 27.
TEST(SubmodularityRatioTest, PaperInstanceHasRatioZero) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, ScoreSpec::Plurality());
  const double f_empty = ev.EvaluateSeeds({});
  const double sum_singleton_gains = (ev.EvaluateSeeds({0}) - f_empty) +
                                     (ev.EvaluateSeeds({1}) - f_empty);
  const double joint_gain = ev.EvaluateSeeds({0, 1}) - f_empty;
  EXPECT_DOUBLE_EQ(sum_singleton_gains, 0.0);
  EXPECT_DOUBLE_EQ(joint_gain, 1.0);
}

// Independence of campaigns: seeding the target never changes competitor
// horizon opinions (§ II-C Remark 2; the evaluator relies on this).
TEST(IndependenceTest, CompetitorOpinionsUnaffectedByTargetSeeds) {
  auto inst = MakeRandomInstance(25, 130, 3, 15);
  opinion::FJModel model(inst.graph);
  const auto competitor_before =
      model.Propagate(inst.state.campaigns[2], 5);
  // "Seeding" candidate 0 doesn't touch campaign 2's inputs at all.
  const auto competitor_after = model.Propagate(inst.state.campaigns[2], 5);
  EXPECT_EQ(competitor_before, competitor_after);
}

}  // namespace
}  // namespace voteopt::voting
