#include "core/sandwich.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/traversal.h"

#include "core/greedy_dm.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace voteopt::core {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

double UpperBoundValue(const ScoreEvaluator& ev,
                       const std::vector<graph::NodeId>& seeds,
                       const std::vector<graph::NodeId>& base,
                       double unit_weight) {
  graph::HopLimitedBfs bfs(ev.model().graph(), graph::Direction::kForward);
  std::vector<bool> covered(ev.num_users(), false);
  size_t count = 0;
  for (graph::NodeId v : base) {
    if (!covered[v]) {
      covered[v] = true;
      ++count;
    }
  }
  bfs.Run(seeds, ev.horizon(), [&](graph::NodeId v, uint32_t) {
    if (!covered[v]) {
      covered[v] = true;
      ++count;
    }
  });
  return unit_weight * static_cast<double>(count);
}

TEST(FavorableUsersTest, PaperExample) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Plurality());
  // Users 1, 2 (nodes 0, 1) already rank the target first at t = 1.
  EXPECT_EQ(FavorableUsers(ev), (std::vector<graph::NodeId>{0, 1}));
}

TEST(WeaklyFavorableUsersTest, TwoCandidatesEqualsFavorable) {
  // With r = 2, "prefers target to at least one" == "prefers target to
  // all" (there is only one competitor).
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Copeland());
  EXPECT_EQ(WeaklyFavorableUsers(ev), (std::vector<graph::NodeId>{0, 1}));
}

TEST(WeaklyFavorableUsersTest, SupersetOfFavorableManyCandidates) {
  auto inst = MakeRandomInstance(40, 200, 5, 61);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Plurality());
  const auto favorable = FavorableUsers(ev);
  const auto weakly = WeaklyFavorableUsers(ev);
  // Every strictly-top user also beats at least one competitor.
  for (graph::NodeId v : favorable) {
    EXPECT_TRUE(std::find(weakly.begin(), weakly.end(), v) != weakly.end());
  }
  EXPECT_GE(weakly.size(), favorable.size());
}

// ---------------------------------------------------------------------------
// Sandwich ordering LB(S) <= F(S) <= UB(S) (Thms. 5-7) on random seed sets.
// ---------------------------------------------------------------------------

class SandwichOrderingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SandwichOrderingTest, BoundsHoldForRandomSeedSets) {
  auto inst = MakeRandomInstance(35, 180, 3, GetParam());
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Plurality());
  const auto favorable = FavorableUsers(ev);
  std::vector<bool> in_favorable(35, false);
  for (graph::NodeId v : favorable) in_favorable[v] = true;

  Rng rng(GetParam() * 77);
  for (int trial = 0; trial < 8; ++trial) {
    const auto seeds = rng.SampleWithoutReplacement(35, 1 + trial);
    std::vector<graph::NodeId> seed_vec(seeds.begin(), seeds.end());
    const double f = ev.EvaluateSeeds(seed_vec);

    // LB (Def. 3): omega[p]=1 times opinion mass over the favorable set.
    const auto horizon = ev.TargetHorizonOpinions(seed_vec);
    double lb = 0.0;
    for (graph::NodeId v : favorable) lb += horizon[v];
    // UB (Def. 4): coverage of N_S u V_q.
    const double ub = UpperBoundValue(ev, seed_vec, favorable, 1.0);

    EXPECT_LE(lb, f + 1e-9) << "trial " << trial;
    EXPECT_LE(f, ub + 1e-9) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SandwichOrderingTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(SandwichOrderingTest, CopelandUpperBoundHolds) {
  auto inst = MakeRandomInstance(30, 150, 4, 67);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Copeland());
  const auto weakly = WeaklyFavorableUsers(ev);
  const double unit = 3.0 / (std::floor(30 / 2.0) + 1.0);
  Rng rng(71);
  for (int trial = 0; trial < 8; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(30, 2 + trial);
    std::vector<graph::NodeId> seeds(sample.begin(), sample.end());
    const double f = ev.EvaluateSeeds(seeds);
    const double ub = UpperBoundValue(ev, seeds, weakly, unit);
    EXPECT_LE(f, ub + 1e-9) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Bound maximizers.
// ---------------------------------------------------------------------------

TEST(MaximizeUpperBoundTest, CoversGreedily) {
  // Chain 0->1->2->3->4: with t=2 and empty base, seeding node 0 covers
  // {0,1,2}; greedy k=2 then adds a node covering the rest.
  graph::GraphBuilder b(5);
  for (graph::NodeId v = 0; v + 1 < 5; ++v) b.AddEdge(v, v + 1, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  opinion::MultiCampaignState state;
  state.campaigns.resize(2);
  for (auto& c : state.campaigns) {
    c.initial_opinions.assign(5, 0.5);
    c.stubbornness.assign(5, 0.5);
  }
  opinion::FJModel model(*g);
  ScoreEvaluator ev(model, state, 0, 2, voting::ScoreSpec::Plurality());
  const auto result = MaximizeUpperBound(ev, 2, {}, 1.0);
  EXPECT_EQ(result.seeds.size(), 2u);
  EXPECT_DOUBLE_EQ(result.bound_value, 5.0);  // everything covered
  // Greedy first pick must be a node covering 3 nodes: 0, 1 or 2.
  EXPECT_LE(result.seeds[0], 2u);
}

TEST(MaximizeLowerBoundTest, OnlyFavorableOpinionsCount) {
  auto ex = MakePaperExample();
  opinion::FJModel model(ex.graph);
  ScoreEvaluator ev(model, ex.state, 0, 1, voting::ScoreSpec::Plurality());
  const auto favorable = FavorableUsers(ev);  // {0, 1}
  const auto result = MaximizeLowerBound(ev, 1, favorable, 1.0);
  ASSERT_EQ(result.seeds.size(), 1u);
  // Seeding node 0 or 1 raises the favorable-set opinion mass the most
  // (0.4 -> 1 gain of 0.6 beats 0.8 -> 1 gain of 0.2 and beats any
  // diffusion-only effect on nodes 0/1, which have no in-edges).
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_NEAR(result.bound_value, 1.0 + 0.8, 1e-9);
}

// ---------------------------------------------------------------------------
// Algorithm 3.
// ---------------------------------------------------------------------------

TEST(SandwichSelectTest, ReturnsBestOfThreeWithDiagnostics) {
  auto inst = MakeRandomInstance(30, 160, 3, 73);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, voting::ScoreSpec::Plurality());
  const auto result = SandwichSelect(ev, 4);
  EXPECT_EQ(result.seeds.size(), 4u);
  EXPECT_GE(result.score,
            result.diagnostics.at("score_SF") - 1e-9);
  EXPECT_GE(result.score, result.diagnostics.at("score_SU") - 1e-9);
  EXPECT_GE(result.score, result.diagnostics.at("score_SL") - 1e-9);
  // The empirical factor of Fig. 2 is in (0, 1].
  const double ratio = result.diagnostics.at("sandwich_ratio");
  EXPECT_GT(ratio, 0.0);
  EXPECT_LE(ratio, 1.0 + 1e-9);
}

TEST(SandwichSelectTest, CopelandSkipsLowerBound) {
  auto inst = MakeRandomInstance(25, 120, 3, 79);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Copeland());
  const auto result = SandwichSelect(ev, 3);
  EXPECT_EQ(result.diagnostics.count("score_SL"), 0u);
  EXPECT_EQ(result.diagnostics.count("score_SU"), 1u);
}

TEST(SandwichSelectTest, CumulativeDelegatesToFeasible) {
  auto inst = MakeRandomInstance(25, 120, 2, 83);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 3, voting::ScoreSpec::Cumulative());
  const auto sandwich = SandwichSelect(ev, 3);
  const auto direct = GreedyDMSelect(ev, 3);
  EXPECT_EQ(sandwich.seeds, direct.seeds);
}

TEST(SandwichSelectTest, NeverWorseThanPlainGreedy) {
  for (uint64_t seed : {89u, 97u, 101u}) {
    auto inst = MakeRandomInstance(30, 150, 4, seed);
    opinion::FJModel model(inst.graph);
    ScoreEvaluator ev(model, inst.state, 1, 4, voting::ScoreSpec::Plurality());
    const auto sandwich = SandwichSelect(ev, 3);
    const auto plain = GreedyDMSelect(ev, 3);
    EXPECT_GE(sandwich.score, plain.score - 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace voteopt::core
