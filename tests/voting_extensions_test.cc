// Tests for the extension features (paper § IX future work and § II-A
// generality): the Borda score and per-candidate influence matrices W_q.
#include <gtest/gtest.h>

#include "core/greedy_dm.h"
#include "graph/builder.h"
#include "test_fixtures.h"
#include "voting/evaluator.h"

namespace voteopt::voting {
namespace {

using test::MakePaperExample;
using test::MakeRandomInstance;

// ---------------------------------------------------------------------------
// Borda.
// ---------------------------------------------------------------------------

TEST(BordaTest, WeightsAreLinearAndValid) {
  const ScoreSpec borda = ScoreSpec::Borda(4);
  EXPECT_TRUE(borda.Validate(4).ok());
  EXPECT_DOUBLE_EQ(borda.RankWeight(1), 1.0);
  EXPECT_DOUBLE_EQ(borda.RankWeight(2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(borda.RankWeight(3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(borda.RankWeight(4), 0.0);
}

TEST(BordaTest, TwoCandidatesBordaEqualsPlurality) {
  // With r = 2 the Borda weights are (1, 0): exactly plurality.
  const OpinionMatrix m = {{0.9, 0.2, 0.5}, {0.5, 0.6, 0.4}};
  EXPECT_DOUBLE_EQ(Score(m, 0, ScoreSpec::Borda(2)),
                   Score(m, 0, ScoreSpec::Plurality()));
}

TEST(BordaTest, RewardsConsistentSecondPlaces) {
  // Candidate 1 is everyone's second choice: zero plurality but strong
  // Borda — the classic motivation for the rule.
  const OpinionMatrix m = {
      {0.9, 0.1, 0.9}, {0.5, 0.5, 0.5}, {0.1, 0.9, 0.1}};
  EXPECT_DOUBLE_EQ(Score(m, 1, ScoreSpec::Plurality()), 0.0);
  EXPECT_DOUBLE_EQ(Score(m, 1, ScoreSpec::Borda(3)), 1.5);  // 3 * 0.5
  EXPECT_DOUBLE_EQ(Score(m, 0, ScoreSpec::Borda(3)), 2.0);  // 2 firsts
}

TEST(BordaTest, GreedySelectionWorksEndToEnd) {
  auto inst = MakeRandomInstance(25, 130, 4, 301);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator ev(model, inst.state, 0, 4, ScoreSpec::Borda(4));
  const auto result = core::GreedyDMSelect(ev, 3);
  EXPECT_EQ(result.seeds.size(), 3u);
  EXPECT_GE(result.score, ev.EvaluateSeeds({}));
}

// ---------------------------------------------------------------------------
// Per-candidate influence matrices.
// ---------------------------------------------------------------------------

TEST(PerCandidateModelTest, CompetitorUsesItsOwnGraph) {
  auto ex = MakePaperExample();
  // A second graph where user 3's influences are reversed in strength.
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 2, 0.9);
  builder.AddEdge(1, 2, 0.1);
  builder.AddEdge(2, 3, 1.0);
  auto alt = builder.Build();
  ASSERT_TRUE(alt.ok());

  // Make c2 non-stubborn so its graph actually matters.
  ex.state.campaigns[1].stubbornness = {1.0, 1.0, 0.0, 0.0};

  opinion::FJModel target_model(ex.graph);
  opinion::FJModel competitor_model(*alt);
  ScoreEvaluator ev({&target_model, &competitor_model}, ex.state, 0, 1,
                    ScoreSpec::Plurality());
  // c2 horizon for user 3 under its own W: 0.9*0.35 + 0.1*0.75 = 0.39.
  EXPECT_NEAR(ev.HorizonOpinions(1)[2], 0.39, 1e-12);
  // Target unchanged (its own graph): Table I row {}.
  EXPECT_NEAR(ev.HorizonOpinions(0)[2], 0.60, 1e-12);
}

TEST(PerCandidateModelTest, SharedModelOverloadEquivalent) {
  auto inst = MakeRandomInstance(20, 100, 3, 303);
  opinion::FJModel model(inst.graph);
  ScoreEvaluator shared(model, inst.state, 1, 5, ScoreSpec::Copeland());
  ScoreEvaluator explicit_models({&model, &model, &model}, inst.state, 1, 5,
                                 ScoreSpec::Copeland());
  for (uint32_t q = 0; q < 3; ++q) {
    EXPECT_EQ(shared.HorizonOpinions(q), explicit_models.HorizonOpinions(q));
  }
  EXPECT_DOUBLE_EQ(shared.EvaluateSeeds({2, 5}),
                   explicit_models.EvaluateSeeds({2, 5}));
}

TEST(PerCandidateModelTest, DifferentCompetitorGraphChangesScores) {
  auto inst = MakeRandomInstance(30, 150, 2, 307);
  // Competitor diffuses over the transpose graph (influence reversed).
  graph::Graph transpose =
      inst.graph.Transposed().NormalizedIncoming();
  opinion::FJModel target_model(inst.graph);
  opinion::FJModel competitor_model(transpose);

  ScoreEvaluator same(target_model, inst.state, 0, 5,
                      ScoreSpec::Plurality());
  ScoreEvaluator different({&target_model, &competitor_model}, inst.state, 0,
                           5, ScoreSpec::Plurality());
  // The competitor's horizon opinions genuinely differ.
  EXPECT_NE(same.HorizonOpinions(1), different.HorizonOpinions(1));
  // Seed selection still works on the mixed-topology instance.
  const auto result = core::GreedyDMSelect(different, 2);
  EXPECT_EQ(result.seeds.size(), 2u);
}

}  // namespace
}  // namespace voteopt::voting
