// Tests for the streaming edge-list parser (graph/edge_stream.h): exact
// correctness on hand-built files, agreement with the buffering
// graph::LoadEdgeList path, and a property-style fuzz sweep that feeds
// randomly mangled files (whitespace, comments, duplicates, self-loops,
// out-of-order ids, malformed garbage) and requires either a validated CSR
// or a clean Status — never a crash. The whole file runs under the CI
// ASan+UBSan job like every other test.
#include "graph/edge_stream.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/io.h"
#include "util/rng.h"

namespace voteopt::graph {
namespace {

class EdgeStreamTest : public ::testing::Test {
 protected:
  std::string WriteFile(const std::string& contents) {
    const std::string path = ::testing::TempDir() + "/edge_stream_" +
                             std::to_string(file_counter_++) + ".txt";
    std::ofstream out(path, std::ios::binary);
    out << contents;
    out.close();
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& path : paths_) std::remove(path.c_str());
  }

  std::vector<std::string> paths_;
  int file_counter_ = 0;
};

// Two graphs built from the same logical edges must agree exactly: same
// CSR arrays in both directions, bit-for-bit weights.
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto an = a.InNeighbors(v), bn = b.InNeighbors(v);
    ASSERT_EQ(an.size(), bn.size()) << "in-degree of " << v;
    const auto aw = a.InWeights(v), bw = b.InWeights(v);
    // In-rows may order parallel edges differently between builders; sort
    // (source, weight) pairs before comparing.
    std::vector<std::pair<NodeId, double>> ap, bp;
    for (size_t i = 0; i < an.size(); ++i) ap.emplace_back(an[i], aw[i]);
    for (size_t i = 0; i < bn.size(); ++i) bp.emplace_back(bn[i], bw[i]);
    std::sort(ap.begin(), ap.end());
    std::sort(bp.begin(), bp.end());
    EXPECT_EQ(ap, bp) << "in-row of " << v;
  }
}

TEST_F(EdgeStreamTest, ParsesBasicDirectedFile) {
  const std::string path = WriteFile(
      "# a comment\n"
      "0 1\n"
      "1 2 0.5\n"
      "% percent comment\n"
      "\n"
      "2 0\n");
  EdgeStreamStats stats;
  auto result = StreamEdgeList(path, {}, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_nodes(), 3u);
  EXPECT_EQ(result->num_edges(), 3u);
  EXPECT_EQ(stats.lines, 6u);
  EXPECT_EQ(stats.comment_lines, 3u);
  EXPECT_EQ(stats.edge_records, 3u);
  ASSERT_EQ(result->InNeighbors(2).size(), 1u);
  EXPECT_EQ(result->InNeighbors(2)[0], 1u);
  EXPECT_DOUBLE_EQ(result->InWeights(2)[0], 0.5);
}

TEST_F(EdgeStreamTest, HandlesArbitraryWhitespaceAndCrLf) {
  const std::string path = WriteFile("  0\t 1  \r\n\t\t2   0\t1.25\r\n");
  auto result = StreamEdgeList(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_nodes(), 3u);
  EXPECT_EQ(result->num_edges(), 2u);
  EXPECT_DOUBLE_EQ(result->InWeights(0)[0], 1.25);
}

TEST_F(EdgeStreamTest, KeepsDuplicatesAsParallelEdges) {
  const std::string path = WriteFile("0 1\n0 1\n0 1 2.0\n");
  EdgeStreamStats stats;
  auto result = StreamEdgeList(path, {}, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_edges(), 3u);
  EXPECT_EQ(stats.duplicate_edges, 2u);
  EXPECT_EQ(result->InNeighbors(1).size(), 3u);
}

TEST_F(EdgeStreamTest, DropsSelfLoopsByDefaultKeepsThemOnRequest) {
  const std::string path = WriteFile("0 0\n0 1\n1 1\n");
  EdgeStreamStats stats;
  auto dropped = StreamEdgeList(path, {}, &stats);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->num_edges(), 1u);
  EXPECT_EQ(stats.self_loops_dropped, 2u);

  auto kept = StreamEdgeList(path, {.drop_self_loops = false}, &stats);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->num_edges(), 3u);
  EXPECT_EQ(stats.self_loops_dropped, 0u);
}

TEST_F(EdgeStreamTest, UndirectedEmitsBothDirections) {
  const std::string path = WriteFile("0 1 0.5\n2 1\n");
  auto result = StreamEdgeList(path, {.undirected = true});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges(), 4u);
  ASSERT_EQ(result->InNeighbors(0).size(), 1u);
  EXPECT_EQ(result->InNeighbors(0)[0], 1u);
  EXPECT_DOUBLE_EQ(result->InWeights(0)[0], 0.5);
}

TEST_F(EdgeStreamTest, OutOfOrderAndSparseIdsCompact) {
  const std::string path = WriteFile("900 7\n7 31\n31 900\n");
  EdgeStreamStats stats;
  auto sparse = StreamEdgeList(path, {}, &stats);
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse->num_nodes(), 901u);  // universe [0, max_id]

  auto compact = StreamEdgeList(path, {.compact_ids = true}, &stats);
  ASSERT_TRUE(compact.ok());
  EXPECT_EQ(compact->num_nodes(), 3u);
  // Ascending-id relabel: 7 -> 0, 31 -> 1, 900 -> 2.
  ASSERT_EQ(compact->InNeighbors(0).size(), 1u);
  EXPECT_EQ(compact->InNeighbors(0)[0], 2u);  // 900 -> 7 becomes 2 -> 0
}

TEST_F(EdgeStreamTest, NormalizeIncomingMakesInRowsSumToOne) {
  const std::string path = WriteFile("0 2 3.0\n1 2 1.0\n2 0\n");
  auto result = StreamEdgeList(path, {.normalize_incoming = true});
  ASSERT_TRUE(result.ok());
  const auto w = result->InWeights(2);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0] + w[1], 1.0);
  EXPECT_DOUBLE_EQ(result->InWeights(0)[0], 1.0);
}

TEST_F(EdgeStreamTest, AgreesWithBufferingLoader) {
  // Same file through StreamEdgeList and graph::LoadEdgeList must yield
  // identical graphs (modulo parallel-edge order within an in-row).
  const std::string path = WriteFile(
      "# snap-ish header\n"
      "0 3 0.25\n3 1\n1 0 2.0\n2 3\n3 2 0.125\n0 1\n");
  auto streamed = StreamEdgeList(path, {.normalize_incoming = true});
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  auto buffered = LoadEdgeList(path, {.normalize_incoming = true});
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  ExpectSameGraph(*streamed, *buffered);
}

// --- Error paths: every malformed input is a clean Status, never a crash,
// and names the offending line. ---

TEST_F(EdgeStreamTest, RejectsMalformedLines) {
  const struct {
    const char* contents;
    const char* line_tag;  // expected "path:<line>" fragment
  } kCases[] = {
      {"0 1\nx 2\n", ":2:"},            // non-numeric src
      {"0 1\n2\n", ":2:"},              // missing dst
      {"0 1\n1 2 3 4\n", ":2:"},        // trailing token
      {"0 1\n1 2 -0.5\n", ":2:"},       // negative weight
      {"0 1\n1 2 nan\n", ":2:"},        // non-finite weight
      {"0 1\n1 2 0\n", ":2:"},          // zero weight
      {"-1 2\n", ":1:"},                // negative id
      {"0 1\n3 999999999999\n", ":2:"}, // id beyond the cap
  };
  for (const auto& c : kCases) {
    const std::string path = WriteFile(c.contents);
    auto result = StreamEdgeList(path);
    ASSERT_FALSE(result.ok()) << "accepted: " << c.contents;
    EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument)
        << c.contents;
    EXPECT_NE(result.status().ToString().find(c.line_tag), std::string::npos)
        << "no line number in: " << result.status().ToString();
  }
}

TEST_F(EdgeStreamTest, RejectsEmptyAndCommentOnlyFiles) {
  for (const char* contents : {"", "# nothing\n\n% here\n"}) {
    const std::string path = WriteFile(contents);
    auto result = StreamEdgeList(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  }
}

TEST_F(EdgeStreamTest, MissingFileIsIOError) {
  auto result = StreamEdgeList(::testing::TempDir() + "/no_such_file.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
}

TEST_F(EdgeStreamTest, MaxNodeIdCapGuardsAllocations) {
  const std::string path = WriteFile("0 1\n1 70000\n");
  auto capped = StreamEdgeList(path, {.max_node_id = 65535});
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), Status::Code::kInvalidArgument);
  auto fits = StreamEdgeList(path, {.max_node_id = 70000});
  EXPECT_TRUE(fits.ok());
}

// --- Property-style fuzz sweep ---
//
// Random files mixing valid edges with whitespace chaos, comments,
// duplicates, self-loops, out-of-order sparse ids, and (in half the
// rounds) injected garbage. Invariants:
//   - the parser never crashes (ASan/UBSan-clean by construction of CI);
//   - clean files parse, and the CSR validates: out-edge multiset ==
//     in-edge multiset == the edges we generated;
//   - files with injected garbage produce Status, not a graph with the
//     garbage silently folded in.

struct FuzzFile {
  std::string contents;
  // Directed (src, dst) -> total multiplicity of the edges a correct
  // parse must keep (post self-loop-drop).
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> edges;
  bool has_garbage = false;
  bool has_records = false;  // any edge record at all, self-loops included
};

FuzzFile GenerateFuzzFile(Rng* rng) {
  FuzzFile file;
  std::ostringstream out;
  const int num_lines = 1 + static_cast<int>(rng->UniformInt(60));
  const uint32_t id_space = 1 + static_cast<uint32_t>(rng->UniformInt(40));
  const char* kSpaces[] = {" ", "\t", "  ", " \t "};
  auto space = [&] { return kSpaces[rng->UniformInt(4)]; };
  for (int line = 0; line < num_lines; ++line) {
    const uint64_t kind = rng->UniformInt(10);
    if (kind == 0) {
      out << (rng->Bernoulli(0.5) ? "# comment " : "% comment ")
          << rng->UniformInt(100) << "\n";
    } else if (kind == 1) {
      out << (rng->Bernoulli(0.5) ? "" : "   ") << "\n";  // blank
    } else if (kind == 2 && rng->Bernoulli(0.35)) {
      // Garbage: malformed in one of several ways.
      const uint64_t flavor = rng->UniformInt(4);
      if (flavor == 0) out << "bogus " << rng->UniformInt(10) << "\n";
      if (flavor == 1) out << rng->UniformInt(10) << "\n";
      if (flavor == 2) out << "1 2 -3.5\n";
      if (flavor == 3) out << "3 4 5 6\n";
      file.has_garbage = true;
    } else {
      const uint32_t src = static_cast<uint32_t>(rng->UniformInt(id_space));
      const uint32_t dst = static_cast<uint32_t>(rng->UniformInt(id_space));
      out << space() << src << space() << dst;
      if (rng->Bernoulli(0.3)) out << space() << "0.5";
      if (rng->Bernoulli(0.3)) out << space();
      out << "\n";
      file.has_records = true;
      if (src != dst) ++file.edges[{src, dst}];  // default drops self-loops
    }
  }
  file.contents = out.str();
  return file;
}

TEST_F(EdgeStreamTest, FuzzRandomFilesNeverCrashCleanFilesRoundTrip) {
  Rng rng(20230841);
  int clean_rounds = 0, garbage_rounds = 0;
  for (int round = 0; round < 300; ++round) {
    FuzzFile file = GenerateFuzzFile(&rng);
    const std::string path = WriteFile(file.contents);
    EdgeStreamStats stats;
    auto result = StreamEdgeList(path, {}, &stats);
    if (file.has_garbage) {
      ++garbage_rounds;
      ASSERT_FALSE(result.ok())
          << "garbage accepted in round " << round << ":\n" << file.contents;
      EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
      continue;
    }
    if (file.edges.empty()) {
      if (!file.has_records) {
        ASSERT_FALSE(result.ok());  // comments/blanks only: no nodes
      } else if (result.ok()) {
        // Self-loop-only records keep the [0, max_id] universe but no edges.
        EXPECT_EQ(result->num_edges(), 0u);
      }
      continue;
    }
    ++clean_rounds;
    ASSERT_TRUE(result.ok()) << "round " << round << ": "
                             << result.status().ToString() << "\n"
                             << file.contents;
    // The CSR must contain exactly the generated edge multiset, in both
    // directions.
    uint64_t expected_edges = 0;
    for (const auto& [edge, mult] : file.edges) expected_edges += mult;
    ASSERT_EQ(result->num_edges(), expected_edges) << file.contents;
    EXPECT_EQ(stats.num_edges, expected_edges);
    std::map<std::pair<uint32_t, uint32_t>, uint32_t> out_seen, in_seen;
    for (NodeId u = 0; u < result->num_nodes(); ++u) {
      for (NodeId v : result->OutNeighbors(u)) ++out_seen[{u, v}];
      for (NodeId s : result->InNeighbors(u)) ++in_seen[{s, u}];
    }
    EXPECT_EQ(out_seen, file.edges) << file.contents;
    EXPECT_EQ(in_seen, file.edges) << file.contents;
  }
  // The generator must actually exercise both regimes.
  EXPECT_GT(clean_rounds, 50);
  EXPECT_GT(garbage_rounds, 50);
}

TEST_F(EdgeStreamTest, FuzzOptionVariantsNeverCrash) {
  // Same sweep under every option combination; only structural sanity is
  // asserted (option semantics are pinned by the targeted tests above).
  Rng rng(777);
  for (int round = 0; round < 100; ++round) {
    FuzzFile file = GenerateFuzzFile(&rng);
    const std::string path = WriteFile(file.contents);
    EdgeStreamOptions options;
    options.undirected = rng.Bernoulli(0.5);
    options.drop_self_loops = rng.Bernoulli(0.5);
    options.compact_ids = rng.Bernoulli(0.5);
    options.normalize_incoming = rng.Bernoulli(0.5);
    auto result = StreamEdgeList(path, options);
    if (!result.ok()) continue;  // clean rejection is fine
    const Graph& g = *result;
    uint64_t out_total = 0, in_total = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      out_total += g.OutNeighbors(u).size();
      in_total += g.InNeighbors(u).size();
    }
    EXPECT_EQ(out_total, g.num_edges());
    EXPECT_EQ(in_total, g.num_edges());
  }
}

}  // namespace
}  // namespace voteopt::graph
