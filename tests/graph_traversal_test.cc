#include "graph/traversal.h"

#include <gtest/gtest.h>

#include <map>

#include "graph/builder.h"

namespace voteopt::graph {
namespace {

Graph Chain5() {
  // 0 -> 1 -> 2 -> 3 -> 4
  GraphBuilder b(5);
  for (NodeId v = 0; v + 1 < 5; ++v) b.AddEdge(v, v + 1, 1.0);
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(TraversalTest, ForwardHopsFromSingleSource) {
  Graph g = Chain5();
  HopLimitedBfs bfs(g, Direction::kForward);
  std::map<NodeId, uint32_t> hops;
  bfs.Run({0}, 2, [&](NodeId v, uint32_t h) { hops[v] = h; });
  EXPECT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 2u);
}

TEST(TraversalTest, ZeroHopsVisitsOnlySources) {
  Graph g = Chain5();
  HopLimitedBfs bfs(g, Direction::kForward);
  auto reachable = bfs.ReachableWithin({2}, 0);
  EXPECT_EQ(reachable, std::vector<NodeId>{2});
}

TEST(TraversalTest, ReverseDirection) {
  Graph g = Chain5();
  HopLimitedBfs bfs(g, Direction::kReverse);
  auto reachable = bfs.ReachableWithin({4}, 2);
  std::sort(reachable.begin(), reachable.end());
  EXPECT_EQ(reachable, (std::vector<NodeId>{2, 3, 4}));
}

TEST(TraversalTest, MultiSourceDeduplicates) {
  Graph g = Chain5();
  HopLimitedBfs bfs(g, Direction::kForward);
  auto reachable = bfs.ReachableWithin({0, 1, 1}, 1);
  std::sort(reachable.begin(), reachable.end());
  EXPECT_EQ(reachable, (std::vector<NodeId>{0, 1, 2}));
}

TEST(TraversalTest, RepeatedRunsAreIndependent) {
  Graph g = Chain5();
  HopLimitedBfs bfs(g, Direction::kForward);
  // First run marks nodes; second run must start fresh (epoch trick).
  EXPECT_EQ(bfs.ReachableWithin({0}, 4).size(), 5u);
  EXPECT_EQ(bfs.ReachableWithin({0}, 4).size(), 5u);
  EXPECT_EQ(bfs.ReachableWithin({3}, 1).size(), 2u);
}

TEST(TraversalTest, HopLimitBeyondDiameterVisitsComponent) {
  Graph g = Chain5();
  HopLimitedBfs bfs(g, Direction::kForward);
  EXPECT_EQ(bfs.ReachableWithin({0}, 100).size(), 5u);
  EXPECT_EQ(bfs.ReachableWithin({4}, 100).size(), 1u);  // sink
}

TEST(TraversalTest, BranchingGraphHopOrder) {
  // 0 -> {1, 2}; 1 -> 3; 2 -> 3 (diamond).
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(1, 3, 1.0);
  b.AddEdge(2, 3, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  HopLimitedBfs bfs(*g, Direction::kForward);
  std::vector<uint32_t> order;
  bfs.Run({0}, 5, [&](NodeId, uint32_t h) { order.push_back(h); });
  // Hops nondecreasing; node 3 visited once.
  EXPECT_EQ(order.size(), 4u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace voteopt::graph
