// Golden-fixture test for the real-dataset converter (datasets/convert.h):
// the pinned SNAP-style file tests/data/snap_tiny.txt converts into a
// bundle whose influence-graph fingerprint and top-k greedy seeds are
// asserted EXACTLY. Any change to the parser, the mu reweighting, the
// synthetic-campaign recipe, or the binary store layout shows up here as
// a changed hash — deliberate changes must re-pin the constants below.
#include "datasets/convert.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/estimated_greedy.h"
#include "core/sketch.h"
#include "datasets/io.h"
#include "opinion/fj_model.h"
#include "voting/evaluator.h"
#include "voting/scores.h"

namespace voteopt::datasets {
namespace {

std::string FixturePath() {
  return std::string(VOTEOPT_SOURCE_DIR) + "/tests/data/snap_tiny.txt";
}

class DatasetsConvertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/snap_tiny_bundle";
  }
  void TearDown() override {
    for (const char* suffix : {".influence.graphbin", ".counts.graphbin",
                               ".campaigns.tsv", ".meta", ".sketch"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  ConvertOptions GoldenOptions() const {
    ConvertOptions options;  // defaults: mu=10, 2 candidates, seed 7
    options.stream.compact_ids = true;
    options.name = "snap-tiny";
    return options;
  }

  std::string prefix_;
};

// The fingerprint of the converted influence .graphbin. The store format
// is a pure function of its sections, so this one constant pins the whole
// parse -> reweight -> serialize pipeline byte-for-byte.
constexpr uint64_t kGoldenInfluenceFnv = 10650673962176552633ULL;

TEST_F(DatasetsConvertTest, GoldenFixtureConvertsToPinnedBundle) {
  auto report = ConvertEdgeListToBundle(FixturePath(), prefix_,
                                        GoldenOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Parse census, pinned against the fixture contents.
  EXPECT_EQ(report->num_nodes, 12u);
  EXPECT_EQ(report->num_edges, 24u);
  EXPECT_EQ(report->parse.comment_lines, 6u);
  EXPECT_EQ(report->parse.edge_records, 24u);
  EXPECT_EQ(report->parse.self_loops_dropped, 2u);
  EXPECT_EQ(report->parse.duplicate_edges, 1u);

  EXPECT_EQ(report->influence_file_fnv, kGoldenInfluenceFnv)
      << "conversion output changed — if intentional, re-pin the constant";
}

TEST_F(DatasetsConvertTest, ConversionIsByteStable) {
  // Converting twice (fresh prefix) yields the identical file fingerprint:
  // no timestamps, pointers, or iteration-order leaks in the output.
  auto first = ConvertEdgeListToBundle(FixturePath(), prefix_,
                                       GoldenOptions());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string other = prefix_ + "_again";
  auto second = ConvertEdgeListToBundle(FixturePath(), other, GoldenOptions());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->influence_file_fnv, second->influence_file_fnv);
  for (const char* suffix : {".influence.graphbin", ".counts.graphbin",
                             ".campaigns.tsv", ".meta"}) {
    std::remove((other + suffix).c_str());
  }
}

TEST_F(DatasetsConvertTest, ConvertedBundleYieldsPinnedTopKSeeds) {
  auto report = ConvertEdgeListToBundle(FixturePath(), prefix_,
                                        GoldenOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Loading goes through the binary .graphbin members (no .edges files
  // exist for this bundle).
  auto bundle = LoadDatasetBundle(prefix_);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->name, "snap-tiny");
  EXPECT_EQ(bundle->influence.num_nodes(), 12u);
  EXPECT_EQ(bundle->state.num_candidates(), 2u);

  opinion::FJModel model(bundle->influence);
  voting::ScoreEvaluator ev(model, bundle->state, bundle->default_target,
                            /*horizon=*/6, voting::ScoreSpec::Cumulative());
  const auto sketch = core::BuildSketchSet(ev, /*theta=*/20000,
                                           /*master_seed=*/11, {});
  core::EstimatedGreedyOptions greedy;
  greedy.evaluate_exact = false;
  const auto pick = core::EstimatedGreedySelect(ev, 3, sketch.get(), greedy);

  // End-to-end golden result: fixture -> convert -> load -> sketch ->
  // greedy. Pinned by the determinism ledger (docs/ARCHITECTURE.md).
  const std::vector<uint32_t> kGoldenSeeds = {10, 5, 8};
  EXPECT_EQ(pick.seeds, kGoldenSeeds)
      << "seed selection changed — if intentional, re-pin the constant";
}

TEST_F(DatasetsConvertTest, RejectsBadCandidateConfigs) {
  ConvertOptions options = GoldenOptions();
  options.num_candidates = 1;
  EXPECT_FALSE(ConvertEdgeListToBundle(FixturePath(), prefix_, options).ok());
  options = GoldenOptions();
  options.target = 5;  // >= num_candidates
  EXPECT_FALSE(ConvertEdgeListToBundle(FixturePath(), prefix_, options).ok());
}

TEST_F(DatasetsConvertTest, MissingInputSurfacesCleanly) {
  auto report = ConvertEdgeListToBundle(
      ::testing::TempDir() + "/definitely_missing.txt", prefix_,
      GoldenOptions());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace voteopt::datasets
