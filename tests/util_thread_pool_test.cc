#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace voteopt {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreadCount());
}

TEST(ThreadPoolTest, SubmitReturnsTaskResults) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, RunsOnWorkerThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  auto worker = pool.Submit([] { return std::this_thread::get_id(); });
  EXPECT_NE(worker.get(), caller);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto throwing = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto fine = pool.Submit([] { return 7; });
  EXPECT_THROW(
      {
        try {
          throwing.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
  // A throwing task must not take the worker down with it.
  EXPECT_EQ(fine.get(), 7);
}

TEST(ThreadPoolTest, ShutdownWhileBusyDrainsQueue) {
  // Destroy the pool while tasks are still queued behind a slow one: every
  // submitted task must still run, and every future must become ready.
  auto counter = std::make_shared<std::atomic<int>>(0);
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter->fetch_add(1);
      }));
    }
    // ~ThreadPool runs here with most of the queue still pending.
  }
  EXPECT_EQ(counter->load(), 32);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

TEST(ThreadPoolTest, ManySmallTasksFromManySubmitters) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::thread> submitters;
  std::mutex futures_mutex;
  std::vector<std::future<void>> futures;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &sum, &futures, &futures_mutex] {
      for (int i = 0; i < 100; ++i) {
        auto f = pool.Submit([&sum] { sum.fetch_add(1); });
        std::lock_guard<std::mutex> lock(futures_mutex);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 400);
}

}  // namespace
}  // namespace voteopt
