// Integration coverage for the offline-build -> persist -> serve workflow:
// a bundle + sketch are persisted to disk, a CampaignService loads them in
// a fresh "process" (object), and a mixed batch of top-k / min-seed /
// evaluate queries is answered from the one loaded store.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/estimated_greedy.h"
#include "core/min_seed.h"
#include "core/sketch.h"
#include "store/sketch_store.h"

namespace voteopt::serve {
namespace {

class ServeServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/serve_bundle";
    dataset_ = datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                                     0.05, /*seed=*/7);
    ASSERT_TRUE(datasets::SaveDatasetBundle(dataset_, prefix_).ok());
  }
  void TearDown() override {
    for (const char* suffix : {".influence.edges", ".counts.edges",
                               ".campaigns.tsv", ".meta", ".sketch"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  ServiceOptions DefaultOptions() const {
    ServiceOptions options;
    options.load.bundle_prefix = prefix_;
    options.load.build_theta = 20000;
    options.load.build_horizon = 10;
    options.load.save_built_sketch = true;
    options.load.build_threads = 2;
    // One worker: batches execute sequentially on a single pooled state,
    // which keeps the evaluator-LRU expectations below deterministic.
    options.num_worker_threads = 1;
    return options;
  }

  static Request MakeRequest(Request::Op op) {
    Request request;
    request.op = op;
    return request;
  }

  std::string prefix_;
  datasets::Dataset dataset_;
};

TEST_F(ServeServiceTest, BuildsPersistsAndServesMixedBatch) {
  // First open: no sketch on disk, so the service builds and persists one.
  auto built = CampaignService::Open(DefaultOptions());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_TRUE((*built)->stats().sketch_built);

  // Second open simulates the online process: it must load the persisted
  // artifact, not rebuild.
  auto service = CampaignService::Open(DefaultOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_FALSE((*service)->stats().sketch_built);
  EXPECT_TRUE((*service)->walks().adopted());
  EXPECT_EQ((*service)->sketch_meta().theta, 20000u);

  std::vector<Request> batch;
  batch.push_back(MakeRequest(Request::Op::kTopK));
  batch.back().k = 5;
  batch.push_back(MakeRequest(Request::Op::kTopK));
  batch.back().k = 5;
  batch.back().rule = "plurality";
  batch.push_back(MakeRequest(Request::Op::kMinSeed));
  batch.back().k_max = 64;
  batch.push_back(MakeRequest(Request::Op::kEvaluate));
  batch.back().seeds = {1, 2, 3};
  batch.push_back(MakeRequest(Request::Op::kEvaluate));
  batch.back().seeds = {1, 2, 3};
  batch.back().overrides = {{0, 1.0}};

  const std::vector<Response> responses = (*service)->HandleBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (const Response& response : responses) {
    EXPECT_TRUE(response.ok) << response.error;
  }
  EXPECT_EQ(responses[0].seeds.size(), 5u);
  EXPECT_GT(responses[0].exact_score, 0.0);
  EXPECT_EQ(responses[1].seeds.size(), 5u);
  // Different voting rules must be allowed to pick different seeds; at
  // minimum both selections answer from the same loaded sketch.
  EXPECT_GT(responses[2].selector_calls, 0u);
  EXPECT_EQ(responses[3].all_scores.size(),
            dataset_.state.num_candidates());
  // Forcing user 0's opinion to 1 can only help the target.
  EXPECT_GE(responses[4].score, responses[3].score);

  const auto stats = (*service)->stats();
  EXPECT_EQ(stats.queries, batch.size());
  EXPECT_EQ(stats.errors, 0u);
  // 5 queries over 3 distinct rules: the evaluator LRU must have hits.
  EXPECT_GT(stats.evaluator_cache_hits, 0u);
  EXPECT_EQ(stats.evaluator_cache_misses, 2u);  // cumulative + plurality
  EXPECT_GT(stats.sketch_resets, 0u);
}

TEST_F(ServeServiceTest, TopKMatchesDirectSketchSelection) {
  auto service = CampaignService::Open(DefaultOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  Request request = MakeRequest(Request::Op::kTopK);
  request.k = 6;
  const Response response = (*service)->Handle(request);
  ASSERT_TRUE(response.ok) << response.error;

  // Reference: the same sketch built directly from the persisted file's
  // recipe and consumed by the same greedy loop.
  opinion::FJModel model(dataset_.influence);
  voting::ScoreEvaluator evaluator(model, dataset_.state,
                                   dataset_.default_target, /*horizon=*/10,
                                   voting::ScoreSpec::Cumulative());
  core::SketchBuildOptions build_options;
  build_options.num_threads = 2;
  auto walks = core::BuildSketchSet(evaluator, 20000, /*master_seed=*/42,
                                    build_options);
  const core::SelectionResult expected =
      core::EstimatedGreedySelect(evaluator, 6, walks.get());
  EXPECT_EQ(response.seeds, expected.seeds);
  EXPECT_DOUBLE_EQ(response.exact_score, expected.score);
}

TEST_F(ServeServiceTest, RepeatedQueriesAreDeterministic) {
  auto service = CampaignService::Open(DefaultOptions());
  ASSERT_TRUE(service.ok());
  Request request = MakeRequest(Request::Op::kTopK);
  request.k = 4;
  request.rule = "copeland";
  const Response first = (*service)->Handle(request);
  const Response second = (*service)->Handle(request);
  ASSERT_TRUE(first.ok && second.ok);
  EXPECT_EQ(first.seeds, second.seeds);
  EXPECT_DOUBLE_EQ(first.exact_score, second.exact_score);
}

TEST_F(ServeServiceTest, ErrorsAreResponsesNotCrashes) {
  auto service = CampaignService::Open(DefaultOptions());
  ASSERT_TRUE(service.ok());

  Request bad_rule = MakeRequest(Request::Op::kTopK);
  bad_rule.k = 3;
  bad_rule.rule = "frobnicate";
  EXPECT_FALSE((*service)->Handle(bad_rule).ok);

  Request bad_k = MakeRequest(Request::Op::kTopK);
  bad_k.k = 0;
  EXPECT_FALSE((*service)->Handle(bad_k).ok);

  Request bad_seed = MakeRequest(Request::Op::kEvaluate);
  bad_seed.seeds = {dataset_.influence.num_nodes() + 5};
  EXPECT_FALSE((*service)->Handle(bad_seed).ok);

  Request bad_override = MakeRequest(Request::Op::kEvaluate);
  bad_override.overrides = {{0, 1.5}};
  EXPECT_FALSE((*service)->Handle(bad_override).ok);

  // The service stays healthy after errors.
  Request good = MakeRequest(Request::Op::kTopK);
  good.k = 2;
  EXPECT_TRUE((*service)->Handle(good).ok);
  EXPECT_EQ((*service)->stats().errors, 4u);
}

TEST_F(ServeServiceTest, MinSeedMatchesAlgorithmTwo) {
  auto service = CampaignService::Open(DefaultOptions());
  ASSERT_TRUE(service.ok());
  Request request = MakeRequest(Request::Op::kMinSeed);
  request.k_max = 32;
  const Response response = (*service)->Handle(request);
  ASSERT_TRUE(response.ok) << response.error;
  if (response.achievable && response.k_star > 0) {
    EXPECT_EQ(response.seeds.size(), response.k_star);
    // The returned budget must actually win.
    opinion::FJModel model(dataset_.influence);
    voting::ScoreEvaluator evaluator(model, dataset_.state,
                                     dataset_.default_target, /*horizon=*/10,
                                     voting::ScoreSpec::Cumulative());
    EXPECT_TRUE(core::TargetWins(evaluator, response.seeds));
  }
}

TEST_F(ServeServiceTest, MissingBundleFailsCleanly) {
  ServiceOptions options = DefaultOptions();
  options.load.bundle_prefix = prefix_ + "-nope";
  auto service = CampaignService::Open(options);
  EXPECT_FALSE(service.ok());
}

TEST_F(ServeServiceTest, MissingSketchWithoutBuildFallbackFails) {
  ServiceOptions options = DefaultOptions();
  options.load.build_theta = 0;  // no fallback build allowed
  auto service = CampaignService::Open(options);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), Status::Code::kIOError);
}

TEST_F(ServeServiceTest, StaleSketchForRegeneratedBundleRejected) {
  // Build + persist against the current bundle, then regenerate the bundle
  // with the SAME node count but a different seed: node-count and target
  // checks both pass, so only the fingerprint can catch the staleness.
  auto built = CampaignService::Open(DefaultOptions());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const datasets::Dataset regenerated = datasets::MakeDataset(
      datasets::DatasetName::kTwitterMask, 0.05, /*seed=*/8);
  ASSERT_EQ(regenerated.influence.num_nodes(),
            dataset_.influence.num_nodes());
  ASSERT_TRUE(datasets::SaveDatasetBundle(regenerated, prefix_).ok());
  auto service = CampaignService::Open(DefaultOptions());
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), Status::Code::kFailedPrecondition);
}

TEST_F(ServeServiceTest, MismatchedSketchRejected) {
  // Persist a sketch for a DIFFERENT (smaller) dataset under this bundle's
  // sketch path; Open must refuse to serve from it.
  const datasets::Dataset other = datasets::MakeDataset(
      datasets::DatasetName::kTwitterMask, 0.02, /*seed=*/8);
  opinion::FJModel model(other.influence);
  voting::ScoreEvaluator evaluator(model, other.state, other.default_target,
                                   /*horizon=*/10,
                                   voting::ScoreSpec::Cumulative());
  core::SketchBuildOptions build_options;
  build_options.num_threads = 1;
  auto walks = core::BuildSketchSet(evaluator, 1000, 1, build_options);
  ASSERT_TRUE(store::SaveSketch(*walks, {1000, 10, 0, 1},
                                datasets::BundleSketchPath(prefix_))
                  .ok());
  auto service = CampaignService::Open(DefaultOptions());
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), Status::Code::kFailedPrecondition);
}

}  // namespace
}  // namespace voteopt::serve
