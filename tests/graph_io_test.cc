#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/builder.h"

namespace voteopt::graph {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/voteopt_io_test.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(GraphIoTest, LoadsEdgesWithCommentsAndDefaults) {
  WriteFile(
      "# SNAP-style comment\n"
      "0 1 0.5\n"
      "1 2\n"           // default weight 1.0
      "\n"              // blank line ignored
      "0 2 0.25\n");
  auto g = LoadEdgeList(path_, {.normalize_incoming = false});
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g->OutWeights(1)[0], 1.0);
}

TEST_F(GraphIoTest, NormalizesByDefault) {
  WriteFile("0 2 2\n1 2 6\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->IsColumnStochastic());
}

TEST_F(GraphIoTest, CompactIdsRemapsSparseIds) {
  WriteFile("100 200 1\n200 300 1\n");
  auto g = LoadEdgeList(path_, {.compact_ids = true,
                                .normalize_incoming = false});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST_F(GraphIoTest, WithoutCompactIdsUsesMaxId) {
  WriteFile("0 4 1\n");
  auto g = LoadEdgeList(path_, {.normalize_incoming = false});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 5u);
}

TEST_F(GraphIoTest, UndirectedOptionAddsBothDirections) {
  WriteFile("0 1 1\n");
  auto g = LoadEdgeList(path_, {.normalize_incoming = false,
                                .undirected = true});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST_F(GraphIoTest, MissingFileIsIOError) {
  auto g = LoadEdgeList("/nonexistent/file.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kIOError);
}

TEST_F(GraphIoTest, MalformedLineIsCorruption) {
  WriteFile("0 1 1\nnot an edge\n");
  auto g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kCorruption);
  // Error message carries the line number.
  EXPECT_NE(g.status().message().find(":2"), std::string::npos);
}

TEST_F(GraphIoTest, NegativeWeightIsCorruption) {
  WriteFile("0 1 -0.5\n");
  auto g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kCorruption);
}

TEST_F(GraphIoTest, EmptyFileIsInvalidArgument) {
  WriteFile("# only comments\n");
  auto g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(GraphIoTest, SelfLoopsDroppedSilently) {
  WriteFile("0 0 1\n0 1 1\n");
  auto g = LoadEdgeList(path_, {.normalize_incoming = false});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST_F(GraphIoTest, SaveLoadRoundTrip) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.25);
  b.AddEdge(2, 3, 0.125);
  auto original = b.Build();
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveEdgeList(*original, path_).ok());

  auto loaded = LoadEdgeList(path_, {.normalize_incoming = false});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), original->num_nodes());
  EXPECT_EQ(loaded->num_edges(), original->num_edges());
  for (NodeId u = 0; u < original->num_nodes(); ++u) {
    const auto ow = original->OutWeights(u);
    const auto lw = loaded->OutWeights(u);
    ASSERT_EQ(ow.size(), lw.size());
    for (size_t i = 0; i < ow.size(); ++i) EXPECT_NEAR(ow[i], lw[i], 1e-9);
  }
}

TEST_F(GraphIoTest, SaveToUnwritablePathFails) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(SaveEdgeList(*g, "/nonexistent/dir/out.txt").code(),
            Status::Code::kIOError);
}

}  // namespace
}  // namespace voteopt::graph
