// The unified typed query API, pinned four ways:
//  * engine equivalence — api::Engine answers TopK / MinSeed / Evaluate
//    byte-identically to the PR-4 CampaignService surface across worker
//    thread counts 1/2/4 (and to the direct core selection path), so the
//    redesign provably changed the plumbing, not one answer;
//  * the full nine-method roster is invocable through the engine AND
//    through parsed wire requests (the protocol's "method" field);
//  * the new MethodCompare / RuleSweep scenarios return one scored entry
//    per method (paper plotting order) resp. per voting rule;
//  * QueryOptions toggles (lazy, single_pass, evaluate_exact) and the
//    rule/version validation behave as documented.
#include "api/engine.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/estimated_greedy.h"
#include "core/sketch.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace voteopt::api {
namespace {

class ApiEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/api_engine_bundle";
    dataset_ = datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                                     0.05, /*seed=*/7);
    ASSERT_TRUE(datasets::SaveDatasetBundle(dataset_, prefix_).ok());
  }
  void TearDown() override {
    for (const char* suffix : {".influence.edges", ".counts.edges",
                               ".campaigns.tsv", ".meta", ".sketch"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  EngineOptions Options(uint32_t worker_threads = 1) const {
    EngineOptions options;
    options.load.bundle_prefix = prefix_;
    options.load.build_theta = 20000;
    options.load.build_horizon = 10;
    options.load.save_built_sketch = true;
    options.load.build_threads = 2;
    options.num_worker_threads = worker_threads;
    return options;
  }

  /// The mixed batch the equivalence test pins: every PR-4 query verb,
  /// several voting rules, and one deliberate error.
  static std::vector<Request> Pr4Batch() {
    std::vector<Request> batch;
    batch.push_back(Request::TopK(5, voting::ScoreSpec::Cumulative()));
    batch.push_back(Request::TopK(4, voting::ScoreSpec::Plurality()));
    batch.push_back(Request::TopK(3, voting::ScoreSpec::Copeland()));
    batch.push_back(Request::MinSeed(24, voting::ScoreSpec::Cumulative()));
    batch.push_back(Request::Evaluate({1, 2, 3},
                                      voting::ScoreSpec::Cumulative()));
    {
      Request evaluate =
          Request::Evaluate({4, 5}, voting::ScoreSpec::Plurality());
      evaluate.rule = "borda";
      evaluate.overrides = {{0, 1.0}, {1, 0.25}};
      batch.push_back(evaluate);
    }
    batch.push_back(Request::TopK(0, voting::ScoreSpec::Cumulative()));
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].id = "q" + std::to_string(i);
    }
    return batch;
  }

  std::string prefix_;
  datasets::Dataset dataset_;
};

TEST_F(ApiEngineTest, EngineEqualsServiceAcrossThreadCounts) {
  const std::vector<Request> batch = Pr4Batch();

  // Reference: the PR-4 serving surface on one worker.
  auto reference = serve::CampaignService::Open(Options(1));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  std::vector<std::string> expected;
  for (const Response& response : (*reference)->HandleBatch(batch)) {
    expected.push_back(response.ToStableJson());
  }

  for (const uint32_t threads : {1u, 2u, 4u}) {
    auto engine = Engine::Open(Options(threads));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const std::vector<Response> responses = (*engine)->ExecuteBatch(batch);
    ASSERT_EQ(responses.size(), expected.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      EXPECT_EQ(responses[i].ToStableJson(), expected[i])
          << "request " << i << " diverged at --threads " << threads;
    }
  }
}

TEST_F(ApiEngineTest, TopKMatchesDirectCoreSelection) {
  auto engine = Engine::Open(Options());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const Response response = (*engine)->Execute(
      Request::TopK(6, voting::ScoreSpec::Cumulative()));
  ASSERT_TRUE(response.ok) << response.error;

  // Reference: the same sketch built directly from the persisted recipe
  // and consumed by the same greedy loop — the PR-4 semantics.
  opinion::FJModel model(dataset_.influence);
  voting::ScoreEvaluator evaluator(model, dataset_.state,
                                   dataset_.default_target, /*horizon=*/10,
                                   voting::ScoreSpec::Cumulative());
  core::SketchBuildOptions build_options;
  build_options.num_threads = 2;
  auto walks = core::BuildSketchSet(evaluator, 20000, /*master_seed=*/42,
                                    build_options);
  const core::SelectionResult expected =
      core::EstimatedGreedySelect(evaluator, 6, walks.get());
  EXPECT_EQ(response.seeds, expected.seeds);
  EXPECT_DOUBLE_EQ(response.exact_score, expected.score);
}

TEST_F(ApiEngineTest, AllNineMethodsInvocableOverTheWire) {
  auto engine = Engine::Open(Options());
  ASSERT_TRUE(engine.ok());
  for (const baselines::Method method : baselines::AllMethods()) {
    // Lower-case method spelling: the codec parses case-insensitively.
    std::string name = baselines::MethodName(method);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    const std::string line = std::string("{\"op\": \"topk\", \"v\": 2, ") +
                             "\"k\": 3, \"rule\": \"plurality\", " +
                             "\"method\": \"" + name + "\"}";
    auto request = serve::ParseRequest(line);
    ASSERT_TRUE(request.ok()) << line << ": " << request.status().ToString();
    EXPECT_EQ(request->method, method);
    const Response response = (*engine)->Execute(*request);
    ASSERT_TRUE(response.ok)
        << baselines::MethodName(method) << ": " << response.error;
    EXPECT_EQ(response.seeds.size(), 3u) << baselines::MethodName(method);
    EXPECT_GT(response.exact_score, 0.0) << baselines::MethodName(method);
    // Non-RS answers name the method; the RS default stays off the wire.
    if (method == baselines::Method::kRS) {
      EXPECT_TRUE(response.method.empty());
      EXPECT_EQ(response.ToJson().find("\"method\""), std::string::npos);
    } else {
      EXPECT_EQ(response.method, baselines::MethodName(method));
      EXPECT_NE(response.ToJson().find("\"method\""), std::string::npos);
    }
  }
}

TEST_F(ApiEngineTest, MethodCompareReturnsRosterInPaperOrder) {
  auto engine = Engine::Open(Options());
  ASSERT_TRUE(engine.ok());
  const Response response = (*engine)->Execute(
      Request::MethodCompare(2, voting::ScoreSpec::Plurality()));
  ASSERT_TRUE(response.ok) << response.error;
  const auto roster = baselines::AllMethods();
  ASSERT_EQ(response.method_scores.size(), roster.size());
  for (size_t i = 0; i < roster.size(); ++i) {
    const MethodScore& entry = response.method_scores[i];
    EXPECT_EQ(entry.method, baselines::MethodName(roster[i]))
        << "entry " << i << " out of paper order";
    EXPECT_EQ(entry.seeds.size(), 2u) << entry.method;
    EXPECT_GT(entry.exact_score, 0.0) << entry.method;
  }
  // The wire form carries one object per method.
  const std::string json = response.ToJson();
  for (const baselines::Method method : roster) {
    EXPECT_NE(json.find("{\"method\": \"" +
                        std::string(baselines::MethodName(method)) + "\""),
              std::string::npos);
  }
}

TEST_F(ApiEngineTest, MethodCompareHonorsExplicitRoster) {
  auto engine = Engine::Open(Options());
  ASSERT_TRUE(engine.ok());
  Request request = Request::MethodCompare(3, voting::ScoreSpec::Cumulative());
  request.methods = {baselines::Method::kDegree, baselines::Method::kRS};
  const Response response = (*engine)->Execute(request);
  ASSERT_TRUE(response.ok) << response.error;
  ASSERT_EQ(response.method_scores.size(), 2u);
  EXPECT_EQ(response.method_scores[0].method, "DC");
  EXPECT_EQ(response.method_scores[1].method, "RS");
  // The RS entry must equal a plain RS topk on the same instance.
  const Response topk = (*engine)->Execute(
      Request::TopK(3, voting::ScoreSpec::Cumulative()));
  EXPECT_EQ(response.method_scores[1].seeds, topk.seeds);
  EXPECT_DOUBLE_EQ(response.method_scores[1].exact_score, topk.exact_score);
}

TEST_F(ApiEngineTest, RuleSweepScoresAllFiveRules) {
  auto engine = Engine::Open(Options());
  ASSERT_TRUE(engine.ok());
  const Response response = (*engine)->Execute(Request::RuleSweep(4));
  ASSERT_TRUE(response.ok) << response.error;
  ASSERT_EQ(response.rule_scores.size(), 5u);
  const char* expected_order[] = {"cumulative", "plurality", "papproval",
                                  "positional", "copeland"};
  const uint32_t r = dataset_.state.num_candidates();
  for (size_t i = 0; i < 5; ++i) {
    const RuleScore& entry = response.rule_scores[i];
    EXPECT_EQ(entry.rule, expected_order[i]);
    EXPECT_EQ(entry.seeds.size(), 4u) << entry.rule;
    EXPECT_LT(entry.winner, r) << entry.rule;
  }
  // Each rule's entry pins the same answer a dedicated topk returns.
  const Response cumulative = (*engine)->Execute(
      Request::TopK(4, voting::ScoreSpec::Cumulative()));
  EXPECT_EQ(response.rule_scores[0].seeds, cumulative.seeds);
  EXPECT_DOUBLE_EQ(response.rule_scores[0].exact_score,
                   cumulative.exact_score);
}

TEST_F(ApiEngineTest, QueryOptionTogglesPreserveAnswers) {
  auto engine = Engine::Open(Options());
  ASSERT_TRUE(engine.ok());

  // CELF lazy vs exhaustive: bit-identical seeds and estimate.
  Request topk = Request::TopK(8, voting::ScoreSpec::Cumulative());
  const Response lazy = (*engine)->Execute(topk);
  topk.options.lazy = false;
  const Response exhaustive = (*engine)->Execute(topk);
  ASSERT_TRUE(lazy.ok && exhaustive.ok);
  EXPECT_EQ(lazy.seeds, exhaustive.seeds);
  EXPECT_DOUBLE_EQ(lazy.estimated_score, exhaustive.estimated_score);
  EXPECT_GT(exhaustive.diagnostics.at("gain_evaluations"),
            lazy.diagnostics.at("gain_evaluations"));

  // Single-pass vs binary-search min-seed: identical k*, seeds, outcome.
  Request minseed = Request::MinSeed(24, voting::ScoreSpec::Cumulative());
  const Response single = (*engine)->Execute(minseed);
  minseed.options.single_pass = false;
  const Response searched = (*engine)->Execute(minseed);
  ASSERT_TRUE(single.ok && searched.ok);
  EXPECT_EQ(single.achievable, searched.achievable);
  EXPECT_EQ(single.k_star, searched.k_star);
  EXPECT_EQ(single.seeds, searched.seeds);
  EXPECT_LE(single.selector_calls, 1u);
  EXPECT_GE(searched.selector_calls, single.selector_calls);

  // evaluate_exact=false skips the final exact propagation.
  topk.options.lazy = true;
  topk.options.evaluate_exact = false;
  const Response estimated_only = (*engine)->Execute(topk);
  ASSERT_TRUE(estimated_only.ok);
  EXPECT_EQ(estimated_only.seeds, lazy.seeds);
  EXPECT_DOUBLE_EQ(estimated_only.exact_score, 0.0);
}

TEST_F(ApiEngineTest, ResolveRuleValidatesBordaAndEnumeratesRules) {
  // Borda weights are undefined for a single-candidate walkover.
  const auto walkover = ResolveRule("borda", 1, {}, /*num_candidates=*/1);
  ASSERT_FALSE(walkover.ok());
  EXPECT_EQ(walkover.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(walkover.status().message().find("borda"), std::string::npos);

  const auto two = ResolveRule("borda", 1, {}, /*num_candidates=*/2);
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->kind, voting::ScoreKind::kPositionalPApproval);
  EXPECT_EQ(two->omega, (std::vector<double>{1.0, 0.0}));

  // Unknown rules enumerate the vocabulary.
  const auto unknown = ResolveRule("frobnicate", 1, {}, 4);
  ASSERT_FALSE(unknown.ok());
  for (const char* rule : {"cumulative", "plurality", "papproval",
                           "positional", "copeland", "borda"}) {
    EXPECT_NE(unknown.status().message().find(rule), std::string::npos);
  }
}

TEST_F(ApiEngineTest, BordaOverTheWireUsesTheDatasetCandidateCount) {
  auto engine = Engine::Open(Options());
  ASSERT_TRUE(engine.ok());
  auto request = serve::ParseRequest(
      R"({"op": "topk", "k": 3, "rule": "borda"})");
  ASSERT_TRUE(request.ok());
  const Response response = (*engine)->Execute(*request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.seeds.size(), 3u);
  // r = 2 here, so borda == plurality: identical selections.
  const Response plurality = (*engine)->Execute(
      Request::TopK(3, voting::ScoreSpec::Plurality()));
  EXPECT_EQ(response.seeds, plurality.seeds);
}

TEST_F(ApiEngineTest, UnsupportedVersionFailsCleanly) {
  auto engine = Engine::Open(Options());
  ASSERT_TRUE(engine.ok());
  Request request = Request::TopK(2, voting::ScoreSpec::Cumulative());
  request.v = kProtocolVersion + 1;
  const Response response = (*engine)->Execute(request);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unsupported protocol version"),
            std::string::npos);
  request.v = kProtocolVersion;
  EXPECT_TRUE((*engine)->Execute(request).ok);
}

TEST_F(ApiEngineTest, TraceIsAnAdditiveSideChannel) {
  auto engine = Engine::Open(Options());
  ASSERT_TRUE(engine.ok());

  // The determinism ledger: a traced request and its untraced twin return
  // byte-identical stable answers — tracing observes, it never perturbs.
  for (Request request : Pr4Batch()) {
    request.trace = false;
    const Response untraced = (*engine)->Execute(request);
    request.trace = true;
    const Response traced = (*engine)->Execute(request);
    EXPECT_EQ(traced.ToStableJson(), untraced.ToStableJson())
        << "request " << request.id << " diverged under trace";
    EXPECT_FALSE(untraced.traced);
    EXPECT_EQ(untraced.ToJson().find("diagnostics"), std::string::npos);
    if (traced.ok) {
      EXPECT_TRUE(traced.traced);
    }
  }

  // A traced RS topk reports the stage schema and the work counts.
  Request topk = Request::TopK(5, voting::ScoreSpec::Cumulative());
  topk.trace = true;
  const Response response = (*engine)->Execute(topk);
  ASSERT_TRUE(response.ok) << response.error;
  for (const char* stage :
       {"stage.dispatch_ms", "stage.state_lease_ms", "stage.selection_ms",
        "stage.evaluation_ms"}) {
    ASSERT_TRUE(response.diagnostics.count(stage)) << stage;
    EXPECT_GE(response.diagnostics.at(stage), 0.0) << stage;
  }
  EXPECT_TRUE(response.diagnostics.count("work.sketch_resets"));
  EXPECT_TRUE(response.diagnostics.count("work.gain_evaluations"));
  // The pre-PR-7 bare spelling stays as an alias for one protocol version.
  EXPECT_EQ(response.diagnostics.at("gain_evaluations"),
            response.diagnostics.at("work.gain_evaluations"));

  // A traced minseed reports its selector-call work count.
  Request minseed = Request::MinSeed(24, voting::ScoreSpec::Cumulative());
  minseed.trace = true;
  const Response min_response = (*engine)->Execute(minseed);
  ASSERT_TRUE(min_response.ok) << min_response.error;
  EXPECT_EQ(min_response.diagnostics.at("work.selector_calls"),
            static_cast<double>(min_response.selector_calls));
}

TEST_F(ApiEngineTest, SlowQueryLogFiresAtThresholdWithStages) {
  EngineOptions options = Options();
  options.slow_query_millis = 0.0;  // every query is "slow"
  auto engine = Engine::Open(options);
  ASSERT_TRUE(engine.ok());

  ::testing::internal::CaptureStderr();
  Request request = Request::TopK(3, voting::ScoreSpec::Cumulative());
  request.id = "slowq";
  const Response response = (*engine)->Execute(request);
  const std::string log = ::testing::internal::GetCapturedStderr();
  ASSERT_TRUE(response.ok) << response.error;

  // One structured line: identity, timing, and the stage breakdown — even
  // though the client did not opt into wire-level tracing.
  EXPECT_NE(log.find("\"slow_query\": true"), std::string::npos) << log;
  EXPECT_NE(log.find("\"op\": \"topk\""), std::string::npos);
  EXPECT_NE(log.find("\"id\": \"slowq\""), std::string::npos);
  EXPECT_NE(log.find("\"threshold_millis\": 0"), std::string::npos);
  EXPECT_NE(log.find("stage.selection_ms"), std::string::npos);
  EXPECT_FALSE(response.traced);  // the log is not the wire side channel

  // Disarmed (the default -1): silence.
  auto quiet = Engine::Open(Options());
  ASSERT_TRUE(quiet.ok());
  ::testing::internal::CaptureStderr();
  ASSERT_TRUE((*quiet)->Execute(request).ok);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(ApiEngineTest, HostsInMemoryDatasetsWithTargetOverride) {
  auto engine = Engine::Open({});  // empty registry, no bootstrap
  ASSERT_TRUE(engine.ok());
  HostOptions host;
  host.theta = 5000;
  host.horizon = 10;
  host.target = 1;
  ASSERT_TRUE((*engine)->Host("mem", dataset_, host).ok());
  EXPECT_EQ((*engine)->sketch_meta().target, 1u);
  EXPECT_EQ((*engine)->sketch_meta().theta, 5000u);

  const Response response = (*engine)->Execute(
      Request::TopK(3, voting::ScoreSpec::Cumulative()));
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.dataset, "mem");
  EXPECT_EQ(response.seeds.size(), 3u);

  // Same name twice: FailedPrecondition, like a double protocol load.
  EXPECT_FALSE((*engine)->Host("mem", dataset_, host).ok());
  // Out-of-range target override: clean error, no assert.
  host.target = 99;
  EXPECT_FALSE((*engine)->Host("mem2", dataset_, host).ok());
}

TEST_F(ApiEngineTest, HostBuildsIdenticalSketchThroughOocPath) {
  // block_budget_bytes routes the inline build through sketch_ooc/; every
  // answer must match the in-memory build bit-for-bit (ledger entry 7
  // surfaced at the api layer).
  auto mem_engine = Engine::Open({});
  auto ooc_engine = Engine::Open({});
  ASSERT_TRUE(mem_engine.ok() && ooc_engine.ok());
  HostOptions host;
  host.theta = 8000;
  host.horizon = 8;
  ASSERT_TRUE((*mem_engine)->Host("mem", dataset_, host).ok());
  host.block_budget_bytes = 4096;  // forces several blocks at this scale
  host.ooc_scratch_prefix = ::testing::TempDir() + "/api_ooc_scratch";
  ASSERT_TRUE((*ooc_engine)->Host("mem", dataset_, host).ok());

  // Server-side timing is the one legitimately nondeterministic field.
  const auto strip_millis = [](std::string json) {
    const size_t at = json.find(", \"millis\":");
    if (at != std::string::npos) json.resize(at);
    return json;
  };
  for (const auto& request : Pr4Batch()) {
    const Response a = (*mem_engine)->Execute(request);
    const Response b = (*ooc_engine)->Execute(request);
    EXPECT_EQ(strip_millis(a.ToJson()), strip_millis(b.ToJson()))
        << "request " << request.id;
  }
}

}  // namespace
}  // namespace voteopt::api
