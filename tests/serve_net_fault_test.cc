// Abuse coverage for the epoll TCP front end: every failure mode the
// server defends against (net/server.h "Abuse handling") must produce a
// clean, observable outcome — never a crash, a hang, or a wrong answer on
// an unrelated connection.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "serve/protocol.h"

namespace voteopt::net {
namespace {

using api::Request;

class ServeNetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/serve_net_fault";
    ASSERT_TRUE(datasets::SaveDatasetBundle(
                    datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                                          0.05, /*seed=*/7),
                    prefix_)
                    .ok());
  }
  void TearDown() override {
    for (const char* suffix : {".influence.edges", ".counts.edges",
                               ".campaigns.tsv", ".meta", ".sketch"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  api::EngineOptions EngineOptionsFor(uint32_t worker_threads = 2) const {
    api::EngineOptions options;
    options.load.bundle_prefix = prefix_;
    options.load.build_theta = 10000;
    options.load.build_horizon = 8;
    options.load.save_built_sketch = true;
    options.load.build_threads = 2;
    options.num_worker_threads = worker_threads;
    return options;
  }

  static std::string TopKLine(int k, const std::string& id = "") {
    Request request;
    request.op = Request::Op::kTopK;
    request.k = static_cast<uint32_t>(k);
    request.id = id;
    return serve::RequestToJson(request);
  }

  static double Metric(obs::Registry& metrics, const std::string& name) {
    const auto snapshot = metrics.Snapshot();
    const auto it = snapshot.find(name);
    return it == snapshot.end() ? 0.0 : it->second;
  }

  /// Polls until `predicate` holds or ~5s pass — the tests sync on server
  /// state instead of sleeping fixed amounts.
  template <typename Predicate>
  static bool WaitFor(Predicate predicate) {
    for (int i = 0; i < 500; ++i) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return predicate();
  }

  std::string prefix_;
};

TEST_F(ServeNetFaultTest, MidRequestDisconnectLeavesServerServing) {
  auto engine = api::Engine::Open(EngineOptionsFor());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerOptions options;
  options.batch.metrics = &(*engine)->metrics();
  Server server(engine->get(), options);
  ASSERT_TRUE(server.Start().ok());

  // Client 1: half a request line, then a hard disconnect.
  {
    BlockingClient rude;
    ASSERT_TRUE(rude.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(rude.SendBytes("{\"op\": \"topk\", ").ok());
    rude.Close();
  }
  // Client 2: full requests sent, connection dropped before reading the
  // answers — the in-flight deliveries must be discarded safely.
  {
    BlockingClient impatient;
    ASSERT_TRUE(impatient.Connect("127.0.0.1", server.port()).ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(impatient.SendLine(TopKLine(3)).ok());
    }
    impatient.Close();
  }
  ASSERT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));

  // The server still answers a well-behaved client correctly.
  BlockingClient polite;
  ASSERT_TRUE(polite.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(polite.SendLine(TopKLine(3)).ok());
  std::string answer;
  ASSERT_TRUE(polite.ReadLine(&answer).ok());
  auto parsed = serve::ParseResponse(answer);
  ASSERT_TRUE(parsed.ok()) << answer;
  EXPECT_TRUE(parsed->ok) << parsed->error;
}

TEST_F(ServeNetFaultTest, SlowLorisPartialLineHitsReadTimeout) {
  auto engine = api::Engine::Open(EngineOptionsFor());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerOptions options;
  options.read_timeout_ms = 100;
  options.batch.metrics = &(*engine)->metrics();
  Server server(engine->get(), options);
  ASSERT_TRUE(server.Start().ok());

  BlockingClient loris;
  ASSERT_TRUE(loris.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(loris.SendBytes("{\"op\": ").ok());  // never terminates
  // The server must close the connection on its own: ReadLine observes
  // EOF well before its own (much longer) timeout.
  std::string answer;
  EXPECT_FALSE(loris.ReadLine(&answer, 5000).ok());
  EXPECT_GE(Metric((*engine)->metrics(), "net_read_timeouts_total"), 1.0);
  EXPECT_EQ(server.active_connections(), 0u);

  // A connection with NO partial line pending is not a slow loris and
  // must survive idling past the read timeout.
  BlockingClient idle;
  ASSERT_TRUE(idle.Connect("127.0.0.1", server.port()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(idle.SendLine(TopKLine(3)).ok());
  ASSERT_TRUE(idle.ReadLine(&answer).ok());
  EXPECT_TRUE(serve::ParseResponse(answer)->ok);
}

TEST_F(ServeNetFaultTest, OversizedLineAnswersErrorThenCloses) {
  auto engine = api::Engine::Open(EngineOptionsFor());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerOptions options;
  options.max_line_bytes = 256;
  options.batch.metrics = &(*engine)->metrics();
  Server server(engine->get(), options);
  ASSERT_TRUE(server.Start().ok());

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // A valid request first: it must be answered before the connection is
  // condemned for the oversized line that follows.
  ASSERT_TRUE(client.SendLine(TopKLine(3, "before")).ok());
  ASSERT_TRUE(client.SendBytes(std::string(1024, 'x') + "\n").ok());

  std::string answer;
  ASSERT_TRUE(client.ReadLine(&answer).ok());
  auto first = serve::ParseResponse(answer);
  ASSERT_TRUE(first.ok()) << answer;
  EXPECT_TRUE(first->ok) << first->error;
  EXPECT_EQ(first->id, "before");

  ASSERT_TRUE(client.ReadLine(&answer).ok());
  auto second = serve::ParseResponse(answer);
  ASSERT_TRUE(second.ok()) << answer;
  EXPECT_FALSE(second->ok);
  EXPECT_NE(second->error.find("exceeds 256 bytes"), std::string::npos)
      << second->error;

  // ... and then the close (framing past the cap cannot be resynced).
  EXPECT_FALSE(client.ReadLine(&answer, 5000).ok());
  EXPECT_GE(Metric((*engine)->metrics(), "net_oversized_lines_total"), 1.0);
  // The server is unharmed.
  BlockingClient next;
  ASSERT_TRUE(next.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(next.SendLine(TopKLine(3)).ok());
  ASSERT_TRUE(next.ReadLine(&answer).ok());
  EXPECT_TRUE(serve::ParseResponse(answer)->ok);
}

TEST_F(ServeNetFaultTest, AdmissionOverflowShedsDeterministically) {
  auto engine = api::Engine::Open(EngineOptionsFor());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Deterministic overload: one executor, one-request windows, and a hook
  // that freezes the first window until released. With queue_depth=2 the
  // admission state is then exact — 1 executing, 2 queued — and every
  // further request must shed, in arrival order.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  bool first_window_started = false;
  ServerOptions options;
  options.batch.metrics = &(*engine)->metrics();
  options.batch.queue_depth = 2;
  options.batch.batch_max = 1;
  options.batch.num_executors = 1;
  options.batch.batch_started_hook = [&](const std::string&, size_t) {
    std::unique_lock<std::mutex> lock(gate_mutex);
    first_window_started = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  Server server(engine->get(), options);
  ASSERT_TRUE(server.Start().ok());

  BlockingClient filler;
  ASSERT_TRUE(filler.Connect("127.0.0.1", server.port()).ok());
  // Request 0 occupies the (blocked) executor...
  ASSERT_TRUE(filler.SendLine(TopKLine(3, "blocked")).ok());
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(5),
                                 [&] { return first_window_started; }));
  }
  // ... requests 1..2 fill the lane to its cap.
  ASSERT_TRUE(filler.SendLine(TopKLine(3, "queued1")).ok());
  ASSERT_TRUE(filler.SendLine(TopKLine(3, "queued2")).ok());
  ASSERT_TRUE(WaitFor([&] { return server.batcher().QueueDepth("") == 2; }));

  // A second client's requests now shed IMMEDIATELY — while the executor
  // is still frozen — with the documented `Overloaded` error.
  BlockingClient shed;
  ASSERT_TRUE(shed.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(shed.SendLine(TopKLine(3, "shed" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 3; ++i) {
    std::string answer;
    ASSERT_TRUE(shed.ReadLine(&answer).ok()) << "shed response " << i;
    auto parsed = serve::ParseResponse(answer);
    ASSERT_TRUE(parsed.ok()) << answer;
    // Shed responses echo the request (op, id) and carry the Overloaded
    // status — deterministic: exactly the arrivals beyond the cap.
    EXPECT_FALSE(parsed->ok);
    EXPECT_EQ(parsed->op, "topk");
    EXPECT_EQ(parsed->id, "shed" + std::to_string(i));
    EXPECT_EQ(parsed->error.rfind("Overloaded:", 0), 0u) << parsed->error;
    EXPECT_NE(parsed->error.find("depth 2"), std::string::npos)
        << parsed->error;
  }
  EXPECT_EQ(Metric((*engine)->metrics(), "net_shed_total"), 3.0);

  // Release the gate: the admitted requests all complete with real
  // answers — shedding never dropped an admitted ticket.
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  const std::string expected = [&] {
    Request request;
    request.op = Request::Op::kTopK;
    request.k = 3;
    return (*engine)->Execute(request).ToStableJson();
  }();
  for (const char* id : {"blocked", "queued1", "queued2"}) {
    std::string answer;
    ASSERT_TRUE(filler.ReadLine(&answer).ok()) << id;
    auto parsed = serve::ParseResponse(answer);
    ASSERT_TRUE(parsed.ok()) << answer;
    EXPECT_TRUE(parsed->ok) << parsed->error;
    EXPECT_EQ(parsed->id, id);  // per-connection order survived overload
  }
}

TEST_F(ServeNetFaultTest, ConnectionLimitRefusesExcessAccepts) {
  auto engine = api::Engine::Open(EngineOptionsFor());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerOptions options;
  options.max_connections = 2;
  options.batch.metrics = &(*engine)->metrics();
  Server server(engine->get(), options);
  ASSERT_TRUE(server.Start().ok());

  BlockingClient a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(a.SendLine(TopKLine(3)).ok());
  std::string answer;
  ASSERT_TRUE(a.ReadLine(&answer).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(b.SendLine(TopKLine(3)).ok());
  ASSERT_TRUE(b.ReadLine(&answer).ok());

  // The third connection gets a best-effort Overloaded line, then EOF.
  BlockingClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(c.ReadLine(&answer).ok());
  auto parsed = serve::ParseResponse(answer);
  ASSERT_TRUE(parsed.ok()) << answer;
  EXPECT_FALSE(parsed->ok);
  EXPECT_NE(parsed->error.find("connection limit"), std::string::npos);
  EXPECT_FALSE(c.ReadLine(&answer, 5000).ok());
  EXPECT_GE(Metric((*engine)->metrics(), "net_accept_rejected_total"), 1.0);

  // Closing one admitted connection frees a slot.
  a.Close();
  ASSERT_TRUE(WaitFor([&] { return server.active_connections() < 2; }));
  BlockingClient d;
  ASSERT_TRUE(d.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(d.SendLine(TopKLine(3)).ok());
  ASSERT_TRUE(d.ReadLine(&answer).ok());
  EXPECT_TRUE(serve::ParseResponse(answer)->ok);
}

}  // namespace
}  // namespace voteopt::net
