#include "datasets/io.h"

#include <gtest/gtest.h>

#include "store/sketch_store.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace voteopt::datasets {
namespace {

class DatasetsIoTest : public ::testing::Test {
 protected:
  void SetUp() override { prefix_ = ::testing::TempDir() + "/voteopt_bundle"; }
  void TearDown() override {
    for (const char* suffix :
         {".influence.edges", ".counts.edges", ".campaigns.tsv", ".meta"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }
  std::string prefix_;
};

TEST_F(DatasetsIoTest, CampaignsRoundTrip) {
  const Dataset ds = MakeDataset(DatasetName::kTwitterMask, 0.02, 5);
  const std::string path = prefix_ + ".campaigns.tsv";
  ASSERT_TRUE(SaveCampaigns(ds.state, path).ok());
  auto loaded = LoadCampaigns(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_candidates(), ds.state.num_candidates());
  for (uint32_t q = 0; q < ds.state.num_candidates(); ++q) {
    EXPECT_EQ(loaded->campaigns[q].initial_opinions,
              ds.state.campaigns[q].initial_opinions);
    EXPECT_EQ(loaded->campaigns[q].stubbornness,
              ds.state.campaigns[q].stubbornness);
  }
}

TEST_F(DatasetsIoTest, BundleRoundTrip) {
  const Dataset ds = MakeDataset(DatasetName::kYelp, 0.02, 9);
  ASSERT_TRUE(SaveDatasetBundle(ds, prefix_).ok());
  auto loaded = LoadDatasetBundle(prefix_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, ds.name);
  EXPECT_EQ(loaded->default_target, ds.default_target);
  EXPECT_EQ(loaded->influence.num_nodes(), ds.influence.num_nodes());
  EXPECT_EQ(loaded->influence.num_edges(), ds.influence.num_edges());
  EXPECT_EQ(loaded->counts.num_edges(), ds.counts.num_edges());
  EXPECT_TRUE(loaded->influence.IsColumnStochastic(1e-6));
  // Spot-check weights survive the text round trip.
  for (graph::NodeId v = 0; v < std::min<uint32_t>(20, ds.influence.num_nodes());
       ++v) {
    const auto original = ds.influence.InWeights(v);
    const auto restored = loaded->influence.InWeights(v);
    ASSERT_EQ(original.size(), restored.size());
    for (size_t i = 0; i < original.size(); ++i) {
      EXPECT_NEAR(original[i], restored[i], 1e-9);
    }
  }
}

TEST_F(DatasetsIoTest, LoadMissingCampaignsFails) {
  auto loaded = LoadCampaigns(prefix_ + ".campaigns.tsv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kIOError);
}

TEST_F(DatasetsIoTest, CorruptHeaderRejected) {
  const std::string path = prefix_ + ".campaigns.tsv";
  std::ofstream(path) << "not a campaigns file\n2 2\n";
  auto loaded = LoadCampaigns(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(DatasetsIoTest, TruncatedDataRejected) {
  const std::string path = prefix_ + ".campaigns.tsv";
  std::ofstream(path) << "# voteopt-campaigns v1\n2 3\n0.5 0.5\n0.5 0.5\n";
  auto loaded = LoadCampaigns(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(DatasetsIoTest, OutOfRangeValuesRejectedOnLoad) {
  const std::string path = prefix_ + ".campaigns.tsv";
  std::ofstream(path) << "# voteopt-campaigns v1\n2 1\n1.5 0.5\n0.5 0.5\n";
  auto loaded = LoadCampaigns(path);
  ASSERT_FALSE(loaded.ok());  // validation runs on load
}

TEST_F(DatasetsIoTest, SingleCampaignRejected) {
  const std::string path = prefix_ + ".campaigns.tsv";
  std::ofstream(path) << "# voteopt-campaigns v1\n1 1\n0.5 0.5\n";
  EXPECT_FALSE(LoadCampaigns(path).ok());
}

TEST_F(DatasetsIoTest, EmptyCampaignsFileRejected) {
  const std::string path = prefix_ + ".campaigns.tsv";
  std::ofstream(path) << "";
  auto loaded = LoadCampaigns(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(DatasetsIoTest, TruncatedHeaderLineRejected) {
  const std::string path = prefix_ + ".campaigns.tsv";
  // The magic line is cut short mid-token.
  std::ofstream(path) << "# voteopt-camp";
  auto loaded = LoadCampaigns(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(DatasetsIoTest, MissingDimensionsRejected) {
  const std::string path = prefix_ + ".campaigns.tsv";
  std::ofstream(path) << "# voteopt-campaigns v1\n";
  auto loaded = LoadCampaigns(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(DatasetsIoTest, LoadBundleFromMissingPrefixIsCleanError) {
  auto loaded = LoadDatasetBundle(prefix_ + "-does-not-exist");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kIOError);
}

class DatasetsBundleErrorTest : public DatasetsIoTest {
 protected:
  void SetUp() override {
    DatasetsIoTest::SetUp();
    const Dataset ds = MakeDataset(DatasetName::kTwitterMask, 0.02, 5);
    ASSERT_TRUE(SaveDatasetBundle(ds, prefix_).ok());
  }
};

TEST_F(DatasetsBundleErrorTest, EachMissingMemberIsCleanError) {
  // Dropping any required member must yield a Status, never a crash.
  for (const char* suffix :
       {".influence.edges", ".counts.edges", ".campaigns.tsv", ".meta"}) {
    const std::string path = prefix_ + suffix;
    std::ifstream keep(path, std::ios::binary);
    std::stringstream saved;
    saved << keep.rdbuf();
    keep.close();
    std::remove(path.c_str());
    auto loaded = LoadDatasetBundle(prefix_);
    EXPECT_FALSE(loaded.ok()) << "missing " << suffix << " went undetected";
    EXPECT_EQ(loaded.status().code(), Status::Code::kIOError) << suffix;
    std::ofstream(path, std::ios::binary) << saved.str();
  }
  // Intact again: the bundle loads.
  EXPECT_TRUE(LoadDatasetBundle(prefix_).ok());
}

TEST_F(DatasetsBundleErrorTest, WrongCampaignsMagicRejected) {
  std::ofstream(prefix_ + ".campaigns.tsv")
      << "# some-other-format v9\n2 2\n0.5 0.5\n0.5 0.5\n";
  auto loaded = LoadDatasetBundle(prefix_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(DatasetsBundleErrorTest, TruncatedCampaignsMemberRejected) {
  std::ofstream(prefix_ + ".campaigns.tsv")
      << "# voteopt-campaigns v1\n2 4\n0.5 0.5\n";
  auto loaded = LoadDatasetBundle(prefix_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(DatasetsBundleErrorTest, OutOfRangeMetaTargetRejected) {
  std::ofstream(prefix_ + ".meta") << "name Broken\ntarget 99\n";
  auto loaded = LoadDatasetBundle(prefix_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(DatasetsBundleErrorTest, GraphCampaignSizeMismatchRejected) {
  // Campaigns for a different (tiny) node universe.
  std::ofstream(prefix_ + ".campaigns.tsv")
      << "# voteopt-campaigns v1\n2 2\n0.5 0.5\n0.5 0.5\n0.5 0.5\n0.5 0.5\n";
  auto loaded = LoadDatasetBundle(prefix_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST_F(DatasetsBundleErrorTest, BundleSketchPathIsTheSketchMember) {
  // datasets/ keeps the suffix as a literal to stay decoupled from store/;
  // the two spellings must agree.
  EXPECT_EQ(BundleSketchPath(prefix_),
            prefix_ + voteopt::store::kSketchFileSuffix);
  EXPECT_EQ(BundleSketchPath(prefix_), prefix_ + ".sketch");
}

}  // namespace
}  // namespace voteopt::datasets
