// Correctness coverage for the epoll TCP front end (net/server.h): the
// socket transport must deliver answers BYTE-IDENTICAL to the in-process
// CampaignService / stdin path (determinism ledger entry 9), whatever the
// framing — lines split at every byte boundary, whole batches pipelined in
// one write, many concurrent clients, any worker-thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/batcher.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace voteopt::net {
namespace {

using api::Request;
using api::Response;

class ServeNetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/serve_net";
    ASSERT_TRUE(datasets::SaveDatasetBundle(
                    datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                                          0.05, /*seed=*/7),
                    prefix_)
                    .ok());
    // Build and persist the sketch once so every engine in a test LOADS
    // it: `list` reports sketch_built, which must not differ between the
    // socket engine and the reference engine.
    auto warm = api::Engine::Open(EngineOptionsFor(1));
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }
  void TearDown() override {
    for (const char* suffix : {".influence.edges", ".counts.edges",
                               ".campaigns.tsv", ".meta", ".sketch"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  api::EngineOptions EngineOptionsFor(uint32_t worker_threads) const {
    api::EngineOptions options;
    options.load.bundle_prefix = prefix_;
    options.load.build_theta = 10000;
    options.load.build_horizon = 8;
    options.load.save_built_sketch = true;
    options.load.build_threads = 2;
    options.num_worker_threads = worker_threads;
    return options;
  }

  /// Every query verb, several rules, one invalid request, one admin verb
  /// mixed in — all with ids so responses can be matched back.
  static std::vector<Request> MixedBatch() {
    std::vector<Request> batch;
    auto add = [&batch](Request::Op op) -> Request& {
      Request request;
      request.op = op;
      request.id = "q" + std::to_string(batch.size());
      batch.push_back(request);
      return batch.back();
    };
    add(Request::Op::kTopK).k = 5;
    {
      Request& r = add(Request::Op::kTopK);
      r.k = 4;
      r.rule = "plurality";
    }
    add(Request::Op::kMinSeed).k_max = 24;
    add(Request::Op::kEvaluate).seeds = {1, 2, 3};
    {
      Request& r = add(Request::Op::kEvaluate);
      r.seeds = {4, 5};
      r.overrides = {{0, 1.0}, {1, 0.25}};
      r.rule = "borda";
    }
    {
      Request& r = add(Request::Op::kMethodCompare);
      r.v = 2;
      r.k = 4;
    }
    {
      Request& r = add(Request::Op::kRuleSweep);
      r.v = 2;
      r.k = 4;
    }
    add(Request::Op::kList);
    {
      Request& r = add(Request::Op::kTopK);
      r.k = 0;  // invalid on purpose: errors must be byte-identical too
    }
    return batch;
  }

  static std::string Stable(const std::string& response_line) {
    auto response = serve::ParseResponse(response_line);
    EXPECT_TRUE(response.ok()) << response_line;
    return response.ok() ? response->ToStableJson() : "<unparseable>";
  }

  std::string prefix_;
};

TEST_F(ServeNetTest, SplitAtEveryByteBoundaryAnswersMatchService) {
  auto engine = api::Engine::Open(EngineOptionsFor(2));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerOptions options;
  options.batch.metrics = &(*engine)->metrics();
  Server server(engine->get(), options);
  ASSERT_TRUE(server.Start().ok());

  Request request;
  request.op = Request::Op::kTopK;
  request.k = 5;
  request.rule = "plurality";
  const std::string line = serve::RequestToJson(request) + "\n";
  const std::string expected = (*engine)->Execute(request).ToStableJson();

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // One round per interior split point: the framer must reassemble the
  // line identically no matter where the TCP segmentation cut it.
  for (size_t split = 1; split < line.size(); ++split) {
    ASSERT_TRUE(client.SendBytes(line.substr(0, split)).ok());
    ASSERT_TRUE(client.SendBytes(line.substr(split)).ok());
    std::string answer;
    ASSERT_TRUE(client.ReadLine(&answer).ok()) << "split at " << split;
    EXPECT_EQ(Stable(answer), expected) << "split at " << split;
  }
}

TEST_F(ServeNetTest, PipelinedBatchAnswersInOrderAndByteIdentical) {
  auto engine = api::Engine::Open(EngineOptionsFor(2));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerOptions options;
  options.batch.metrics = &(*engine)->metrics();
  Server server(engine->get(), options);
  ASSERT_TRUE(server.Start().ok());

  // Reference answers from the in-process service layer.
  auto service = serve::CampaignService::Open(EngineOptionsFor(1));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const std::vector<Request> batch = MixedBatch();
  std::vector<std::string> expected;
  for (const Request& request : batch) {
    expected.push_back((*service)->Handle(request).ToStableJson());
  }

  // The whole batch in ONE write, interleaved with blank and comment
  // lines (skipped, exactly like the stdin path).
  std::string wire = "\n# pipelined batch\n";
  for (const Request& request : batch) {
    wire += serve::RequestToJson(request) + "\n";
  }
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.SendBytes(wire).ok());
  client.ShutdownWrite();  // half-close: the tail must still arrive
  for (size_t i = 0; i < batch.size(); ++i) {
    std::string answer;
    ASSERT_TRUE(client.ReadLine(&answer).ok()) << "response " << i;
    auto parsed = serve::ParseResponse(answer);
    ASSERT_TRUE(parsed.ok()) << answer;
    // In request order: the echoed id proves no reordering.
    EXPECT_EQ(parsed->id, batch[i].id);
    EXPECT_EQ(parsed->ToStableJson(), expected[i]) << "request " << i;
  }
  // After the tail, the server closes the half-closed connection.
  std::string extra;
  EXPECT_FALSE(client.ReadLine(&extra, 5000).ok());
}

TEST_F(ServeNetTest, AnswersInvariantAcrossWorkerThreadCounts) {
  // The full mixed batch through a socket against engines with 1, 2, and
  // 4 workers: every stable answer must be identical (the thread-count
  // invariance contract extends to the TCP path).
  const std::vector<Request> batch = MixedBatch();
  std::vector<std::vector<std::string>> answers_by_threads;
  for (const uint32_t threads : {1u, 2u, 4u}) {
    auto engine = api::Engine::Open(EngineOptionsFor(threads));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ServerOptions options;
    Server server(engine->get(), options);
    ASSERT_TRUE(server.Start().ok());
    BlockingClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::vector<std::string> answers;
    for (const Request& request : batch) {
      ASSERT_TRUE(client.SendLine(serve::RequestToJson(request)).ok());
      std::string answer;
      ASSERT_TRUE(client.ReadLine(&answer).ok());
      answers.push_back(Stable(answer));
    }
    answers_by_threads.push_back(std::move(answers));
  }
  for (size_t t = 1; t < answers_by_threads.size(); ++t) {
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(answers_by_threads[0][i], answers_by_threads[t][i])
          << "request " << i << " diverged at thread-count index " << t;
    }
  }
}

TEST_F(ServeNetTest, ConcurrentClientsEachGetServiceIdenticalAnswers) {
  auto engine = api::Engine::Open(EngineOptionsFor(4));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerOptions options;
  options.batch.metrics = &(*engine)->metrics();
  options.batch.num_executors = 3;
  Server server(engine->get(), options);
  ASSERT_TRUE(server.Start().ok());

  auto reference = serve::CampaignService::Open(EngineOptionsFor(1));
  ASSERT_TRUE(reference.ok());
  const std::vector<Request> batch = MixedBatch();
  std::vector<std::string> expected;
  for (const Request& request : batch) {
    expected.push_back((*reference)->Handle(request).ToStableJson());
  }

  constexpr size_t kClients = 4;
  constexpr size_t kRounds = 3;
  std::vector<std::string> failures(kClients);
  {
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        BlockingClient client;
        if (!client.Connect("127.0.0.1", server.port()).ok()) {
          failures[c] = "connect failed";
          return;
        }
        for (size_t round = 0; round < kRounds; ++round) {
          for (size_t i = 0; i < batch.size(); ++i) {
            // Offset starts so different verbs collide in time.
            const size_t at = (i + c) % batch.size();
            if (!client.SendLine(serve::RequestToJson(batch[at])).ok()) {
              failures[c] = "send failed";
              return;
            }
            std::string answer;
            if (!client.ReadLine(&answer).ok()) {
              failures[c] = "read failed";
              return;
            }
            auto parsed = serve::ParseResponse(answer);
            if (!parsed.ok() || parsed->ToStableJson() != expected[at]) {
              failures[c] = "request " + std::to_string(at) +
                            " diverged: " + answer;
              return;
            }
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
  // Everything flowed through the socket counters.
  const auto snapshot = (*engine)->metrics().Snapshot();
  double requests = 0;
  for (const auto& [name, value] : snapshot) {
    if (name == "net_requests_total") requests = value;
  }
  EXPECT_EQ(requests, static_cast<double>(kClients * kRounds * batch.size()));
}

TEST_F(ServeNetTest, AdminVerbsActAsBarriersOverTheSocket) {
  // load → query-on-loaded → unload → query-on-unloaded, pipelined in one
  // write: the socket path must order admin verbs exactly like the stdin
  // batch window does.
  const std::string other_prefix = ::testing::TempDir() + "/serve_net_other";
  ASSERT_TRUE(datasets::SaveDatasetBundle(
                  datasets::MakeDataset(datasets::DatasetName::kTwitterMask,
                                        0.05, /*seed=*/11),
                  other_prefix)
                  .ok());

  auto engine = api::Engine::Open(EngineOptionsFor(4));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerOptions options;
  Server server(engine->get(), options);
  ASSERT_TRUE(server.Start().ok());

  std::vector<Request> batch;
  Request request;
  request.op = Request::Op::kLoad;
  request.dataset = "other";
  request.bundle = other_prefix;
  batch.push_back(request);
  request = {};
  request.op = Request::Op::kTopK;
  request.k = 3;
  request.dataset = "other";  // must see the load that precedes it
  batch.push_back(request);
  request = {};
  request.op = Request::Op::kUnload;
  request.dataset = "other";
  batch.push_back(request);
  request = {};
  request.op = Request::Op::kTopK;
  request.k = 3;
  request.dataset = "other";  // must see the unload that precedes it
  batch.push_back(request);

  std::string wire;
  for (const Request& r : batch) wire += serve::RequestToJson(r) + "\n";
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.SendBytes(wire).ok());
  std::vector<Response> responses;
  for (size_t i = 0; i < batch.size(); ++i) {
    std::string answer;
    ASSERT_TRUE(client.ReadLine(&answer).ok()) << "response " << i;
    auto parsed = serve::ParseResponse(answer);
    ASSERT_TRUE(parsed.ok()) << answer;
    responses.push_back(std::move(*parsed));
  }
  EXPECT_TRUE(responses[0].ok) << responses[0].error;
  EXPECT_TRUE(responses[1].ok) << responses[1].error;
  EXPECT_EQ(responses[1].dataset, "other");
  EXPECT_TRUE(responses[2].ok) << responses[2].error;
  EXPECT_FALSE(responses[3].ok);  // 'other' is gone again
  EXPECT_EQ((*engine)->registry().size(), 1u);

  for (const char* suffix : {".influence.edges", ".counts.edges",
                             ".campaigns.tsv", ".meta", ".sketch"}) {
    std::remove((other_prefix + suffix).c_str());
  }
}

// Lock-free accessor audit regression: QueueDepth and InFlight are read by
// monitoring code while the coordinator and executors mutate the lanes.
// An observer thread hammers both for the whole life of a batched run and
// asserts the documented bounds; under TSan (CI `tsan` job) this is the
// test that flags an accessor that stops taking the batcher mutex.
TEST_F(ServeNetTest, BatcherDepthAccessorsAreSafeUnderLoad) {
  auto engine = api::Engine::Open(EngineOptionsFor(2));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::atomic<size_t> delivered{0};
  BatcherOptions options;
  options.num_executors = 2;
  options.batch_max = 8;
  Batcher batcher(engine->get(), options,
                  [&delivered](uint64_t, uint64_t, std::string) {
                    delivered.fetch_add(1, std::memory_order_relaxed);
                  });

  std::atomic<bool> done{false};
  std::thread observer([&] {
    while (!done.load(std::memory_order_acquire)) {
      // "" is the lane key: MixedBatch-free tickets leave Request::dataset
      // empty (the sole loaded dataset).
      EXPECT_LE(batcher.QueueDepth(""), options.queue_depth);
      EXPECT_LE(batcher.InFlight(), options.num_executors);
    }
  });

  constexpr size_t kTickets = 96;
  size_t admitted = 0;
  for (size_t i = 0; i < kTickets; ++i) {
    Batcher::Ticket ticket;
    ticket.conn_id = 1;
    ticket.seq = i;
    ticket.request.op = Request::Op::kEvaluate;
    ticket.request.seeds = {1, 2};
    if (batcher.Submit(std::move(ticket))) ++admitted;
  }
  ASSERT_GE(admitted, 1u);
  while (delivered.load(std::memory_order_relaxed) < admitted) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  observer.join();
  batcher.Stop();
  EXPECT_EQ(delivered.load(), admitted);
  EXPECT_EQ(batcher.QueueDepth(""), 0u);
  EXPECT_EQ(batcher.InFlight(), 0u);
}

}  // namespace
}  // namespace voteopt::net
